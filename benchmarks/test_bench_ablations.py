"""Benchmarks for the design-choice ablations and the headline aggregate."""


def test_bench_ablations(report):
    result = report("ablations")
    assert result.measured("no-DTV error vs DTV error (ratio)") > 2
    assert result.measured("no-co-design mismatches") > 0


def test_bench_headline_averages(report):
    result = report("headline")
    assert result.measured("frame-drop reduction (%)") > 50
    assert result.measured("stutter reduction (%)") > 50
    assert 15 <= result.measured("latency reduction (%)") <= 45


def test_bench_dvfs_extension(report):
    result = report("dvfs")
    assert result.measured("extra energy saved by the larger window (pp)") > 0
