"""Benchmarks regenerating the paper's tables and cost sections."""

import pytest


def test_bench_tab01_platforms(report):
    result = report("tab01")
    assert result.measured("Mate 60 Pro period (ms)") == pytest.approx(8.3)


def test_bench_tab02_ux_stutters(report):
    result = report("tab02")
    assert result.measured("avg stutter reduction (%)") > 50


def test_bench_cost_accounting(report):
    result = report("cost")
    assert result.measured("FPE+DTV per frame (µs)") == pytest.approx(102.6, abs=1)


def test_bench_power_consumption(report):
    result = report("power")
    assert result.measured("end-to-end power increase (%)") < 1.0


def test_bench_chromium_case_study(report):
    result = report("chromium")
    assert result.measured("FDPS reduction (%)") > 80


def test_bench_appendix_a_reference_benchmark(report):
    result = report("appendix")
    assert float(result.measured("suite-wide FDPS reduction (%)")) > 40
