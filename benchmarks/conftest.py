"""Benchmark harness configuration.

Each benchmark regenerates one paper artifact (see DESIGN.md §5): it runs the
experiment through pytest-benchmark for timing, prints the regenerated
rows/series, and asserts the paper's shape conclusions so a silent regression
cannot hide behind a fast run. Experiments run in quick mode (subsets, fewer
repetitions); full-fidelity numbers live in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


def run_and_report(benchmark, experiment_id: str, quick: bool = True):
    """Benchmark one experiment and print its report."""
    from repro.experiments.registry import run_experiment

    result = benchmark.pedantic(
        lambda: run_experiment(experiment_id, quick=quick),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    return result


@pytest.fixture
def report(benchmark):
    """Fixture form of :func:`run_and_report`."""

    def runner(experiment_id: str, quick: bool = True):
        return run_and_report(benchmark, experiment_id, quick=quick)

    return runner
