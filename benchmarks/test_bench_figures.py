"""Benchmarks regenerating every figure of the paper's evaluation."""

import pytest


def test_bench_fig01_frame_time_cdf(report):
    result = report("fig01")
    assert 70 <= result.measured("frames within 1 VSync period (%)") <= 86


def test_bench_fig03_pixels_per_second_trend(report):
    result = report("fig03")
    assert float(result.measured("growth factor since 2010").rstrip("x")) > 15


def test_bench_fig05_frame_drop_summary(report):
    result = report("fig05")
    assert result.rows, "per-configuration summary produced"


def test_bench_fig06_frame_distribution(report):
    result = report("fig06")
    assert result.measured("stuffed frames dominate (avg %, paper: 'most frames')") > 50


def test_bench_fig07_touch_latency(report):
    result = report("fig07")
    assert result.measured("VSync max lag (px)") > 150


def test_bench_fig11_apps_fdps(report):
    result = report("fig11")
    vsync = result.measured("avg FDPS, VSync 3 bufs")
    assert result.measured("avg FDPS, D-VSync 4 bufs") < vsync


def test_bench_fig12_oscases_vulkan(report):
    result = report("fig12")
    assert result.measured("FDPS reduction (%)") > 55


def test_bench_fig13_oscases_gles(report):
    result = report("fig13")
    assert result.measured("Mate 40 Pro FDPS reduction (%)") > 40


def test_bench_fig14_game_simulations(report):
    result = report("fig14")
    assert result.measured("FDPS reduction, 4 bufs (%)") > 40


def test_bench_fig15_rendering_latency(report):
    result = report("fig15")
    assert 20 <= result.measured("avg latency reduction (%)") <= 45


def test_bench_fig16_map_case_study(report):
    result = report("fig16")
    assert result.measured("zoom FDPS reduction (%)") > 85
    assert result.measured("ZDP execution per frame (µs)") == pytest.approx(
        151.6, abs=1
    )


def test_bench_fig09_scope(report):
    result = report("fig09")
    assert result.measured("frames actually pre-rendered (%)") > 85


def test_bench_fig10_execution_patterns(report):
    result = report("fig10")
    assert result.measured("D-VSync janks from the long frame") == 0


def test_bench_fig04_graphics_features(report):
    result = report("fig04")
    assert result.measured("catalog size") == 54
