"""Chaos benchmarks: VSync vs D-VSync under each fault regime.

Every test here runs the fault drill (``repro.faults.drill``) under one fault
regime and asserts the robustness acceptance criteria from DESIGN.md's fault
section: the pipeline completes without unhandled exceptions, injections are
recorded, the watchdog degrades and re-promotes under the standard schedule,
and seeded runs are bit-for-bit repeatable. Marked ``chaos`` so CI can run
them as a separate job (``pytest benchmarks -m chaos``).
"""

from __future__ import annotations

import pytest

from repro.faults.drill import run_drill_pair, run_fault_drill
from repro.faults.schedule import FaultSchedule, spec
from repro.metrics.fdps import fdps

pytestmark = pytest.mark.chaos

#: One single-fault regime per model, exercised independently.
REGIMES = {
    "vsync-jitter": FaultSchedule([spec("vsync-jitter", sigma_us=400, drop_prob=0.02)]),
    "thermal": FaultSchedule([spec("thermal", factor=2.5, start_ms=300, end_ms=800)]),
    "buffer-pressure": FaultSchedule([spec("buffer-pressure", deny_prob=0.3)]),
    "input-loss": FaultSchedule([spec("input-loss", drop_prob=0.05, staleness_us=3000)]),
    "callback-crash": FaultSchedule([spec("callback-crash", prob=0.05)]),
}


def _drill(benchmark, schedule, scenario="composite", seed=0):
    return benchmark.pedantic(
        lambda: run_drill_pair(schedule, scenario=scenario, seed=seed),
        rounds=1,
        iterations=1,
    )


@pytest.mark.parametrize("regime", sorted(REGIMES))
def test_bench_single_fault_regime(benchmark, regime):
    """Each fault model alone: both architectures complete, faults recorded."""
    vsync_result, dvsync_result = _drill(benchmark, REGIMES[regime])
    for result in (vsync_result, dvsync_result):
        assert result.presented_frames, f"{result.scheduler} presented no frames"
        info = result.extra["faults"]
        assert info["schedule"] == REGIMES[regime].describe()
        assert info["injected_total"] > 0, f"{regime} never fired"
    # Callback crashes must be contained, never escape the run.
    if regime == "callback-crash":
        info = dvsync_result.extra["faults"]
        assert info["sim_contained"] + info["hal_contained"] > 0


def test_bench_standard_schedule_acceptance(benchmark):
    """The acceptance drill: standard schedule on the composite scenario.

    D-VSync must survive jitter + a thermal window + input loss without an
    unhandled exception, and the watchdog must both degrade to classic VSync
    and re-promote once the thermal window passes.
    """
    vsync_result, dvsync_result = _drill(benchmark, FaultSchedule.standard())
    assert vsync_result.presented_frames and dvsync_result.presented_frames
    watchdog = dvsync_result.extra["watchdog"]
    assert watchdog["degradations"] >= 1
    assert watchdog["repromotions"] >= 1
    assert watchdog["time_in_degraded_ns"] > 0


def test_bench_seeded_drill_repeatable(benchmark):
    """Two drills with the same seed produce identical metrics end to end."""
    first = benchmark.pedantic(
        lambda: run_fault_drill(FaultSchedule.standard(), seed=7),
        rounds=1,
        iterations=1,
    )
    second = run_fault_drill(FaultSchedule.standard(), seed=7)
    assert first.rows == second.rows
    assert first.comparisons == second.comparisons


def test_bench_faultfree_drill_matches_clean(benchmark):
    """An empty schedule changes nothing: fdps matches injector-free runs."""
    from repro.faults.drill import drill_driver
    from repro.testing import run_dvsync_faulted, run_vsync

    vsync_result, dvsync_result = _drill(benchmark, FaultSchedule.none())
    clean_vsync = run_vsync(drill_driver("composite"))
    assert fdps(vsync_result) == fdps(clean_vsync)
    # The drill's D-VSync leg carries the watchdog, so its twin must too.
    twin = run_dvsync_faulted(drill_driver("composite"), FaultSchedule.none())
    assert len(dvsync_result.presented_frames) == len(twin.presented_frames)
    assert fdps(dvsync_result) == fdps(twin)
