"""Benchmarks of the execution layer itself.

Not a paper artifact — these quantify what the RunSpec/Executor machinery
costs (hashing, wire round-trips) and what it buys (warm-cache reruns that
skip the scheduler entirely), so regressions in either direction are visible.
"""

from repro.display.device import PIXEL_5
from repro.exec.executor import Executor, execute_spec
from repro.exec.serialize import normalize_result, result_from_wire, result_to_wire
from repro.exec.spec import DriverSpec, RunSpec


def _spec(name: str) -> RunSpec:
    return RunSpec(
        driver=DriverSpec.of(
            "repro.exec.builders:burst_animation",
            name=name,
            target_fdps=2.0,
            duration_ms=1000.0,
            burst_period_ms=None,
        ),
        device=PIXEL_5,
        architecture="vsync",
        buffer_count=3,
    )


def test_bench_spec_content_hash(benchmark):
    spec = _spec("bench-hash")
    digest = benchmark(spec.content_hash)
    assert len(digest) == 64


def test_bench_result_wire_round_trip(benchmark):
    result = execute_spec(_spec("bench-wire"))

    def round_trip():
        return result_from_wire(result_to_wire(result))

    clone = benchmark(round_trip)
    assert clone.frames == normalize_result(result).frames


def test_bench_executor_fanout_inprocess(benchmark):
    specs = [_spec(f"bench-fan#{index}") for index in range(4)]

    def fan_out():
        with Executor(jobs=1) as executor:
            return executor.map(specs)

    results = benchmark.pedantic(fan_out, rounds=1, iterations=1)
    assert len(results) == 4


def test_bench_warm_cache_rerun(benchmark, tmp_path):
    spec = _spec("bench-cache")
    with Executor(jobs=1, cache=True, cache_dir=tmp_path) as cold:
        cold.run(spec)

    def warm_run():
        with Executor(jobs=1, cache=True, cache_dir=tmp_path) as warm:
            result = warm.run(spec)
            assert warm.stats.runs_executed == 0
            return result

    result = benchmark.pedantic(warm_run, rounds=1, iterations=1)
    assert len(result.frames) >= 50


def test_bench_supervised_overhead():
    """Supervision gate: < 3% happy-path overhead vs the bare execution path.

    The control arm is what an unsupervised batch costs per spec — content
    hash, :func:`execute_spec`, and the normalizing wire round-trip, exactly
    the seed executor's in-process loop. The measured arm submits the same
    specs through the supervised ``Executor.map`` (deadline bookkeeping,
    retry/breaker state, failure classification). Rounds interleave the two
    arms in alternating order and the gate compares per-arm *minimums* — the
    floor is the honest cost estimate, robust to scheduling noise — with one
    escalation retry to absorb pathological machine load.
    """
    import time

    specs = [_spec(f"bench-sup#{index}") for index in range(4)]

    def control_once() -> float:
        started = time.perf_counter()
        for spec in specs:
            spec.content_hash()
            result_from_wire(result_to_wire(execute_spec(spec)))
        return time.perf_counter() - started

    def measured_once() -> float:
        with Executor(jobs=1) as executor:
            started = time.perf_counter()
            results = executor.map(specs)
            elapsed = time.perf_counter() - started
        assert len(results) == 4
        return elapsed

    def measure(rounds: int) -> tuple[float, float]:
        control, measured = [], []
        control_once()  # warm both paths
        measured_once()
        for index in range(rounds):
            arms = [(control_once, control), (measured_once, measured)]
            if index % 2:
                arms.reverse()
            for run, samples in arms:
                samples.append(run())
        return min(control), min(measured)

    for attempt, rounds in enumerate((8, 16)):
        control_floor, measured_floor = measure(rounds)
        overhead = measured_floor / control_floor - 1.0
        print(
            f"\nsupervised-executor overhead (attempt {attempt}, {rounds} "
            f"rounds): {overhead * 100:+.2f}% (control "
            f"{control_floor * 1000:.2f} ms, measured "
            f"{measured_floor * 1000:.2f} ms)"
        )
        if measured_floor < control_floor * 1.03:
            return
    raise AssertionError(
        f"supervised happy path costs {overhead * 100:.2f}% (gate: < 3%)"
    )
