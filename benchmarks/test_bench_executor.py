"""Benchmarks of the execution layer itself.

Not a paper artifact — these quantify what the RunSpec/Executor machinery
costs (hashing, wire round-trips) and what it buys (warm-cache reruns that
skip the scheduler entirely), so regressions in either direction are visible.
"""

from repro.display.device import PIXEL_5
from repro.exec.executor import Executor, execute_spec
from repro.exec.serialize import normalize_result, result_from_wire, result_to_wire
from repro.exec.spec import DriverSpec, RunSpec


def _spec(name: str) -> RunSpec:
    return RunSpec(
        driver=DriverSpec.of(
            "repro.exec.builders:burst_animation",
            name=name,
            target_fdps=2.0,
            duration_ms=1000.0,
            burst_period_ms=None,
        ),
        device=PIXEL_5,
        architecture="vsync",
        buffer_count=3,
    )


def test_bench_spec_content_hash(benchmark):
    spec = _spec("bench-hash")
    digest = benchmark(spec.content_hash)
    assert len(digest) == 64


def test_bench_result_wire_round_trip(benchmark):
    result = execute_spec(_spec("bench-wire"))

    def round_trip():
        return result_from_wire(result_to_wire(result))

    clone = benchmark(round_trip)
    assert clone.frames == normalize_result(result).frames


def test_bench_executor_fanout_inprocess(benchmark):
    specs = [_spec(f"bench-fan#{index}") for index in range(4)]

    def fan_out():
        with Executor(jobs=1) as executor:
            return executor.map(specs)

    results = benchmark.pedantic(fan_out, rounds=1, iterations=1)
    assert len(results) == 4


def test_bench_warm_cache_rerun(benchmark, tmp_path):
    spec = _spec("bench-cache")
    with Executor(jobs=1, cache=True, cache_dir=tmp_path) as cold:
        cold.run(spec)

    def warm_run():
        with Executor(jobs=1, cache=True, cache_dir=tmp_path) as warm:
            result = warm.run(spec)
            assert warm.stats.runs_executed == 0
            return result

    result = benchmark.pedantic(warm_run, rounds=1, iterations=1)
    assert len(result.frames) >= 50
