"""Microbenchmarks of the simulator substrate itself.

Not a paper artifact — these keep the simulation fast enough that the full
experiment matrix stays runnable on a laptop, and flag algorithmic
regressions in the kernel, the queue, and the schedulers.
"""

from repro.core.config import DVSyncConfig
from repro.core.dvsync import DVSyncScheduler
from repro.display.device import PIXEL_5
from repro.graphics.bufferqueue import BufferQueue
from repro.sim.engine import Simulator
from repro.testing import light_params, make_animation
from repro.vsync.scheduler import VSyncScheduler
from repro.workloads.distributions import FrameTimeParams, PowerLawFrameModel
from repro.sim.rng import SeededRng


def test_bench_simulator_event_throughput(benchmark):
    def run_10k_events():
        sim = Simulator()

        count = {"n": 0}

        def tick():
            count["n"] += 1
            if count["n"] < 10_000:
                sim.schedule(10, tick)

        sim.schedule(0, tick)
        sim.run()
        return count["n"]

    assert benchmark(run_10k_events) == 10_000


def test_bench_buffer_queue_cycle(benchmark):
    queue = BufferQueue(capacity=4, buffer_bytes=1024)

    def cycle():
        buffer = queue.try_dequeue()
        queue.queue(buffer, frame_id=0, content_timestamp=0, render_rate_hz=60, now=0)
        queue.acquire()

    benchmark(cycle)


def test_bench_workload_generation(benchmark):
    params = FrameTimeParams(refresh_hz=120, key_prob=0.05)

    def generate():
        model = PowerLawFrameModel(params, SeededRng(1))
        return model.generate(1000)

    assert len(benchmark(generate)) == 1000


def test_bench_vsync_scheduler_second_of_frames(benchmark):
    def run():
        driver = make_animation(light_params(), "bench-vs", duration_ms=1000)
        return VSyncScheduler(driver, PIXEL_5, buffer_count=3).run()

    result = benchmark(run)
    assert len(result.frames) >= 59


def test_bench_dvsync_scheduler_second_of_frames(benchmark):
    def run():
        driver = make_animation(light_params(), "bench-dv", duration_ms=1000)
        return DVSyncScheduler(driver, PIXEL_5, DVSyncConfig(buffer_count=4)).run()

    result = benchmark(run)
    assert len(result.frames) >= 59


def test_bench_disabled_telemetry_overhead():
    """Zero-cost-when-disabled gate: < 3% overhead vs a telemetry-free build.

    The control arm monkeypatches ``SchedulerBase._install_telemetry`` to a
    no-op, which is exactly the pre-telemetry construction path (disabled
    telemetry registers zero hooks, so the run loop executes the same code
    either way; the only residue is the resolve call at construction).
    Rounds interleave the two arms in alternating order and the gate compares
    per-arm *minimums* — the floor is the honest cost estimate, robust to the
    scheduling noise a median ratio is hostage to. One escalation retry
    absorbs pathological machine load.
    """
    import time

    from repro.pipeline.scheduler_base import SchedulerBase

    def run_once(tag: str) -> float:
        driver = make_animation(light_params(), f"bench-tel-{tag}", duration_ms=4000)
        scheduler = VSyncScheduler(driver, PIXEL_5, buffer_count=3)
        started = time.perf_counter()
        scheduler.run()
        return time.perf_counter() - started

    original = SchedulerBase._install_telemetry

    def stub(self, telemetry):
        return None

    def measure(rounds: int) -> tuple[float, float]:
        control, measured = [], []
        try:
            for _ in range(2):  # warm both paths
                run_once("warm")
            for index in range(rounds):
                arms = [(stub, control), (original, measured)]
                if index % 2:
                    arms.reverse()
                for install, samples in arms:
                    SchedulerBase._install_telemetry = install
                    samples.append(run_once(f"r{index}"))
        finally:
            SchedulerBase._install_telemetry = original
        return min(control), min(measured)

    for attempt, rounds in enumerate((16, 32)):
        control_floor, measured_floor = measure(rounds)
        overhead = measured_floor / control_floor - 1.0
        print(
            f"\ndisabled-telemetry overhead (attempt {attempt}, {rounds} rounds): "
            f"{overhead * 100:+.2f}% (control {control_floor * 1000:.2f} ms, "
            f"measured {measured_floor * 1000:.2f} ms)"
        )
        if measured_floor < control_floor * 1.03:
            return
    raise AssertionError(
        f"disabled telemetry costs {overhead * 100:.2f}% (gate: < 3%)"
    )

def test_bench_disabled_verify_overhead():
    """Zero-cost-when-disabled gate: < 3% overhead vs a checker-free build.

    Same protocol as the telemetry gate above: the control arm monkeypatches
    ``SchedulerBase._install_verifier`` to a no-op (the pre-verification
    construction path), the measured arm keeps the real resolve with the
    process-wide switch off — which registers zero hooks, so both arms run
    identical per-frame code. Alternating arms, per-arm minimums, one
    escalation retry.
    """
    import time

    from repro.pipeline.scheduler_base import SchedulerBase
    from repro.verify import runtime as verify_runtime

    verify_runtime.reset()
    assert not verify_runtime.enabled(), (
        "REPRO_VERIFY is set; the disabled-overhead gate needs the switch off"
    )

    def run_once(tag: str) -> float:
        driver = make_animation(light_params(), f"bench-ver-{tag}", duration_ms=4000)
        scheduler = VSyncScheduler(driver, PIXEL_5, buffer_count=3)
        started = time.perf_counter()
        scheduler.run()
        return time.perf_counter() - started

    original = SchedulerBase._install_verifier

    def stub(self, verify):
        return None

    def measure(rounds: int) -> tuple[float, float]:
        control, measured = [], []
        try:
            for _ in range(2):  # warm both paths
                run_once("warm")
            for index in range(rounds):
                arms = [(stub, control), (original, measured)]
                if index % 2:
                    arms.reverse()
                for install, samples in arms:
                    SchedulerBase._install_verifier = install
                    samples.append(run_once(f"r{index}"))
        finally:
            SchedulerBase._install_verifier = original
        return min(control), min(measured)

    for attempt, rounds in enumerate((16, 32)):
        control_floor, measured_floor = measure(rounds)
        overhead = measured_floor / control_floor - 1.0
        print(
            f"\ndisabled-verify overhead (attempt {attempt}, {rounds} rounds): "
            f"{overhead * 100:+.2f}% (control {control_floor * 1000:.2f} ms, "
            f"measured {measured_floor * 1000:.2f} ms)"
        )
        if measured_floor < control_floor * 1.03:
            return
    raise AssertionError(
        f"disabled verification costs {overhead * 100:.2f}% (gate: < 3%)"
    )
