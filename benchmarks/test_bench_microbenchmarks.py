"""Microbenchmarks of the simulator substrate itself.

Not a paper artifact — these keep the simulation fast enough that the full
experiment matrix stays runnable on a laptop, and flag algorithmic
regressions in the kernel, the queue, and the schedulers.
"""

from repro.core.config import DVSyncConfig
from repro.core.dvsync import DVSyncScheduler
from repro.display.device import PIXEL_5
from repro.graphics.bufferqueue import BufferQueue
from repro.sim.engine import Simulator
from repro.testing import light_params, make_animation
from repro.vsync.scheduler import VSyncScheduler
from repro.workloads.distributions import FrameTimeParams, PowerLawFrameModel
from repro.sim.rng import SeededRng


def test_bench_simulator_event_throughput(benchmark):
    def run_10k_events():
        sim = Simulator()

        count = {"n": 0}

        def tick():
            count["n"] += 1
            if count["n"] < 10_000:
                sim.schedule(10, tick)

        sim.schedule(0, tick)
        sim.run()
        return count["n"]

    assert benchmark(run_10k_events) == 10_000


def test_bench_buffer_queue_cycle(benchmark):
    queue = BufferQueue(capacity=4, buffer_bytes=1024)

    def cycle():
        buffer = queue.try_dequeue()
        queue.queue(buffer, frame_id=0, content_timestamp=0, render_rate_hz=60, now=0)
        queue.acquire()

    benchmark(cycle)


def test_bench_workload_generation(benchmark):
    params = FrameTimeParams(refresh_hz=120, key_prob=0.05)

    def generate():
        model = PowerLawFrameModel(params, SeededRng(1))
        return model.generate(1000)

    assert len(benchmark(generate)) == 1000


def test_bench_vsync_scheduler_second_of_frames(benchmark):
    def run():
        driver = make_animation(light_params(), "bench-vs", duration_ms=1000)
        return VSyncScheduler(driver, PIXEL_5, buffer_count=3).run()

    result = benchmark(run)
    assert len(result.frames) >= 59


def test_bench_dvsync_scheduler_second_of_frames(benchmark):
    def run():
        driver = make_animation(light_params(), "bench-dv", duration_ms=1000)
        return DVSyncScheduler(driver, PIXEL_5, DVSyncConfig(buffer_count=4)).run()

    result = benchmark(run)
    assert len(result.frames) >= 59
