"""The executor: RunSpecs in, RunResults out, in parallel and cached.

:func:`execute_spec` is the single seam through which a spec becomes a
scheduler invocation — the fault drill, every experiment module, and the
process-pool worker all funnel through it. :class:`Executor` adds the
operational layer on top: batch submission with de-duplication, a process
pool (``--jobs N``) or in-process backend, the content-addressed result
cache, and per-run timing/cache observability.

A module-level *default executor* carries the CLI's ``--jobs``/``--no-cache``
choices down to the experiment modules without threading a parameter through
every ``run()`` signature. Library and test use defaults to a hermetic
executor: in-process, no cache. ``REPRO_JOBS``, ``REPRO_EXEC_BACKEND`` and
``REPRO_CACHE=1`` configure the default from the environment (the CI tier-1
job runs the suite under ``REPRO_JOBS=2 REPRO_EXEC_BACKEND=inprocess``).
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import dataclasses
import os
import time

from repro.errors import ConfigurationError
from repro.exec.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.exec.serialize import result_from_wire, result_to_wire
from repro.exec.spec import RunSpec
from repro.pipeline.scheduler_base import RunResult
from repro.telemetry import runtime as telemetry_runtime

BACKENDS = ("inprocess", "process")


def execute_spec(spec: RunSpec) -> RunResult:
    """Instantiate and run the scheduler a spec describes (no cache, no pool).

    This is the only place the execution layer turns a spec into a live
    scheduler; everything above it deals in specs and serialized results.
    Scheduler and fault imports happen at call time: this module sits below
    ``repro.experiments`` in the import graph, while the fault drill sits
    above it.
    """
    from repro.core.config import DVSyncConfig
    from repro.core.dvsync import DVSyncScheduler
    from repro.faults.injector import FaultInjector
    from repro.faults.schedule import FaultSchedule
    from repro.faults.watchdog import DegradationWatchdog
    from repro.vsync.scheduler import VSyncScheduler

    driver = spec.driver.build()
    # spec.telemetry / spec.verify force a session or checker even when this
    # process (a pool worker, say) never flipped the corresponding
    # process-wide switch; False defers to it.
    telemetry = True if spec.telemetry else None
    verify = True if spec.verify else None
    if spec.architecture == "vsync":
        scheduler = VSyncScheduler(
            driver,
            spec.device,
            buffer_count=spec.buffer_count,
            telemetry=telemetry,
            verify=verify,
        )
    elif spec.architecture == "dvsync":
        config = spec.dvsync or DVSyncConfig(buffer_count=spec.buffer_count or 4)
        scheduler = DVSyncScheduler(
            driver, spec.device, config=config, telemetry=telemetry, verify=verify
        )
    else:  # pragma: no cover - RunSpec.__post_init__ already rejects this
        raise ConfigurationError(f"unknown architecture {spec.architecture!r}")
    if spec.faults:
        schedule = FaultSchedule.parse(spec.faults)
        FaultInjector(schedule, seed=spec.fault_seed).attach(scheduler)
    if spec.watchdog:
        scheduler.attach_watchdog(DegradationWatchdog())
    return scheduler.run(start_time=spec.start_time, horizon=spec.horizon)


def _pool_worker(wire_spec: dict) -> tuple[dict, float]:
    """Process-pool entry point: wire spec in, (wire result, seconds) out."""
    spec = RunSpec.from_wire(wire_spec)
    started = time.perf_counter()
    result = execute_spec(spec)
    return result_to_wire(result), time.perf_counter() - started


@dataclasses.dataclass
class ExecStats:
    """Cumulative executor observability counters."""

    runs_executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    deduplicated: int = 0
    batches: int = 0
    run_seconds: float = 0.0

    def snapshot(self) -> "ExecStats":
        return dataclasses.replace(self)

    def since(self, earlier: "ExecStats") -> "ExecStats":
        """Counter deltas accumulated after *earlier* was snapshotted."""
        return ExecStats(
            runs_executed=self.runs_executed - earlier.runs_executed,
            cache_hits=self.cache_hits - earlier.cache_hits,
            cache_misses=self.cache_misses - earlier.cache_misses,
            deduplicated=self.deduplicated - earlier.deduplicated,
            batches=self.batches - earlier.batches,
            run_seconds=self.run_seconds - earlier.run_seconds,
        )

    @property
    def total_requests(self) -> int:
        return self.runs_executed + self.cache_hits + self.deduplicated

    def describe(self) -> str:
        """One-line summary for reports and the CLI."""
        return (
            f"{self.total_requests} runs: {self.runs_executed} simulated "
            f"({self.run_seconds:.2f}s), {self.cache_hits} cache hits, "
            f"{self.deduplicated} deduplicated"
        )


class Executor:
    """Maps batches of RunSpecs to RunResults, in parallel and cached.

    Args:
        jobs: Worker count for the process backend; defaults to
            ``os.cpu_count()``.
        backend: ``"process"`` or ``"inprocess"``; defaults to the process
            pool when ``jobs > 1`` and in-process otherwise.
        cache: ``True`` for the default on-disk cache, ``False``/``None`` to
            disable, or a :class:`ResultCache` instance.
        cache_dir: Directory for the default cache (``.repro-cache/``).
    """

    def __init__(
        self,
        jobs: int | None = None,
        backend: str | None = None,
        cache: bool | ResultCache | None = False,
        cache_dir: str | os.PathLike = DEFAULT_CACHE_DIR,
    ) -> None:
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        if backend is None:
            backend = "process" if self.jobs > 1 else "inprocess"
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown executor backend {backend!r}; known: {', '.join(BACKENDS)}"
            )
        self.backend = backend
        if cache is True:
            self.cache: ResultCache | None = ResultCache(cache_dir)
        elif cache is False or cache is None:
            self.cache = None
        else:
            self.cache = cache
        self.stats = ExecStats()
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None

    # ------------------------------------------------------------- lifecycle
    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.jobs
            )
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ submission
    def run(self, spec: RunSpec) -> RunResult:
        """Execute (or fetch) a single spec."""
        return self.map([spec])[0]

    def map(self, specs) -> list[RunResult]:
        """Execute a batch of specs, preserving order.

        Cache hits are served without touching a scheduler; identical specs
        within the batch simulate once and fan the result out; the remainder
        runs on the configured backend.
        """
        specs = list(specs)
        self.stats.batches += 1
        results: list[RunResult | None] = [None] * len(specs)
        wires: dict[str, dict] = {}
        pending: dict[str, RunSpec] = {}
        pending_indices: dict[str, list[int]] = {}

        for index, spec in enumerate(specs):
            key = spec.content_hash()
            if key in wires or key in pending:
                if key in pending:
                    pending_indices[key].append(index)
                    self.stats.deduplicated += 1
                else:
                    results[index] = result_from_wire(wires[key])
                    self.stats.deduplicated += 1
                continue
            cached = self.cache.get(spec) if self.cache is not None else None
            if cached is not None:
                self.stats.cache_hits += 1
                wires[key] = result_to_wire(cached)
                results[index] = cached
                telemetry_runtime.collect(cached.telemetry)
                continue
            if self.cache is not None:
                self.stats.cache_misses += 1
            pending[key] = spec
            pending_indices[key] = [index]

        if pending:
            batch_started = time.perf_counter()
            executed = self._execute_batch(list(pending.values()))
            if telemetry_runtime.enabled():
                telemetry_runtime.collector().note_batch(
                    time.perf_counter() - batch_started
                )
            for (key, spec), (wire, seconds) in zip(pending.items(), executed):
                self.stats.runs_executed += 1
                self.stats.run_seconds += seconds
                if self.cache is not None:
                    self.cache.put(spec, result_from_wire(wire))
                wires[key] = wire
                for index in pending_indices[key]:
                    result = result_from_wire(wire)
                    if index == pending_indices[key][0]:
                        telemetry_runtime.collect(result.telemetry)
                    results[index] = result

        return results  # type: ignore[return-value]

    def _execute_batch(self, specs: list[RunSpec]) -> list[tuple[dict, float]]:
        if self.backend == "process" and len(specs) > 1 and self.jobs > 1:
            pool = self._ensure_pool()
            return list(pool.map(_pool_worker, [s.to_wire() for s in specs]))
        executed = []
        for spec in specs:
            started = time.perf_counter()
            result = execute_spec(spec)
            executed.append(
                (result_to_wire(result), time.perf_counter() - started)
            )
        return executed


# ---------------------------------------------------------- default executor
_default_executor: Executor | None = None


def _executor_from_env() -> Executor:
    jobs_text = os.environ.get("REPRO_JOBS", "")
    jobs = int(jobs_text) if jobs_text else 1
    backend = os.environ.get("REPRO_EXEC_BACKEND") or (
        "process" if jobs > 1 else "inprocess"
    )
    cache = os.environ.get("REPRO_CACHE", "") == "1"
    cache_dir = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
    return Executor(jobs=jobs, backend=backend, cache=cache, cache_dir=cache_dir)


def get_default_executor() -> Executor:
    """The process-wide executor experiments submit through.

    First use builds one from ``REPRO_JOBS`` / ``REPRO_EXEC_BACKEND`` /
    ``REPRO_CACHE`` / ``REPRO_CACHE_DIR``; absent those, a hermetic
    in-process executor with the cache disabled.
    """
    global _default_executor
    if _default_executor is None:
        _default_executor = _executor_from_env()
    return _default_executor


def set_default_executor(executor: Executor | None) -> Executor | None:
    """Install (or, with ``None``, reset) the default executor."""
    global _default_executor
    previous = _default_executor
    _default_executor = executor
    return previous


@contextlib.contextmanager
def using_executor(executor: Executor):
    """Scope *executor* as the default for a ``with`` block."""
    previous = set_default_executor(executor)
    try:
        yield executor
    finally:
        set_default_executor(previous)
