"""The executor: RunSpecs in, RunResults out, in parallel, cached, supervised.

:func:`execute_spec` is the single seam through which a spec becomes a
scheduler invocation — the fault drill, every experiment module, and the
process-pool worker all funnel through it. :class:`Executor` adds the
operational layer on top: batch submission with de-duplication, a process
pool (``--jobs N``) or in-process backend, the content-addressed result
cache, and per-run timing/cache observability.

Batches run under *supervision*: every spec gets a wall-clock deadline
(``RunSpec.timeout_s`` or the executor default), transient failures retry
with seeded-deterministic exponential backoff, a dead worker
(``BrokenProcessPool``) is contained — the pool respawns, survivors re-run,
and the culprit is identified by isolation rather than guessed — and a
circuit breaker degrades the executor to the in-process backend after
repeated pool failures, mirroring the degradation watchdog's D-VSync→VSync
fallback. Failed specs become structured
:class:`~repro.exec.supervisor.RunFailure` records: :meth:`Executor.map_outcome`
always returns partial results plus failures, and :meth:`Executor.map`
applies the ``fail-fast`` (raise :class:`~repro.errors.BatchExecutionError`)
or ``keep-going`` (return ``None`` holes) policy on top. Results checkpoint
into the cache as they complete, so a killed batch resumes where it died.

A module-level *default executor* carries the CLI's ``--jobs``/``--no-cache``
choices down to the experiment modules without threading a parameter through
every ``run()`` signature. Library and test use defaults to a hermetic
executor: in-process, no cache. ``REPRO_JOBS``, ``REPRO_EXEC_BACKEND``,
``REPRO_CACHE=1``, ``REPRO_TIMEOUT`` and ``REPRO_RETRIES`` configure the
default from the environment (the CI tier-1 job runs the suite under
``REPRO_JOBS=2 REPRO_EXEC_BACKEND=inprocess``); an ``atexit`` hook shuts its
pool down on interpreter exit so ``--jobs N`` runs never leak workers.
"""

from __future__ import annotations

import atexit
import collections
import concurrent.futures
import contextlib
import dataclasses
import os
import time
import traceback

from repro.errors import BatchExecutionError, BudgetExceededError, ConfigurationError
from repro.exec.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.exec.governor import (
    ResourceBudget,
    address_space_cap,
    budget_from_env,
    guard_for_spec,
)
from repro.exec.serialize import (
    error_envelope,
    ok_envelope,
    result_from_wire,
    result_to_wire,
)
from repro.exec.spec import RunSpec
from repro.exec.supervisor import (
    FAILURE_KINDS,
    NON_QUARANTINE_KINDS,
    BatchOutcome,
    CircuitBreaker,
    RetryPolicy,
    RunFailure,
)
from repro.pipeline.scheduler_base import RunResult
from repro.telemetry import runtime as telemetry_runtime

BACKENDS = ("inprocess", "process")

#: Batch failure policies: ``fail-fast`` raises a BatchExecutionError that
#: carries the failure records (siblings are still salvaged and cached);
#: ``keep-going`` returns partial results with ``None`` holes.
POLICIES = ("fail-fast", "keep-going")


def execute_spec(spec: RunSpec) -> RunResult:
    """Instantiate and run the scheduler a spec describes (no cache, no pool).

    This is the only place the execution layer turns a spec into a live
    scheduler; everything above it deals in specs and serialized results.
    Scheduler and fault imports happen at call time: this module sits below
    ``repro.experiments`` in the import graph, while the fault drill sits
    above it.
    """
    from repro.core.config import DVSyncConfig
    from repro.core.dvsync import DVSyncScheduler
    from repro.fastpath.engine import fastpath_attempt, resolve_requested_engine
    from repro.faults.injector import FaultInjector
    from repro.faults.schedule import FaultSchedule
    from repro.faults.watchdog import DegradationWatchdog
    from repro.vsync.scheduler import VSyncScheduler

    driver = None
    requested = resolve_requested_engine(spec)
    if requested != "event":
        result, driver, reason = fastpath_attempt(spec)
        if result is not None:
            return result
        if requested == "fastpath":
            raise ConfigurationError(
                f"engine='fastpath' cannot replay this spec: {reason}"
            )
    if driver is None:
        driver = spec.driver.build()
    # spec.telemetry / spec.verify force a session or checker even when this
    # process (a pool worker, say) never flipped the corresponding
    # process-wide switch; False defers to it.
    telemetry = True if spec.telemetry else None
    verify = True if spec.verify else None
    if spec.architecture == "vsync":
        scheduler = VSyncScheduler(
            driver,
            spec.device,
            buffer_count=spec.buffer_count,
            telemetry=telemetry,
            verify=verify,
        )
    elif spec.architecture == "dvsync":
        config = spec.dvsync or DVSyncConfig(buffer_count=spec.buffer_count or 4)
        scheduler = DVSyncScheduler(
            driver, spec.device, config=config, telemetry=telemetry, verify=verify
        )
    else:  # pragma: no cover - RunSpec.__post_init__ already rejects this
        raise ConfigurationError(f"unknown architecture {spec.architecture!r}")
    if spec.faults:
        schedule = FaultSchedule.parse(spec.faults)
        FaultInjector(schedule, seed=spec.fault_seed).attach(scheduler)
    if spec.watchdog:
        scheduler.attach_watchdog(DegradationWatchdog())
    # Resource governance: the guard (the spec's budget, or an installed
    # counting probe) trips BudgetExceededError at a deterministic event.
    # The fastpath branch above attaches its own guard inside replay_spec.
    guard = guard_for_spec(spec)
    if guard is not None:
        scheduler.sim.budget_guard = guard
    return scheduler.run(start_time=spec.start_time, horizon=spec.horizon)


def _oom_message(memory_mb: int | None) -> str:
    # Deliberately free of allocation sizes and addresses: oom records must
    # be byte-identical across backends and reruns.
    if memory_mb is not None:
        return f"run exhausted its {memory_mb} MB address-space budget"
    return "run exhausted available memory"


def _pool_worker(wire_spec: dict) -> dict:
    """Process-pool entry point: wire spec in, tagged envelope out.

    Exceptions never cross the pool boundary raw — a spec that raises comes
    back as an error envelope with its taxonomy kind, so the supervisor can
    classify and retry without the pool protocol ever seeing an unpicklable
    exception. ``BaseException`` (SIGKILL, interpreter death) still breaks
    the pool; that path is the supervisor's crash-containment job.

    A spec budget's ``memory_mb`` is applied here as ``RLIMIT_AS`` for the
    duration of the run (restored afterwards — workers are reused), turning
    a runaway allocation into a clean ``MemoryError`` → kind ``oom`` instead
    of an OS OOM-kill that would break the whole pool. Budget trips
    (``BudgetExceededError``) and ooms carry no traceback: their envelopes
    are deterministic functions of spec + budget, byte-identical across
    backends and engines.
    """
    started = time.perf_counter()
    memory_mb = None
    try:
        spec = RunSpec.from_wire(wire_spec)
        if spec.budget is not None:
            memory_mb = spec.budget.memory_mb
        with address_space_cap(memory_mb):
            result = execute_spec(spec)
            wire = result_to_wire(result)
        return ok_envelope(wire, time.perf_counter() - started)
    except BudgetExceededError as exc:
        return error_envelope("budget", str(exc), None)
    except MemoryError:
        return error_envelope("oom", _oom_message(memory_mb), None)
    except ConfigurationError as exc:
        return error_envelope("config", str(exc), traceback.format_exc())
    except Exception as exc:
        return error_envelope(
            "crash", f"{type(exc).__name__}: {exc}", traceback.format_exc()
        )


@dataclasses.dataclass
class ExecStats:
    """Cumulative executor observability counters."""

    runs_executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    deduplicated: int = 0
    batches: int = 0
    run_seconds: float = 0.0
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    pool_respawns: int = 0
    failures: int = 0
    quarantined: int = 0
    cache_evictions: int = 0
    cache_write_errors: int = 0
    budget_trips: int = 0
    ooms: int = 0
    shed: int = 0
    admission_deferred: int = 0
    cache_gc_evictions: int = 0

    def snapshot(self) -> "ExecStats":
        return dataclasses.replace(self)

    def since(self, earlier: "ExecStats") -> "ExecStats":
        """Counter deltas accumulated after *earlier* was snapshotted."""
        return ExecStats(
            **{
                field.name: getattr(self, field.name) - getattr(earlier, field.name)
                for field in dataclasses.fields(self)
            }
        )

    @property
    def total_requests(self) -> int:
        return self.runs_executed + self.cache_hits + self.deduplicated

    @property
    def deduped(self) -> int:
        """Specs collapsed by content hash within a batch before execution.

        An alias of :attr:`deduplicated` — the name the study layer and
        ``--cache-stats`` report, counting every submission whose identical
        twin (same content hash, across any cells of any studies in the
        batch) already ran or was already queued in the same batch.
        """
        return self.deduplicated

    def describe(self) -> str:
        """One-line summary for reports and the CLI."""
        line = (
            f"{self.total_requests} runs: {self.runs_executed} simulated "
            f"({self.run_seconds:.2f}s), {self.cache_hits} cache hits, "
            f"{self.deduplicated} deduplicated"
        )
        if self.failures or self.retries or self.pool_respawns:
            line += (
                f"; supervision: {self.failures} failed, {self.retries} retries, "
                f"{self.timeouts} timeouts, {self.crashes} crashes, "
                f"{self.pool_respawns} pool respawns"
            )
        if (
            self.budget_trips
            or self.ooms
            or self.shed
            or self.admission_deferred
            or self.cache_gc_evictions
        ):
            line += (
                f"; governance: {self.budget_trips} budget trips, "
                f"{self.ooms} ooms, {self.shed} shed, "
                f"{self.admission_deferred} admission-deferred, "
                f"{self.cache_gc_evictions} cache GC evictions"
            )
        return line


class _Task:
    """Mutable per-spec supervision state for one batch."""

    __slots__ = ("key", "spec", "wire", "timeout_s", "attempts", "suspect", "resume_at")

    def __init__(self, key: str, spec: RunSpec, timeout_s: float | None) -> None:
        self.key = key
        self.spec = spec
        self.wire = spec.to_wire()
        self.timeout_s = timeout_s
        self.attempts = 0
        self.suspect = False  # was in flight when a pool broke
        self.resume_at = 0.0  # monotonic instant the next attempt may start


class _WaveOutcome:
    """What one submission wave of the process backend produced."""

    __slots__ = ("retry", "suspects", "broke", "stuck")

    def __init__(self) -> None:
        self.retry: list[_Task] = []
        self.suspects: list[_Task] = []
        self.broke = False  # the pool died mid-wave
        self.stuck = False  # a timed-out worker is still occupying a slot


class Executor:
    """Maps batches of RunSpecs to RunResults, in parallel, cached, supervised.

    Args:
        jobs: Worker count for the process backend; defaults to
            ``os.cpu_count()``.
        backend: ``"process"`` or ``"inprocess"``; defaults to the process
            pool when ``jobs > 1`` and in-process otherwise.
        cache: ``True`` for the default on-disk cache, ``False``/``None`` to
            disable, or a :class:`ResultCache` instance.
        cache_dir: Directory for the default cache (``.repro-cache/``).
        timeout_s: Default per-run deadline in seconds (``None`` = no
            deadline); an individual ``RunSpec.timeout_s`` overrides it.
            The deadline covers execution only, on both backends: the
            process backend caps in-flight submissions at the pool width so
            a task's clock starts when it holds a worker slot (time queued
            behind batch siblings never counts), and enforces preemptively;
            the in-process backend enforces post-hoc (a single-threaded run
            cannot be preempted, but an overdue result is still discarded
            and recorded honestly).
        retries: Retry budget for transient (crash/timeout) failures — an
            int (extra attempts), a full :class:`RetryPolicy`, or ``None``
            for the default policy (1 retry, seeded jittered backoff).
        policy: ``"fail-fast"`` (default — :meth:`map` raises
            :class:`~repro.errors.BatchExecutionError` when anything failed,
            after salvaging and caching every healthy sibling) or
            ``"keep-going"`` (:meth:`map` returns partial results with
            ``None`` holes; failures accumulate on :attr:`last_failures`).
        breaker_threshold: Consecutive pool-level failures before the
            circuit breaker degrades this executor to in-process execution.
        budget: Default :class:`~repro.exec.governor.ResourceBudget` applied
            to every spec that does not carry its own; like ``timeout_s`` it
            is execution policy (excluded from content hashes). Its
            ``cache_quota_mb`` also sizes the default on-disk cache's LRU
            quota when ``cache=True``.
        admission: Submission high-water mark for the process backend — at
            most this many tasks enter a supervision wave at once, the rest
            wait under backpressure (counted in
            ``ExecStats.admission_deferred``). Defaults to
            ``max(4 * jobs, 16)``; unbounded fan-out is never the default.
        shed: Load-shedding policy flag read by the study layer: when set,
            cells a study marked ``sheddable`` are skipped instead of
            executed (see :func:`repro.study.core.execute_studies`).
    """

    def __init__(
        self,
        jobs: int | None = None,
        backend: str | None = None,
        cache: bool | ResultCache | None = False,
        cache_dir: str | os.PathLike = DEFAULT_CACHE_DIR,
        timeout_s: float | None = None,
        retries: int | RetryPolicy | None = None,
        policy: str = "fail-fast",
        breaker_threshold: int = 3,
        budget: ResourceBudget | None = None,
        admission: int | None = None,
        shed: bool = False,
    ) -> None:
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        if backend is None:
            backend = "process" if self.jobs > 1 else "inprocess"
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown executor backend {backend!r}; known: {', '.join(BACKENDS)}"
            )
        self.backend = backend
        self.budget = budget
        if admission is None:
            admission = max(4 * self.jobs, 16)
        elif admission < 1:
            raise ConfigurationError(f"admission must be >= 1, got {admission}")
        self.admission = admission
        self.shed = bool(shed)
        if cache is True:
            quota = budget.cache_quota_bytes if budget is not None else None
            self.cache: ResultCache | None = ResultCache(
                cache_dir, quota_bytes=quota
            )
        elif cache is False or cache is None:
            self.cache = None
        else:
            self.cache = cache
        if timeout_s is not None and not timeout_s > 0:
            raise ConfigurationError(f"timeout_s must be > 0, got {timeout_s!r}")
        self.timeout_s = timeout_s
        if retries is None:
            self.retry = RetryPolicy()
        elif isinstance(retries, RetryPolicy):
            self.retry = retries
        elif isinstance(retries, int) and not isinstance(retries, bool):
            self.retry = RetryPolicy(retries=retries)
        else:
            raise ConfigurationError(
                f"retries must be an int, a RetryPolicy, or None; got {retries!r}"
            )
        if policy not in POLICIES:
            raise ConfigurationError(
                f"unknown batch policy {policy!r}; known: {', '.join(POLICIES)}"
            )
        self.policy = policy
        self.breaker = CircuitBreaker(breaker_threshold)
        self.stats = ExecStats()
        #: RunFailure records from the most recent map/map_outcome call.
        self.last_failures: list[RunFailure] = []
        self._quarantine: dict[str, RunFailure] = {}
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None

    # ------------------------------------------------------------- lifecycle
    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.jobs
            )
        return self._pool

    def _respawn_pool(self, terminate: bool = False) -> None:
        """Discard the current pool (terminating its workers if asked)."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if terminate:
            # A timed-out or poisoned worker can occupy its slot arbitrarily
            # long; terminate() reclaims it so the respawned pool starts
            # clean. _processes is internal, hence the defensive getattr.
            processes = getattr(pool, "_processes", None) or {}
            for process in list(processes.values()):
                with contextlib.suppress(Exception):
                    process.terminate()
        with contextlib.suppress(Exception):
            pool.shutdown(wait=False, cancel_futures=True)
        self.stats.pool_respawns += 1
        self._note("pool_respawns")

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def clear_quarantine(self) -> int:
        """Forget quarantined specs so they may run again; returns the count."""
        count = len(self._quarantine)
        self._quarantine.clear()
        return count

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ submission
    def run(self, spec: RunSpec) -> RunResult:
        """Execute (or fetch) a single spec.

        Under ``keep-going`` a failed spec yields ``None``; under
        ``fail-fast`` (the default) it raises :class:`BatchExecutionError`.
        """
        return self.map([spec])[0]

    def map(self, specs) -> list[RunResult]:
        """Execute a batch of specs, preserving order, applying the policy.

        Healthy siblings of a failed spec are always salvaged (and cached);
        the policy only controls how failures surface — as a raised
        :class:`~repro.errors.BatchExecutionError` carrying the records
        (``fail-fast``) or as ``None`` holes in the returned list
        (``keep-going``).
        """
        outcome = self.map_outcome(specs)
        if outcome.failures and self.policy == "fail-fast":
            outcome.raise_for_failures()
        return outcome.results

    def map_outcome(self, specs) -> BatchOutcome:
        """Supervised batch execution; never raises for per-spec failures.

        Cache hits are served without touching a scheduler; identical specs
        within the batch simulate once and fan the result out; the remainder
        runs supervised on the configured backend. Each fresh result is
        checkpointed into the cache the moment it completes, so an
        interrupted batch resumes from where it died.
        """
        specs = list(specs)
        self.stats.batches += 1
        results: list[RunResult | None] = [None] * len(specs)
        wires: dict[str, dict] = {}
        failures_by_key: dict[str, RunFailure] = {}
        key_order: list[str] = []
        key_indices: dict[str, list[int]] = {}
        collected: set[str] = set()
        tasks: list[_Task] = []

        for index, spec in enumerate(specs):
            key = spec.content_hash()
            if key in key_indices:
                key_indices[key].append(index)
                self.stats.deduplicated += 1
                continue
            key_indices[key] = [index]
            key_order.append(key)
            quarantined = self._quarantine.get(key)
            if quarantined is not None:
                failures_by_key[key] = quarantined
                continue
            cached = self._cache_get(spec)
            if cached is not None:
                self.stats.cache_hits += 1
                wires[key] = result_to_wire(cached)
                telemetry_runtime.collect(cached.telemetry)
                collected.add(key)
                continue
            if self.cache is not None:
                self.stats.cache_misses += 1
            timeout_s = spec.timeout_s if spec.timeout_s is not None else self.timeout_s
            if spec.budget is None and self.budget is not None:
                # The executor default budget rides the wire like a spec's
                # own; budget is excluded from content_hash, so the key
                # computed above still addresses the result.
                spec = dataclasses.replace(spec, budget=self.budget)
            tasks.append(_Task(key, spec, timeout_s))

        if tasks:
            batch_started = time.perf_counter()

            def on_success(task: _Task, wire: dict, seconds: float) -> None:
                self.stats.runs_executed += 1
                self.stats.run_seconds += seconds
                if self.cache is not None:
                    before_gc = self.cache.stats.quota_evictions
                    try:
                        # Checkpoint immediately: a later crash in this batch
                        # (or of this process) never re-simulates this spec.
                        self.cache.put(task.spec, result_from_wire(wire))
                    except OSError:
                        # A full disk or permission flip must not abort the
                        # batch mid-wave: the result stands, merely uncached.
                        self.stats.cache_write_errors += 1
                        self._note("cache_write_errors")
                    evicted = self.cache.stats.quota_evictions - before_gc
                    if evicted:
                        self.stats.cache_gc_evictions += evicted
                        self._note_governor("cache_gc_evictions", evicted)
                wires[task.key] = wire

            failures_by_key.update(self._execute_batch(tasks, on_success))
            if telemetry_runtime.enabled():
                telemetry_runtime.collector().note_batch(
                    time.perf_counter() - batch_started
                )

        index_failures: dict[int, RunFailure] = {}
        failures: list[RunFailure] = []
        for key in key_order:
            indices = key_indices[key]
            failure = failures_by_key.get(key)
            if failure is not None:
                failures.append(failure)
                for index in indices:
                    index_failures[index] = failure
                continue
            wire = wires.get(key)
            if wire is None:  # pragma: no cover - every key resolves one way
                continue
            for position, index in enumerate(indices):
                result = result_from_wire(wire)
                if position == 0 and key not in collected:
                    telemetry_runtime.collect(result.telemetry)
                results[index] = result

        self.last_failures = failures
        return BatchOutcome(
            results=results, failures=failures, index_failures=index_failures
        )

    # ----------------------------------------------------------- supervision
    def _cache_get(self, spec: RunSpec) -> RunResult | None:
        if self.cache is None:
            return None
        before = self.cache.stats.evictions
        result = self.cache.get(spec)
        evicted = self.cache.stats.evictions - before
        if evicted:
            self.stats.cache_evictions += evicted
            self._note("cache_evictions", evicted)
        return result

    def _note(self, name: str, amount: float = 1.0) -> None:
        if telemetry_runtime.enabled():
            telemetry_runtime.note_exec(name, amount)

    def _note_governor(self, name: str, amount: float = 1.0) -> None:
        if telemetry_runtime.enabled():
            telemetry_runtime.note_governor(name, amount)

    def _execute_batch(self, tasks, on_success) -> dict[str, RunFailure]:
        failures: dict[str, RunFailure] = {}
        if self.backend == "process" and self.jobs > 1 and not self.breaker.tripped:
            self._process_supervised(tasks, failures, on_success)
        else:
            self._inprocess_supervised(tasks, failures, on_success)
        return failures

    def _settle_failure_or_retry(
        self,
        task: _Task,
        kind: str,
        message: str,
        traceback_text: str | None,
        failures: dict[str, RunFailure],
        allow_retry: bool = True,
    ) -> bool:
        """Record a failed attempt; True schedules a retry, False settles it.

        ``allow_retry=False`` forces the failure to settle into a record
        even when the task's retry budget is not exhausted (the breaker-trip
        path: there is no pool left to retry on, and dropping the task would
        lose it without a result *or* a failure).
        """
        if kind == "timeout":
            self.stats.timeouts += 1
            self._note("timeouts")
        elif kind == "crash":
            self.stats.crashes += 1
            self._note("crashes")
        elif kind == "budget":
            self.stats.budget_trips += 1
            self._note_governor("budget_trips")
        elif kind == "oom":
            self.stats.ooms += 1
            self._note_governor("ooms")
        max_attempts = self.retry.max_attempts
        if kind == "oom":
            # oom retries once, without cap escalation: the first failure may
            # be a reused worker's fragmented address space, but a second
            # identical one under the same cap is the spec's own appetite.
            max_attempts = min(max_attempts, 2)
        if (
            allow_retry
            and self.retry.retryable(kind)
            and task.attempts < max_attempts
        ):
            self.stats.retries += 1
            self._note("retries")
            task.resume_at = time.monotonic() + self.retry.delay_s(
                task.key, task.attempts
            )
            return True
        failure = RunFailure(
            spec_hash=task.key,
            description=task.spec.describe(),
            kind=kind,
            attempts=max(1, task.attempts),
            message=message,
            traceback=traceback_text,
        )
        failures[task.key] = failure
        self.stats.failures += 1
        self._note("failures")
        # Policy-knob failures (timeout/budget/oom) never quarantine: the
        # quarantine key (content_hash) is deliberately blind to timeout_s
        # and budget, so a failure caused by an allowance must not outlive
        # the allowance that produced it — the same spec resubmitted under a
        # larger deadline, event budget, or memory cap deserves a fresh run.
        # The spec-deterministic kinds (crash/config/cache-corrupt) do
        # quarantine.
        if kind not in NON_QUARANTINE_KINDS and task.key not in self._quarantine:
            self._quarantine[task.key] = failure
            self.stats.quarantined += 1
            self._note("quarantined")
        return False

    def _settle_envelope(self, task, envelope, failures, on_success) -> bool:
        """Classify one completed attempt; True means a retry is scheduled."""
        task.attempts += 1
        traceback_text = None
        if isinstance(envelope, dict) and envelope.get("ok") is True:
            try:
                on_success(task, envelope["result"], envelope["seconds"])
                return False
            except (KeyError, TypeError, ValueError) as exc:
                kind = "cache-corrupt"
                message = f"result wire form rejected: {exc}"
        elif isinstance(envelope, dict) and envelope.get("ok") is False:
            kind = envelope.get("kind", "crash")
            if kind not in FAILURE_KINDS:
                kind = "crash"
            message = envelope.get("message", "worker reported an error")
            traceback_text = envelope.get("traceback")
        else:
            kind = "cache-corrupt"
            message = f"malformed worker envelope: {envelope!r}"
        return self._settle_failure_or_retry(
            task, kind, message, traceback_text, failures
        )

    @staticmethod
    def _sleep_until_resume(task: _Task) -> None:
        delay = task.resume_at - time.monotonic()
        if delay > 0:
            time.sleep(delay)

    @staticmethod
    def _timeout_message(task: _Task) -> str:
        # Deliberately free of measured wall times: failure records must be
        # byte-identical across reruns with the same retry seed.
        return f"run exceeded its {task.timeout_s:g}s deadline"

    # ----------------------------------------------- process-backend engine
    def _process_supervised(self, tasks, failures, on_success) -> None:
        pending: list[_Task] = list(tasks)
        suspects: collections.deque[_Task] = collections.deque()
        while pending or suspects:
            if self.breaker.tripped:
                # Degraded mode (the §4.5 fallback, applied to the harness):
                # stop respawning pools. Unexonerated crash suspects are
                # quarantined — re-running a potential worker-killer
                # in-process would take the whole harness down with it.
                for task in suspects:
                    task.attempts = max(1, task.attempts)
                    # allow_retry=False: there is no pool left to retry on,
                    # and a scheduled-then-dropped retry would lose the spec
                    # without a result or a failure record.
                    self._settle_failure_or_retry(
                        task,
                        "crash",
                        "quarantined by the circuit breaker: the worker pool "
                        "broke repeatedly with this spec in flight",
                        None,
                        failures,
                        allow_retry=False,
                    )
                suspects.clear()
                if pending:
                    self._inprocess_supervised(pending, failures, on_success)
                return
            if pending:
                # Bounded admission: at most `admission` tasks enter a wave;
                # the remainder waits under backpressure instead of fanning
                # out an unbounded future set (and, on a broken pool, an
                # unbounded suspect set).
                wave, pending = pending[: self.admission], pending[self.admission:]
                if pending:
                    self.stats.admission_deferred += len(pending)
                    self._note_governor("admission_deferred", len(pending))
            else:
                # Crash suspects run one per pool so a broken pool
                # attributes the crash to exactly one spec.
                wave = [suspects.popleft()]
            outcome = self._run_process_wave(wave, failures, on_success)
            if outcome.broke:
                self.breaker.record_failure()
            else:
                self.breaker.record_success()
            if outcome.broke or outcome.stuck:
                self._respawn_pool(terminate=True)
            if outcome.broke and len(outcome.suspects) == 1:
                # Exactly one spec was in flight when the pool died — that
                # is the culprit; charge the crash to it.
                task = outcome.suspects[0]
                task.suspect = True
                task.attempts += 1
                if self._settle_failure_or_retry(
                    task,
                    "crash",
                    "worker process died while executing this spec "
                    "(killed or crashed outside Python)",
                    None,
                    failures,
                ):
                    suspects.append(task)
            else:
                for task in outcome.suspects:
                    task.suspect = True
                    suspects.append(task)
            for task in outcome.retry:
                if task.suspect:
                    suspects.append(task)
                else:
                    pending.append(task)

    def _run_process_wave(self, wave, failures, on_success) -> _WaveOutcome:
        outcome = _WaveOutcome()
        futures: dict[concurrent.futures.Future, _Task] = {}
        deadlines: dict[concurrent.futures.Future, float] = {}
        pool = self._ensure_pool()
        queue: collections.deque[_Task] = collections.deque(wave)
        not_done: set[concurrent.futures.Future] = set()

        def dispatch() -> None:
            # In-flight submissions are capped at the pool width, so a
            # submitted task holds a worker slot immediately: its deadline
            # clock starts when it can actually execute, never while queued
            # behind wave siblings — the same semantics as the in-process
            # backend, which measures only execution time.
            while queue and len(not_done) < self.jobs:
                if outcome.broke or outcome.stuck:
                    # The pool needs a respawn; hand unsubmitted tasks back
                    # untouched (no attempt charged) rather than queue them
                    # behind a dead or occupied slot.
                    outcome.retry.append(queue.popleft())
                    continue
                task = queue.popleft()
                self._sleep_until_resume(task)
                try:
                    future = pool.submit(_pool_worker, task.wire)
                except Exception:
                    # The pool broke before this task ever ran: it is
                    # innocent — requeue it and let the in-flight futures
                    # identify the culprit.
                    outcome.broke = True
                    outcome.retry.append(task)
                    continue
                futures[future] = task
                not_done.add(future)
                if task.timeout_s is not None:
                    deadlines[future] = time.monotonic() + task.timeout_s

        dispatch()
        while not_done:
            wait_s = None
            active = [deadlines[f] for f in not_done if f in deadlines]
            if active:
                wait_s = max(0.0, min(active) - time.monotonic())
            done, not_done = concurrent.futures.wait(
                not_done, timeout=wait_s,
                return_when=concurrent.futures.FIRST_COMPLETED,
            )
            for future in done:
                task = futures[future]
                try:
                    envelope = future.result()
                except concurrent.futures.BrokenExecutor:
                    outcome.broke = True
                    outcome.suspects.append(task)
                    continue
                except concurrent.futures.CancelledError:
                    outcome.broke = True
                    outcome.suspects.append(task)
                    continue
                if self._settle_envelope(task, envelope, failures, on_success):
                    outcome.retry.append(task)
            now = time.monotonic()
            for future in [
                f for f in not_done if f in deadlines and deadlines[f] <= now
            ]:
                not_done.discard(future)
                task = futures[future]
                if not future.cancel():
                    # The worker is mid-run and cannot be preempted; the
                    # caller terminates and respawns the pool to reclaim
                    # the slot.
                    outcome.stuck = True
                task.attempts += 1
                if self._settle_failure_or_retry(
                    task, "timeout", self._timeout_message(task), None, failures
                ):
                    outcome.retry.append(task)
            dispatch()
        return outcome

    # --------------------------------------------- in-process backend engine
    def _inprocess_supervised(self, tasks, failures, on_success) -> None:
        for task in tasks:
            while True:
                self._sleep_until_resume(task)
                started = time.perf_counter()
                envelope = None
                try:
                    result = execute_spec(task.spec)
                    seconds = time.perf_counter() - started
                    envelope = ok_envelope(result_to_wire(result), seconds)
                except BudgetExceededError as exc:
                    # Same tracebackless envelope as the pool worker: a
                    # budget trip's wire form is byte-identical across
                    # backends. (memory_mb is NOT applied in-process — an
                    # RLIMIT_AS clamp here would endanger the host process —
                    # but a genuine MemoryError still maps to the taxonomy.)
                    envelope = error_envelope("budget", str(exc), None)
                except MemoryError:
                    budget = task.spec.budget
                    envelope = error_envelope(
                        "oom",
                        _oom_message(budget.memory_mb if budget else None),
                        None,
                    )
                except ConfigurationError as exc:
                    envelope = error_envelope(
                        "config", str(exc), traceback.format_exc()
                    )
                except Exception as exc:
                    envelope = error_envelope(
                        "crash",
                        f"{type(exc).__name__}: {exc}",
                        traceback.format_exc(),
                    )
                if (
                    envelope.get("ok")
                    and task.timeout_s is not None
                    and envelope["seconds"] > task.timeout_s
                ):
                    # In-process runs cannot be preempted; enforce the
                    # deadline post-hoc and discard the overdue result so
                    # both backends report the same taxonomy.
                    task.attempts += 1
                    if self._settle_failure_or_retry(
                        task, "timeout", self._timeout_message(task), None, failures
                    ):
                        continue
                    break
                if not self._settle_envelope(task, envelope, failures, on_success):
                    break


# ---------------------------------------------------------- default executor
_default_executor: Executor | None = None


def _env_int(name: str, default: int | None, minimum: int) -> int | None:
    """Parse an integer environment knob, failing loudly at construction."""
    text = os.environ.get(name, "")
    if not text:
        return default
    try:
        value = int(text)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be an integer, got {text!r}"
        ) from None
    if value < minimum:
        raise ConfigurationError(f"{name} must be >= {minimum}, got {value}")
    return value


def _env_float(name: str, default: float | None) -> float | None:
    text = os.environ.get(name, "")
    if not text:
        return default
    try:
        value = float(text)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be a number of seconds, got {text!r}"
        ) from None
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0 seconds, got {value}")
    return value


def _executor_from_env() -> Executor:
    jobs = _env_int("REPRO_JOBS", 1, minimum=1)
    backend = os.environ.get("REPRO_EXEC_BACKEND") or (
        "process" if jobs > 1 else "inprocess"
    )
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"REPRO_EXEC_BACKEND must be one of {', '.join(BACKENDS)}; "
            f"got {backend!r}"
        )
    cache = os.environ.get("REPRO_CACHE", "") == "1"
    cache_dir = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
    timeout_s = _env_float("REPRO_TIMEOUT", None)
    retries = _env_int("REPRO_RETRIES", None, minimum=0)
    return Executor(
        jobs=jobs,
        backend=backend,
        cache=cache,
        cache_dir=cache_dir,
        timeout_s=timeout_s,
        retries=retries,
        budget=budget_from_env(),
    )


def get_default_executor() -> Executor:
    """The process-wide executor experiments submit through.

    First use builds one from ``REPRO_JOBS`` / ``REPRO_EXEC_BACKEND`` /
    ``REPRO_CACHE`` / ``REPRO_CACHE_DIR`` / ``REPRO_TIMEOUT`` /
    ``REPRO_RETRIES`` / ``REPRO_MAX_EVENTS`` / ``REPRO_MEMORY_MB`` /
    ``REPRO_CACHE_QUOTA_MB``; absent those, a hermetic in-process executor
    with the cache disabled. Malformed values raise
    :class:`~repro.errors.ConfigurationError` here, at construction time.
    """
    global _default_executor
    if _default_executor is None:
        _default_executor = _executor_from_env()
    return _default_executor


def set_default_executor(executor: Executor | None) -> Executor | None:
    """Install (or, with ``None``, reset) the default executor."""
    global _default_executor
    previous = _default_executor
    _default_executor = executor
    return previous


def _close_default_executor() -> None:
    """atexit hook: never leak pool workers past interpreter exit."""
    if _default_executor is not None:
        _default_executor.close()


atexit.register(_close_default_executor)


@contextlib.contextmanager
def using_executor(executor: Executor):
    """Scope *executor* as the default for a ``with`` block."""
    previous = set_default_executor(executor)
    try:
        yield executor
    finally:
        set_default_executor(previous)
