"""Content-addressed on-disk cache for run results.

Cache keys combine the RunSpec's content hash with a *code-version salt* —
a digest over every ``repro`` source file — so editing any module invalidates
prior entries instead of serving results computed by different code. The
salt can be pinned via ``REPRO_CACHE_SALT`` (e.g. in CI, to share a cache
across identical checkouts without re-hashing).

Entries are JSON files written atomically (temp file + rename), fanned out
by key prefix to keep directories small. A corrupt or unreadable entry is
treated as a miss and removed.

An optional disk quota (``quota_bytes``, wired from
``ResourceBudget.cache_quota_mb`` / ``REPRO_CACHE_QUOTA_MB`` /
``repro --cache-quota-mb``) turns the store into an LRU cache: ``get``
freshens an entry's mtime, and every ``put`` garbage-collects
least-recently-used entries until the cache fits — the entry just written is
protected, so the cache never exceeds the quota after a store settles.
``gc``/``scrub`` are also exposed directly (``repro cache gc|scrub|stats``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import tempfile

from repro.exec.serialize import RESULT_SCHEMA_VERSION, result_from_wire, result_to_wire
from repro.exec.spec import RunSpec
from repro.pipeline.scheduler_base import RunResult

#: Default cache directory, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

_code_salt: str | None = None


def code_salt(refresh: bool = False) -> str:
    """Digest of the ``repro`` package sources (12 hex chars).

    Any change to any ``.py`` file under the package changes the salt and
    therefore every cache key; determinism of a cached result only holds for
    the exact code that produced it.
    """
    global _code_salt
    if _code_salt is not None and not refresh:
        return _code_salt
    pinned = os.environ.get("REPRO_CACHE_SALT")
    if pinned:
        _code_salt = pinned
        return _code_salt
    package_root = pathlib.Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    digest.update(f"schema={RESULT_SCHEMA_VERSION}".encode())
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    _code_salt = digest.hexdigest()[:12]
    return _code_salt


@dataclasses.dataclass
class CacheStats:
    """Counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    quota_evictions: int = 0
    scrubbed: int = 0


class ResultCache:
    """Content-addressed store mapping RunSpecs to serialized results.

    Args:
        root: Cache directory.
        salt: Code-version salt override (defaults to :func:`code_salt`).
        quota_bytes: Optional disk quota; when set, every :meth:`put` LRU
            garbage-collects back under it (see :meth:`gc`).
    """

    def __init__(
        self,
        root: str | os.PathLike = DEFAULT_CACHE_DIR,
        salt: str | None = None,
        quota_bytes: int | None = None,
    ) -> None:
        self.root = pathlib.Path(root)
        self.salt = salt if salt is not None else code_salt()
        if quota_bytes is not None and quota_bytes < 1:
            raise ValueError(f"quota_bytes must be >= 1, got {quota_bytes}")
        self.quota_bytes = quota_bytes
        self.stats = CacheStats()

    def key(self, spec: RunSpec) -> str:
        """Cache key: spec content hash + code-version salt."""
        return f"{spec.content_hash()}-{self.salt}"

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, spec: RunSpec) -> RunResult | None:
        """Deserialized result for *spec*, or ``None`` on a miss."""
        path = self._path(self.key(spec))
        try:
            wire = json.loads(path.read_text())
            result = result_from_wire(wire)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (ValueError, KeyError, TypeError, OSError):
            # Corrupt, truncated, or stale-layout entry: evict it and treat
            # as a miss — the executor re-runs and re-stores, self-healing.
            path.unlink(missing_ok=True)
            self.stats.misses += 1
            self.stats.evictions += 1
            return None
        # LRU freshness: a hit makes the entry the youngest, so the quota GC
        # (which evicts by mtime) never reclaims a live entry before a stale
        # one. Best-effort — a read-only cache still serves hits.
        try:
            os.utime(path)
        except OSError:
            pass
        self.stats.hits += 1
        return result

    def put(self, spec: RunSpec, result: RunResult) -> None:
        """Store *result* under *spec*'s content address (atomic write)."""
        path = self._path(self.key(spec))
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(result_to_wire(result), separators=(",", ":"))
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
                handle.flush()
                # Durability matters here: checkpointed batch results must
                # survive the very crashes the supervisor is built to absorb.
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        if self.quota_bytes is not None:
            self.gc(protect={path})

    # ------------------------------------------------------------ inspection
    def entries(self) -> list[pathlib.Path]:
        """All entry files currently in the cache."""
        if not self.root.exists():
            return []
        return sorted(self.root.glob("*/*.json"))

    def total_bytes(self) -> int:
        """Total on-disk size of all entries."""
        return sum(path.stat().st_size for path in self.entries())

    # ------------------------------------------------------------ governance
    def gc(
        self,
        quota_bytes: int | None = None,
        protect: set[pathlib.Path] | None = None,
    ) -> int:
        """LRU garbage collection: evict oldest entries until under quota.

        Entries are ranked by (mtime, path) — ``get`` freshens mtimes, so
        recently-served entries outlive stale ones, and the path tiebreak
        keeps eviction order deterministic on filesystems with coarse
        timestamps. *protect* entries (the one a ``put`` just wrote) are
        only reclaimed as a last resort, when they alone exceed the quota —
        the cache never finishes a ``put`` over its quota. Returns how many
        entries were removed.
        """
        quota = quota_bytes if quota_bytes is not None else self.quota_bytes
        if quota is None:
            return 0
        protect = protect or set()
        records: list[tuple[int, str, pathlib.Path, int]] = []
        total = 0
        for path in self.entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            records.append((stat.st_mtime_ns, str(path), path, stat.st_size))
            total += stat.st_size
        removed = 0
        records.sort()
        for last_resort in (False, True):
            for _, _, path, size in records:
                if total <= quota:
                    break
                if (path in protect) is not last_resort:
                    continue
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= size
                removed += 1
            if total <= quota:
                break
        self.stats.quota_evictions += removed
        return removed

    def scrub(self) -> int:
        """Validate every entry; unlink those that cannot deserialize.

        The ``get`` path already self-heals corrupt entries lazily; ``scrub``
        does it eagerly for the whole store (``repro cache scrub``), so a
        damaged cache stops wasting quota on bytes that can only ever miss.
        Returns how many entries were removed.
        """
        removed = 0
        for path in self.entries():
            try:
                result_from_wire(json.loads(path.read_text()))
            except (ValueError, KeyError, TypeError, OSError):
                path.unlink(missing_ok=True)
                removed += 1
        self.stats.scrubbed += removed
        return removed

    def describe(self) -> str:
        """Human-readable cache summary for the CLI."""
        entries = self.entries()
        size_mb = sum(p.stat().st_size for p in entries) / 1e6
        quota = (
            f" of {self.quota_bytes / 1e6:.1f} MB quota"
            if self.quota_bytes is not None
            else ""
        )
        return (
            f"cache {self.root}: {len(entries)} entries, {size_mb:.1f} MB{quota}, "
            f"salt {self.salt} (session: {self.stats.hits} hits, "
            f"{self.stats.misses} misses, {self.stats.stores} stores, "
            f"{self.stats.evictions} evictions, "
            f"{self.stats.quota_evictions} quota evictions, "
            f"{self.stats.scrubbed} scrubbed)"
        )

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            path.unlink(missing_ok=True)
            removed += 1
        return removed
