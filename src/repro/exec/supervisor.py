"""Supervision primitives for the executor: failure taxonomy, retry, breaker.

The executor's batch engine (``Executor._execute_batch``) needs four small,
independently testable pieces to turn a bare ``pool.map`` into a resilient
harness:

* :class:`RunFailure` — the structured, wire-serializable record of one
  spec's final failure (kind, attempt count, message, traceback), so batches
  can return *partial results plus failure records* instead of raising;
* :class:`RetryPolicy` — seeded-deterministic exponential backoff with
  jitter for transient (crash/timeout) failures: the same retry seed yields
  the same delay sequence, which keeps salvage runs byte-reproducible;
* :class:`CircuitBreaker` — after N *consecutive* process-pool failures the
  executor stops fighting the pool and degrades to the in-process backend,
  mirroring the degradation watchdog's D-VSync→VSync fallback (§4.5);
* :class:`BatchOutcome` — order-preserving partial results with per-index
  failure attribution, the return type of ``Executor.map_outcome``.

None of these import the executor (or anything heavy); the executor imports
them.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Mapping

from repro.errors import BatchExecutionError, ConfigurationError

#: The failure taxonomy. ``crash`` covers both a raising spec and a dead
#: worker (the message and traceback distinguish them); ``timeout`` is a
#: blown per-run deadline; ``config`` is a spec the library rejected
#: (:class:`~repro.errors.ConfigurationError` — never retried, the same spec
#: fails the same way every time); ``cache-corrupt`` is a result wire form
#: that could not be deserialized (a healed cache entry never surfaces here —
#: the cache evicts those as misses); ``budget`` is a deterministic
#: :class:`~repro.exec.governor.ResourceBudget` trip (same spec + same budget
#: fails at the identical simulator event on every host and both engines);
#: ``oom`` is a ``MemoryError`` under the budget's worker address-space cap.
FAILURE_KINDS = ("crash", "timeout", "config", "cache-corrupt", "budget", "oom")

#: Kinds worth retrying: transient by nature (a crashed worker or a blown
#: wall-clock deadline can succeed on a quieter machine, and an oom may be a
#: reused worker's fragmented address space — the executor grants it exactly
#: one retry, never a cap escalation), unlike ``config`` (deterministic
#: rejection), ``cache-corrupt`` (deterministic bad bytes), and ``budget``
#: (deterministic by design — retrying replays the identical trip).
RETRYABLE_KINDS = frozenset({"crash", "timeout", "oom"})

#: Kinds that never quarantine. The quarantine key is ``content_hash``, which
#: is deliberately blind to execution policy (``timeout_s``, ``budget``): a
#: failure caused by an allowance must not outlive the allowance that
#: produced it — the same spec resubmitted with a larger deadline, event
#: budget, or memory cap deserves a fresh run.
NON_QUARANTINE_KINDS = frozenset({"timeout", "budget", "oom"})


@dataclasses.dataclass(frozen=True)
class RunFailure:
    """Why one spec produced no result: the harness's structured answer.

    Attributes:
        spec_hash: ``RunSpec.content_hash()`` of the failed spec.
        description: ``RunSpec.describe()`` — human-readable, for reports.
        kind: One of :data:`FAILURE_KINDS`.
        attempts: How many times the spec was executed (>= 1).
        message: One-line cause. Deterministic — it never embeds measured
            wall times, so failure records are byte-stable across reruns.
        traceback: Formatted traceback when the failure was an exception,
            ``None`` for timeouts and dead workers.
    """

    spec_hash: str
    description: str
    kind: str
    attempts: int
    message: str
    traceback: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ConfigurationError(
                f"unknown failure kind {self.kind!r}; "
                f"known: {', '.join(FAILURE_KINDS)}"
            )
        if self.attempts < 1:
            raise ConfigurationError(
                f"a failure records at least one attempt, got {self.attempts}"
            )

    def to_wire(self) -> dict:
        return {
            "spec_hash": self.spec_hash,
            "description": self.description,
            "kind": self.kind,
            "attempts": self.attempts,
            "message": self.message,
            "traceback": self.traceback,
        }

    @classmethod
    def from_wire(cls, wire: Mapping[str, Any]) -> "RunFailure":
        return cls(
            spec_hash=wire["spec_hash"],
            description=wire["description"],
            kind=wire["kind"],
            attempts=wire["attempts"],
            message=wire["message"],
            traceback=wire.get("traceback"),
        )

    def describe(self) -> str:
        """One-line summary for logs and :class:`BatchExecutionError`."""
        return (
            f"{self.kind} after {self.attempts} attempt(s) "
            f"[{self.description}]: {self.message}"
        )


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Seeded-deterministic exponential backoff with jitter.

    ``delay_s(spec_hash, attempt)`` is a pure function of the policy seed,
    the spec's content hash, and the attempt number, so two runs of the same
    batch with the same seed sleep the same delays and retry in the same
    order — retries never make a salvage run irreproducible.

    Attributes:
        retries: Extra attempts after the first (0 disables retrying).
        base_delay_s: Backoff before the first retry.
        multiplier: Exponential growth factor per further retry.
        max_delay_s: Backoff ceiling.
        jitter: Symmetric jitter fraction (0.5 → delay × U[0.5, 1.5]),
            decorrelating a fleet of workers that failed together.
        seed: Root of the per-spec jitter streams.
    """

    retries: int = 1
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {self.retries}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"backoff multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be within [0, 1], got {self.jitter}"
            )

    @property
    def max_attempts(self) -> int:
        return self.retries + 1

    def retryable(self, kind: str) -> bool:
        """Whether a failure of *kind* is worth another attempt at all."""
        return self.retries > 0 and kind in RETRYABLE_KINDS

    def delay_s(self, spec_hash: str, attempt: int) -> float:
        """Deterministic backoff before retrying *attempt* + 1 of a spec."""
        base = min(
            self.max_delay_s, self.base_delay_s * self.multiplier ** (attempt - 1)
        )
        rng = random.Random(f"{self.seed}:{spec_hash}:{attempt}")
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


class CircuitBreaker:
    """Counts consecutive process-backend failures; trips at a threshold.

    A *failure* here is pool-level — a broken process pool, not an individual
    spec's exception. Once tripped, the executor stops respawning pools and
    degrades to the in-process backend for the remaining work (the harness
    analogue of the watchdog demoting D-VSync to classic VSync). Any
    successful pool wave resets the streak.
    """

    def __init__(self, threshold: int = 3) -> None:
        if threshold < 1:
            raise ConfigurationError(
                f"breaker threshold must be >= 1, got {threshold}"
            )
        self.threshold = threshold
        self.consecutive_failures = 0
        self.trips = 0

    @property
    def tripped(self) -> bool:
        return self.consecutive_failures >= self.threshold

    def record_failure(self) -> bool:
        """Note a pool-level failure; returns True when this one trips."""
        self.consecutive_failures += 1
        if self.consecutive_failures == self.threshold:
            self.trips += 1
            return True
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0

    def reset(self) -> None:
        self.consecutive_failures = 0


@dataclasses.dataclass
class BatchOutcome:
    """Partial results plus structured failures for one submitted batch.

    ``results`` is aligned with the submitted specs (``None`` where the spec
    failed); ``failures`` holds one :class:`RunFailure` per failed *unique*
    spec, ordered by first affected index; ``index_failures`` maps every
    failed index (including de-duplicated repeats) to its record.
    """

    results: list
    failures: list[RunFailure]
    index_failures: dict[int, RunFailure]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def salvaged(self) -> int:
        """How many submitted specs still produced a result."""
        return sum(1 for result in self.results if result is not None)

    def raise_for_failures(self) -> None:
        """Raise :class:`BatchExecutionError` if anything failed."""
        if self.failures:
            raise BatchExecutionError(self.failures, salvaged=self.salvaged)
