"""Generic driver builders referenced by :class:`~repro.exec.spec.DriverSpec`.

A builder is a module-level function taking only JSON-able keyword arguments
and returning a fresh, seeded :class:`ScenarioDriver`. Experiments with
bespoke drivers define their own builders next to the experiment (e.g.
``repro.experiments.fig10_patterns:build_pattern_driver``); the ones here
cover the common shapes every module shares.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

from repro.errors import ConfigurationError, WorkloadError
from repro.pipeline.driver import ScenarioDriver
from repro.units import ms
from repro.workloads.distributions import params_for_target_fdps
from repro.workloads.drivers import AnimationDriver
from repro.workloads.scenarios import Scenario

#: Misbehaviors :func:`chaos_driver` can stage (supervisor test harness).
CHAOS_MODES = ("ok", "raise", "config", "sleep", "kill")


def scenario_driver(run: int = 0, **fields) -> ScenarioDriver:
    """Build ``Scenario(**fields).build_driver(run)``.

    The target of :meth:`DriverSpec.from_scenario`; *fields* are exactly the
    :class:`Scenario` dataclass fields, all JSON primitives.
    """
    return Scenario(**fields).build_driver(run)


def burst_animation(
    name: str,
    target_fdps: float,
    refresh_hz: int = 60,
    duration_ms: float = 400.0,
    bursts: int = 1,
    burst_period_ms: float | None = 600.0,
) -> AnimationDriver:
    """A plain burst-train animation calibrated to a target VSync FDPS.

    The workhorse shape of the case studies (§6.7's map animation, the
    ablation sweeps): seeded by *name*, so distinct repetition names yield
    independent workload traces.
    """
    params = params_for_target_fdps(target_fdps, refresh_hz)
    return AnimationDriver(
        name,
        params,
        duration_ns=ms(duration_ms),
        bursts=bursts,
        burst_period_ns=ms(burst_period_ms) if burst_period_ms else None,
    )


def chaos_driver(
    name: str = "chaos",
    mode: str = "ok",
    delay_s: float = 0.0,
    target_fdps: float = 10.0,
    duration_ms: float = 50.0,
) -> AnimationDriver:
    """A driver that misbehaves on purpose — the supervisor's test subject.

    Modes: ``ok`` builds a normal short animation; ``raise`` throws a
    :class:`~repro.errors.WorkloadError` (a deterministic in-spec crash);
    ``config`` throws a :class:`~repro.errors.ConfigurationError` (the
    never-retried kind); ``sleep`` stalls for *delay_s* before building,
    simulating a run that blows its deadline; ``kill`` SIGKILLs the worker
    process mid-build — but only inside a pool worker (it refuses to kill a
    process with no parent, so a mistargeted spec cannot take down the
    harness itself).

    Build-time misbehavior is the honest analogue of run-time misbehavior
    here: :func:`~repro.exec.executor.execute_spec` runs builder and
    scheduler under one supervision envelope, so where the fault fires is
    indistinguishable to the supervisor.
    """
    if mode not in CHAOS_MODES:
        raise ConfigurationError(
            f"unknown chaos mode {mode!r}; known: {', '.join(CHAOS_MODES)}"
        )
    if mode == "raise":
        raise WorkloadError(f"chaos driver {name!r} raised on request")
    if mode == "config":
        raise ConfigurationError(f"chaos driver {name!r} rejected on request")
    if mode == "sleep" and delay_s > 0:
        time.sleep(delay_s)
    if mode == "kill":
        if multiprocessing.parent_process() is None:
            raise WorkloadError(
                f"chaos driver {name!r} refuses kill mode outside a pool worker"
            )
        os.kill(os.getpid(), signal.SIGKILL)
    return burst_animation(name, target_fdps=target_fdps, duration_ms=duration_ms)


def memory_hog(
    name: str = "hog",
    allocate_mb: int = 1024,
    chunk_mb: int = 16,
    target_fdps: float = 10.0,
    duration_ms: float = 50.0,
) -> AnimationDriver:
    """A driver that eats *allocate_mb* of address space before building.

    The governor's OOM test subject: under a budget's ``memory_mb`` cap
    (``RLIMIT_AS`` in a pool worker) the allocation dies with a clean
    ``MemoryError`` → failure kind ``oom``. Like :func:`chaos_driver`'s kill
    mode it refuses to run outside a pool worker — an uncapped in-process
    allocation would eat the harness's own memory.

    Allocation is touched page by page (``bytearray``), so address-space
    accounting cannot be cheated by lazy zero pages.
    """
    if multiprocessing.parent_process() is None:
        raise WorkloadError(
            f"memory hog {name!r} refuses to allocate outside a pool worker"
        )
    hoard = []
    remaining = allocate_mb
    while remaining > 0:
        step = min(chunk_mb, remaining)
        hoard.append(bytearray(step * 1024 * 1024))
        remaining -= step
    del hoard
    return burst_animation(name, target_fdps=target_fdps, duration_ms=duration_ms)


def event_storm(
    name: str = "storm",
    target_fdps: float = 120.0,
    refresh_hz: int = 120,
    duration_ms: float = 5000.0,
    bursts: int = 1,
) -> AnimationDriver:
    """A long, dense animation that generates events until a budget trips.

    The governor's budget test subject: a multi-second sustained burst at a
    high refresh rate produces thousands of simulator events — far beyond
    any small ``max_events``/``max_sim_ns`` budget — at a perfectly
    deterministic event stream, so the trip point is byte-stable across
    hosts, backends, and engines.
    """
    return burst_animation(
        name,
        target_fdps=target_fdps,
        refresh_hz=refresh_hz,
        duration_ms=duration_ms,
        bursts=bursts,
        burst_period_ms=duration_ms * 1.5 if bursts > 1 else None,
    )
