"""Generic driver builders referenced by :class:`~repro.exec.spec.DriverSpec`.

A builder is a module-level function taking only JSON-able keyword arguments
and returning a fresh, seeded :class:`ScenarioDriver`. Experiments with
bespoke drivers define their own builders next to the experiment (e.g.
``repro.experiments.fig10_patterns:build_pattern_driver``); the ones here
cover the common shapes every module shares.
"""

from __future__ import annotations

from repro.pipeline.driver import ScenarioDriver
from repro.units import ms
from repro.workloads.distributions import params_for_target_fdps
from repro.workloads.drivers import AnimationDriver
from repro.workloads.scenarios import Scenario


def scenario_driver(run: int = 0, **fields) -> ScenarioDriver:
    """Build ``Scenario(**fields).build_driver(run)``.

    The target of :meth:`DriverSpec.from_scenario`; *fields* are exactly the
    :class:`Scenario` dataclass fields, all JSON primitives.
    """
    return Scenario(**fields).build_driver(run)


def burst_animation(
    name: str,
    target_fdps: float,
    refresh_hz: int = 60,
    duration_ms: float = 400.0,
    bursts: int = 1,
    burst_period_ms: float | None = 600.0,
) -> AnimationDriver:
    """A plain burst-train animation calibrated to a target VSync FDPS.

    The workhorse shape of the case studies (§6.7's map animation, the
    ablation sweeps): seeded by *name*, so distinct repetition names yield
    independent workload traces.
    """
    params = params_for_target_fdps(target_fdps, refresh_hz)
    return AnimationDriver(
        name,
        params,
        duration_ns=ms(duration_ms),
        bursts=bursts,
        burst_period_ns=ms(burst_period_ms) if burst_period_ms else None,
    )
