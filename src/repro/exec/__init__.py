"""Declarative execution layer: RunSpecs, the executor, and the result cache.

A :class:`RunSpec` is a frozen, serializable, content-hashable description of
one simulation run — scenario/driver construction, device, architecture,
buffer configuration, fault schedule, seeds, and sim-length knobs. Because
every run is a deterministic function of its spec (the event kernel and all
workload generators are seeded), the spec's content hash is a valid cache
key.

The :class:`Executor` maps batches of RunSpecs to ``RunResult``s through an
in-process backend (tests, debugging) or a process pool (``--jobs N``), with
a content-addressed on-disk cache under ``.repro-cache/`` keyed by RunSpec
hash + code-version salt. Experiments *describe* their runs as specs and
submit them in batches, so independent runs fan out across cores and repeat
invocations are served from the cache without touching a scheduler.

Batches run *supervised*: per-run deadlines, seeded-deterministic retries,
worker-crash containment with pool respawn, a circuit breaker that degrades
to in-process execution, and structured :class:`RunFailure` records so a
batch returns partial results instead of losing everything to one bad spec
(see :mod:`repro.exec.supervisor`).

Runs are also *governed*: a :class:`ResourceBudget` on the spec (or the
executor) bounds simulator events and sim-time deterministically, caps
worker address space (``MemoryError`` → failure kind ``oom``), and puts the
result cache under an LRU disk quota; the executor adds bounded wave
admission and study load-shedding (see :mod:`repro.exec.governor`).
"""

from repro.exec.cache import CacheStats, ResultCache, code_salt
from repro.exec.executor import (
    ExecStats,
    Executor,
    execute_spec,
    get_default_executor,
    set_default_executor,
    using_executor,
)
from repro.exec.governor import (
    BudgetGuard,
    ResourceBudget,
    counting_probe,
    measure_run_events,
)
from repro.exec.serialize import (
    RESULT_SCHEMA_VERSION,
    result_from_wire,
    result_to_wire,
)
from repro.exec.spec import DriverSpec, RunSpec
from repro.exec.supervisor import (
    FAILURE_KINDS,
    NON_QUARANTINE_KINDS,
    RETRYABLE_KINDS,
    BatchOutcome,
    CircuitBreaker,
    RetryPolicy,
    RunFailure,
)

__all__ = [
    "BatchOutcome",
    "BudgetGuard",
    "CacheStats",
    "CircuitBreaker",
    "DriverSpec",
    "ExecStats",
    "Executor",
    "FAILURE_KINDS",
    "NON_QUARANTINE_KINDS",
    "RESULT_SCHEMA_VERSION",
    "RETRYABLE_KINDS",
    "ResourceBudget",
    "ResultCache",
    "RetryPolicy",
    "RunFailure",
    "RunSpec",
    "code_salt",
    "counting_probe",
    "execute_spec",
    "get_default_executor",
    "measure_run_events",
    "result_from_wire",
    "result_to_wire",
    "set_default_executor",
    "using_executor",
]
