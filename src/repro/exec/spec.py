"""Frozen, content-hashable descriptions of one simulation run.

A :class:`DriverSpec` names a *builder* — an importable module-level function
— plus JSON-able keyword arguments; calling :meth:`DriverSpec.build` imports
the builder and constructs a fresh, seeded :class:`ScenarioDriver`. A
:class:`RunSpec` combines a driver spec with everything else that determines
a run: device, architecture, buffer configuration, D-VSync knobs, fault
schedule, and sim-length limits. Both are frozen dataclasses whose canonical
JSON wire form backs equality, hashing, and the executor's cache key.

Builders must be deterministic functions of their parameters (all workload
randomness in this codebase is seeded by name/run index), which is what makes
``RunSpec.content_hash()`` a valid content address for the run's result.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
from typing import Any, Mapping

from repro.core.config import DVSyncConfig
from repro.display.device import DeviceProfile, GraphicsBackend, OperatingSystem
from repro.errors import ConfigurationError
from repro.exec.governor import ResourceBudget
from repro.pipeline.driver import ScenarioDriver

#: Architectures :func:`repro.exec.executor.execute_spec` can instantiate.
ARCHITECTURES = ("vsync", "dvsync")

#: Engines :func:`repro.exec.executor.execute_spec` can dispatch to.
#: ``"auto"`` resolves to the process default (``--engine`` / ``REPRO_ENGINE``)
#: and falls back to the event engine when the spec is not trace-pure.
ENGINES = ("auto", "event", "fastpath")


def canonical_json(value: Any) -> str:
    """Deterministic JSON text: sorted keys, no whitespace, no NaN."""
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def _check_jsonable(params: Mapping[str, Any], context: str) -> None:
    try:
        canonical_json(dict(params))
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"{context}: parameters must be JSON-serializable ({exc})"
        ) from None


@dataclasses.dataclass(frozen=True)
class DriverSpec:
    """Declarative driver construction: importable builder + JSON params.

    Attributes:
        builder: ``"package.module:function"`` path of a module-level builder.
        params_json: Canonical JSON object of keyword arguments. Stored as a
            string so the spec stays frozen and hashable with nested params.
    """

    builder: str
    params_json: str = "{}"

    @classmethod
    def of(cls, builder: str, **params: Any) -> "DriverSpec":
        """Build a spec, canonicalizing and validating the parameters."""
        if ":" not in builder:
            raise ConfigurationError(
                f"driver builder {builder!r} must be 'module:function'"
            )
        _check_jsonable(params, f"driver builder {builder!r}")
        return cls(builder=builder, params_json=canonical_json(params))

    @classmethod
    def from_scenario(cls, scenario, run: int = 0) -> "DriverSpec":
        """Describe ``scenario.build_driver(run)`` declaratively.

        Works for any :class:`repro.workloads.scenarios.Scenario`, whose
        fields are all JSON primitives.
        """
        return cls.of(
            "repro.exec.builders:scenario_driver",
            run=run,
            **dataclasses.asdict(scenario),
        )

    @property
    def params(self) -> dict:
        """The builder's keyword arguments."""
        return json.loads(self.params_json)

    def resolve(self):
        """Import and return the builder callable."""
        module_name, _, attr = self.builder.partition(":")
        try:
            module = importlib.import_module(module_name)
            builder = getattr(module, attr)
        except (ImportError, AttributeError) as exc:
            raise ConfigurationError(
                f"cannot resolve driver builder {self.builder!r}: {exc}"
            ) from None
        if not callable(builder):
            raise ConfigurationError(
                f"driver builder {self.builder!r} is not callable"
            )
        return builder

    def build(self) -> ScenarioDriver:
        """Construct a fresh driver from the spec."""
        return self.resolve()(**self.params)

    def to_wire(self) -> dict:
        return {"builder": self.builder, "params": self.params}

    @classmethod
    def from_wire(cls, wire: Mapping[str, Any]) -> "DriverSpec":
        return cls.of(wire["builder"], **wire["params"])


def device_to_wire(device: DeviceProfile) -> dict:
    """Wire form of a device profile (enums by value)."""
    wire = dataclasses.asdict(device)
    wire["os"] = device.os.value
    wire["backend"] = device.backend.value
    return wire


def device_from_wire(wire: Mapping[str, Any]) -> DeviceProfile:
    """Reconstruct a device profile from its wire form."""
    fields = dict(wire)
    fields["os"] = OperatingSystem(fields["os"])
    fields["backend"] = GraphicsBackend(fields["backend"])
    return DeviceProfile(**fields)


def dvsync_config_to_wire(config: DVSyncConfig) -> dict:
    return dataclasses.asdict(config)


def dvsync_config_from_wire(wire: Mapping[str, Any]) -> DVSyncConfig:
    return DVSyncConfig(**wire)


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """Everything that determines one simulation run.

    Attributes:
        driver: Declarative driver construction.
        device: Device profile under test.
        architecture: ``"vsync"`` or ``"dvsync"``.
        buffer_count: Buffer-queue capacity for the VSync baseline (``None``
            uses the device default). Ignored under ``"dvsync"`` when
            ``dvsync`` is given.
        dvsync: D-VSync configuration; defaults to
            ``DVSyncConfig(buffer_count=buffer_count or 4)`` at execution.
        faults: Fault-schedule clause text (``FaultSchedule.parse`` syntax),
            or ``None`` for a clean run.
        fault_seed: Seed for the fault injector's rngs.
        watchdog: Attach the degradation watchdog (D-VSync only).
        start_time: Simulation start timestamp (ns).
        horizon: Optional simulation cutoff (ns).
        telemetry: Record a telemetry session during the run and attach its
            snapshot to ``RunResult.telemetry``. Part of the spec (and its
            content hash) because it must reach process-pool workers, whose
            process-wide telemetry switch is independent of the parent's.
        verify: Attach a (non-strict) invariant checker to the run and record
            its structured verdict in ``RunResult.extra["invariants"]``. In
            the spec for the same reason as ``telemetry``: pool workers have
            their own process-wide verification switch.
        timeout_s: Per-run wall-clock deadline (seconds) enforced by the
            supervised executor; ``None`` defers to the executor's default.
            Execution *policy*, not run content — it rides the wire but is
            excluded from :meth:`content_hash`, so changing a deadline never
            invalidates cached results.
        engine: ``"auto"`` (fastpath when the spec is trace-pure, event
            otherwise), ``"event"`` (always the full discrete-event
            simulator), or ``"fastpath"`` (replay, or raise when the spec is
            ineligible). Like ``timeout_s`` this is execution policy: both
            engines compute byte-identical results, so ``engine`` rides the
            wire (pool workers must honor it) but is excluded from
            :meth:`content_hash` and cached results are shared across
            engines.
        budget: Optional :class:`~repro.exec.governor.ResourceBudget` bounding
            what the run may consume (sim events, sim-time span, worker
            address space, cache disk). Execution policy like ``timeout_s``:
            it rides the wire so pool workers enforce it, but is excluded
            from :meth:`content_hash` — a budget decides whether a run is
            *allowed to finish*, never what the finished result is.
    """

    driver: DriverSpec
    device: DeviceProfile
    architecture: str = "vsync"
    buffer_count: int | None = None
    dvsync: DVSyncConfig | None = None
    faults: str | None = None
    fault_seed: int = 0
    watchdog: bool = False
    start_time: int = 0
    horizon: int | None = None
    telemetry: bool = False
    verify: bool = False
    timeout_s: float | None = None
    engine: str = "auto"
    budget: ResourceBudget | None = None

    def __post_init__(self) -> None:
        architecture = getattr(self.architecture, "value", self.architecture)
        if architecture is not self.architecture:
            object.__setattr__(self, "architecture", architecture)
        engine = getattr(self.engine, "value", self.engine)
        if engine is not self.engine:
            object.__setattr__(self, "engine", engine)
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; known: {', '.join(ENGINES)}"
            )
        if self.architecture not in ARCHITECTURES:
            raise ConfigurationError(
                f"unknown architecture {self.architecture!r}; "
                f"known: {', '.join(ARCHITECTURES)}"
            )
        if self.watchdog and self.architecture != "dvsync":
            raise ConfigurationError(
                "the degradation watchdog only attaches to the dvsync architecture"
            )
        if self.timeout_s is not None and not self.timeout_s > 0:
            raise ConfigurationError(
                f"timeout_s must be > 0 seconds, got {self.timeout_s!r}"
            )

    def to_wire(self) -> dict:
        return {
            "driver": self.driver.to_wire(),
            "device": device_to_wire(self.device),
            "architecture": self.architecture,
            "buffer_count": self.buffer_count,
            "dvsync": dvsync_config_to_wire(self.dvsync) if self.dvsync else None,
            "faults": self.faults,
            "fault_seed": self.fault_seed,
            "watchdog": self.watchdog,
            "start_time": self.start_time,
            "horizon": self.horizon,
            "telemetry": self.telemetry,
            "verify": self.verify,
            "timeout_s": self.timeout_s,
            "engine": self.engine,
            "budget": self.budget.to_wire() if self.budget else None,
        }

    @classmethod
    def from_wire(cls, wire: Mapping[str, Any]) -> "RunSpec":
        return cls(
            driver=DriverSpec.from_wire(wire["driver"]),
            device=device_from_wire(wire["device"]),
            architecture=wire["architecture"],
            buffer_count=wire["buffer_count"],
            dvsync=(
                dvsync_config_from_wire(wire["dvsync"]) if wire["dvsync"] else None
            ),
            faults=wire["faults"],
            fault_seed=wire["fault_seed"],
            watchdog=wire["watchdog"],
            start_time=wire["start_time"],
            horizon=wire["horizon"],
            telemetry=wire.get("telemetry", False),
            verify=wire.get("verify", False),
            timeout_s=wire.get("timeout_s"),
            engine=wire.get("engine", "auto"),
            budget=(
                ResourceBudget.from_wire(wire["budget"])
                if wire.get("budget")
                else None
            ),
        )

    def content_hash(self) -> str:
        """SHA-256 content address of this spec (hex).

        Execution-policy fields (``timeout_s``, ``engine``, ``budget``) are
        excluded: a deadline bounds *how long* the harness waits, the engine
        picks *how* the deterministic result is computed, and a budget
        decides whether the run may finish at all — none changes *what* the
        result is, so the same result stays addressable under any policy.
        """
        wire = self.to_wire()
        del wire["timeout_s"]
        del wire["engine"]
        del wire["budget"]
        return hashlib.sha256(canonical_json(wire).encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """One-line human-readable summary (logs, observability)."""
        parts = [self.architecture, self.device.name, self.driver.builder]
        if self.buffer_count is not None:
            parts.append(f"buffers={self.buffer_count}")
        if self.dvsync is not None:
            parts.append(f"dvsync-buffers={self.dvsync.buffer_count}")
        if self.faults:
            parts.append(f"faults=[{self.faults}]")
        return " ".join(parts)
