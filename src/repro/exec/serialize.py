"""Compact, lossless wire form for :class:`RunResult`.

Results must cross process boundaries (the executor's process-pool backend)
and cache round-trips without drift, so every record type serializes to a
fixed-order JSON array and reconstructs to an equal dataclass. The executor
normalizes *every* result — including in-process, uncached runs — through
this round-trip, so a cache hit, a pool result, and a fresh local run are
indistinguishable to callers.

``extra`` is canonicalized on the way in (tuples become lists) because JSON
has no tuple type; scheduler and fault hooks only store JSON-able scalars,
mappings, and sequences there.
"""

from __future__ import annotations

from typing import Any

from repro.display.hal import PresentRecord
from repro.exec.spec import device_from_wire, device_to_wire
from repro.pipeline.compositor import DropEvent
from repro.pipeline.frame import FrameCategory, FrameRecord, FrameWorkload
from repro.pipeline.scheduler_base import RunResult
from repro.telemetry.session import TelemetrySnapshot

#: Bump when the wire layout changes; folded into the cache key.
#: v2: optional ``telemetry`` key carrying a TelemetrySnapshot payload.
RESULT_SCHEMA_VERSION = 2

_FRAME_FIELDS = (
    "frame_id",
    "trigger_time",
    "content_timestamp",
    "decoupled",
    "ui_start",
    "ui_end",
    "render_start",
    "render_end",
    "gpu_end",
    "queued_time",
    "latch_time",
    "present_time",
    "buffer_slot",
    "render_rate_hz",
    "buffer_wait_ns",
    "content_value",
    "input_predicted",
)

_DROP_FIELDS = ("time", "vsync_index", "queued_depth", "frames_in_flight")

_PRESENT_FIELDS = (
    "frame_id",
    "present_time",
    "vsync_index",
    "content_timestamp",
    "queue_depth_after",
    "refresh_period",
)


def jsonable(value: Any) -> Any:
    """Canonicalize a value for JSON: tuples/lists and dicts recurse."""
    if isinstance(value, (tuple, list)):
        return [jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    return value


def _workload_to_wire(workload: FrameWorkload) -> list:
    return [
        workload.ui_ns,
        workload.render_ns,
        workload.gpu_ns,
        workload.category.value,
    ]


def _workload_from_wire(wire: list) -> FrameWorkload:
    ui_ns, render_ns, gpu_ns, category = wire
    return FrameWorkload(
        ui_ns=ui_ns,
        render_ns=render_ns,
        gpu_ns=gpu_ns,
        category=FrameCategory(category),
    )


def _frame_to_wire(frame: FrameRecord) -> list:
    wire = [getattr(frame, field) for field in _FRAME_FIELDS]
    wire.append(_workload_to_wire(frame.workload))
    return wire


def _frame_from_wire(wire: list) -> FrameRecord:
    fields = dict(zip(_FRAME_FIELDS, wire))
    return FrameRecord(workload=_workload_from_wire(wire[-1]), **fields)


def result_to_wire(result: RunResult) -> dict:
    """Serialize a run result to its compact JSON-able wire form."""
    return {
        "schema": RESULT_SCHEMA_VERSION,
        "scheduler": result.scheduler,
        "scenario": result.scenario,
        "device": device_to_wire(result.device),
        "buffer_count": result.buffer_count,
        "frames": [_frame_to_wire(f) for f in result.frames],
        "drops": [
            [getattr(d, field) for field in _DROP_FIELDS] for d in result.drops
        ],
        "presents": [
            [getattr(p, field) for field in _PRESENT_FIELDS]
            for p in result.presents
        ],
        "start_time": result.start_time,
        "end_time": result.end_time,
        "ui_busy_ns": result.ui_busy_ns,
        "render_busy_ns": result.render_busy_ns,
        "gpu_busy_ns": result.gpu_busy_ns,
        "scheduler_overhead_ns": result.scheduler_overhead_ns,
        "extra": jsonable(result.extra),
        "telemetry": (
            result.telemetry.to_dict() if result.telemetry is not None else None
        ),
    }


def result_from_wire(wire: dict) -> RunResult:
    """Reconstruct a run result from its wire form."""
    schema = wire.get("schema")
    if schema != RESULT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported RunResult schema {schema!r} "
            f"(expected {RESULT_SCHEMA_VERSION})"
        )
    return RunResult(
        scheduler=wire["scheduler"],
        scenario=wire["scenario"],
        device=device_from_wire(wire["device"]),
        buffer_count=wire["buffer_count"],
        frames=[_frame_from_wire(f) for f in wire["frames"]],
        drops=[DropEvent(**dict(zip(_DROP_FIELDS, d))) for d in wire["drops"]],
        presents=[
            PresentRecord(**dict(zip(_PRESENT_FIELDS, p)))
            for p in wire["presents"]
        ],
        start_time=wire["start_time"],
        end_time=wire["end_time"],
        ui_busy_ns=wire["ui_busy_ns"],
        render_busy_ns=wire["render_busy_ns"],
        gpu_busy_ns=wire["gpu_busy_ns"],
        scheduler_overhead_ns=wire["scheduler_overhead_ns"],
        extra=wire["extra"],
        telemetry=(
            TelemetrySnapshot.from_dict(wire["telemetry"])
            if wire.get("telemetry") is not None
            else None
        ),
    )


def ok_envelope(result_wire: dict, seconds: float) -> dict:
    """Wrap a worker's successful result wire for the pool boundary.

    Workers never raise across the pool: success and failure both travel as
    tagged envelopes, so a custom exception that does not pickle (or pickles
    to something that re-raises on load) can never poison the pool protocol.
    """
    return {"ok": True, "result": result_wire, "seconds": seconds}


def error_envelope(kind: str, message: str, traceback_text: str | None) -> dict:
    """Wrap a worker-side failure (taxonomy kind + cause) for the pool wire."""
    return {
        "ok": False,
        "kind": kind,
        "message": message,
        "traceback": traceback_text,
    }


def normalize_result(result: RunResult) -> RunResult:
    """Round-trip a result through the wire form.

    Guarantees cross-backend uniformity: callers always observe results as
    they look after deserialization (e.g. tuples in ``extra`` become lists),
    whether the run was fresh, pooled, or served from the cache.
    """
    return result_from_wire(result_to_wire(result))
