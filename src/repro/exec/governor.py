"""Resource governance: deterministic run budgets and containment knobs.

A :class:`ResourceBudget` bounds what one run may consume — simulator events,
simulated time span, worker address space, cache disk — and rides on
:class:`~repro.exec.spec.RunSpec` as execution *policy* (wire-serialized so
pool workers enforce it, excluded from the content hash like ``timeout_s``).
Enforcement happens at three layers:

* **Simulator** — a :class:`BudgetGuard` installed on
  ``Simulator.budget_guard`` (and honored, with live-equivalent event
  accounting, by the fastpath replay kernel) trips
  :class:`~repro.errors.BudgetExceededError` at a deterministic event: the
  same spec with the same budget fails at the identical (count, sim-time,
  seq) on every host, every backend, and both engines. That is what makes a
  ``budget`` failure replayable where a wall-clock ``timeout`` is not.
* **Workers** — the process backend clamps ``RLIMIT_AS`` around each run
  (:func:`address_space_cap`), so a memory hog dies with a clean
  ``MemoryError`` (failure kind ``oom``) instead of summoning the OS
  OOM-killer onto the whole pool.
* **Executor** — bounded wave admission, study load-shedding, and a cache
  disk quota with LRU garbage collection (see ``repro.exec.executor`` and
  ``repro.exec.cache``).

Environment knobs (validated here, loudly, at construction time):
``REPRO_MAX_EVENTS``, ``REPRO_MEMORY_MB``, ``REPRO_CACHE_QUOTA_MB``.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
from typing import Any, Iterator, Mapping

from repro.errors import BudgetExceededError, ConfigurationError
from repro.sim.engine import max_events_diagnostic


@dataclasses.dataclass(frozen=True)
class ResourceBudget:
    """Frozen resource limits for one run (all optional, ``None`` = unlimited).

    Attributes:
        max_events: Simulator event-count cap; the run fails with kind
            ``budget`` at exactly this many executed events.
        max_sim_ns: Simulated-time span cap, measured from the spec's
            ``start_time``; the first event past the deadline trips.
        memory_mb: Worker address-space cap (``RLIMIT_AS``), applied by
            process-backend workers at dispatch; an allocation beyond it
            raises ``MemoryError`` → failure kind ``oom``. In-process runs
            cannot clamp the host and ignore it.
        cache_quota_mb: Disk quota for the result cache; the executor's
            cache garbage-collects least-recently-used entries back under it
            after every store.
    """

    max_events: int | None = None
    max_sim_ns: int | None = None
    memory_mb: int | None = None
    cache_quota_mb: float | None = None

    def __post_init__(self) -> None:
        for name in ("max_events", "max_sim_ns", "memory_mb"):
            value = getattr(self, name)
            if value is None:
                continue
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ConfigurationError(
                    f"budget {name} must be a positive integer, got {value!r}"
                )
        quota = self.cache_quota_mb
        if quota is not None and not (
            isinstance(quota, (int, float))
            and not isinstance(quota, bool)
            and quota > 0
        ):
            raise ConfigurationError(
                f"budget cache_quota_mb must be > 0, got {quota!r}"
            )

    @property
    def governs_sim(self) -> bool:
        """Whether any limit needs a :class:`BudgetGuard` on the simulator."""
        return self.max_events is not None or self.max_sim_ns is not None

    @property
    def is_noop(self) -> bool:
        return all(
            getattr(self, field.name) is None for field in dataclasses.fields(self)
        )

    @property
    def cache_quota_bytes(self) -> int | None:
        if self.cache_quota_mb is None:
            return None
        return int(self.cache_quota_mb * 1024 * 1024)

    def to_wire(self) -> dict:
        return {
            "max_events": self.max_events,
            "max_sim_ns": self.max_sim_ns,
            "memory_mb": self.memory_mb,
            "cache_quota_mb": self.cache_quota_mb,
        }

    @classmethod
    def from_wire(cls, wire: Mapping[str, Any]) -> "ResourceBudget":
        return cls(
            max_events=wire.get("max_events"),
            max_sim_ns=wire.get("max_sim_ns"),
            memory_mb=wire.get("memory_mb"),
            cache_quota_mb=wire.get("cache_quota_mb"),
        )

    def describe(self) -> str:
        parts = []
        if self.max_events is not None:
            parts.append(f"max_events={self.max_events}")
        if self.max_sim_ns is not None:
            parts.append(f"max_sim_ns={self.max_sim_ns}")
        if self.memory_mb is not None:
            parts.append(f"memory_mb={self.memory_mb}")
        if self.cache_quota_mb is not None:
            parts.append(f"cache_quota_mb={self.cache_quota_mb:g}")
        return "budget(" + ", ".join(parts) + ")" if parts else "budget(unlimited)"


class BudgetGuard:
    """Deterministic event-count / sim-time enforcement for one run.

    Installed on ``Simulator.budget_guard`` by the executor (event engine)
    and consulted inline by the fastpath replay kernel, which maintains a
    live-engine-equivalent event stream (elided recorder events and
    fast-forwarded ticks included) so both engines call :meth:`on_event`
    with the identical (time, seq) sequence and trip with the identical
    message. With no limits set the guard is a pure counter — the probe
    :func:`measure_run_events` uses to learn a spec's natural event count.
    """

    __slots__ = ("max_events", "max_sim_ns", "deadline_ns", "events")

    def __init__(
        self,
        max_events: int | None = None,
        max_sim_ns: int | None = None,
        start_time: int = 0,
    ) -> None:
        self.max_events = max_events
        self.max_sim_ns = max_sim_ns
        self.deadline_ns = (
            start_time + max_sim_ns if max_sim_ns is not None else None
        )
        self.events = 0

    @classmethod
    def for_budget(cls, budget: ResourceBudget, start_time: int = 0) -> "BudgetGuard":
        return cls(budget.max_events, budget.max_sim_ns, start_time=start_time)

    def _time_trip(self, time: int, seq: int) -> BudgetExceededError:
        return BudgetExceededError(
            f"resource budget exceeded max_sim_ns={self.max_sim_ns} "
            f"(deadline t={self.deadline_ns} ns) at event t={time} ns "
            f"(event seq {seq}) after {self.events} events"
        )

    def _count_trip(self, time: int, seq: int) -> BudgetExceededError:
        return BudgetExceededError(
            "resource budget " + max_events_diagnostic(self.max_events, time, seq)
        )

    def on_event(self, time: int, seq: int) -> None:
        """Account one event about to execute; raises at the trip point.

        The sim-time check precedes the count (an over-deadline event never
        executes, so it is not counted); a count trip charges the event.
        """
        deadline = self.deadline_ns
        if deadline is not None and time > deadline:
            raise self._time_trip(time, seq)
        self.events += 1
        if self.max_events is not None and self.events >= self.max_events:
            raise self._count_trip(time, seq)

    def on_tick_run(
        self, first_time: int, period: int, count: int, first_seq: int,
        seq_counter: int,
    ) -> None:
        """Account *count* back-to-back tick events in O(1).

        The replay kernel's idle fast-forward skips ticks that the live
        engine executes one by one: the first at (*first_time*, *first_seq*),
        each subsequent one scheduled by its predecessor — times advancing by
        *period*, seqs drawn consecutively from *seq_counter* (nothing else
        schedules during a drained gap). A budget can trip mid-gap, and the
        trip coordinates must match the live engine's exactly.
        """
        j_time = None
        deadline = self.deadline_ns
        if deadline is not None and first_time + (count - 1) * period > deadline:
            if first_time > deadline:
                j_time = 1
            else:
                j_time = (deadline - first_time) // period + 2
        j_count = None
        if self.max_events is not None and self.events + count >= self.max_events:
            j_count = self.max_events - self.events
        if j_time is None and j_count is None:
            self.events += count
            return
        j = min(x for x in (j_time, j_count) if x is not None)
        time = first_time + (j - 1) * period
        seq = first_seq if j == 1 else seq_counter + j - 2
        self.events += j - 1
        # Mirrors on_event: the time check precedes the count at any event.
        if j_time is not None and j_time <= j:
            raise self._time_trip(time, seq)
        self.events += 1
        raise self._count_trip(time, seq)


# --------------------------------------------------------------------- probe
_probe: BudgetGuard | None = None


@contextlib.contextmanager
def counting_probe() -> Iterator[BudgetGuard]:
    """Install a limitless :class:`BudgetGuard` as a pure event counter.

    While active, :func:`guard_for_spec` hands the probe to budget-free runs
    on either engine, so ``probe.events`` afterwards is the run's natural
    live-engine event count. In-process, single-run scoped; not thread-safe.
    """
    global _probe
    guard = BudgetGuard()
    previous, _probe = _probe, guard
    try:
        yield guard
    finally:
        _probe = previous


def guard_for_spec(spec) -> BudgetGuard | None:
    """The guard a run of *spec* must account events through, if any."""
    budget = getattr(spec, "budget", None)
    if budget is not None and budget.governs_sim:
        return BudgetGuard.for_budget(
            budget, start_time=getattr(spec, "start_time", 0)
        )
    return _probe


def measure_run_events(spec) -> int:
    """Natural event count of *spec*: how many simulator events a full run
    executes (identical on both engines — the budget-parity relation and the
    governor property suite are built on that equality)."""
    from repro.exec.executor import execute_spec

    budget = getattr(spec, "budget", None)
    if budget is not None:
        spec = dataclasses.replace(spec, budget=None)
    with counting_probe() as probe:
        execute_spec(spec)
    return probe.events


# ------------------------------------------------------- worker memory cap
@contextlib.contextmanager
def address_space_cap(memory_mb: int | None) -> Iterator[bool]:
    """Clamp ``RLIMIT_AS`` to *memory_mb* for the duration of the block.

    Yields whether the cap was actually applied: ``None`` caps, platforms
    without the ``resource`` module (Windows), and kernels that refuse the
    limit all degrade to an uncapped run rather than failing it. The
    previous soft limit is restored on exit — pool workers are reused, so a
    per-run cap must never outlive its run.
    """
    if memory_mb is None:
        yield False
        return
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX hosts
        yield False
        return
    soft, hard = resource.getrlimit(resource.RLIMIT_AS)
    cap = memory_mb * 1024 * 1024
    if hard != resource.RLIM_INFINITY and cap > hard:
        cap = hard
    try:
        resource.setrlimit(resource.RLIMIT_AS, (cap, hard))
    except (ValueError, OSError):  # pragma: no cover - kernel said no
        yield False
        return
    try:
        yield True
    finally:
        with contextlib.suppress(ValueError, OSError):
            resource.setrlimit(resource.RLIMIT_AS, (soft, hard))


# ----------------------------------------------------------------- env knobs
def _env_positive_int(name: str) -> int | None:
    text = os.environ.get(name, "")
    if not text:
        return None
    try:
        value = int(text)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be an integer, got {text!r}"
        ) from None
    if value < 1:
        raise ConfigurationError(f"{name} must be >= 1, got {value}")
    return value


def _env_positive_float(name: str) -> float | None:
    text = os.environ.get(name, "")
    if not text:
        return None
    try:
        value = float(text)
    except ValueError:
        raise ConfigurationError(f"{name} must be a number, got {text!r}") from None
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")
    return value


def budget_from_env() -> ResourceBudget | None:
    """Build the default-executor budget from the environment, or ``None``.

    Reads ``REPRO_MAX_EVENTS`` (event-count cap), ``REPRO_MEMORY_MB``
    (worker address-space cap), and ``REPRO_CACHE_QUOTA_MB`` (cache disk
    quota); malformed values raise
    :class:`~repro.errors.ConfigurationError` at construction time.
    """
    max_events = _env_positive_int("REPRO_MAX_EVENTS")
    memory_mb = _env_positive_int("REPRO_MEMORY_MB")
    cache_quota_mb = _env_positive_float("REPRO_CACHE_QUOTA_MB")
    if max_events is None and memory_mb is None and cache_quota_mb is None:
        return None
    return ResourceBudget(
        max_events=max_events, memory_mb=memory_mb, cache_quota_mb=cache_quota_mb
    )
