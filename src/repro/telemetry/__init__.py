"""Telemetry: probes, metrics, wall-clock profiling, and trace export.

The observability spine of the reproduction (DESIGN.md §9). Zero-cost when
disabled — schedulers built without a session register no hooks and emit
nothing; process-wide opt-in (:func:`set_enabled`, driven by the CLI's
``--trace`` / ``--profile``) turns every subsequent run into a recorded one,
including runs that execute in pool workers and come back over the result
wire.
"""

from repro.telemetry.chrome import (
    REQUIRED_EVENT_KEYS,
    chrome_events_from_trace,
    chrome_trace,
    chrome_trace_from_results,
    save_chrome_trace,
    validate_chrome_trace,
)
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.profiler import (
    ProfileSummary,
    perf_trajectory,
    render_profile,
    summarize_snapshots,
    write_bench_telemetry,
)
from repro.telemetry.runtime import (
    Collector,
    collect,
    collector,
    enabled,
    new_run_session,
    reset,
    set_enabled,
)
from repro.telemetry.session import (
    NULL_PROBE,
    NULL_TELEMETRY,
    NullProbe,
    NullTelemetry,
    Probe,
    Telemetry,
    TelemetrySnapshot,
    resolve_telemetry,
)

__all__ = [
    "REQUIRED_EVENT_KEYS",
    "chrome_events_from_trace",
    "chrome_trace",
    "chrome_trace_from_results",
    "save_chrome_trace",
    "validate_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProfileSummary",
    "perf_trajectory",
    "render_profile",
    "summarize_snapshots",
    "write_bench_telemetry",
    "Collector",
    "collect",
    "collector",
    "enabled",
    "new_run_session",
    "reset",
    "set_enabled",
    "NULL_PROBE",
    "NULL_TELEMETRY",
    "NullProbe",
    "NullTelemetry",
    "Probe",
    "Telemetry",
    "TelemetrySnapshot",
    "resolve_telemetry",
]
