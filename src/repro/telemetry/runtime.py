"""Process-wide telemetry switch and snapshot collector.

Telemetry is *process-wide-optional*: nothing records unless the process (or
an individual scheduler) opts in. The CLI's ``--trace`` / ``--profile`` flags
call :func:`set_enabled`; from then on every scheduler built without an
explicit session records into a fresh one, every :class:`~repro.exec.spec.RunSpec`
minted by the experiment runner carries ``telemetry=True`` across the
process-pool wire, and the :class:`Collector` in the parent process
accumulates the snapshots that come back — whether the run was in-process,
pooled, or served from the result cache.

The collector also keeps the per-experiment perf trajectory (wall seconds,
executor activity, simulated events) that ``--all`` writes to
``BENCH_telemetry.json``.
"""

from __future__ import annotations

import dataclasses

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.session import NULL_TELEMETRY, NullTelemetry, Telemetry, TelemetrySnapshot

_enabled = False


def set_enabled(enabled: bool) -> bool:
    """Flip the process-wide telemetry switch; returns the previous state."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


def enabled() -> bool:
    """True when the process has opted into telemetry recording."""
    return _enabled


def new_run_session(name: str = "telemetry") -> Telemetry | NullTelemetry:
    """A fresh session when telemetry is on, the null session otherwise."""
    return Telemetry(name) if _enabled else NULL_TELEMETRY


@dataclasses.dataclass
class ExperimentProfile:
    """Perf-trajectory entry for one experiment invocation."""

    experiment_id: str
    wall_seconds: float
    runs_executed: int
    cache_hits: int
    deduplicated: int
    run_seconds: float

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


class Collector:
    """Accumulates telemetry snapshots and experiment profiles in-process."""

    def __init__(self) -> None:
        self.snapshots: list[TelemetrySnapshot] = []
        self.experiments: list[ExperimentProfile] = []
        self.batch_seconds = 0.0
        self.batches = 0
        #: Supervision counters (``exec.retries``, ``exec.timeouts``,
        #: ``exec.pool_respawns``, ...) published by the executor.
        self.exec_metrics = MetricsRegistry()

    def add_snapshot(self, snapshot: TelemetrySnapshot) -> None:
        self.snapshots.append(snapshot)

    def note_batch(self, seconds: float) -> None:
        self.batch_seconds += seconds
        self.batches += 1

    def note_experiment(
        self,
        experiment_id: str,
        wall_seconds: float,
        runs_executed: int = 0,
        cache_hits: int = 0,
        deduplicated: int = 0,
        run_seconds: float = 0.0,
    ) -> None:
        self.experiments.append(
            ExperimentProfile(
                experiment_id=experiment_id,
                wall_seconds=wall_seconds,
                runs_executed=runs_executed,
                cache_hits=cache_hits,
                deduplicated=deduplicated,
                run_seconds=run_seconds,
            )
        )

    def clear(self) -> None:
        self.snapshots.clear()
        self.experiments.clear()
        self.batch_seconds = 0.0
        self.batches = 0
        self.exec_metrics = MetricsRegistry()


_collector = Collector()


def collector() -> Collector:
    """The process-wide snapshot collector."""
    return _collector


def collect(snapshot: TelemetrySnapshot | None) -> None:
    """Publish a run's snapshot to the process-wide capture.

    A no-op unless the process opted in via :func:`set_enabled` — callers that
    request telemetry per-run/per-spec get their snapshot on the result and
    own it; the collector only accumulates for ``--trace``/``--profile``-style
    process-wide captures. ``None`` is always ignored.
    """
    if snapshot is not None and _enabled:
        _collector.add_snapshot(snapshot)


def note_exec(name: str, amount: float = 1.0) -> None:
    """Increment the ``exec.<name>`` supervision counter.

    Like :func:`collect`, a no-op unless the process opted in — the executor
    keeps its own :class:`~repro.exec.executor.ExecStats` unconditionally;
    these counters are the telemetry-facing view of the same events.
    """
    if _enabled:
        _collector.exec_metrics.counter(f"exec.{name}").inc(amount)


def note_study(name: str, amount: float = 1.0) -> None:
    """Increment the ``study.<name>`` sweep counter.

    Published by :func:`repro.study.execute_studies` when a matrix goes out:
    ``study.cells`` (grid points executed), ``study.dedup_hits`` (spec cells
    collapsed by content hash before submission), ``study.holes`` (keep-going
    failure holes). A no-op unless the process opted in.
    """
    if _enabled:
        _collector.exec_metrics.counter(f"study.{name}").inc(amount)


def note_governor(name: str, amount: float = 1.0) -> None:
    """Increment the ``governor.<name>`` resource-governance counter.

    Published by the executor's governance layer: ``governor.budget_trips``
    (deterministic ResourceBudget trips), ``governor.ooms`` (MemoryError
    under the worker address-space cap), ``governor.shed`` (sheddable study
    cells skipped under ``--shed``), ``governor.admission_deferred``
    (submissions held back at a wave boundary), and
    ``governor.cache_gc_evictions`` (entries the cache disk quota reclaimed).
    A no-op unless the process opted in.
    """
    if _enabled:
        _collector.exec_metrics.counter(f"governor.{name}").inc(amount)


def reset() -> None:
    """Disable telemetry and drop everything collected (tests, CLI re-runs)."""
    set_enabled(False)
    _collector.clear()
