"""Wall-clock profile aggregation and rendering.

Sessions record named wall-clock blocks (``scheduler.run``, ``sim.loop``,
``exec.batch``) while probes count events; this module folds the snapshots a
capture produced into one :class:`ProfileSummary` — where the real seconds
went, per stage and per experiment — and renders the CLI's ``--profile``
report.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Sequence

from repro.metrics.report import format_table
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.runtime import Collector
from repro.telemetry.session import TelemetrySnapshot


@dataclasses.dataclass
class ProfileSummary:
    """Aggregated wall-clock profile of one capture."""

    runs: int
    blocks: dict[str, dict[str, float]]
    metrics: MetricsRegistry

    def block_seconds(self, block: str) -> float:
        entry = self.blocks.get(block)
        return entry["seconds"] if entry else 0.0

    def metric(self, name: str) -> float:
        value = self.metrics.value(name)
        return value if value is not None else 0.0


def summarize_snapshots(
    snapshots: Iterable[TelemetrySnapshot],
) -> ProfileSummary:
    """Fold run snapshots into one profile: blocks sum, metrics merge."""
    blocks: dict[str, dict[str, float]] = {}
    metrics = MetricsRegistry()
    runs = 0
    for snapshot in snapshots:
        runs += 1
        for name, entry in snapshot.profile.items():
            merged = blocks.setdefault(name, {"seconds": 0.0, "count": 0})
            merged["seconds"] += entry["seconds"]
            merged["count"] += entry["count"]
        metrics.merge(snapshot.metrics_registry())
    return ProfileSummary(runs=runs, blocks=blocks, metrics=metrics)


def render_profile(collector: Collector) -> str:
    """The ``--profile`` report: per-experiment trajectory + self-time table."""
    parts: list[str] = ["=== profile ==="]
    if collector.experiments:
        parts.append(
            format_table(
                ["experiment", "wall s", "simulated", "cache hits", "dedup", "sim s"],
                [
                    [
                        entry.experiment_id,
                        f"{entry.wall_seconds:.2f}",
                        entry.runs_executed,
                        entry.cache_hits,
                        entry.deduplicated,
                        f"{entry.run_seconds:.2f}",
                    ]
                    for entry in collector.experiments
                ],
            )
        )
    summary = summarize_snapshots(collector.snapshots)
    if summary.runs:
        parts.append("")
        parts.append(f"instrumented runs: {summary.runs}")
        rows = [
            [block, f"{entry['seconds'] * 1000.0:.2f}", int(entry["count"])]
            for block, entry in sorted(summary.blocks.items())
        ]
        if rows:
            parts.append(format_table(["block", "wall ms", "count"], rows))
        counts = [
            [name, summary.metrics.value(name)]
            for name in summary.metrics.names()
        ]
        if counts:
            parts.append(format_table(["metric", "value"], counts))
    if collector.batches:
        parts.append("")
        parts.append(
            f"executor batches: {collector.batches} "
            f"({collector.batch_seconds:.2f}s wall)"
        )
    if len(parts) == 1:
        parts.append("(nothing recorded — telemetry was off)")
    return "\n".join(parts)


def perf_trajectory(collector: Collector) -> dict:
    """The ``BENCH_telemetry.json`` payload: per-experiment perf over a run.

    A stable, versioned artifact CI can diff across commits: wall seconds and
    executor activity per experiment, plus capture-wide totals (instrumented
    runs, sim event-loop seconds, events executed).
    """
    summary = summarize_snapshots(collector.snapshots)
    return {
        "version": 1,
        "kind": "telemetry-trajectory",
        "experiments": [entry.to_dict() for entry in collector.experiments],
        "totals": {
            "wall_seconds": sum(e.wall_seconds for e in collector.experiments),
            "runs_executed": sum(e.runs_executed for e in collector.experiments),
            "cache_hits": sum(e.cache_hits for e in collector.experiments),
            "instrumented_runs": summary.runs,
            "sim_loop_seconds": summary.block_seconds("sim.loop"),
            "scheduler_run_seconds": summary.block_seconds("scheduler.run"),
            "sim_events": summary.metric("sim.events"),
            "executor_batches": collector.batches,
            "executor_batch_seconds": collector.batch_seconds,
        },
    }


def write_bench_telemetry(path, collector: Collector) -> dict:
    """Write the perf-trajectory artifact; returns the payload written."""
    import json
    from pathlib import Path

    payload = perf_trajectory(collector)
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")
    return payload


def profile_rows(snapshots: Sequence[TelemetrySnapshot]) -> list[list]:
    """Per-run profile rows (name, scheduler wall ms, sim wall ms) for reports."""
    return [
        [
            snapshot.name,
            f"{snapshot.profile_seconds('scheduler.run') * 1000.0:.2f}",
            f"{snapshot.profile_seconds('sim.loop') * 1000.0:.2f}",
        ]
        for snapshot in snapshots
    ]
