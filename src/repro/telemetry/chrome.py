"""Chrome trace-event JSON export (Perfetto / ``chrome://tracing``).

Converts the repository's :class:`~repro.trace.record.Trace` vocabulary —
spans, instants, counter samples — into the Trace Event Format both viewers
load: complete events (``"ph": "X"``), instant events (``"ph": "i"``), and
counter events (``"ph": "C"``), plus metadata events naming each process and
thread. Timestamps convert from simulated nanoseconds to the format's
microseconds.

One exported file can hold many runs: each telemetry snapshot (or recorded
run trace) becomes its own ``pid``, and each track within it a ``tid``, so a
``--trace`` capture of a whole experiment opens as a stack of per-run
process groups.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.pipeline.scheduler_base import RunResult
from repro.telemetry.session import TelemetrySnapshot
from repro.trace.record import Trace, record_run

#: Keys every emitted trace event carries (the validation contract).
REQUIRED_EVENT_KEYS = ("ph", "ts", "pid", "tid", "name")


def _metadata_event(name: str, pid: int, tid: int, value: str) -> dict:
    return {
        "ph": "M",
        "ts": 0,
        "pid": pid,
        "tid": tid,
        "name": name,
        "args": {"name": value},
    }


def chrome_events_from_trace(trace: Trace, pid: int = 1) -> list[dict]:
    """Flatten one event trace into trace-event dicts under process *pid*.

    Tracks map to stable ``tid`` values (sorted track order) and are named
    with ``thread_name`` metadata; counter tracks keep their own ``ph: "C"``
    series keyed by track name.
    """
    events: list[dict] = [_metadata_event("process_name", pid, 0, trace.name)]
    tids = {track: tid for tid, track in enumerate(trace.tracks(), start=1)}
    for track, tid in tids.items():
        events.append(_metadata_event("thread_name", pid, tid, track))
    for span in trace.spans:
        events.append(
            {
                "ph": "X",
                "ts": span.start / 1000.0,
                "dur": span.duration / 1000.0,
                "pid": pid,
                "tid": tids[span.track],
                "name": span.name,
                "cat": span.track,
            }
        )
    for instant in trace.instants:
        events.append(
            {
                "ph": "i",
                "ts": instant.time / 1000.0,
                "pid": pid,
                "tid": tids[instant.track],
                "name": instant.name,
                "cat": instant.track,
                "s": "t",
            }
        )
    for sample in trace.counters:
        events.append(
            {
                "ph": "C",
                "ts": sample.time / 1000.0,
                "pid": pid,
                "tid": tids[sample.track],
                "name": sample.track,
                "args": {"value": sample.value},
            }
        )
    return events


def chrome_trace(
    snapshots: Iterable[TelemetrySnapshot | Trace],
) -> dict:
    """Build a complete Chrome trace document from snapshots and/or traces."""
    events: list[dict] = []
    for pid, item in enumerate(snapshots, start=1):
        trace = item.trace if isinstance(item, TelemetrySnapshot) else item
        events.extend(chrome_events_from_trace(trace, pid=pid))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.telemetry.chrome"},
    }


def chrome_trace_from_results(results: Sequence[RunResult]) -> dict:
    """Chrome trace document for finished runs.

    Runs that carry a telemetry snapshot export it directly; runs without one
    fall back to :func:`repro.trace.record.record_run`, so the exporter works
    on any RunResult regardless of how it was collected.
    """
    items: list[TelemetrySnapshot | Trace] = []
    for result in results:
        if result.telemetry is not None:
            items.append(result.telemetry)
        else:
            items.append(record_run(result))
    return chrome_trace(items)


def save_chrome_trace(
    path: str | Path, snapshots: Iterable[TelemetrySnapshot | Trace]
) -> dict:
    """Write a Chrome trace JSON file; returns the document written."""
    document = chrome_trace(snapshots)
    Path(path).write_text(json.dumps(document), encoding="utf-8")
    return document


def validate_chrome_trace(document: dict) -> int:
    """Check a trace document against the event contract.

    Returns the number of events; raises ``ValueError`` on the first event
    missing a required key (``ph``/``ts``/``pid``/``tid``/``name``) or on a
    document without a ``traceEvents`` list. Used by the CI artifact gate.
    """
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("chrome trace document has no traceEvents list")
    for position, event in enumerate(events):
        missing = [key for key in REQUIRED_EVENT_KEYS if key not in event]
        if missing:
            raise ValueError(
                f"traceEvents[{position}] missing required keys: {', '.join(missing)}"
            )
    return len(events)
