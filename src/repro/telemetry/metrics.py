"""Counters, gauges, and histograms for run telemetry.

The :class:`MetricsRegistry` is the numeric half of a telemetry session:
probes increment counters (frames triggered, VSync edges, cache hits), set
gauges (last queue depth), and feed histograms (per-frame wall times, span
durations). Everything is JSON-able so registries survive the executor's
process-pool wire round-trip and merge across runs for fleet-level summaries.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterator, Mapping

from repro.errors import ConfigurationError


@dataclasses.dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += amount

    def to_dict(self) -> dict:
        return {"kind": "counter", "value": self.value}


@dataclasses.dataclass
class Gauge:
    """A point-in-time value (last observed queue depth, current mode)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def to_dict(self) -> dict:
        return {"kind": "gauge", "value": self.value}


@dataclasses.dataclass
class Histogram:
    """Summary statistics of an observed distribution.

    Keeps count / sum / min / max rather than raw samples so a histogram's
    wire form stays O(1) regardless of run length.
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "kind": "histogram",
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class MetricsRegistry:
    """Named counters/gauges/histograms, get-or-create by name.

    A name belongs to exactly one instrument kind; asking for the same name
    with a different kind is a configuration error, which catches track-name
    typos early instead of silently splitting a metric in two.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, kind):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise ConfigurationError(
                f"metric {name!r} is a {type(instrument).__name__.lower()}, "
                f"not a {kind.__name__.lower()}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        return iter(self._instruments.values())

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def value(self, name: str) -> float | None:
        """Current value of a counter/gauge, or a histogram's mean."""
        instrument = self._instruments.get(name)
        if instrument is None:
            return None
        if isinstance(instrument, Histogram):
            return instrument.mean
        return instrument.value

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (counters add, gauges take the
        other's value, histograms combine their summaries)."""
        for instrument in other:
            if isinstance(instrument, Counter):
                self.counter(instrument.name).inc(instrument.value)
            elif isinstance(instrument, Gauge):
                self.gauge(instrument.name).set(instrument.value)
            else:
                mine = self.histogram(instrument.name)
                mine.count += instrument.count
                mine.total += instrument.total
                mine.min = min(mine.min, instrument.min)
                mine.max = max(mine.max, instrument.max)

    def to_dict(self) -> dict:
        """JSON-able form, keyed by metric name."""
        return {name: self._instruments[name].to_dict() for name in sorted(self._instruments)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "MetricsRegistry":
        registry = cls()
        for name, payload in data.items():
            kind = payload.get("kind")
            if kind == "counter":
                registry.counter(name).value = payload["value"]
            elif kind == "gauge":
                registry.gauge(name).set(payload["value"])
            elif kind == "histogram":
                histogram = registry.histogram(name)
                histogram.count = payload["count"]
                histogram.total = payload["total"]
                histogram.min = payload["min"] if payload["min"] is not None else math.inf
                histogram.max = payload["max"] if payload["max"] is not None else -math.inf
            else:
                raise ConfigurationError(f"unknown metric kind {kind!r} for {name!r}")
        return registry
