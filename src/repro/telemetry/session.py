"""Telemetry sessions: the per-run recorder behind every probe.

A :class:`Telemetry` session owns three stores:

- an event :class:`~repro.trace.record.Trace` (spans / instants / counter
  samples in *simulated* nanoseconds) that probes append to;
- a :class:`~repro.telemetry.metrics.MetricsRegistry` of counters, gauges,
  and histograms;
- a wall-clock profile: named blocks measured with ``time.perf_counter``
  (scheduler run time, sim event-loop self-time, executor batches).

Disabled telemetry is the :data:`NULL_TELEMETRY` singleton whose probes are
shared no-ops and which never allocates a store — schedulers built without a
session register **zero** telemetry hooks, so the disabled path costs one
branch at construction and nothing per frame.

A finished session freezes into a :class:`TelemetrySnapshot`, the JSON-able
form that rides on ``RunResult.telemetry`` across the executor's process-pool
wire (see ``repro.exec.serialize``).
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
from typing import Mapping

from repro.errors import ConfigurationError
from repro.telemetry.metrics import MetricsRegistry
from repro.trace.record import Trace

#: Bump when the snapshot wire layout changes (folded into the RunResult
#: schema via repro.exec.serialize).
TELEMETRY_SCHEMA_VERSION = 1


class Probe:
    """A named emission point bound to one session and one track.

    Components hold a probe and emit spans (named intervals), instants (point
    events), and counter samples — all in simulated nanoseconds — plus
    registry metrics namespaced under the probe's track.
    """

    __slots__ = ("session", "track")

    def __init__(self, session: "Telemetry", track: str) -> None:
        self.session = session
        self.track = track

    @property
    def enabled(self) -> bool:
        return True

    def span(self, name: str, start: int, end: int) -> None:
        """Record a completed interval on this probe's track."""
        self.session.trace.add_span(self.track, name, start, end)

    def instant(self, name: str, time_ns: int) -> None:
        """Record a point event on this probe's track."""
        self.session.trace.add_instant(self.track, name, time_ns)

    def counter(self, time_ns: int, value: float, name: str | None = None) -> None:
        """Sample a numeric counter track (defaults to this probe's track)."""
        self.session.trace.add_counter(name or self.track, time_ns, value)

    def count(self, metric: str, amount: float = 1.0) -> None:
        """Increment a registry counter namespaced under this track."""
        self.session.metrics.counter(f"{self.track}.{metric}").inc(amount)

    def gauge(self, metric: str, value: float) -> None:
        """Set a registry gauge namespaced under this track."""
        self.session.metrics.gauge(f"{self.track}.{metric}").set(value)

    def observe(self, metric: str, value: float) -> None:
        """Feed a registry histogram namespaced under this track."""
        self.session.metrics.histogram(f"{self.track}.{metric}").observe(value)


class NullProbe:
    """The do-nothing probe: every emission method returns immediately."""

    __slots__ = ()

    @property
    def enabled(self) -> bool:
        return False

    def span(self, name: str, start: int, end: int) -> None:
        pass

    def instant(self, name: str, time_ns: int) -> None:
        pass

    def counter(self, time_ns: int, value: float, name: str | None = None) -> None:
        pass

    def count(self, metric: str, amount: float = 1.0) -> None:
        pass

    def gauge(self, metric: str, value: float) -> None:
        pass

    def observe(self, metric: str, value: float) -> None:
        pass


#: Shared no-op probe handed out by disabled telemetry.
NULL_PROBE = NullProbe()


@dataclasses.dataclass(frozen=True)
class TelemetrySnapshot:
    """The frozen, JSON-able record of one telemetry session.

    Attributes:
        name: Session label (scheduler\\@scenario by convention).
        trace: Event trace in simulated nanoseconds.
        metrics: Wire form of the session's metrics registry.
        profile: Wall-clock blocks — name to ``{"seconds", "count"}``.
    """

    name: str
    trace: Trace
    metrics: dict
    profile: dict

    def to_dict(self) -> dict:
        from repro.trace.schema import event_trace_to_payload

        return {
            "version": TELEMETRY_SCHEMA_VERSION,
            "name": self.name,
            "trace": event_trace_to_payload(self.trace),
            "metrics": self.metrics,
            "profile": self.profile,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "TelemetrySnapshot":
        from repro.trace.schema import event_trace_from_payload

        version = data.get("version")
        if version != TELEMETRY_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported telemetry snapshot version {version!r} "
                f"(expected {TELEMETRY_SCHEMA_VERSION})"
            )
        return cls(
            name=data["name"],
            trace=event_trace_from_payload(data["trace"]),
            metrics=dict(data["metrics"]),
            profile={key: dict(value) for key, value in data["profile"].items()},
        )

    def metrics_registry(self) -> MetricsRegistry:
        """Rehydrate the metrics registry from its wire form."""
        return MetricsRegistry.from_dict(self.metrics)

    def profile_seconds(self, block: str) -> float:
        """Total wall-clock seconds recorded for one profile block."""
        entry = self.profile.get(block)
        return entry["seconds"] if entry else 0.0


class Telemetry:
    """A live, enabled telemetry session for one scheduler run."""

    enabled = True

    def __init__(self, name: str = "telemetry") -> None:
        self.name = name
        self.trace = Trace(name=name)
        self.metrics = MetricsRegistry()
        self._profile: dict[str, dict[str, float]] = {}

    def probe(self, track: str) -> Probe:
        """A probe bound to *track* on this session."""
        return Probe(self, track)

    # ------------------------------------------------------- wall-clock blocks
    def add_profile(self, block: str, seconds: float, count: int = 1) -> None:
        """Accumulate wall-clock time under a named profile block."""
        entry = self._profile.setdefault(block, {"seconds": 0.0, "count": 0})
        entry["seconds"] += seconds
        entry["count"] += count

    @contextlib.contextmanager
    def profile_block(self, block: str):
        """Measure the wall-clock time of a ``with`` body."""
        started = time.perf_counter()
        try:
            yield self
        finally:
            self.add_profile(block, time.perf_counter() - started)

    def profile_seconds(self, block: str) -> float:
        entry = self._profile.get(block)
        return entry["seconds"] if entry else 0.0

    # --------------------------------------------------------------- snapshot
    def snapshot(self, name: str | None = None) -> TelemetrySnapshot:
        """Freeze the session into its wire-able form."""
        return TelemetrySnapshot(
            name=name or self.name,
            trace=self.trace,
            metrics=self.metrics.to_dict(),
            profile={key: dict(value) for key, value in self._profile.items()},
        )


class NullTelemetry:
    """Disabled telemetry: shared no-op probes, no stores, no snapshot."""

    enabled = False

    @property
    def name(self) -> str:
        return "telemetry-off"

    def probe(self, track: str) -> NullProbe:
        return NULL_PROBE

    def add_profile(self, block: str, seconds: float, count: int = 1) -> None:
        pass

    @contextlib.contextmanager
    def profile_block(self, block: str):
        yield self

    def profile_seconds(self, block: str) -> float:
        return 0.0

    def snapshot(self, name: str | None = None) -> None:
        return None


#: The process-wide disabled session.
NULL_TELEMETRY = NullTelemetry()


def resolve_telemetry(
    telemetry: "Telemetry | NullTelemetry | bool | None",
    name: str = "telemetry",
) -> "Telemetry | NullTelemetry":
    """Normalize a telemetry argument into a session.

    ``None`` defers to the process-wide default (``repro.telemetry.runtime``),
    ``True``/``False`` force a fresh session or the null one, and an existing
    session passes through unchanged.
    """
    if telemetry is None:
        from repro.telemetry.runtime import new_run_session

        return new_run_session(name)
    if telemetry is True:
        return Telemetry(name)
    if telemetry is False:
        return NULL_TELEMETRY
    if isinstance(telemetry, (Telemetry, NullTelemetry)):
        return telemetry
    raise ConfigurationError(
        f"telemetry must be a Telemetry session, bool, or None, "
        f"got {type(telemetry).__name__}"
    )
