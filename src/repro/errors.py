"""Exception hierarchy for the D-VSync reproduction.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch library failures without masking programming errors such as
``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly.

    Raised for scheduling in the past, running a finished simulator, or
    cancelling an event twice.
    """


class BufferQueueError(ReproError):
    """A buffer-queue state-machine rule was violated.

    Raised for queueing a buffer that was never dequeued, releasing a buffer
    that is not acquired, or configuring an invalid capacity.
    """


class PipelineError(ReproError):
    """A rendering-pipeline stage was driven out of order."""


class ConfigurationError(ReproError):
    """A scheduler or device configuration is invalid or inconsistent."""


class WorkloadError(ReproError):
    """A workload trace or scenario definition is malformed."""


class PredictionError(ReproError):
    """An Input Prediction Layer curve could not be fitted or evaluated."""


class InjectedFaultError(ReproError):
    """An exception deliberately raised by the fault-injection layer.

    Crash-injection fault models raise this from listener callbacks to prove
    that containment (HAL listener isolation, the simulator's exception
    handler) keeps the run alive. It never indicates a library bug.
    """


class InvariantViolationError(ReproError):
    """A runtime invariant of the rendering architecture was violated.

    Raised at the end of ``run()`` by a *strict*
    :class:`~repro.verify.invariants.InvariantChecker` when any paper-derived
    invariant (buffer conservation, D-Timestamp monotonicity, the pre-render
    limit, rate-bound display, ...) was breached during the run. Non-strict
    checkers record violations in ``RunResult.extra["invariants"]`` instead.
    """


class FaultContainmentError(ReproError):
    """Fault containment gave up on keeping the run alive.

    Raised when the number of contained exceptions exceeds the injector's
    containment budget — the signal that the pipeline is not degrading
    gracefully but failing persistently, which should abort the run loudly
    rather than limp on forever.
    """


class ExecutionError(ReproError):
    """The supervised execution harness could not complete a run.

    Base class for operational failures of the *harness* (worker crashes,
    deadlines, unsalvageable batches) as opposed to failures of the simulated
    system, which the fault-injection layer models deliberately.
    """


class BudgetExceededError(ExecutionError):
    """A run tripped its deterministic :class:`~repro.exec.governor.ResourceBudget`.

    Raised by the :class:`~repro.exec.governor.BudgetGuard` when a simulation
    exceeds its event-count or sim-time budget. Unlike a wall-clock deadline,
    the trip point is a pure function of the spec and the budget: the same
    spec with the same budget fails at the identical event (count, sim-time,
    seq) on every host, every backend, and both engines.
    """


class WorkerCrashError(ExecutionError):
    """A process-pool worker died while executing a spec (SIGKILL, OOM, ...)."""


class DeadlineExceededError(ExecutionError):
    """A run exceeded its per-spec or executor-level deadline."""


class BatchExecutionError(ExecutionError):
    """One or more specs in a batch failed under the fail-fast policy.

    Carries the structured :class:`~repro.exec.supervisor.RunFailure` records
    on ``failures`` and the number of sibling results that were still salvaged
    on ``salvaged`` — the batch is not silently lost, the caller just asked to
    be told loudly.
    """

    def __init__(self, failures, salvaged: int = 0) -> None:
        self.failures = list(failures)
        self.salvaged = salvaged
        preview = "; ".join(f.describe() for f in self.failures[:3])
        if len(self.failures) > 3:
            preview += f"; ... {len(self.failures) - 3} more"
        super().__init__(
            f"{len(self.failures)} spec(s) failed "
            f"({salvaged} sibling result(s) salvaged): {preview}"
        )
