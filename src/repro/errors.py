"""Exception hierarchy for the D-VSync reproduction.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch library failures without masking programming errors such as
``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly.

    Raised for scheduling in the past, running a finished simulator, or
    cancelling an event twice.
    """


class BufferQueueError(ReproError):
    """A buffer-queue state-machine rule was violated.

    Raised for queueing a buffer that was never dequeued, releasing a buffer
    that is not acquired, or configuring an invalid capacity.
    """


class PipelineError(ReproError):
    """A rendering-pipeline stage was driven out of order."""


class ConfigurationError(ReproError):
    """A scheduler or device configuration is invalid or inconsistent."""


class WorkloadError(ReproError):
    """A workload trace or scenario definition is malformed."""


class PredictionError(ReproError):
    """An Input Prediction Layer curve could not be fitted or evaluated."""


class InjectedFaultError(ReproError):
    """An exception deliberately raised by the fault-injection layer.

    Crash-injection fault models raise this from listener callbacks to prove
    that containment (HAL listener isolation, the simulator's exception
    handler) keeps the run alive. It never indicates a library bug.
    """


class InvariantViolationError(ReproError):
    """A runtime invariant of the rendering architecture was violated.

    Raised at the end of ``run()`` by a *strict*
    :class:`~repro.verify.invariants.InvariantChecker` when any paper-derived
    invariant (buffer conservation, D-Timestamp monotonicity, the pre-render
    limit, rate-bound display, ...) was breached during the run. Non-strict
    checkers record violations in ``RunResult.extra["invariants"]`` instead.
    """


class FaultContainmentError(ReproError):
    """Fault containment gave up on keeping the run alive.

    Raised when the number of contained exceptions exceeds the injector's
    containment budget — the signal that the pipeline is not degrading
    gracefully but failing persistently, which should abort the run loudly
    rather than limp on forever.
    """
