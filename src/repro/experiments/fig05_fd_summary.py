"""Figure 5: average and maximum frame-drop percentage per configuration.

Summarizes drops as a fraction of total display time across the four
evaluated configurations: Pixel 5 (AOSP 60 Hz GLES, avg 3.4 %), Mate 40 Pro
(OH 90 Hz GLES, 3.5 %), Mate 60 Pro GLES (6.3 %) and Vulkan (7.0 %), with the
per-case maxima (20.8 %, 7.4 %, 27.5 %, 7.8 % — the starred bars). All four
configurations batch as one :class:`~repro.study.Study` matrix.
"""

from __future__ import annotations

from repro.display.device import MATE_40_PRO, MATE_60_PRO, MATE_60_PRO_VULKAN, PIXEL_5
from repro.experiments.base import ExperimentResult, mean, mean_sd
from repro.experiments.runner import scenario_spec
from repro.metrics.fdps import drop_fraction
from repro.study import Study, StudyResult
from repro.workloads.android_apps import app_scenarios
from repro.workloads.os_cases import os_case_scenarios

# (label, device, scenario list builder, baseline buffers, paper avg %, paper max %)
_CONFIGS = [
    ("Pixel 5 (AOSP 60Hz, GLES)", PIXEL_5, lambda: app_scenarios(), 3, 3.4, 20.8),
    ("Mate 40 Pro (OH 90Hz, GLES)", MATE_40_PRO, lambda: os_case_scenarios("mate40-gles"), 4, 3.5, 7.4),
    ("Mate 60 Pro (OH 120Hz, GLES)", MATE_60_PRO, lambda: os_case_scenarios("mate60-gles"), 4, 6.3, 27.5),
    ("Mate 60 Pro (OH 120Hz, Vulkan)", MATE_60_PRO_VULKAN, lambda: os_case_scenarios("mate60-vulkan"), 4, 7.0, 7.8),
]


def study(runs: int = 2, quick: bool = False) -> Study:
    """The Fig 5 matrix: configuration × scenario × repetition, one batch."""
    configs = []
    for label, device, build, buffers, paper_avg, paper_max in _CONFIGS:
        scenarios = build()
        if quick:
            scenarios = scenarios[::4]
        effective_runs = 1 if quick else runs
        configs.append((label, device, scenarios, buffers, paper_avg, paper_max, effective_runs))
    matrix = Study("fig05", analyze=lambda result: _analyze(result, configs))
    for label, device, scenarios, buffers, _pa, _pm, effective_runs in configs:
        for scenario in scenarios:
            for repetition in range(effective_runs):
                matrix.add(
                    scenario_spec(
                        scenario, device, "vsync", run=repetition, buffer_count=buffers
                    ),
                    config=label,
                    scenario=scenario.name,
                    rep=repetition,
                )
    return matrix


def _analyze(result: StudyResult, configs) -> ExperimentResult:
    rows = []
    comparisons: list[tuple] = []
    for label, _device, scenarios, _buffers, paper_avg, paper_max, _runs in configs:
        per_case = []
        for scenario in scenarios:
            chunk = [
                r
                for r in result.select(config=label, scenario=scenario.name)
                if r is not None
            ]
            per_case.append(mean([drop_fraction(r) * 100 for r in chunk]))
        (avg_pct, sd_pct), max_pct = mean_sd(per_case), max(per_case, default=0.0)
        rows.append([label, round(avg_pct, 1), round(max_pct, 1)])
        comparisons.append(
            (f"{label}: avg FD %", paper_avg, round(avg_pct, 1), round(sd_pct, 1))
        )
        comparisons.append((f"{label}: max FD %", paper_max, round(max_pct, 1)))
    return ExperimentResult(
        experiment_id="fig05",
        title="Frame drops as % of display time (VSync baseline, per configuration)",
        headers=["configuration", "avg FD %", "max FD %"],
        rows=rows,
        comparisons=comparisons,
        notes=(
            "Drop-prone cases only, as in the figure; percentages are janks "
            "over total display slots."
        ),
    )


def run(runs: int = 2, quick: bool = False) -> ExperimentResult:
    """Regenerate the Fig 5 summary."""
    return study(runs=runs, quick=quick).run()
