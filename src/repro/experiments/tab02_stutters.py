"""Table 2: user-perceived stutters in professional UX evaluation tasks.

Each task is a train of consecutive operations on the Mate 60 Pro; the
perceptual model of :mod:`repro.metrics.stutter` stands in for the trained
evaluators (a repeated frame during visible motion, §6.2). Paper average:
72.3 % fewer perceived stutters under D-VSync. The task × architecture ×
repetition grid batches as one :class:`~repro.study.Study` matrix.
"""

from __future__ import annotations

import dataclasses

from repro.core.config import DVSyncConfig
from repro.display.device import MATE_60_PRO
from repro.experiments.base import ExperimentResult, mean, mean_sd, pct_reduction
from repro.experiments.runner import scenario_spec
from repro.metrics.stutter import count_perceived_stutters
from repro.study import Study, StudyResult
from repro.workloads.scenarios import Scenario

PAPER_AVG_REDUCTION = 72.3


@dataclasses.dataclass(frozen=True)
class UXTask:
    """One Table 2 row: a scripted multi-operation task."""

    name: str
    description: str
    operations: int
    vsync_fdps: float
    profile: str
    paper_vsync: int
    paper_dvsync: int


# Operation counts follow the task scripts; per-task drop rates and tail
# profiles are chosen so the VSync-arm stutter counts land near the paper's,
# making the D-VSync counts predictions of the scheduler + perception model.
TASKS: tuple[UXTask, ...] = (
    UXTask("cold-top20", "Cold start/close Top 20 apps, slide multitasking", 45, 2.0, "fluctuation-deep", 20, 12),
    UXTask("cold-news", "Cold start Top 10 news/social apps, swipe up", 20, 4.5, "fluctuation", 28, 3),
    UXTask("hot-news", "Hot start Top 10 news/social apps, swipe up", 20, 4.0, "fluctuation", 25, 2),
    UXTask("game-switch", "Game to news app and back, x5", 10, 5.5, "fluctuation", 20, 3),
    UXTask("video-comments", "Short-video comments, next video, x5", 10, 5.5, "fluctuation", 20, 2),
    UXTask("music", "Music page swipes and play, x5", 10, 2.0, "scattered", 7, 0),
    UXTask("shopping", "Shopping products page and details", 12, 24.0, "skewed", 14, 13),
    UXTask("lifestyle", "Lifestyle ads and nearby restaurants", 16, 9.5, "fluctuation-deep", 40, 10),
)


def _task_scenario(task: UXTask, run_index: int) -> Scenario:
    return Scenario(
        name=f"ux-{task.name}",
        description=task.description,
        refresh_hz=MATE_60_PRO.refresh_hz,
        target_vsync_fdps=task.vsync_fdps,
        profile=task.profile,
        duration_ms=400.0,
        bursts=task.operations,
        burst_period_ms=600.0,
    )


def study(runs: int = 3, quick: bool = False) -> Study:
    """The Table 2 matrix: task × architecture × repetition, one batch."""
    tasks = TASKS[:4] if quick else TASKS
    effective_runs = 2 if quick else runs
    matrix = Study(
        "tab02", analyze=lambda result: _analyze(result, tasks, effective_runs)
    )
    for task in tasks:
        scenario = _task_scenario(task, 0)
        for repetition in range(effective_runs):
            matrix.add(
                scenario_spec(
                    scenario, MATE_60_PRO, "vsync", run=repetition, buffer_count=4
                ),
                task=task.name,
                architecture="vsync",
                rep=repetition,
            )
        for repetition in range(effective_runs):
            matrix.add(
                scenario_spec(
                    scenario,
                    MATE_60_PRO,
                    "dvsync",
                    run=repetition,
                    dvsync_config=DVSyncConfig(buffer_count=4),
                ),
                task=task.name,
                architecture="dvsync",
                rep=repetition,
            )
    return matrix


def _analyze(result: StudyResult, tasks, effective_runs: int) -> ExperimentResult:
    rows = []
    vsync_totals, dvsync_totals = [], []
    reductions = []
    for task in tasks:
        scenario = _task_scenario(task, 0)
        vsync_counts, dvsync_counts = [], []
        for repetition in range(effective_runs):
            # The perception model needs the animation-speed curve; rebuild
            # the (deterministic) driver the spec describes for analysis.
            driver = scenario.build_driver(repetition)
            vsync_run = result.get(
                task=task.name, architecture="vsync", rep=repetition
            )
            dvsync_run = result.get(
                task=task.name, architecture="dvsync", rep=repetition
            )
            if vsync_run is None or dvsync_run is None:
                continue  # keep-going hole: drop the pair, keep the task
            vsync_counts.append(
                count_perceived_stutters(vsync_run, speed_at=driver.animation_speed)
            )
            dvsync_counts.append(
                count_perceived_stutters(dvsync_run, speed_at=driver.animation_speed)
            )
        vsync_stutters = mean(vsync_counts)
        dvsync_stutters = mean(dvsync_counts)
        vsync_totals.append(vsync_stutters)
        dvsync_totals.append(dvsync_stutters)
        reductions.append(pct_reduction(vsync_stutters, dvsync_stutters))
        rows.append(
            [
                task.description,
                f"{vsync_stutters:.0f} (paper {task.paper_vsync})",
                f"{dvsync_stutters:.0f} (paper {task.paper_dvsync})",
                f"{reductions[-1]:.0f}%",
            ]
        )
    measured_reduction = pct_reduction(sum(vsync_totals), sum(dvsync_totals))
    return ExperimentResult(
        experiment_id="tab02",
        title="Perceived stutters per UX task (Mate 60 Pro)",
        headers=["task", "vsync", "dvsync", "reduction"],
        rows=rows,
        comparisons=[
            (
                "avg stutter reduction (%)",
                PAPER_AVG_REDUCTION,
                round(measured_reduction, 1),
                round(mean_sd(reductions)[1], 1),
            ),
        ],
        notes=(
            "Stutters are perceived drop episodes: >=2 consecutive missed "
            "refreshes, or a single miss during above-JND motion."
        ),
    )


def run(runs: int = 3, quick: bool = False) -> ExperimentResult:
    """Regenerate Table 2."""
    return study(runs=runs, quick=quick).run()
