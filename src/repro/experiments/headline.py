"""The paper's headline averages (§1, §6).

Aggregates the figure experiments into the three numbers the abstract leads
with: frame drops −72.7 %, user-perceptible stutters −72.3 %, rendering
latency −31.1 %.

The six source experiments form one :class:`~repro.study.CompositeStudy`:
their matrices union into a single executor batch, and any spec a source
figure shares with another (or that ``--all`` already ran) collapses by
content hash instead of simulating again.
"""

from __future__ import annotations

from repro.experiments import (
    fig11_apps_fdps,
    fig12_oscases_vulkan,
    fig13_oscases_gles,
    fig14_games,
    fig15_latency,
    tab02_stutters,
)
from repro.experiments.base import ExperimentResult, mean
from repro.study import CompositeStudy

PAPER_FD_REDUCTION = 72.7
PAPER_STUTTER_REDUCTION = 72.3
PAPER_LATENCY_REDUCTION = 31.1


def study(runs: int = 2, quick: bool = False) -> CompositeStudy:
    """The headline matrix: every source figure's cells, one batch."""
    return CompositeStudy(
        "headline",
        parts=[
            fig11_apps_fdps.study(runs=runs, quick=quick),
            fig12_oscases_vulkan.study(runs=runs, quick=quick),
            fig13_oscases_gles.study(runs=runs, quick=quick),
            fig14_games.study(runs=runs, quick=quick),
            fig15_latency.study(runs=runs, quick=quick),
            tab02_stutters.study(runs=runs, quick=quick),
        ],
        combine=_combine,
    )


def _combine(parts: list[ExperimentResult]) -> ExperimentResult:
    fig11, fig12, fig13, fig14, fig15, tab02 = parts
    fd_reductions = [
        fig11.measured("FDPS reduction, 4 bufs (%)"),
        fig12.measured("FDPS reduction (%)"),
        fig13.measured("Mate 40 Pro FDPS reduction (%)"),
        fig13.measured("Mate 60 Pro FDPS reduction (%)"),
        fig14.measured("FDPS reduction, 4 bufs (%)"),
    ]
    fd_reduction = mean(fd_reductions)
    stutter_reduction = tab02.measured("avg stutter reduction (%)")
    latency_reduction = fig15.measured("avg latency reduction (%)")

    rows = [
        ["frame drops (avg reduction %)", PAPER_FD_REDUCTION, round(fd_reduction, 1)],
        ["user-perceptible stutters (%)", PAPER_STUTTER_REDUCTION, round(stutter_reduction, 1)],
        ["rendering latency (%)", PAPER_LATENCY_REDUCTION, round(latency_reduction, 1)],
    ]
    return ExperimentResult(
        experiment_id="headline",
        title="Headline averages across all evaluations",
        headers=["metric", "paper", "measured"],
        rows=rows,
        comparisons=[
            ("frame-drop reduction (%)", PAPER_FD_REDUCTION, round(fd_reduction, 1)),
            ("stutter reduction (%)", PAPER_STUTTER_REDUCTION, round(stutter_reduction, 1)),
            ("latency reduction (%)", PAPER_LATENCY_REDUCTION, round(latency_reduction, 1)),
        ],
    )


def run(runs: int = 2, quick: bool = False) -> ExperimentResult:
    """Regenerate the headline averages from the underlying experiments."""
    return study(runs=runs, quick=quick).run()
