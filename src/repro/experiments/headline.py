"""The paper's headline averages (§1, §6).

Aggregates the figure experiments into the three numbers the abstract leads
with: frame drops −72.7 %, user-perceptible stutters −72.3 %, rendering
latency −31.1 %.
"""

from __future__ import annotations

from repro.experiments import (
    fig11_apps_fdps,
    fig12_oscases_vulkan,
    fig13_oscases_gles,
    fig14_games,
    fig15_latency,
    tab02_stutters,
)
from repro.experiments.base import ExperimentResult, mean

PAPER_FD_REDUCTION = 72.7
PAPER_STUTTER_REDUCTION = 72.3
PAPER_LATENCY_REDUCTION = 31.1


def run(runs: int = 2, quick: bool = False) -> ExperimentResult:
    """Regenerate the headline averages from the underlying experiments."""
    fig11 = fig11_apps_fdps.run(runs=runs, quick=quick)
    fig12 = fig12_oscases_vulkan.run(runs=runs, quick=quick)
    fig13 = fig13_oscases_gles.run(runs=runs, quick=quick)
    fig14 = fig14_games.run(runs=runs, quick=quick)
    fig15 = fig15_latency.run(runs=runs, quick=quick)
    tab02 = tab02_stutters.run(runs=runs, quick=quick)

    fd_reductions = [
        fig11.measured("FDPS reduction, 4 bufs (%)"),
        fig12.measured("FDPS reduction (%)"),
        fig13.measured("Mate 40 Pro FDPS reduction (%)"),
        fig13.measured("Mate 60 Pro FDPS reduction (%)"),
        fig14.measured("FDPS reduction, 4 bufs (%)"),
    ]
    fd_reduction = mean(fd_reductions)
    stutter_reduction = tab02.measured("avg stutter reduction (%)")
    latency_reduction = fig15.measured("avg latency reduction (%)")

    rows = [
        ["frame drops (avg reduction %)", PAPER_FD_REDUCTION, round(fd_reduction, 1)],
        ["user-perceptible stutters (%)", PAPER_STUTTER_REDUCTION, round(stutter_reduction, 1)],
        ["rendering latency (%)", PAPER_LATENCY_REDUCTION, round(latency_reduction, 1)],
    ]
    return ExperimentResult(
        experiment_id="headline",
        title="Headline averages across all evaluations",
        headers=["metric", "paper", "measured"],
        rows=rows,
        comparisons=[
            ("frame-drop reduction (%)", PAPER_FD_REDUCTION, round(fd_reduction, 1)),
            ("stutter reduction (%)", PAPER_STUTTER_REDUCTION, round(stutter_reduction, 1)),
            ("latency reduction (%)", PAPER_LATENCY_REDUCTION, round(latency_reduction, 1)),
        ],
    )
