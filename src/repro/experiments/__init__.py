"""Experiment harness: one module per paper figure/table (see DESIGN.md §5)."""

from repro.experiments.runner import (
    DEFAULT_RUNS,
    ScenarioComparison,
    add_comparison_arms,
    compare_scenario,
    comparison_from_study,
    execute_specs,
    run_driver,
    run_spec,
    scenario_spec,
    scenario_study,
)

__all__ = [
    "DEFAULT_RUNS",
    "ScenarioComparison",
    "add_comparison_arms",
    "compare_scenario",
    "comparison_from_study",
    "execute_specs",
    "run_driver",
    "run_spec",
    "scenario_spec",
    "scenario_study",
]
