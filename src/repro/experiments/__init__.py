"""Experiment harness: one module per paper figure/table (see DESIGN.md §5)."""

from repro.experiments.runner import (
    DEFAULT_RUNS,
    ScenarioComparison,
    compare_scenario,
    execute_specs,
    run_driver,
    run_spec,
    scenario_spec,
)

__all__ = [
    "DEFAULT_RUNS",
    "ScenarioComparison",
    "compare_scenario",
    "execute_specs",
    "run_driver",
    "run_spec",
    "scenario_spec",
]
