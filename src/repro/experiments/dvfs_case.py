"""Extension study: DVFS governing inside D-VSync's larger time window (§8).

The related work adjusts CPU/GPU frequency so each frame finishes just before
its VSync deadline. The paper's position: such governors compose with
D-VSync, which "gives a bigger time window for frame execution". This
experiment quantifies that claim: the same prediction-guided governor runs
with a 1-period budget under VSync and with the pre-render window under
D-VSync, reporting drops, mean clock level, and dynamic-energy savings.

The governor is a live object wrapped around the driver (its stats are read
back after the run), so the arm × repetition grid runs as live thunks on the
study layer, each returning the ``(fdps, level, saving)`` payload the
analysis aggregates.
"""

from __future__ import annotations

from repro.core.config import DVSyncConfig
from repro.display.device import PIXEL_5
from repro.experiments.base import ExperimentResult, mean
from repro.experiments.runner import run_driver
from repro.extensions.dvfs import FrequencyGovernor, GovernedDriver
from repro.metrics.fdps import fdps
from repro.study import Study, StudyResult
from repro.units import ms
from repro.workloads.distributions import SCATTERED, params_for_target_fdps
from repro.workloads.drivers import AnimationDriver

ARMS = {
    # (architecture, governor window in periods)
    "vsync, no DVFS": ("vsync", None),
    "vsync + DVFS (1-period window)": ("vsync", 1.0),
    "dvsync + DVFS (3-period window)": ("dvsync", 3.0),
}


def _base_driver(repetition: int, bursts: int) -> AnimationDriver:
    params = params_for_target_fdps(1.5, PIXEL_5.refresh_hz, profile=SCATTERED)
    return AnimationDriver(
        f"dvfs-case#{repetition}",
        params,
        duration_ns=ms(400),
        bursts=bursts,
        burst_period_ns=ms(600),
    )


def _run_arm(architecture: str, window: float | None, repetition: int, bursts: int):
    """One governed repetition; returns (fdps, mean level, energy saving)."""
    period = PIXEL_5.vsync_period
    driver = _base_driver(repetition, bursts)
    governor = None
    if window is not None:
        governor = FrequencyGovernor(window_periods=window, period_ns=period)
        driver = GovernedDriver(driver, governor)
    if architecture == "vsync":
        result = run_driver(driver, PIXEL_5, "vsync", buffer_count=3)
    else:
        result = run_driver(
            driver, PIXEL_5, "dvsync",
            dvsync_config=DVSyncConfig(buffer_count=4),
        )
    if governor is None:
        return fdps(result), None, None
    return fdps(result), governor.stats.mean_level, governor.stats.energy_saving_percent


def study(runs: int = 3, quick: bool = False) -> Study:
    """The §8 matrix: arm × repetition as live (governed) cells."""
    effective_runs = 2 if quick else runs
    bursts = 8 if quick else 16
    matrix = Study(
        "dvfs", analyze=lambda result: _analyze(result, effective_runs)
    )
    for label, (architecture, window) in ARMS.items():
        for repetition in range(effective_runs):
            matrix.add_live(
                lambda architecture=architecture, window=window, repetition=repetition: (
                    _run_arm(architecture, window, repetition, bursts)
                ),
                arm=label,
                rep=repetition,
            )
    return matrix


def _analyze(result: StudyResult, effective_runs: int) -> ExperimentResult:
    rows = []
    results = {}
    for label in ARMS:
        fdps_values, levels, savings = [], [], []
        for repetition in range(effective_runs):
            payload = result.get(arm=label, rep=repetition)
            if payload is None:
                continue
            fdps_value, level, saving = payload
            fdps_values.append(fdps_value)
            if level is not None:
                levels.append(level)
                savings.append(saving)
        results[label] = {
            "fdps": mean(fdps_values),
            "level": mean(levels) if levels else 1.0,
            "saving": mean(savings) if savings else 0.0,
        }
        rows.append(
            [label, round(results[label]["fdps"], 2),
             round(results[label]["level"], 2), round(results[label]["saving"], 1)]
        )
    vsync_gov = results["vsync + DVFS (1-period window)"]
    dvsync_gov = results["dvsync + DVFS (3-period window)"]
    return ExperimentResult(
        experiment_id="dvfs",
        title="DVFS governing composed with D-VSync's larger execution window",
        headers=["arm", "FDPS", "mean clock level", "dynamic energy saved (%)"],
        rows=rows,
        comparisons=[
            (
                "D-VSync lets the governor clock lower",
                "level(dvsync) < level(vsync)",
                f"{dvsync_gov['level']:.2f} < {vsync_gov['level']:.2f}"
                if dvsync_gov["level"] < vsync_gov["level"]
                else "NOT OBSERVED",
            ),
            (
                "extra energy saved by the larger window (pp)",
                "> 0",
                round(dvsync_gov["saving"] - vsync_gov["saving"], 1),
            ),
            (
                "drops stay lower than governed VSync",
                "yes",
                "yes" if dvsync_gov["fdps"] <= vsync_gov["fdps"] else "no",
            ),
        ],
        notes=(
            "Execution stretches as 1/f, dynamic energy scales as f² for "
            "fixed work; a 50 FPS-style down-clock under plain VSync janks "
            "(§8's critique of Pathania et al.), while D-VSync's window "
            "absorbs the stretched frames."
        ),
    )


def run(runs: int = 3, quick: bool = False) -> ExperimentResult:
    """Run the governor under both architectures' deadline budgets."""
    return study(runs=runs, quick=quick).run()
