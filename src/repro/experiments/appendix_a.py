"""Appendix A: the full 75-case OS rendering benchmark.

The appendix positions the 75 use cases as "a benchmark that comprehensively
tests the performance of the OS rendering service, providing a reference for
the follow-up research". This experiment runs the *entire* Table 3 suite —
drop-prone and clean cases alike — on the Mate 60 Pro GLES configuration and
prints the reference table: category, description, VSync and D-VSync FDPS.
"""

from __future__ import annotations

from repro.core.config import DVSyncConfig
from repro.display.device import MATE_60_PRO
from repro.experiments.base import ExperimentResult, mean, pct_reduction
from repro.experiments.runner import execute_specs, scenario_spec
from repro.metrics.fdps import fdps
from repro.workloads.os_cases import os_case_scenarios, use_case


def run(runs: int = 2, quick: bool = False) -> ExperimentResult:
    """Regenerate the Appendix A reference benchmark."""
    scenarios = os_case_scenarios("mate60-gles", drop_prone_only=False)
    if quick:
        scenarios = scenarios[::6]
    effective_runs = 1 if quick else runs
    rows = []
    vsync_values, dvsync_values = [], []
    clean_cases = 0
    # The whole 75-case × runs × 2-arm sweep goes out as one executor batch —
    # the benchmark the appendix positions for follow-up research is exactly
    # the embarrassingly-parallel shape the execution layer exists for.
    pairs = [
        (scenario, repetition)
        for scenario in scenarios
        for repetition in range(effective_runs)
    ]
    specs = [
        scenario_spec(scenario, MATE_60_PRO, "vsync", run=repetition, buffer_count=4)
        for scenario, repetition in pairs
    ] + [
        scenario_spec(
            scenario,
            MATE_60_PRO,
            "dvsync",
            run=repetition,
            dvsync_config=DVSyncConfig(buffer_count=4),
        )
        for scenario, repetition in pairs
    ]
    results = execute_specs(specs)
    vsync_results = results[: len(pairs)]
    dvsync_results = results[len(pairs) :]
    for index, scenario in enumerate(scenarios):
        case = use_case(scenario.name)
        chunk = slice(index * effective_runs, (index + 1) * effective_runs)
        vsync_case = mean([fdps(r) for r in vsync_results[chunk]])
        dvsync_case = mean([fdps(r) for r in dvsync_results[chunk]])
        vsync_values.append(vsync_case)
        dvsync_values.append(dvsync_case)
        if vsync_case == 0:
            clean_cases += 1
        rows.append(
            [case.number, case.category, case.abbreviation,
             round(vsync_case, 2), round(dvsync_case, 2)]
        )
    drop_prone = sum(1 for value in vsync_values if value > 0.2)
    return ExperimentResult(
        experiment_id="appendix",
        title="Appendix A: 75 OS use cases, Mate 60 Pro GLES reference benchmark",
        headers=["#", "category", "case", "vsync FDPS", "dvsync FDPS"],
        rows=rows,
        comparisons=[
            (
                "cases with frame drops under VSync (GLES)",
                20,
                drop_prone,
            ),
            (
                "suite-wide FDPS reduction (%)",
                ">60",
                round(pct_reduction(sum(vsync_values), sum(dvsync_values)), 1),
            ),
        ],
        notes=(
            "Cases absent from Fig 13 had no drops in the paper; their "
            "generators carry a zero key-frame rate and verify as clean here."
        ),
    )
