"""Appendix A: the full 75-case OS rendering benchmark.

The appendix positions the 75 use cases as "a benchmark that comprehensively
tests the performance of the OS rendering service, providing a reference for
the follow-up research". This experiment runs the *entire* Table 3 suite —
drop-prone and clean cases alike — on the Mate 60 Pro GLES configuration and
prints the reference table: category, description, VSync and D-VSync FDPS.
"""

from __future__ import annotations

from repro.core.config import DVSyncConfig
from repro.display.device import MATE_60_PRO
from repro.experiments.base import ExperimentResult, mean, pct_reduction
from repro.experiments.runner import scenario_spec
from repro.metrics.fdps import fdps
from repro.study import Study, StudyResult
from repro.workloads.os_cases import os_case_scenarios, use_case


def study(runs: int = 2, quick: bool = False) -> Study:
    """The Appendix A matrix: the whole 75-case × 2-arm × runs sweep.

    The benchmark the appendix positions for follow-up research is exactly
    the embarrassingly-parallel shape the study layer exists for — every
    cell fans out in one supervised batch.
    """
    scenarios = os_case_scenarios("mate60-gles", drop_prone_only=False)
    if quick:
        scenarios = scenarios[::6]
    effective_runs = 1 if quick else runs
    matrix = Study("appendix", analyze=lambda result: _analyze(result, scenarios))
    pairs = [
        (scenario, repetition)
        for scenario in scenarios
        for repetition in range(effective_runs)
    ]
    for scenario, repetition in pairs:
        matrix.add(
            scenario_spec(
                scenario, MATE_60_PRO, "vsync", run=repetition, buffer_count=4
            ),
            scenario=scenario.name,
            architecture="vsync",
            rep=repetition,
        )
    for scenario, repetition in pairs:
        matrix.add(
            scenario_spec(
                scenario,
                MATE_60_PRO,
                "dvsync",
                run=repetition,
                dvsync_config=DVSyncConfig(buffer_count=4),
            ),
            scenario=scenario.name,
            architecture="dvsync",
            rep=repetition,
        )
    return matrix


def _analyze(result: StudyResult, scenarios) -> ExperimentResult:
    rows = []
    vsync_values, dvsync_values = [], []
    clean_cases = 0
    for scenario in scenarios:
        case = use_case(scenario.name)
        vsync_case = mean(
            [
                fdps(r)
                for r in result.select(scenario=scenario.name, architecture="vsync")
                if r is not None
            ]
        )
        dvsync_case = mean(
            [
                fdps(r)
                for r in result.select(scenario=scenario.name, architecture="dvsync")
                if r is not None
            ]
        )
        vsync_values.append(vsync_case)
        dvsync_values.append(dvsync_case)
        if vsync_case == 0:
            clean_cases += 1
        rows.append(
            [case.number, case.category, case.abbreviation,
             round(vsync_case, 2), round(dvsync_case, 2)]
        )
    drop_prone = sum(1 for value in vsync_values if value > 0.2)
    return ExperimentResult(
        experiment_id="appendix",
        title="Appendix A: 75 OS use cases, Mate 60 Pro GLES reference benchmark",
        headers=["#", "category", "case", "vsync FDPS", "dvsync FDPS"],
        rows=rows,
        comparisons=[
            (
                "cases with frame drops under VSync (GLES)",
                20,
                drop_prone,
            ),
            (
                "suite-wide FDPS reduction (%)",
                ">60",
                round(pct_reduction(sum(vsync_values), sum(dvsync_values)), 1),
            ),
        ],
        notes=(
            "Cases absent from Fig 13 had no drops in the paper; their "
            "generators carry a zero key-frame rate and verify as clean here."
        ),
    )


def run(runs: int = 2, quick: bool = False) -> ExperimentResult:
    """Regenerate the Appendix A reference benchmark."""
    return study(runs=runs, quick=quick).run()
