"""Common shape for experiment modules.

Every experiment module exposes ``run(runs=..., quick=...) -> ExperimentResult``
that regenerates one paper artifact: the same rows/series the figure or table
reports, plus a paper-vs-measured block for EXPERIMENTS.md. ``quick=True``
trims repetitions for benchmark runs; the shape conclusions must hold in both
modes.
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import Sequence

from repro.metrics.report import format_table


@dataclasses.dataclass
class ExperimentResult:
    """One regenerated paper artifact."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list]
    comparisons: list[tuple[str, object, object]]
    notes: str = ""

    def render(self) -> str:
        """Full printable report: data table + paper-vs-measured block."""
        parts = [f"=== {self.experiment_id}: {self.title} ==="]
        if self.rows:
            parts.append(format_table(self.headers, self.rows))
        if self.comparisons:
            parts.append("")
            parts.append("paper vs measured:")
            parts.append(
                format_table(
                    ["metric", "paper", "measured"],
                    [list(c) for c in self.comparisons],
                )
            )
        if self.notes:
            parts.append("")
            parts.append(self.notes)
        return "\n".join(parts)

    def measured(self, metric: str):
        """Look up one measured value from the comparisons block."""
        for name, _, value in self.comparisons:
            if name == metric:
                return value
        raise KeyError(f"no comparison metric {metric!r} in {self.experiment_id}")


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean with an explicit zero for empty input."""
    values = list(values)
    return statistics.fmean(values) if values else 0.0


def pct_reduction(baseline: float, improved: float) -> float:
    """Percentage reduction, 0 when the baseline is 0."""
    if baseline <= 0:
        return 0.0
    return (baseline - improved) / baseline * 100.0
