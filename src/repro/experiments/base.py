"""Common shape for experiment modules.

Every experiment module exposes ``run(runs=..., quick=...) -> ExperimentResult``
that regenerates one paper artifact: the same rows/series the figure or table
reports, plus a paper-vs-measured block for EXPERIMENTS.md. ``quick=True``
trims repetitions for benchmark runs; the shape conclusions must hold in both
modes.
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import Sequence

from repro.metrics.report import format_table


@dataclasses.dataclass
class ExperimentResult:
    """One regenerated paper artifact."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list]
    #: ``(metric, paper, measured)`` triples, optionally extended to
    #: ``(metric, paper, measured, stdev)`` — the sample stdev across the
    #: repetitions behind the measured mean, so tables report spread.
    comparisons: list[tuple]
    notes: str = ""

    def render(self) -> str:
        """Full printable report: data table + paper-vs-measured block."""
        parts = [f"=== {self.experiment_id}: {self.title} ==="]
        if self.rows:
            parts.append(format_table(self.headers, self.rows))
        if self.comparisons:
            parts.append("")
            parts.append("paper vs measured:")
            headers = ["metric", "paper", "measured"]
            cells = [list(c) for c in self.comparisons]
            if any(len(c) > 3 for c in cells):
                headers.append("± sd")
                cells = [c + [""] * (4 - len(c)) for c in cells]
            parts.append(format_table(headers, cells))
        if self.notes:
            parts.append("")
            parts.append(self.notes)
        return "\n".join(parts)

    def measured(self, metric: str):
        """Look up one measured value from the comparisons block."""
        for comparison in self.comparisons:
            if comparison[0] == metric:
                return comparison[2]
        raise KeyError(f"no comparison metric {metric!r} in {self.experiment_id}")

    def spread(self, metric: str):
        """The per-cell sample stdev of a comparison, or ``None`` if absent."""
        for comparison in self.comparisons:
            if comparison[0] == metric:
                return comparison[3] if len(comparison) > 3 else None
        raise KeyError(f"no comparison metric {metric!r} in {self.experiment_id}")


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean with an explicit zero for empty input."""
    values = list(values)
    return statistics.fmean(values) if values else 0.0


def mean_sd(values: Sequence[float]) -> tuple[float, float]:
    """(mean, sample stdev) of a slice; stdev is 0.0 below two samples."""
    values = list(values)
    if not values:
        return 0.0, 0.0
    sd = statistics.stdev(values) if len(values) >= 2 else 0.0
    return statistics.fmean(values), sd


def pct_reduction(baseline: float, improved: float) -> float:
    """Percentage reduction, 0 when the baseline is 0."""
    if baseline <= 0:
        return 0.0
    return (baseline - improved) / baseline * 100.0
