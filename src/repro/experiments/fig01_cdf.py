"""Figure 1: CDF of frame rendering time (the power-law distribution).

Samples the aggregate frame-time model on a 60 Hz timebase and reports the
CDF at the figure's landmarks: ~78.3 % of frames finish within one VSync
period, and ~5 % exceed two periods — the frames triple buffering cannot
save.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.study import Study
from repro.units import to_ms
from repro.workloads.distributions import fig1_model

PAPER_WITHIN_ONE_PERIOD = 78.3
PAPER_BEYOND_TWO_PERIODS = 5.0
SAMPLE_COUNT = 40_000
PERIOD_MS = 1000 / 60


def study(runs: int = 1, quick: bool = False) -> Study:
    """Fig 1 is pure computation: a zero-cell study whose analysis samples
    the frame-time model directly."""
    count = 5_000 if quick else SAMPLE_COUNT
    return Study("fig01", analyze=lambda _result: _build(count))


def _build(count: int) -> ExperimentResult:
    model = fig1_model()
    times_ms = sorted(to_ms(w.total_ns) for w in model.generate(count))

    def cdf_at(x_ms: float) -> float:
        import bisect

        return bisect.bisect_right(times_ms, x_ms) / len(times_ms) * 100.0

    landmarks = [PERIOD_MS * k for k in (0.25, 0.5, 0.75, 1, 1.5, 2, 3, 4)]
    rows = [[f"{x:.1f} ms", f"{cdf_at(x):.1f} %"] for x in landmarks]
    within_one = cdf_at(PERIOD_MS)
    beyond_two = 100.0 - cdf_at(2 * PERIOD_MS)
    return ExperimentResult(
        experiment_id="fig01",
        title="CDF of frame rendering time on a 60 Hz screen",
        headers=["rendering time", "cumulative probability"],
        rows=rows,
        comparisons=[
            ("frames within 1 VSync period (%)", PAPER_WITHIN_ONE_PERIOD, round(within_one, 1)),
            ("frames beyond 2 VSync periods (%)", PAPER_BEYOND_TWO_PERIODS, round(beyond_two, 1)),
        ],
        notes=(
            "Most frames are short; the ~5 % beyond two periods are the key "
            "frames that cause stutters despite triple buffering."
        ),
    )


def run(runs: int = 1, quick: bool = False) -> ExperimentResult:
    """Regenerate the Fig 1 CDF."""
    return study(runs=runs, quick=quick).run()
