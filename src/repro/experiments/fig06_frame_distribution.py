"""Figure 6: distribution of frames (drop / buffer stuffing / direct).

Under triple-buffered VSync, most frames wait in the queue behind older
buffers after drops occur — the buffer-stuffing latency tax. Regenerates the
per-app stacked percentages for the 25 Pixel 5 apps, batched as one
:class:`~repro.study.Study` matrix.
"""

from __future__ import annotations

from repro.display.device import PIXEL_5
from repro.experiments.base import ExperimentResult, mean, mean_sd
from repro.experiments.runner import scenario_spec
from repro.metrics.frames import FrameOutcome, frame_distribution
from repro.study import Study, StudyResult
from repro.workloads.android_apps import app_scenarios


def study(runs: int = 2, quick: bool = False) -> Study:
    """The Fig 6 matrix: app × repetition under VSync, one batch."""
    scenarios = app_scenarios()
    if quick:
        scenarios = scenarios[::4]
        runs = 1
    matrix = Study("fig06", analyze=lambda result: _analyze(result, scenarios))
    for scenario in scenarios:
        for repetition in range(runs):
            matrix.add(
                scenario_spec(
                    scenario, PIXEL_5, "vsync", run=repetition, buffer_count=3
                ),
                scenario=scenario.name,
                rep=repetition,
            )
    return matrix


def _analyze(result: StudyResult, scenarios) -> ExperimentResult:
    rows = []
    stuffed_fracs, direct_fracs, drop_fracs = [], [], []
    for scenario in scenarios:
        fractions = {outcome: [] for outcome in FrameOutcome}
        for run_result in result.select(scenario=scenario.name):
            if run_result is None:
                continue
            distribution = frame_distribution(run_result)
            for outcome in FrameOutcome:
                fractions[outcome].append(distribution.fraction(outcome))
        drop = mean(fractions[FrameOutcome.DROP]) * 100
        stuffed = mean(fractions[FrameOutcome.STUFFED]) * 100
        direct = mean(fractions[FrameOutcome.DIRECT]) * 100
        drop_fracs.append(drop)
        stuffed_fracs.append(stuffed)
        direct_fracs.append(direct)
        rows.append(
            [scenario.name, f"{drop:.1f}", f"{stuffed:.1f}", f"{direct:.1f}"]
        )
    return ExperimentResult(
        experiment_id="fig06",
        title="Distribution of frames under VSync (Pixel 5, 25 apps)",
        headers=["app", "frame drop %", "buffer stuffing %", "direct composition %"],
        rows=rows,
        comparisons=[
            (
                "stuffed frames dominate (avg %, paper: 'most frames')",
                ">50",
                round(mean(stuffed_fracs), 1),
                round(mean_sd(stuffed_fracs)[1], 1),
            ),
            (
                "avg frame-drop share (%)",
                3.4,
                round(mean(drop_fracs), 1),
                round(mean_sd(drop_fracs)[1], 1),
            ),
        ],
    )


def run(runs: int = 2, quick: bool = False) -> ExperimentResult:
    """Regenerate the Fig 6 stacked bars."""
    return study(runs=runs, quick=quick).run()
