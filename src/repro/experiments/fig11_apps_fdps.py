"""Figure 11: FDPS reduction for 25 Android apps on Google Pixel 5.

Per app: VSync with triple buffering vs D-VSync with 4/5/7 buffers, 1,000
frames of swiping at 60 Hz. Paper averages: 2.04 → 0.58 (4 buf, −71.6 %),
0.25 (5 buf, −87.7 %), 0.06 (7 buf). The per-app contrast the paper calls
out: Walmart's scattered drops vanish, QQMusic's skewed distribution resists
even 7 buffers.

The whole app × buffer-sweep matrix (25 apps × 4 arms × runs) is one
:class:`~repro.study.Study`: the VSync arm is identical across the three
buffer sweeps, so dedup collapses it to a single run per app repetition.
"""

from __future__ import annotations

from repro.core.config import DVSyncConfig
from repro.display.device import PIXEL_5
from repro.experiments.base import ExperimentResult, mean_sd, pct_reduction
from repro.experiments.runner import add_comparison_arms, comparison_from_study
from repro.study import Study, StudyResult
from repro.workloads.android_apps import app_scenarios

PAPER = {"vsync": 2.04, 4: 0.58, 5: 0.25, 7: 0.06}
BUFFER_SWEEP = (4, 5, 7)


def study(runs: int = 3, quick: bool = False) -> Study:
    """The Fig 11 matrix: app × buffer sweep × repetition, one batch."""
    scenarios = app_scenarios()
    if quick:
        # Keep the analysis anchors (Walmart/QQMusic) plus a light spread.
        keep = {"Walmart", "QQMusic", "Facebook", "Reddit", "Bilibili", "Pinterest"}
        scenarios = [s for s in scenarios if s.name in keep]
        runs = min(runs, 2)
    matrix = Study("fig11", analyze=lambda result: _analyze(result, scenarios))
    for scenario in scenarios:
        for buffers in BUFFER_SWEEP:
            add_comparison_arms(
                matrix,
                scenario,
                PIXEL_5,
                vsync_buffers=3,
                dvsync_config=DVSyncConfig(buffer_count=buffers),
                runs=runs,
                scenario=scenario.name,
                buffers=buffers,
            )
    return matrix


def _analyze(result: StudyResult, scenarios) -> ExperimentResult:
    rows = []
    averages: dict[object, list[float]] = {"vsync": [], 4: [], 5: [], 7: []}
    for scenario in scenarios:
        row = [scenario.name]
        vsync_values = None
        for buffers in BUFFER_SWEEP:
            comparison = comparison_from_study(
                result, scenario.name, scenario=scenario.name, buffers=buffers
            )
            if vsync_values is None:
                vsync_values = comparison.vsync_fdps
                row.append(round(vsync_values, 2))
                averages["vsync"].append(vsync_values)
            row.append(round(comparison.dvsync_fdps, 2))
            averages[buffers].append(comparison.dvsync_fdps)
        rows.append(row)
    stats = {key: mean_sd(vals) for key, vals in averages.items()}
    avg = {key: pair[0] for key, pair in stats.items()}
    comparisons: list[tuple] = [
        (
            "avg FDPS, VSync 3 bufs",
            PAPER["vsync"],
            round(avg["vsync"], 2),
            round(stats["vsync"][1], 2),
        ),
    ]
    for buffers in BUFFER_SWEEP:
        comparisons.append(
            (
                f"avg FDPS, D-VSync {buffers} bufs",
                PAPER[buffers],
                round(avg[buffers], 2),
                round(stats[buffers][1], 2),
            )
        )
        paper_red = pct_reduction(PAPER["vsync"], PAPER[buffers])
        measured_red = pct_reduction(avg["vsync"], avg[buffers])
        comparisons.append(
            (
                f"FDPS reduction, {buffers} bufs (%)",
                round(paper_red, 1),
                round(measured_red, 1),
            )
        )
    return ExperimentResult(
        experiment_id="fig11",
        title="FDPS for 25 apps on Pixel 5 (60 Hz): VSync vs D-VSync 4/5/7 bufs",
        headers=["app", "vsync 3buf", "dvsync 4buf", "dvsync 5buf", "dvsync 7buf"],
        rows=rows,
        comparisons=comparisons,
        notes=(
            "Walmart (scattered long frames < 3 periods) is fixed by the "
            "default window; QQMusic's skewed distribution improves least, "
            "matching the paper's analysis."
        ),
    )


def run(runs: int = 3, quick: bool = False) -> ExperimentResult:
    """Regenerate the Fig 11 bars."""
    return study(runs=runs, quick=quick).run()
