"""Experiment registry: every paper artifact, addressable by id.

``run_experiment("fig11")`` regenerates one artifact;
``run_all()`` produces the full paper-vs-measured report that EXPERIMENTS.md
records.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.errors import ReproError
from repro.exec.executor import get_default_executor
from repro.experiments import (
    ablations,
    appendix_a,
    chromium_case,
    costs,
    dvfs_case,
    fig01_cdf,
    fig03_pixels,
    fig04_features,
    fig05_fd_summary,
    fig06_frame_distribution,
    fig07_touch_latency,
    fig09_scope,
    fig10_patterns,
    fig11_apps_fdps,
    fig12_oscases_vulkan,
    fig13_oscases_gles,
    fig14_games,
    fig15_latency,
    fig16_map_case,
    headline,
    power_case,
    tab01_platforms,
    tab02_stutters,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.runner import DEFAULT_RUNS
from repro.telemetry import runtime as telemetry_runtime

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig01": fig01_cdf.run,
    "fig03": fig03_pixels.run,
    "fig04": fig04_features.run,
    "fig05": fig05_fd_summary.run,
    "fig06": fig06_frame_distribution.run,
    "fig07": fig07_touch_latency.run,
    "fig09": fig09_scope.run,
    "fig10": fig10_patterns.run,
    "fig11": fig11_apps_fdps.run,
    "fig12": fig12_oscases_vulkan.run,
    "fig13": fig13_oscases_gles.run,
    "fig14": fig14_games.run,
    "fig15": fig15_latency.run,
    "fig16": fig16_map_case.run,
    "tab01": tab01_platforms.run,
    "tab02": tab02_stutters.run,
    "cost": costs.run,
    "power": power_case.run,
    "chromium": chromium_case.run,
    "appendix": appendix_a.run,
    "dvfs": dvfs_case.run,
    "ablations": ablations.run,
    "headline": headline.run,
}


def run_experiment(
    experiment_id: str, runs: int = DEFAULT_RUNS, quick: bool = False
) -> ExperimentResult:
    """Regenerate one paper artifact by id.

    Executor activity (simulated runs, cache hits, wall time) accumulated
    while the experiment ran is appended to the result's notes as an
    ``exec:`` line — observability, not data, so table/comparison content is
    unaffected by cache state or parallelism.
    """
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ReproError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    executor = get_default_executor()
    before = executor.stats.snapshot()
    started = time.perf_counter()
    result = runner(runs=runs, quick=quick)
    elapsed = time.perf_counter() - started
    delta = executor.stats.since(before)
    if delta.total_requests:
        line = f"exec: {delta.describe()}; experiment wall time {elapsed:.2f}s"
        result.notes = f"{result.notes}\n{line}" if result.notes else line
    if telemetry_runtime.enabled():
        telemetry_runtime.collector().note_experiment(
            experiment_id=experiment_id,
            wall_seconds=elapsed,
            runs_executed=delta.runs_executed,
            cache_hits=delta.cache_hits,
            deduplicated=delta.deduplicated,
            run_seconds=delta.run_seconds,
        )
    return result


def run_all(
    runs: int = DEFAULT_RUNS, quick: bool = False, skip: set[str] | None = None
) -> list[ExperimentResult]:
    """Regenerate every artifact (headline last, since it reruns others)."""
    skip = skip or set()
    order = [key for key in EXPERIMENTS if key not in skip and key != "headline"]
    results = [run_experiment(key, runs=runs, quick=quick) for key in order]
    if "headline" not in skip:
        results.append(run_experiment("headline", runs=runs, quick=quick))
    return results
