"""Experiment registry: every paper artifact, addressable by id.

``run_experiment("fig11")`` regenerates one artifact (its whole matrix goes
out as one supervised executor batch); ``run_all()`` unions **every**
experiment's study into a single global batch before analysing each, so the
full paper-vs-measured report that EXPERIMENTS.md records fans out at full
executor width with cross-experiment content-hash dedup.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.errors import ReproError
from repro.exec.executor import get_default_executor
from repro.experiments import (
    ablations,
    appendix_a,
    chromium_case,
    costs,
    dvfs_case,
    fig01_cdf,
    fig03_pixels,
    fig04_features,
    fig05_fd_summary,
    fig06_frame_distribution,
    fig07_touch_latency,
    fig09_scope,
    fig10_patterns,
    fig11_apps_fdps,
    fig12_oscases_vulkan,
    fig13_oscases_gles,
    fig14_games,
    fig15_latency,
    fig16_map_case,
    headline,
    power_case,
    tab01_platforms,
    tab02_stutters,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.runner import DEFAULT_RUNS
from repro.study import Study, StudyStats, execute_studies
from repro.telemetry import runtime as telemetry_runtime

_MODULES = {
    "fig01": fig01_cdf,
    "fig03": fig03_pixels,
    "fig04": fig04_features,
    "fig05": fig05_fd_summary,
    "fig06": fig06_frame_distribution,
    "fig07": fig07_touch_latency,
    "fig09": fig09_scope,
    "fig10": fig10_patterns,
    "fig11": fig11_apps_fdps,
    "fig12": fig12_oscases_vulkan,
    "fig13": fig13_oscases_gles,
    "fig14": fig14_games,
    "fig15": fig15_latency,
    "fig16": fig16_map_case,
    "tab01": tab01_platforms,
    "tab02": tab02_stutters,
    "cost": costs,
    "power": power_case,
    "chromium": chromium_case,
    "appendix": appendix_a,
    "dvfs": dvfs_case,
    "ablations": ablations,
    "headline": headline,
}

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    key: module.run for key, module in _MODULES.items()
}

#: ``experiment id -> study(runs=, quick=)`` — the declarative matrices
#: :func:`run_all` unions into one global batch.
STUDIES: dict[str, Callable[..., Study]] = {
    key: module.study for key, module in _MODULES.items()
}

#: Stats of the most recent :func:`run_all` union submission (observability;
#: the CLI's study progress line reads this).
last_union_stats: StudyStats | None = None


def run_experiment(
    experiment_id: str, runs: int = DEFAULT_RUNS, quick: bool = False
) -> ExperimentResult:
    """Regenerate one paper artifact by id.

    The experiment's whole matrix is submitted as a single supervised
    executor batch. Executor activity (simulated runs, cache hits, wall
    time) accumulated while the experiment ran is appended to the result's
    notes as an ``exec:`` line — observability, not data, so
    table/comparison content is unaffected by cache state or parallelism.
    """
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ReproError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    executor = get_default_executor()
    before = executor.stats.snapshot()
    started = time.perf_counter()
    result = runner(runs=runs, quick=quick)
    elapsed = time.perf_counter() - started
    delta = executor.stats.since(before)
    if delta.total_requests:
        line = f"exec: {delta.describe()}; experiment wall time {elapsed:.2f}s"
        result.notes = f"{result.notes}\n{line}" if result.notes else line
    if telemetry_runtime.enabled():
        telemetry_runtime.collector().note_experiment(
            experiment_id=experiment_id,
            wall_seconds=elapsed,
            runs_executed=delta.runs_executed,
            cache_hits=delta.cache_hits,
            deduplicated=delta.deduplicated,
            run_seconds=delta.run_seconds,
        )
    return result


def run_all(
    runs: int = DEFAULT_RUNS, quick: bool = False, skip: set[str] | None = None
) -> list[ExperimentResult]:
    """Regenerate every artifact from **one** global executor batch.

    Every experiment's study is built first (headline last, since it reuses
    the figure matrices), the union of all their spec cells goes out as a
    single ``map_outcome`` submission — identical specs across experiments
    (headline vs its source figures, shared baselines) collapse by content
    hash — and each study's analysis then runs over its keyed slice.
    """
    global last_union_stats
    skip = skip or set()
    order = [key for key in EXPERIMENTS if key not in skip and key != "headline"]
    if "headline" not in skip:
        order.append("headline")
    studies = [STUDIES[key](runs=runs, quick=quick) for key in order]

    executor = get_default_executor()
    before = executor.stats.snapshot()
    started = time.perf_counter()
    study_results, stats = execute_studies(studies, executor=executor)
    last_union_stats = stats

    results = []
    for key, study_result in zip(order, study_results):
        analysis_started = time.perf_counter()
        result = study_result.analyze()
        if telemetry_runtime.enabled():
            telemetry_runtime.collector().note_experiment(
                experiment_id=key,
                wall_seconds=time.perf_counter() - analysis_started,
            )
        results.append(result)

    elapsed = time.perf_counter() - started
    delta = executor.stats.since(before)
    if delta.total_requests and results:
        line = (
            f"exec (union of {len(order)} experiments): {delta.describe()}; "
            f"study: {stats.describe()}; wall time {elapsed:.2f}s"
        )
        last = results[-1]
        last.notes = f"{last.notes}\n{line}" if last.notes else line
    return results
