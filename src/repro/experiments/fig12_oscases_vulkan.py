"""Figure 12: FDPS reduction for OS use cases, Vulkan backend, Mate 60 Pro.

29 drop-prone cases at 120 Hz; both arms use 4 buffers (the OpenHarmony
render-service default). Paper: 8.42 → 1.39 (−83.5 %). All cases batch as
one :class:`~repro.study.Study` matrix.
"""

from __future__ import annotations

from repro.core.config import DVSyncConfig
from repro.display.device import MATE_60_PRO_VULKAN
from repro.experiments.base import ExperimentResult, mean_sd, pct_reduction
from repro.experiments.runner import add_comparison_arms, comparison_from_study
from repro.study import Study, StudyResult
from repro.workloads.os_cases import os_case_scenarios

PAPER_VSYNC = 8.42
PAPER_DVSYNC = 1.39


def study(runs: int = 3, quick: bool = False) -> Study:
    """The Fig 12 matrix: case × architecture × repetition, one batch."""
    scenarios = os_case_scenarios("mate60-vulkan")
    if quick:
        scenarios = scenarios[::4]
        runs = min(runs, 2)
    matrix = Study("fig12", analyze=lambda result: _analyze(result, scenarios))
    for scenario in scenarios:
        add_comparison_arms(
            matrix,
            scenario,
            MATE_60_PRO_VULKAN,
            vsync_buffers=4,
            dvsync_config=DVSyncConfig(buffer_count=4),
            runs=runs,
            scenario=scenario.name,
        )
    return matrix


def _analyze(result: StudyResult, scenarios) -> ExperimentResult:
    rows = []
    vsync_values, dvsync_values = [], []
    for scenario in scenarios:
        comparison = comparison_from_study(
            result, scenario.name, scenario=scenario.name
        )
        vsync_values.append(comparison.vsync_fdps)
        dvsync_values.append(comparison.dvsync_fdps)
        rows.append(
            [scenario.name, round(comparison.vsync_fdps, 2), round(comparison.dvsync_fdps, 2)]
        )
    (avg_v, sd_v), (avg_d, sd_d) = mean_sd(vsync_values), mean_sd(dvsync_values)
    return ExperimentResult(
        experiment_id="fig12",
        title="FDPS for OS use cases, Vulkan, Mate 60 Pro (120 Hz)",
        headers=["case", "vsync 4buf", "dvsync 4buf"],
        rows=rows,
        comparisons=[
            ("avg FDPS, VSync", PAPER_VSYNC, round(avg_v, 2), round(sd_v, 2)),
            ("avg FDPS, D-VSync", PAPER_DVSYNC, round(avg_d, 2), round(sd_d, 2)),
            (
                "FDPS reduction (%)",
                round(pct_reduction(PAPER_VSYNC, PAPER_DVSYNC), 1),
                round(pct_reduction(avg_v, avg_d), 1),
            ),
        ],
    )


def run(runs: int = 3, quick: bool = False) -> ExperimentResult:
    """Regenerate the Fig 12 bars."""
    return study(runs=runs, quick=quick).run()
