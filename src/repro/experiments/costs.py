"""§6.4: costs of D-VSync — execution time and memory.

Execution: the FPE + DTV management adds 102.6 µs per frame, 1.2 % of a
120 Hz period, running on little cores. Memory: one extra full-screen buffer
per app on Android (~10 MB), nothing extra on the Mate phones whose render
service already uses 4 buffers; the module's own state stays under 10 KB.
"""

from __future__ import annotations

from repro.core.config import DVSyncConfig
from repro.display.device import MATE_40_PRO, MATE_60_PRO, PIXEL_5
from repro.exec.spec import DriverSpec, RunSpec
from repro.experiments.base import ExperimentResult
from repro.metrics.memory import MODULE_STATE_BYTES, extra_memory_mb, queue_footprint
from repro.metrics.power import scheduler_overhead_per_frame_us
from repro.pipeline.frame import FrameCategory
from repro.study import Study, StudyResult
from repro.units import to_ms
from repro.workloads.distributions import params_for_target_fdps
from repro.workloads.drivers import AnimationDriver
from repro.units import ms

PAPER_OVERHEAD_US = 102.6
PAPER_OVERHEAD_SHARE = 1.2  # % of a 120 Hz period
PAPER_PIXEL5_EXTRA_MB = 10.0


def build_costs_driver(bursts: int) -> AnimationDriver:
    """RunSpec builder: the §6.4 mixed-category reference animation."""
    params = params_for_target_fdps(4.0, MATE_60_PRO.refresh_hz)
    return AnimationDriver(
        "costs-mixed",
        params,
        duration_ns=ms(400),
        bursts=bursts,
        burst_period_ns=ms(600),
        category_weights={
            FrameCategory.DETERMINISTIC_ANIMATION: 0.85,
            FrameCategory.PREDICTABLE_INTERACTION: 0.10,
            FrameCategory.REALTIME: 0.05,
        },
    )


def study(runs: int = 1, quick: bool = False) -> Study:
    """The §6.4 matrix: a single D-VSync reference run."""
    matrix = Study("cost", analyze=_analyze)
    matrix.add(
        RunSpec(
            driver=DriverSpec.of(
                "repro.experiments.costs:build_costs_driver",
                bursts=4 if quick else 10,
            ),
            device=MATE_60_PRO,
            architecture="dvsync",
            dvsync=DVSyncConfig(buffer_count=4),
        ),
        architecture="dvsync",
    )
    return matrix


def _analyze(study_result: StudyResult) -> ExperimentResult:
    result = study_result.get(architecture="dvsync")
    decoupled_frames = max(1, result.extra.get("routed_dvsync", len(result.frames)))
    overhead_us = result.scheduler_overhead_ns / decoupled_frames / 1000
    period_share = overhead_us / (to_ms(MATE_60_PRO.vsync_period) * 1000) * 100

    rows = [
        ["FPE+DTV execution per decoupled frame (µs)", round(overhead_us, 1)],
        ["share of a 120 Hz period (%)", round(period_share, 2)],
        ["mean per executed frame (µs)", round(scheduler_overhead_per_frame_us(result), 1)],
    ]
    memory_rows = []
    for device, dvsync_buffers in ((PIXEL_5, 4), (MATE_40_PRO, 4), (MATE_60_PRO, 4)):
        stock = queue_footprint(device, device.default_buffer_count)
        dvsync = queue_footprint(device, dvsync_buffers)
        extra = extra_memory_mb(device, dvsync_buffers)
        memory_rows.append(
            [
                device.name,
                f"{stock.queue_mb:.1f} MB ({stock.buffer_count} bufs)",
                f"{dvsync.queue_mb:.1f} MB ({dvsync.buffer_count} bufs)",
                f"{extra:.2f} MB",
            ]
        )
    pixel5_extra = extra_memory_mb(PIXEL_5, 4)
    return ExperimentResult(
        experiment_id="cost",
        title="Costs of D-VSync: execution time and memory",
        headers=["metric", "value"],
        rows=rows + [["--- memory ---", ""]] + [
            [f"{r[0]}: stock {r[1]}, dvsync {r[2]}, extra {r[3]}", ""] for r in memory_rows
        ],
        comparisons=[
            ("FPE+DTV per frame (µs)", PAPER_OVERHEAD_US, round(overhead_us, 1)),
            ("share of 120 Hz period (%)", PAPER_OVERHEAD_SHARE, round(period_share, 2)),
            ("Pixel 5 extra memory per app (MB)", PAPER_PIXEL5_EXTRA_MB, round(pixel5_extra, 1)),
            (
                "module state (KB, paper: <10)",
                "<10",
                round(MODULE_STATE_BYTES / 1024, 1),
            ),
        ],
    )


def run(runs: int = 1, quick: bool = False) -> ExperimentResult:
    """Regenerate the §6.4 cost accounting."""
    return study(runs=runs, quick=quick).run()
