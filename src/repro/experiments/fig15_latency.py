"""Figure 15: rendering-latency reduction per device.

The paper's script measures, across all recorded traces, the duration from
each frame's execution anchor to its present fence: 45.8 → 31.2 ms on
Pixel 5, 32.2 → 22.3 ms on Mate 40 Pro, 24.2 → 16.8 ms on Mate 60 Pro — a
31.1 % average reduction from eliminating buffer stuffing. All three
device panels batch as one :class:`~repro.study.Study` matrix.
"""

from __future__ import annotations

from repro.core.config import DVSyncConfig
from repro.display.device import MATE_40_PRO, MATE_60_PRO, PIXEL_5
from repro.experiments.base import ExperimentResult, mean, mean_sd, pct_reduction
from repro.experiments.runner import scenario_spec
from repro.metrics.latency import latency_summary
from repro.study import Study, StudyResult
from repro.workloads.android_apps import app_scenarios
from repro.workloads.os_cases import os_case_scenarios

PAPER = {
    "Google Pixel 5": (45.8, 31.2),
    "Mate 40 Pro": (32.2, 22.3),
    "Mate 60 Pro": (24.2, 16.8),
}
PAPER_AVG_REDUCTION = 31.1

_SETS = [
    (PIXEL_5, lambda: app_scenarios(), 3),
    (MATE_40_PRO, lambda: os_case_scenarios("mate40-gles"), 4),
    (MATE_60_PRO, lambda: os_case_scenarios("mate60-gles"), 4),
]


def study(runs: int = 2, quick: bool = False) -> Study:
    """The Fig 15 matrix: device × scenario × architecture × repetition."""
    devices = []
    for device, build, buffers in _SETS:
        scenarios = build()
        if quick:
            scenarios = scenarios[::4]
        effective_runs = 1 if quick else runs
        devices.append((device, scenarios, buffers, effective_runs))
    matrix = Study("fig15", analyze=lambda result: _analyze(result, devices))
    for device, scenarios, buffers, effective_runs in devices:
        dvsync_config = DVSyncConfig(buffer_count=max(4, buffers))
        pairs = [
            (scenario, repetition)
            for scenario in scenarios
            for repetition in range(effective_runs)
        ]
        for scenario, repetition in pairs:
            matrix.add(
                scenario_spec(
                    scenario, device, "vsync", run=repetition, buffer_count=buffers
                ),
                device=device.name,
                scenario=scenario.name,
                architecture="vsync",
                rep=repetition,
            )
        for scenario, repetition in pairs:
            matrix.add(
                scenario_spec(
                    scenario,
                    device,
                    "dvsync",
                    run=repetition,
                    dvsync_config=dvsync_config,
                ),
                device=device.name,
                scenario=scenario.name,
                architecture="dvsync",
                rep=repetition,
            )
    return matrix


def _analyze(result: StudyResult, devices) -> ExperimentResult:
    rows = []
    comparisons: list[tuple] = []
    reductions = []
    for device, _scenarios, _buffers, _effective_runs in devices:
        vsync_ms = [
            latency_summary(r).mean_ms
            for r in result.select(device=device.name, architecture="vsync")
            if r is not None
        ]
        dvsync_ms = [
            latency_summary(r).mean_ms
            for r in result.select(device=device.name, architecture="dvsync")
            if r is not None
        ]
        (avg_v, sd_v), (avg_d, sd_d) = mean_sd(vsync_ms), mean_sd(dvsync_ms)
        reduction = pct_reduction(avg_v, avg_d)
        reductions.append(reduction)
        rows.append([device.name, round(avg_v, 1), round(avg_d, 1), round(reduction, 1)])
        paper_v, paper_d = PAPER[device.name]
        comparisons.append(
            (f"{device.name}: VSync latency (ms)", paper_v, round(avg_v, 1), round(sd_v, 1))
        )
        comparisons.append(
            (f"{device.name}: D-VSync latency (ms)", paper_d, round(avg_d, 1), round(sd_d, 1))
        )
    comparisons.append(
        ("avg latency reduction (%)", PAPER_AVG_REDUCTION, round(mean(reductions), 1))
    )
    return ExperimentResult(
        experiment_id="fig15",
        title="Rendering-latency reduction per device",
        headers=["device", "vsync (ms)", "dvsync (ms)", "reduction (%)"],
        rows=rows,
        comparisons=comparisons,
        notes=(
            "Latency anchors follow §6.3: the VSync-app tick under VSync, the "
            "D-Timestamp under D-VSync; D-VSync's floor is the two-period "
            "pipeline with buffer stuffing eliminated."
        ),
    )


def run(runs: int = 2, quick: bool = False) -> ExperimentResult:
    """Regenerate the Fig 15 per-device latency summary."""
    return study(runs=runs, quick=quick).run()
