"""Figure 3: trend in pixels rendered per second across flagship phones.

Regenerates the scatter series (year, model, height x width x refresh) and
the headline ~25x growth factor since the iPhone 4 / Galaxy S era.
"""

from __future__ import annotations

from repro.display.trend import growth_factor, pixels_per_second_series
from repro.experiments.base import ExperimentResult
from repro.study import Study

PAPER_GROWTH_FACTOR = 25.0


def study(runs: int = 1, quick: bool = False) -> Study:
    """Fig 3 is static data: a zero-cell study."""
    return Study("fig03", analyze=lambda _result: _build())


def _build() -> ExperimentResult:
    rows = [
        [year, model, f"{pixels / 1e6:.1f} M"]
        for year, model, pixels in pixels_per_second_series()
    ]
    return ExperimentResult(
        experiment_id="fig03",
        title="Pixels to render per second, flagship phones 2010-2024",
        headers=["year", "model", "pixels/s"],
        rows=rows,
        comparisons=[
            ("growth factor since 2010", f"~{PAPER_GROWTH_FACTOR:.0f}x", f"{growth_factor():.1f}x"),
        ],
    )


def run(runs: int = 1, quick: bool = False) -> ExperimentResult:
    """Regenerate the Fig 3 series."""
    return study(runs=runs, quick=quick).run()
