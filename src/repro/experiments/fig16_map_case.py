"""Figure 16 / §6.5: the decoupling-aware map app case study.

Zooming with the ZDP registered through the IPL extension: 100 % of zoom
frame drops eliminated, latency reduced 30.2 %, at 151.6 µs/frame of ZDP
execution — all through the aware-channel APIs.

The app registers live predictor objects with the scheduler, so the cells
run as in-process live thunks (each returning one repetition's report)
rather than picklable RunSpecs; the study layer still keys, batches, and
aggregates them uniformly with the spec-backed matrices.
"""

from __future__ import annotations

from repro.apps.map_app import MapApp, expected_zdp_overhead_us
from repro.experiments.base import ExperimentResult, mean, pct_reduction
from repro.study import Study, StudyResult

PAPER_FDPS_REDUCTION = 100.0
PAPER_LATENCY_REDUCTION = 30.2
PAPER_ZDP_OVERHEAD_US = 151.6


def study(runs: int = 3, quick: bool = False) -> Study:
    """The Fig 16 matrix: architecture × repetition as live cells."""
    app = MapApp()
    effective_runs = 2 if quick else runs
    matrix = Study(
        "fig16", analyze=lambda result: _analyze(result, effective_runs)
    )

    def vsync_report(repetition: int):
        return app.report(*app.run_vsync(repetition))

    def dvsync_report(repetition: int):
        return app.report(*app.run_dvsync(repetition))

    for repetition in range(effective_runs):
        matrix.add_live(
            lambda repetition=repetition: vsync_report(repetition),
            architecture="vsync",
            rep=repetition,
        )
        matrix.add_live(
            lambda repetition=repetition: dvsync_report(repetition),
            architecture="dvsync",
            rep=repetition,
        )
    return matrix


def _analyze(result: StudyResult, effective_runs: int) -> ExperimentResult:
    vsync_fdps, dvsync_fdps = [], []
    vsync_latency, dvsync_latency = [], []
    zdp_overhead, prediction_error = [], []
    for repetition in range(effective_runs):
        report = result.get(architecture="vsync", rep=repetition)
        if report is not None:
            vsync_fdps.append(report.fdps)
            vsync_latency.append(report.mean_latency_ms)
        report = result.get(architecture="dvsync", rep=repetition)
        if report is not None:
            dvsync_fdps.append(report.fdps)
            dvsync_latency.append(report.mean_latency_ms)
            zdp_overhead.append(report.zdp_overhead_us_per_frame)
            prediction_error.append(report.prediction_error_mean)
    fdps_red = pct_reduction(mean(vsync_fdps), mean(dvsync_fdps))
    lat_red = pct_reduction(mean(vsync_latency), mean(dvsync_latency))
    rows = [
        ["FDPS", round(mean(vsync_fdps), 2), round(mean(dvsync_fdps), 2)],
        ["mean latency (ms)", round(mean(vsync_latency), 1), round(mean(dvsync_latency), 1)],
        ["ZDP overhead (µs/frame)", "-", round(mean(zdp_overhead), 1)],
        ["mean pinch prediction error", "-", round(mean(prediction_error), 4)],
    ]
    return ExperimentResult(
        experiment_id="fig16",
        title="Map app zooming: VSync 3 bufs vs decoupling-aware D-VSync 5 bufs",
        headers=["metric", "vsync", "dvsync+zdp"],
        rows=rows,
        comparisons=[
            ("zoom FDPS reduction (%)", PAPER_FDPS_REDUCTION, round(fdps_red, 1)),
            ("latency reduction (%)", PAPER_LATENCY_REDUCTION, round(lat_red, 1)),
            (
                "ZDP execution per frame (µs)",
                PAPER_ZDP_OVERHEAD_US,
                round(mean(zdp_overhead), 1),
            ),
            ("paper's modelled ZDP cost (µs)", PAPER_ZDP_OVERHEAD_US, expected_zdp_overhead_us()),
        ],
    )


def run(runs: int = 3, quick: bool = False) -> ExperimentResult:
    """Regenerate the Fig 16 panels."""
    return study(runs=runs, quick=quick).run()
