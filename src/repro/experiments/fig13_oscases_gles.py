"""Figure 13: FDPS reduction for OS use cases with the GLES backend.

Two panels: Mate 40 Pro (90 Hz, 9 drop-prone cases, 3.17 → 0.97, −69.4 %)
and Mate 60 Pro (120 Hz, 20 cases, 7.51 → 2.52, −66.4 %). Both arms use the
OpenHarmony default of 4 buffers. Both panels batch as one
:class:`~repro.study.Study` matrix.
"""

from __future__ import annotations

from repro.core.config import DVSyncConfig
from repro.display.device import MATE_40_PRO, MATE_60_PRO
from repro.experiments.base import ExperimentResult, mean_sd, pct_reduction
from repro.experiments.runner import add_comparison_arms, comparison_from_study
from repro.study import Study, StudyResult
from repro.workloads.os_cases import os_case_scenarios

PAPER = {
    "mate40-gles": {"vsync": 3.17, "dvsync": 0.97},
    "mate60-gles": {"vsync": 7.51, "dvsync": 2.52},
}
_DEVICES = {"mate40-gles": MATE_40_PRO, "mate60-gles": MATE_60_PRO}


def study(runs: int = 3, quick: bool = False) -> Study:
    """The Fig 13 matrix: panel × case × architecture × repetition."""
    panels = []
    for config, device in _DEVICES.items():
        scenarios = os_case_scenarios(config)
        if quick:
            scenarios = scenarios[::3]
        effective_runs = min(runs, 2) if quick else runs
        panels.append((config, device, scenarios, effective_runs))
    matrix = Study("fig13", analyze=lambda result: _analyze(result, panels))
    for config, device, scenarios, effective_runs in panels:
        for scenario in scenarios:
            add_comparison_arms(
                matrix,
                scenario,
                device,
                vsync_buffers=4,
                dvsync_config=DVSyncConfig(buffer_count=4),
                runs=effective_runs,
                panel=config,
                scenario=scenario.name,
            )
    return matrix


def _analyze(result: StudyResult, panels) -> ExperimentResult:
    rows = []
    comparisons: list[tuple] = []
    for config, device, scenarios, _effective_runs in panels:
        vsync_values, dvsync_values = [], []
        for scenario in scenarios:
            comparison = comparison_from_study(
                result, scenario.name, panel=config, scenario=scenario.name
            )
            vsync_values.append(comparison.vsync_fdps)
            dvsync_values.append(comparison.dvsync_fdps)
            rows.append(
                [
                    device.name,
                    scenario.name,
                    round(comparison.vsync_fdps, 2),
                    round(comparison.dvsync_fdps, 2),
                ]
            )
        (avg_v, sd_v), (avg_d, sd_d) = mean_sd(vsync_values), mean_sd(dvsync_values)
        paper = PAPER[config]
        comparisons.extend(
            [
                (
                    f"{device.name} avg FDPS, VSync",
                    paper["vsync"],
                    round(avg_v, 2),
                    round(sd_v, 2),
                ),
                (
                    f"{device.name} avg FDPS, D-VSync",
                    paper["dvsync"],
                    round(avg_d, 2),
                    round(sd_d, 2),
                ),
                (
                    f"{device.name} FDPS reduction (%)",
                    round(pct_reduction(paper["vsync"], paper["dvsync"]), 1),
                    round(pct_reduction(avg_v, avg_d), 1),
                ),
            ]
        )
    return ExperimentResult(
        experiment_id="fig13",
        title="FDPS for OS use cases, GLES, Mate 40 Pro (90 Hz) and Mate 60 Pro (120 Hz)",
        headers=["device", "case", "vsync 4buf", "dvsync 4buf"],
        rows=rows,
        comparisons=comparisons,
    )


def run(runs: int = 3, quick: bool = False) -> ExperimentResult:
    """Regenerate both Fig 13 panels."""
    return study(runs=runs, quick=quick).run()
