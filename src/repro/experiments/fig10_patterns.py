"""Figure 10: execution patterns in VSync and D-VSync.

Replays the figure's setup — the exact same series of workloads with one
heavy key frame — through both architectures and renders the runtime traces
as ASCII timelines: VSync shows three janks in a row; D-VSync's accumulated
buffers keep the present row unbroken while the long frame executes.
"""

from __future__ import annotations

import dataclasses

from repro.core.config import DVSyncConfig
from repro.display.device import PIXEL_5
from repro.exec.spec import DriverSpec, RunSpec
from repro.experiments.base import ExperimentResult
from repro.study import Study, StudyResult
from repro.testing import light_params, make_animation
from repro.trace.record import record_run
from repro.trace.render_ascii import render_queue_depth, render_timeline
from repro.units import hz_to_period

PERIOD = hz_to_period(60)


def build_pattern_driver():
    """RunSpec builder: the Fig 10 animation with one heavy key frame."""
    driver = make_animation(light_params(), "fig10-pattern", duration_ms=700)
    # One heavy key frame mid-animation, ~3.6 periods of render work: the
    # red frame of Fig 10.
    workload = driver._workloads[18]
    driver._workloads[18] = dataclasses.replace(workload, render_ns=int(3.6 * PERIOD))
    return driver


_DRIVER = DriverSpec.of("repro.experiments.fig10_patterns:build_pattern_driver")


def study(runs: int = 1, quick: bool = False) -> Study:
    """The Fig 10 matrix: the same workload under both architectures."""
    matrix = Study("fig10", analyze=_analyze)
    matrix.add(
        RunSpec(driver=_DRIVER, device=PIXEL_5, architecture="vsync", buffer_count=3),
        architecture="vsync",
    )
    matrix.add(
        RunSpec(
            driver=_DRIVER,
            device=PIXEL_5,
            architecture="dvsync",
            dvsync=DVSyncConfig(buffer_count=5),
        ),
        architecture="dvsync",
    )
    return matrix


def _analyze(result: StudyResult) -> ExperimentResult:
    baseline = result.get(architecture="vsync")
    improved = result.get(architecture="dvsync")
    rows = []
    for label, run_result in (("(a) VSync", baseline), ("(b) D-VSync", improved)):
        trace = record_run(run_result)
        rows.append([f"--- {label}: {len(run_result.effective_drops)} janks ---", ""])
        for line in render_timeline(trace, width=90).splitlines():
            rows.append([line, ""])
        rows.append([f"queue depth: {render_queue_depth(trace, width=90)}", ""])
        rows.append(["", ""])
    return ExperimentResult(
        experiment_id="fig10",
        title="Execution patterns: the same workload under VSync and D-VSync",
        headers=["timeline", ""],
        rows=rows,
        comparisons=[
            ("VSync janks from the long frame", ">= 2", len(baseline.effective_drops)),
            ("D-VSync janks from the long frame", 0, len(improved.effective_drops)),
        ],
        notes=(
            "The D-VSync queue-depth strip shows the accumulation ramp, the "
            "sync-stage plateau, and the dip where the long frame consumed "
            "the pre-rendered buffers."
        ),
    )


def run(runs: int = 1, quick: bool = False) -> ExperimentResult:
    """Regenerate the Fig 10 runtime-trace comparison."""
    return study(runs=runs, quick=quick).run()
