"""Figure 7: visualization of rendering latency with the touch-follow ball.

A fast upward swipe draws a ball at the latest touch position every frame;
under VSync with ~45 ms latency the ball trails the fingertip by up to
~394 px (2.4 cm). D-VSync with the IPL keeps the ball close to the finger —
the paper's motivation for latency mattering more than frame rate.
"""

from __future__ import annotations

from repro.apps.touch_ball import TouchBallApp
from repro.core.config import DVSyncConfig
from repro.core.dvsync import DVSyncScheduler
from repro.display.device import PIXEL_5
from repro.experiments.base import ExperimentResult, mean
from repro.vsync.scheduler import VSyncScheduler

PAPER_MAX_LAG_PX = 394
PAPER_VSYNC_LATENCY_MS = 45


def run(runs: int = 4, quick: bool = False) -> ExperimentResult:
    """Regenerate the Fig 7 lag measurement (plus the D-VSync arm)."""
    app = TouchBallApp(PIXEL_5)
    effective_runs = 2 if quick else runs
    rows = []
    stats: dict[str, dict[str, list[float]]] = {}
    for arch in ("vsync", "dvsync"):
        agg = {"max": [], "mean": [], "latency": []}
        for repetition in range(effective_runs):
            driver = app.build_driver(repetition)
            if arch == "vsync":
                result = VSyncScheduler(driver, PIXEL_5, buffer_count=3).run()
            else:
                result = DVSyncScheduler(
                    driver, PIXEL_5, DVSyncConfig(buffer_count=4)
                ).run()
            lag = app.lag_result(result, driver)
            agg["max"].append(lag.max_lag_px)
            agg["mean"].append(mean(lag.lags_px))
            agg["latency"].append(lag.mean_latency_ms)
        stats[arch] = agg
        rows.append(
            [
                arch,
                round(mean(agg["latency"]), 1),
                round(mean(agg["mean"]), 0),
                round(mean(agg["max"]), 0),
            ]
        )
    return ExperimentResult(
        experiment_id="fig07",
        title="Touch-follow ball: how far the content trails the fingertip",
        headers=["architecture", "mean latency (ms)", "mean lag (px)", "max lag (px)"],
        rows=rows,
        comparisons=[
            ("VSync max lag (px)", PAPER_MAX_LAG_PX, round(mean(stats["vsync"]["max"]), 0)),
            (
                "VSync mean latency (ms)",
                PAPER_VSYNC_LATENCY_MS,
                round(mean(stats["vsync"]["latency"]), 1),
            ),
        ],
        notes=(
            "The D-VSync arm predicts the touch position at display time via "
            "the IPL; its residual max lag comes from the first frames of the "
            "gesture, before the input history supports a fit."
        ),
    )
