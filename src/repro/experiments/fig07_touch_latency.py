"""Figure 7: visualization of rendering latency with the touch-follow ball.

A fast upward swipe draws a ball at the latest touch position every frame;
under VSync with ~45 ms latency the ball trails the fingertip by up to
~394 px (2.4 cm). D-VSync with the IPL keeps the ball close to the finger —
the paper's motivation for latency mattering more than frame rate.

Both arms × repetitions batch as one :class:`~repro.study.Study`; the
analysis step rebuilds the (deterministic, seeded) swipe driver to recover
the fingertip's true position curve.
"""

from __future__ import annotations

from repro.apps.touch_ball import TouchBallApp
from repro.core.config import DVSyncConfig
from repro.display.device import PIXEL_5
from repro.exec.spec import DriverSpec, RunSpec
from repro.experiments.base import ExperimentResult, mean
from repro.study import Study, StudyResult
from repro.workloads.drivers import InteractionDriver

PAPER_MAX_LAG_PX = 394
PAPER_VSYNC_LATENCY_MS = 45


def build_touch_driver(repetition: int) -> InteractionDriver:
    """RunSpec builder: one seeded touch-follow swipe repetition."""
    return TouchBallApp(PIXEL_5).build_driver(repetition)


def study(runs: int = 4, quick: bool = False) -> Study:
    """The Fig 7 matrix: architecture × repetition, one batch."""
    effective_runs = 2 if quick else runs
    matrix = Study(
        "fig07", analyze=lambda result: _analyze(result, effective_runs)
    )
    for arch in ("vsync", "dvsync"):
        for repetition in range(effective_runs):
            driver = DriverSpec.of(
                "repro.experiments.fig07_touch_latency:build_touch_driver",
                repetition=repetition,
            )
            if arch == "vsync":
                spec = RunSpec(
                    driver=driver, device=PIXEL_5, architecture="vsync", buffer_count=3
                )
            else:
                spec = RunSpec(
                    driver=driver,
                    device=PIXEL_5,
                    architecture="dvsync",
                    dvsync=DVSyncConfig(buffer_count=4),
                )
            matrix.add(spec, architecture=arch, rep=repetition)
    return matrix


def _analyze(result: StudyResult, effective_runs: int) -> ExperimentResult:
    app = TouchBallApp(PIXEL_5)
    rows = []
    stats: dict[str, dict[str, list[float]]] = {}
    for arch in ("vsync", "dvsync"):
        agg = {"max": [], "mean": [], "latency": []}
        for repetition in range(effective_runs):
            run_result = result.get(architecture=arch, rep=repetition)
            if run_result is None:
                continue
            # The spec's driver ran in a worker; rebuild the same seeded
            # swipe here and start it at the run's origin so true_value
            # reports the fingertip's actual path.
            driver = app.build_driver(repetition)
            driver.begin(0)
            lag = app.lag_result(run_result, driver)
            agg["max"].append(lag.max_lag_px)
            agg["mean"].append(mean(lag.lags_px))
            agg["latency"].append(lag.mean_latency_ms)
        stats[arch] = agg
        rows.append(
            [
                arch,
                round(mean(agg["latency"]), 1),
                round(mean(agg["mean"]), 0),
                round(mean(agg["max"]), 0),
            ]
        )
    return ExperimentResult(
        experiment_id="fig07",
        title="Touch-follow ball: how far the content trails the fingertip",
        headers=["architecture", "mean latency (ms)", "mean lag (px)", "max lag (px)"],
        rows=rows,
        comparisons=[
            ("VSync max lag (px)", PAPER_MAX_LAG_PX, round(mean(stats["vsync"]["max"]), 0)),
            (
                "VSync mean latency (ms)",
                PAPER_VSYNC_LATENCY_MS,
                round(mean(stats["vsync"]["latency"]), 1),
            ),
        ],
        notes=(
            "The D-VSync arm predicts the touch position at display time via "
            "the IPL; its residual max lag comes from the first frames of the "
            "gesture, before the input history supports a fit."
        ),
    )


def run(runs: int = 4, quick: bool = False) -> ExperimentResult:
    """Regenerate the Fig 7 lag measurement (plus the D-VSync arm)."""
    return study(runs=runs, quick=quick).run()
