"""Figure 4: the growing list of supported graphics features.

Regenerates the trend from the feature catalog — every OS generation adds
effects, and the heavy (key-frame-dominating) share keeps climbing — plus a
demonstration of what a modern effect stack costs per key frame relative to
the original Android 4 set.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.units import to_ms
from repro.workloads.features import (
    FEATURES,
    CostClass,
    EffectComposer,
    cumulative_feature_count,
)

# Effect stacks representative of the two eras.
ANDROID4_STACK = ["Scene Transition", "Translucent UI", "Full-screen Immersive"]
MODERN_STACK = [
    "Gaussian Blur",
    "Dynamic Lighting",
    "Glass Material",
    "Particle Effect",
    "Motion Blur",
    "Dynamic Shadowing",
]


def study(runs: int = 1, quick: bool = False) -> "Study":
    """Fig 4 is pure computation: a zero-cell study."""
    from repro.study import Study

    samples = 50 if quick else 400
    return Study("fig04", analyze=lambda _result: _build(samples))


def _build(samples: int) -> ExperimentResult:
    rows = [
        [generation, new, cumulative_heavy]
        for generation, new, cumulative_heavy in cumulative_feature_count()
    ]
    legacy = EffectComposer(ANDROID4_STACK)
    modern = EffectComposer(MODERN_STACK)
    legacy_cost = sum(legacy.key_frame_cost_ns() for _ in range(samples)) / samples
    modern_cost = sum(modern.key_frame_cost_ns() for _ in range(samples)) / samples
    heavy_total = sum(1 for f in FEATURES if f.cost is CostClass.HEAVY)
    return ExperimentResult(
        experiment_id="fig04",
        title="Graphics features per OS generation and their key-frame cost",
        headers=["generation", "new features", "cumulative heavy features"],
        rows=rows,
        comparisons=[
            ("catalog size", len(FEATURES), len(FEATURES)),
            ("heavy features in the catalog", ">=10", heavy_total),
            (
                "modern key-frame cost vs Android 4 stack",
                "several x (key frames 'usually over 1 ms')",
                f"{to_ms(int(modern_cost)):.1f} ms vs {to_ms(int(legacy_cost)):.1f} ms",
            ),
        ],
        notes=(
            "Darker Fig 4 entries map to the HEAVY cost class; the modern "
            "stack's key frames dwarf the Android 4 era's, which is the load "
            "growth §3.1 blames for VSync's struggles."
        ),
    )


def run(runs: int = 1, quick: bool = False) -> ExperimentResult:
    """Regenerate the Fig 4 trend."""
    return study(runs=runs, quick=quick).run()
