"""Figure 9: the scope of the D-VSync approach.

The paper classifies a typical user's frames: ~85 % deterministic animations
(pre-renderable with no app changes), ~10 % predictable interactions (need
the IPL), ~5 % real-time content (D-VSync stays off) — 95 % total coverage.
This experiment runs a representative day-mix of scenarios and measures what
fraction of frames each channel actually carried.
"""

from __future__ import annotations

from repro.core.config import DVSyncConfig
from repro.display.device import PIXEL_5
from repro.exec.spec import DriverSpec, RunSpec
from repro.experiments.base import ExperimentResult
from repro.pipeline.frame import FrameCategory
from repro.study import Study, StudyResult
from repro.units import ms
from repro.workloads.distributions import params_for_target_fdps
from repro.workloads.drivers import AnimationDriver

PAPER_SHARES = {"animation": 85.0, "interaction": 10.0, "realtime": 5.0}
PAPER_COVERAGE = 95.0

# A day-mix driver: categories assigned per frame with Fig 9's weights.
_WEIGHTS = {
    FrameCategory.DETERMINISTIC_ANIMATION: 0.85,
    FrameCategory.PREDICTABLE_INTERACTION: 0.10,
    FrameCategory.REALTIME: 0.05,
}


def build_daymix_driver(repetition: int, bursts: int) -> AnimationDriver:
    """RunSpec builder: the Fig 9 day-mix animation for one repetition."""
    params = params_for_target_fdps(1.5, PIXEL_5.refresh_hz)
    return AnimationDriver(
        f"fig09-daymix#{repetition}",
        params,
        duration_ns=ms(400),
        bursts=bursts,
        burst_period_ns=ms(600),
        category_weights=_WEIGHTS,
    )


def study(runs: int = 3, quick: bool = False) -> Study:
    """The Fig 9 matrix: one D-VSync cell per repetition."""
    effective_runs = 2 if quick else runs
    bursts = 8 if quick else 24
    matrix = Study("fig09", analyze=_analyze)
    for repetition in range(effective_runs):
        matrix.add(
            RunSpec(
                driver=DriverSpec.of(
                    "repro.experiments.fig09_scope:build_daymix_driver",
                    repetition=repetition,
                    bursts=bursts,
                ),
                device=PIXEL_5,
                architecture="dvsync",
                dvsync=DVSyncConfig(buffer_count=4),
            ),
            rep=repetition,
        )
    return matrix


def _analyze(result: StudyResult) -> ExperimentResult:
    totals = {category: 0 for category in FrameCategory}
    decoupled_frames = 0
    total_frames = 0
    for run_result in result.select():
        if run_result is None:
            continue
        for frame in run_result.frames:
            totals[frame.workload.category] += 1
            total_frames += 1
            if frame.decoupled:
                decoupled_frames += 1
    share = {
        category: totals[category] / max(1, total_frames) * 100
        for category in FrameCategory
    }
    coverage = decoupled_frames / max(1, total_frames) * 100
    rows = [
        ["deterministic animations (oblivious channel)",
         PAPER_SHARES["animation"], round(share[FrameCategory.DETERMINISTIC_ANIMATION], 1)],
        ["predictable interactions (IPL extension)",
         PAPER_SHARES["interaction"], round(share[FrameCategory.PREDICTABLE_INTERACTION], 1)],
        ["real-time content (D-VSync off)",
         PAPER_SHARES["realtime"], round(share[FrameCategory.REALTIME], 1)],
    ]
    return ExperimentResult(
        experiment_id="fig09",
        title="Scope of D-VSync: frame categories and decoupling coverage",
        headers=["category", "paper %", "measured %"],
        rows=rows,
        comparisons=[
            ("frames actually pre-rendered (%)", PAPER_COVERAGE, round(coverage, 1)),
        ],
        notes=(
            "Real-time frames route to the traditional VSync path via the "
            "runtime controller; everything else rides the decoupled channel."
        ),
    )


def run(runs: int = 3, quick: bool = False) -> ExperimentResult:
    """Regenerate the Fig 9 coverage measurement."""
    return study(runs=runs, quick=quick).run()
