"""Figure 14: simulation of 15 mobile games for frame-drop reduction.

Replays synthesized CPU+GPU runtime traces (the paper's own methodology)
through the schedulers at each game's rendering rate. Paper averages:
0.79 → 0.25 (4 buf, −68.4 %) and −87.3 % at 5 buffers. The game × arm ×
repetition grid is one :class:`~repro.study.Study` matrix.
"""

from __future__ import annotations

from repro.core.config import DVSyncConfig
from repro.display.device import MATE_60_PRO
from repro.errors import WorkloadError
from repro.exec.spec import DriverSpec, RunSpec
from repro.experiments.base import ExperimentResult, mean, mean_sd, pct_reduction
from repro.metrics.fdps import fdps
from repro.study import Study, StudyResult
from repro.workloads.drivers import TraceDriver
from repro.workloads.games import GAME_SPECS, record_game_trace

PAPER_VSYNC = 0.79
PAPER_DVSYNC_4 = 0.25
PAPER_REDUCTION_4 = 68.4
PAPER_REDUCTION_5 = 87.3

ARMS = ("vsync", 4, 5)


def build_game_driver(game: str, repetition: int) -> TraceDriver:
    """RunSpec builder: replay one game's synthesized trace for a repetition."""
    for spec in GAME_SPECS:
        if spec.name == game:
            return TraceDriver(record_game_trace(spec, repetition))
    raise WorkloadError(f"unknown game {game!r}")


def study(runs: int = 3, quick: bool = False) -> Study:
    """The Fig 14 matrix: game × arm × repetition, one batch."""
    specs = GAME_SPECS[::3] if quick else GAME_SPECS
    effective_runs = min(runs, 2) if quick else runs
    matrix = Study("fig14", analyze=lambda result: _analyze(result, specs))
    for spec in specs:
        device = MATE_60_PRO.at_refresh(spec.refresh_hz)
        for repetition in range(effective_runs):
            driver = DriverSpec.of(
                "repro.experiments.fig14_games:build_game_driver",
                game=spec.name,
                repetition=repetition,
            )
            matrix.add(
                RunSpec(
                    driver=driver, device=device, architecture="vsync", buffer_count=3
                ),
                game=spec.name,
                rep=repetition,
                arm="vsync",
            )
            for buffers in (4, 5):
                matrix.add(
                    RunSpec(
                        driver=driver,
                        device=device,
                        architecture="dvsync",
                        dvsync=DVSyncConfig(buffer_count=buffers),
                    ),
                    game=spec.name,
                    rep=repetition,
                    arm=buffers,
                )
    return matrix


def _analyze(result: StudyResult, specs) -> ExperimentResult:
    rows = []
    averages: dict[object, list[float]] = {"vsync": [], 4: [], 5: []}
    for spec in specs:
        row = [f"{spec.name}, {spec.refresh_hz}Hz"]
        for key in ARMS:
            value = mean(
                fdps(r)
                for r in result.select(game=spec.name, arm=key)
                if r is not None
            )
            averages[key].append(value)
            row.append(round(value, 2))
        rows.append(row)
    avg = {key: mean(vals) for key, vals in averages.items()}
    sd = {key: mean_sd(vals)[1] for key, vals in averages.items()}
    return ExperimentResult(
        experiment_id="fig14",
        title="Game-trace simulation: FDPS under VSync 3 bufs vs D-VSync 4/5 bufs",
        headers=["game", "vsync 3buf", "dvsync 4buf", "dvsync 5buf"],
        rows=rows,
        comparisons=[
            ("avg FDPS, VSync", PAPER_VSYNC, round(avg["vsync"], 2), round(sd["vsync"], 2)),
            ("avg FDPS, D-VSync 4 bufs", PAPER_DVSYNC_4, round(avg[4], 2), round(sd[4], 2)),
            (
                "FDPS reduction, 4 bufs (%)",
                PAPER_REDUCTION_4,
                round(pct_reduction(avg["vsync"], avg[4]), 1),
            ),
            (
                "FDPS reduction, 5 bufs (%)",
                PAPER_REDUCTION_5,
                round(pct_reduction(avg["vsync"], avg[5]), 1),
            ),
        ],
        notes=(
            "Games use custom engines bypassing the OS framework; this is the "
            "decoupling-aware channel applied to recorded traces, as in §6.1."
        ),
    )


def run(runs: int = 3, quick: bool = False) -> ExperimentResult:
    """Regenerate the Fig 14 bars."""
    return study(runs=runs, quick=quick).run()
