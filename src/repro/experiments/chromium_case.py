"""§6.6: the Chromium browser case study.

The decoupled scheme applied to the browser compositor pre-renders frames
during fling animations. Paper: average FDPS over the Sina, Weather, and
AI Life pages falls from 1.47 to 0.08 (−94.3 %). The page × architecture ×
repetition grid batches as one :class:`~repro.study.Study` matrix.
"""

from __future__ import annotations

from repro.apps.chromium import (
    CHROMIUM_PAPER_BASELINE_FDPS,
    CHROMIUM_PAPER_DVSYNC_FDPS,
    PAGES,
    ChromiumFlingDriver,
)
from repro.core.config import DVSyncConfig
from repro.display.device import MATE_60_PRO
from repro.errors import WorkloadError
from repro.exec.spec import DriverSpec, RunSpec
from repro.experiments.base import ExperimentResult, mean, pct_reduction
from repro.metrics.fdps import fdps
from repro.study import Study, StudyResult

PAPER_REDUCTION = 94.3


def build_fling_driver(page: str, repetition: int) -> ChromiumFlingDriver:
    """RunSpec builder: one fling repetition over a recorded page."""
    for candidate in PAGES:
        if candidate.name == page:
            return ChromiumFlingDriver(candidate, MATE_60_PRO.refresh_hz, repetition)
    raise WorkloadError(f"unknown Chromium page {page!r}")


def study(runs: int = 3, quick: bool = False) -> Study:
    """The §6.6 matrix: page × architecture × repetition, one batch."""
    effective_runs = 2 if quick else runs
    matrix = Study(
        "chromium", analyze=lambda result: _analyze(result, effective_runs)
    )
    for page in PAGES:
        for repetition in range(effective_runs):
            driver = DriverSpec.of(
                "repro.experiments.chromium_case:build_fling_driver",
                page=page.name,
                repetition=repetition,
            )
            matrix.add(
                RunSpec(
                    driver=driver,
                    device=MATE_60_PRO,
                    architecture="vsync",
                    buffer_count=4,
                ),
                page=page.name,
                architecture="vsync",
                rep=repetition,
            )
            matrix.add(
                RunSpec(
                    driver=driver,
                    device=MATE_60_PRO,
                    architecture="dvsync",
                    dvsync=DVSyncConfig(buffer_count=5),
                ),
                page=page.name,
                architecture="dvsync",
                rep=repetition,
            )
    return matrix


def _analyze(result: StudyResult, effective_runs: int) -> ExperimentResult:
    rows = []
    vsync_all, dvsync_all = [], []
    for page in PAGES:
        pairs = result.pairs(
            {"architecture": "vsync"}, {"architecture": "dvsync"}, page=page.name
        )
        vsync_values = [fdps(baseline) for baseline, _ in pairs]
        dvsync_values = [fdps(improved) for _, improved in pairs]
        vsync_all.extend(vsync_values)
        dvsync_all.extend(dvsync_values)
        rows.append(
            [page.name, round(mean(vsync_values), 2), round(mean(dvsync_values), 2)]
        )
    avg_v, avg_d = mean(vsync_all), mean(dvsync_all)
    return ExperimentResult(
        experiment_id="chromium",
        title="Chromium compositor flings: VSync vs decoupled pre-rendering",
        headers=["page", "vsync FDPS", "dvsync FDPS"],
        rows=rows,
        comparisons=[
            ("avg FDPS, VSync", CHROMIUM_PAPER_BASELINE_FDPS, round(avg_v, 2)),
            ("avg FDPS, D-VSync", CHROMIUM_PAPER_DVSYNC_FDPS, round(avg_d, 2)),
            ("FDPS reduction (%)", PAPER_REDUCTION, round(pct_reduction(avg_v, avg_d), 1)),
        ],
    )


def run(runs: int = 3, quick: bool = False) -> ExperimentResult:
    """Regenerate the §6.6 numbers."""
    return study(runs=runs, quick=quick).run()
