"""§6.6: the Chromium browser case study.

The decoupled scheme applied to the browser compositor pre-renders frames
during fling animations. Paper: average FDPS over the Sina, Weather, and
AI Life pages falls from 1.47 to 0.08 (−94.3 %).
"""

from __future__ import annotations

from repro.apps.chromium import (
    CHROMIUM_PAPER_BASELINE_FDPS,
    CHROMIUM_PAPER_DVSYNC_FDPS,
    PAGES,
    ChromiumFlingDriver,
)
from repro.core.config import DVSyncConfig
from repro.core.dvsync import DVSyncScheduler
from repro.display.device import MATE_60_PRO
from repro.experiments.base import ExperimentResult, mean, pct_reduction
from repro.metrics.fdps import fdps
from repro.vsync.scheduler import VSyncScheduler

PAPER_REDUCTION = 94.3


def run(runs: int = 3, quick: bool = False) -> ExperimentResult:
    """Regenerate the §6.6 numbers."""
    effective_runs = 2 if quick else runs
    rows = []
    vsync_all, dvsync_all = [], []
    for page in PAGES:
        vsync_values, dvsync_values = [], []
        for repetition in range(effective_runs):
            baseline = VSyncScheduler(
                ChromiumFlingDriver(page, MATE_60_PRO.refresh_hz, repetition),
                MATE_60_PRO,
                buffer_count=4,
            ).run()
            improved = DVSyncScheduler(
                ChromiumFlingDriver(page, MATE_60_PRO.refresh_hz, repetition),
                MATE_60_PRO,
                DVSyncConfig(buffer_count=5),
            ).run()
            vsync_values.append(fdps(baseline))
            dvsync_values.append(fdps(improved))
        vsync_all.extend(vsync_values)
        dvsync_all.extend(dvsync_values)
        rows.append(
            [page.name, round(mean(vsync_values), 2), round(mean(dvsync_values), 2)]
        )
    avg_v, avg_d = mean(vsync_all), mean(dvsync_all)
    return ExperimentResult(
        experiment_id="chromium",
        title="Chromium compositor flings: VSync vs decoupled pre-rendering",
        headers=["page", "vsync FDPS", "dvsync FDPS"],
        rows=rows,
        comparisons=[
            ("avg FDPS, VSync", CHROMIUM_PAPER_BASELINE_FDPS, round(avg_v, 2)),
            ("avg FDPS, D-VSync", CHROMIUM_PAPER_DVSYNC_FDPS, round(avg_d, 2)),
            ("FDPS reduction (%)", PAPER_REDUCTION, round(pct_reduction(avg_v, avg_d), 1)),
        ],
    )
