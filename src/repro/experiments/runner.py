"""Shared harness for running scenarios under both architectures.

Experiments describe *what* to run (scenario, device, buffer configuration);
this module owns the mechanics: describing runs as content-hashable
:class:`~repro.exec.spec.RunSpec`\\ s, submitting batches through the default
:class:`~repro.exec.executor.Executor` (parallel fan-out + result cache),
averaging over repetitions the way the paper averages over five runs
(Appendix A.2), and pairing VSync/D-VSync arms over the same workloads.

:func:`run_driver` remains for callers that already hold a live driver
instance (tests, ad-hoc exploration); experiment modules should prefer the
spec-based path so their runs parallelize and cache.
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import Callable, Iterable, Sequence

from repro.core.config import DVSyncConfig
from repro.core.dvsync import DVSyncScheduler
from repro.display.device import DeviceProfile
from repro.errors import ConfigurationError, ExecutionError
from repro.exec.executor import get_default_executor
from repro.exec.spec import DriverSpec, RunSpec
from repro.metrics.fdps import fdps
from repro.metrics.latency import latency_summary
from repro.pipeline.driver import ScenarioDriver
from repro.pipeline.scheduler_base import RunResult
from repro.telemetry import runtime as telemetry_runtime
from repro.vsync.scheduler import VSyncScheduler
from repro.workloads.scenarios import Scenario

#: Repetitions per scenario — the paper averages five runs to mitigate
#: fluctuations (Appendix A.2). The CLI's ``--runs`` defaults to this value;
#: ``--quick`` additionally lets each experiment trim its own repetitions.
DEFAULT_RUNS = 5


def run_driver(
    driver: ScenarioDriver,
    device: DeviceProfile,
    architecture: str = "vsync",
    buffer_count: int | None = None,
    dvsync_config: DVSyncConfig | None = None,
    telemetry=None,
    verify=None,
) -> RunResult:
    """Run one live driver to completion under the requested architecture.

    ``telemetry=None`` / ``verify=None`` defer to the process-wide switches;
    the resulting snapshot (if any) is published to the telemetry collector
    like executor-path runs are.
    """
    if architecture == "vsync":
        scheduler = VSyncScheduler(
            driver,
            device,
            buffer_count=buffer_count,
            telemetry=telemetry,
            verify=verify,
        )
    elif architecture == "dvsync":
        config = dvsync_config or DVSyncConfig(buffer_count=buffer_count or 4)
        scheduler = DVSyncScheduler(
            driver, device, config=config, telemetry=telemetry, verify=verify
        )
    else:
        raise ConfigurationError(f"unknown architecture {architecture!r}")
    result = scheduler.run()
    telemetry_runtime.collect(result.telemetry)
    return result


def scenario_spec(
    scenario: Scenario,
    device: DeviceProfile,
    architecture: str = "vsync",
    run: int = 0,
    buffer_count: int | None = None,
    dvsync_config: DVSyncConfig | None = None,
    telemetry: bool | None = None,
    verify: bool | None = None,
    timeout_s: float | None = None,
) -> RunSpec:
    """Describe one repetition of a scenario as a RunSpec.

    ``telemetry=None`` / ``verify=None`` read the process-wide switches at
    description time, so a ``--trace``/``--profile`` invocation records (and
    an enabled checker verifies) every run the experiments submit —
    including runs that execute in pool workers. ``timeout_s`` bounds the
    run's wall clock under the supervised executor (``None`` defers to the
    executor's default deadline).
    """
    if telemetry is None:
        telemetry = telemetry_runtime.enabled()
    if verify is None:
        from repro.verify import runtime as verify_runtime

        verify = verify_runtime.enabled()
    return RunSpec(
        driver=DriverSpec.from_scenario(scenario, run=run),
        device=device,
        architecture=architecture,
        buffer_count=buffer_count,
        dvsync=dvsync_config,
        telemetry=telemetry,
        verify=verify,
        timeout_s=timeout_s,
    )


def execute_specs(specs: Iterable[RunSpec]) -> list[RunResult]:
    """Submit a batch of specs through the default executor, order-preserving."""
    return get_default_executor().map(specs)


def run_spec(spec: RunSpec) -> RunResult:
    """Execute (or fetch from cache) a single spec via the default executor."""
    return get_default_executor().run(spec)


@dataclasses.dataclass
class ScenarioComparison:
    """Paired VSync / D-VSync measurements for one scenario."""

    scenario: str
    vsync_fdps: float
    dvsync_fdps: float
    vsync_latency_ms: float
    dvsync_latency_ms: float
    vsync_results: list[RunResult]
    dvsync_results: list[RunResult]

    @property
    def fdps_reduction_percent(self) -> float:
        if self.vsync_fdps <= 0:
            return 0.0
        return (self.vsync_fdps - self.dvsync_fdps) / self.vsync_fdps * 100.0

    @property
    def latency_reduction_percent(self) -> float:
        if self.vsync_latency_ms <= 0:
            return 0.0
        return (
            (self.vsync_latency_ms - self.dvsync_latency_ms)
            / self.vsync_latency_ms
            * 100.0
        )


def _comparison_from_results(
    scenario_name: str,
    vsync_results: Sequence[RunResult],
    dvsync_results: Sequence[RunResult],
) -> ScenarioComparison:
    return ScenarioComparison(
        scenario=scenario_name,
        vsync_fdps=statistics.fmean(fdps(r) for r in vsync_results),
        dvsync_fdps=statistics.fmean(fdps(r) for r in dvsync_results),
        vsync_latency_ms=statistics.fmean(
            latency_summary(r).mean_ms for r in vsync_results
        ),
        dvsync_latency_ms=statistics.fmean(
            latency_summary(r).mean_ms for r in dvsync_results
        ),
        vsync_results=list(vsync_results),
        dvsync_results=list(dvsync_results),
    )


def compare_scenario(
    scenario: Scenario,
    device: DeviceProfile,
    vsync_buffers: int | None = None,
    dvsync_config: DVSyncConfig | None = None,
    runs: int = DEFAULT_RUNS,
    driver_factory: Callable[[int], ScenarioDriver] | None = None,
) -> ScenarioComparison:
    """Run a scenario under both architectures, averaged over *runs* seeds.

    Each repetition builds two drivers from the same seed, so both arms see
    the exact same series of workloads (Fig 10's premise). Without a custom
    ``driver_factory`` the ``2 × runs`` arms are described as RunSpecs and
    submitted as one executor batch — they fan out across workers and cache
    individually. A custom factory (an in-memory driver the spec layer cannot
    name) falls back to serial in-process execution.
    """
    if driver_factory is not None:
        vsync_results = []
        dvsync_results = []
        for run in range(runs):
            vsync_results.append(
                run_driver(
                    driver_factory(run), device, "vsync", buffer_count=vsync_buffers
                )
            )
            dvsync_results.append(
                run_driver(
                    driver_factory(run), device, "dvsync", dvsync_config=dvsync_config
                )
            )
        return _comparison_from_results(scenario.name, vsync_results, dvsync_results)

    specs = [
        scenario_spec(
            scenario, device, "vsync", run=run, buffer_count=vsync_buffers
        )
        for run in range(runs)
    ] + [
        scenario_spec(
            scenario, device, "dvsync", run=run, dvsync_config=dvsync_config
        )
        for run in range(runs)
    ]
    results = execute_specs(specs)
    # Under the keep-going policy a failed repetition leaves a None hole;
    # drop the whole *pair* so both arms still average identical workloads.
    vsync_results = []
    dvsync_results = []
    for run in range(runs):
        if results[run] is not None and results[runs + run] is not None:
            vsync_results.append(results[run])
            dvsync_results.append(results[runs + run])
    if not vsync_results:
        raise ExecutionError(
            f"scenario {scenario.name!r}: every repetition pair failed "
            f"({runs} requested); see the executor's failure records"
        )
    return _comparison_from_results(scenario.name, vsync_results, dvsync_results)
