"""Shared harness for running scenarios under both architectures.

Experiments describe *what* to run (scenario, device, buffer configuration);
this module owns the mechanics: building seeded drivers, instantiating the
right scheduler, averaging over repetitions the way the paper averages over
five runs (Appendix A.2), and pairing VSync/D-VSync arms over the same
workloads.
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import Callable

from repro.core.config import DVSyncConfig
from repro.core.dvsync import DVSyncScheduler
from repro.display.device import DeviceProfile
from repro.metrics.fdps import fdps
from repro.metrics.latency import latency_summary
from repro.pipeline.driver import ScenarioDriver
from repro.pipeline.scheduler_base import RunResult
from repro.vsync.scheduler import VSyncScheduler
from repro.workloads.scenarios import Scenario

DEFAULT_RUNS = 5  # the paper averages five runs to mitigate fluctuations


def run_driver(
    driver: ScenarioDriver,
    device: DeviceProfile,
    architecture: str = "vsync",
    buffer_count: int | None = None,
    dvsync_config: DVSyncConfig | None = None,
) -> RunResult:
    """Run one driver to completion under the requested architecture."""
    if architecture == "vsync":
        scheduler = VSyncScheduler(driver, device, buffer_count=buffer_count)
    elif architecture == "dvsync":
        config = dvsync_config or DVSyncConfig(buffer_count=buffer_count or 4)
        scheduler = DVSyncScheduler(driver, device, config=config)
    else:
        raise ValueError(f"unknown architecture {architecture!r}")
    return scheduler.run()


@dataclasses.dataclass
class ScenarioComparison:
    """Paired VSync / D-VSync measurements for one scenario."""

    scenario: str
    vsync_fdps: float
    dvsync_fdps: float
    vsync_latency_ms: float
    dvsync_latency_ms: float
    vsync_results: list[RunResult]
    dvsync_results: list[RunResult]

    @property
    def fdps_reduction_percent(self) -> float:
        if self.vsync_fdps <= 0:
            return 0.0
        return (self.vsync_fdps - self.dvsync_fdps) / self.vsync_fdps * 100.0

    @property
    def latency_reduction_percent(self) -> float:
        if self.vsync_latency_ms <= 0:
            return 0.0
        return (
            (self.vsync_latency_ms - self.dvsync_latency_ms)
            / self.vsync_latency_ms
            * 100.0
        )


def compare_scenario(
    scenario: Scenario,
    device: DeviceProfile,
    vsync_buffers: int | None = None,
    dvsync_config: DVSyncConfig | None = None,
    runs: int = DEFAULT_RUNS,
    driver_factory: Callable[[int], ScenarioDriver] | None = None,
) -> ScenarioComparison:
    """Run a scenario under both architectures, averaged over *runs* seeds.

    Each repetition builds two drivers from the same seed, so both arms see
    the exact same series of workloads (Fig 10's premise).
    """
    factory = driver_factory or scenario.build_driver
    vsync_results: list[RunResult] = []
    dvsync_results: list[RunResult] = []
    for run in range(runs):
        vsync_results.append(
            run_driver(factory(run), device, "vsync", buffer_count=vsync_buffers)
        )
        dvsync_results.append(
            run_driver(factory(run), device, "dvsync", dvsync_config=dvsync_config)
        )
    return ScenarioComparison(
        scenario=scenario.name,
        vsync_fdps=statistics.fmean(fdps(r) for r in vsync_results),
        dvsync_fdps=statistics.fmean(fdps(r) for r in dvsync_results),
        vsync_latency_ms=statistics.fmean(
            latency_summary(r).mean_ms for r in vsync_results
        ),
        dvsync_latency_ms=statistics.fmean(
            latency_summary(r).mean_ms for r in dvsync_results
        ),
        vsync_results=vsync_results,
        dvsync_results=dvsync_results,
    )
