"""Shared harness for running scenarios under both architectures.

Experiments describe *what* to run (scenario, device, buffer configuration);
this module owns the mechanics: describing runs as content-hashable
:class:`~repro.exec.spec.RunSpec`\\ s, submitting batches through the default
:class:`~repro.exec.executor.Executor` (parallel fan-out + result cache),
averaging over repetitions the way the paper averages over five runs
(Appendix A.2), and pairing VSync/D-VSync arms over the same workloads.

:func:`run_driver` remains for callers that already hold a live driver
instance (tests, ad-hoc exploration); experiment modules should prefer the
spec-based path so their runs parallelize and cache.

Since the study refactor, the paired comparison is itself a
:class:`~repro.study.Study`: :func:`add_comparison_arms` lays the
``2 × runs`` arms of one scenario into any study's grid (so a whole
figure's scenarios batch together), :func:`comparison_from_study` extracts
a :class:`ScenarioComparison` from the keyed result with pair-drop
semantics, and :func:`compare_scenario` is the one-scenario convenience
wrapper (a 2-arm study executed on the spot).
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import Callable, Iterable, Sequence

from repro.core.config import DVSyncConfig
from repro.core.dvsync import DVSyncScheduler
from repro.display.device import DeviceProfile
from repro.errors import ConfigurationError, ExecutionError
from repro.exec.executor import get_default_executor
from repro.exec.spec import DriverSpec, RunSpec
from repro.metrics.fdps import fdps
from repro.metrics.latency import latency_summary
from repro.pipeline.driver import ScenarioDriver
from repro.pipeline.scheduler_base import RunResult
from repro.study import Study, StudyResult
from repro.telemetry import runtime as telemetry_runtime
from repro.vsync.scheduler import VSyncScheduler
from repro.workloads.scenarios import Scenario

#: Repetitions per scenario — the paper averages five runs to mitigate
#: fluctuations (Appendix A.2). The CLI's ``--runs`` defaults to this value;
#: ``--quick`` additionally lets each experiment trim its own repetitions.
DEFAULT_RUNS = 5


def run_driver(
    driver: ScenarioDriver,
    device: DeviceProfile,
    architecture: str = "vsync",
    buffer_count: int | None = None,
    dvsync_config: DVSyncConfig | None = None,
    telemetry=None,
    verify=None,
    engine: str = "auto",
) -> RunResult:
    """Run one live driver to completion under the requested architecture.

    ``telemetry=None`` / ``verify=None`` defer to the process-wide switches;
    the resulting snapshot (if any) is published to the telemetry collector
    like executor-path runs are. ``engine`` follows the spec-layer contract:
    ``"auto"`` replays trace-pure runs through :mod:`repro.fastpath` and
    falls back to the event loop otherwise; ``"fastpath"`` raises when the
    run cannot be replayed.
    """
    architecture = getattr(architecture, "value", architecture)
    from repro.fastpath.engine import fastpath_driver_attempt, resolve_engine

    requested = resolve_engine(engine)
    if requested != "event":
        result, reason = fastpath_driver_attempt(
            driver, device, architecture, buffer_count, dvsync_config,
            telemetry, verify,
        )
        if result is not None:
            telemetry_runtime.collect(result.telemetry)
            return result
        if requested == "fastpath":
            raise ConfigurationError(
                f"engine='fastpath' cannot replay this run: {reason}"
            )
    if architecture == "vsync":
        scheduler = VSyncScheduler(
            driver,
            device,
            buffer_count=buffer_count,
            telemetry=telemetry,
            verify=verify,
        )
    elif architecture == "dvsync":
        config = dvsync_config or DVSyncConfig(buffer_count=buffer_count or 4)
        scheduler = DVSyncScheduler(
            driver, device, config=config, telemetry=telemetry, verify=verify
        )
    else:
        raise ConfigurationError(f"unknown architecture {architecture!r}")
    result = scheduler.run()
    telemetry_runtime.collect(result.telemetry)
    return result


def scenario_spec(
    scenario: Scenario,
    device: DeviceProfile,
    architecture: str = "vsync",
    run: int = 0,
    buffer_count: int | None = None,
    dvsync_config: DVSyncConfig | None = None,
    telemetry: bool | None = None,
    verify: bool | None = None,
    timeout_s: float | None = None,
    engine: str = "auto",
) -> RunSpec:
    """Describe one repetition of a scenario as a RunSpec.

    ``telemetry=None`` / ``verify=None`` read the process-wide switches at
    description time, so a ``--trace``/``--profile`` invocation records (and
    an enabled checker verifies) every run the experiments submit —
    including runs that execute in pool workers. ``timeout_s`` bounds the
    run's wall clock under the supervised executor (``None`` defers to the
    executor's default deadline).
    """
    if telemetry is None:
        telemetry = telemetry_runtime.enabled()
    if verify is None:
        from repro.verify import runtime as verify_runtime

        verify = verify_runtime.enabled()
    return RunSpec(
        driver=DriverSpec.from_scenario(scenario, run=run),
        device=device,
        architecture=architecture,
        buffer_count=buffer_count,
        dvsync=dvsync_config,
        telemetry=telemetry,
        verify=verify,
        timeout_s=timeout_s,
        engine=engine,
    )


def execute_specs(specs: Iterable[RunSpec]) -> list[RunResult]:
    """Submit a batch of specs through the default executor, order-preserving."""
    return get_default_executor().map(specs)


def run_spec(spec: RunSpec) -> RunResult:
    """Execute (or fetch from cache) a single spec via the default executor."""
    return get_default_executor().run(spec)


@dataclasses.dataclass
class ScenarioComparison:
    """Paired VSync / D-VSync measurements for one scenario."""

    scenario: str
    vsync_fdps: float
    dvsync_fdps: float
    vsync_latency_ms: float
    dvsync_latency_ms: float
    vsync_results: list[RunResult]
    dvsync_results: list[RunResult]

    @property
    def fdps_reduction_percent(self) -> float:
        if self.vsync_fdps <= 0:
            return 0.0
        return (self.vsync_fdps - self.dvsync_fdps) / self.vsync_fdps * 100.0

    @property
    def latency_reduction_percent(self) -> float:
        if self.vsync_latency_ms <= 0:
            return 0.0
        return (
            (self.vsync_latency_ms - self.dvsync_latency_ms)
            / self.vsync_latency_ms
            * 100.0
        )


def _comparison_from_results(
    scenario_name: str,
    vsync_results: Sequence[RunResult],
    dvsync_results: Sequence[RunResult],
) -> ScenarioComparison:
    return ScenarioComparison(
        scenario=scenario_name,
        vsync_fdps=statistics.fmean(fdps(r) for r in vsync_results),
        dvsync_fdps=statistics.fmean(fdps(r) for r in dvsync_results),
        vsync_latency_ms=statistics.fmean(
            latency_summary(r).mean_ms for r in vsync_results
        ),
        dvsync_latency_ms=statistics.fmean(
            latency_summary(r).mean_ms for r in dvsync_results
        ),
        vsync_results=list(vsync_results),
        dvsync_results=list(dvsync_results),
    )


def _comparison_knobs(vsync_buffers, dvsync_config):
    """Accept a typed :class:`~repro.core.api.SimConfig` for either arm.

    The legacy spellings (int buffer count / bare :class:`DVSyncConfig`)
    remain the native wire types and pass through unchanged.
    """
    from repro.core.api import Arch, SimConfig

    if isinstance(vsync_buffers, SimConfig):
        vsync_buffers, _ = vsync_buffers.normalize(Arch.VSYNC)
    if isinstance(dvsync_config, SimConfig):
        _, dvsync_config = dvsync_config.normalize(Arch.DVSYNC)
    return vsync_buffers, dvsync_config


def add_comparison_arms(
    matrix: Study,
    workload: Scenario,
    device: DeviceProfile,
    vsync_buffers: "int | SimConfig | None" = None,
    dvsync_config: "DVSyncConfig | SimConfig | None" = None,
    runs: int = DEFAULT_RUNS,
    **coords,
) -> Study:
    """Lay one scenario's paired ``2 × runs`` arms into *matrix*'s grid.

    Each repetition describes two specs from the same seed, so both arms see
    the exact same series of workloads (Fig 10's premise). Extra *coords*
    (``scenario=...``, ``buffers=...``) distinguish this comparison's cells
    from the study's other comparisons — a whole figure's scenarios batch
    into one matrix and fan out together. (The positional parameters are
    deliberately not named after common axis names, so coordinates like
    ``scenario=...`` pass through ``**coords`` unobstructed.)
    """
    vsync_buffers, dvsync_config = _comparison_knobs(vsync_buffers, dvsync_config)
    for run in range(runs):
        matrix.add(
            scenario_spec(
                workload, device, "vsync", run=run, buffer_count=vsync_buffers
            ),
            architecture="vsync",
            rep=run,
            **coords,
        )
    for run in range(runs):
        matrix.add(
            scenario_spec(
                workload, device, "dvsync", run=run, dvsync_config=dvsync_config
            ),
            architecture="dvsync",
            rep=run,
            **coords,
        )
    return matrix


def comparison_from_study(
    result: StudyResult, scenario_name: str, **coords
) -> ScenarioComparison:
    """Extract one scenario's paired comparison from a keyed study result.

    Repetitions pair positionally across the two architecture slices
    (within *coords*). Under the keep-going policy a failed repetition
    leaves a hole; the whole *pair* is dropped so both arms still average
    identical workloads.
    """
    requested = len(result.cells(architecture="vsync", **coords))
    pairs = result.pairs(
        {"architecture": "vsync"}, {"architecture": "dvsync"}, **coords
    )
    if not pairs:
        raise ExecutionError(
            f"scenario {scenario_name!r}: every repetition pair failed "
            f"({requested} requested); see the executor's failure records"
        )
    return _comparison_from_results(
        scenario_name,
        [vsync for vsync, _ in pairs],
        [dvsync for _, dvsync in pairs],
    )


def scenario_study(
    scenario: Scenario,
    device: DeviceProfile,
    vsync_buffers: int | None = None,
    dvsync_config: DVSyncConfig | None = None,
    runs: int = DEFAULT_RUNS,
) -> Study:
    """A single scenario's comparison as a self-contained 2-arm study."""
    study = Study(
        f"compare:{scenario.name}",
        analyze=lambda result: comparison_from_study(result, scenario.name),
    )
    return add_comparison_arms(
        study, scenario, device, vsync_buffers, dvsync_config, runs
    )


def compare_scenario(
    scenario: Scenario,
    device: DeviceProfile,
    vsync_buffers: "int | SimConfig | None" = None,
    dvsync_config: "DVSyncConfig | SimConfig | None" = None,
    runs: int = DEFAULT_RUNS,
    driver_factory: Callable[[int], ScenarioDriver] | None = None,
) -> ScenarioComparison:
    """Run a scenario under both architectures, averaged over *runs* seeds.

    Without a custom ``driver_factory`` this is :func:`scenario_study`
    executed on the spot: the ``2 × runs`` arms go out as one supervised
    executor batch. A custom factory (an in-memory driver the spec layer
    cannot name) falls back to serial in-process execution. Either arm's
    knob also accepts a typed :class:`~repro.core.api.SimConfig`.
    """
    vsync_buffers, dvsync_config = _comparison_knobs(vsync_buffers, dvsync_config)
    if driver_factory is not None:
        vsync_results = []
        dvsync_results = []
        for run in range(runs):
            vsync_results.append(
                run_driver(
                    driver_factory(run), device, "vsync", buffer_count=vsync_buffers
                )
            )
            dvsync_results.append(
                run_driver(
                    driver_factory(run), device, "dvsync", dvsync_config=dvsync_config
                )
            )
        return _comparison_from_results(scenario.name, vsync_results, dvsync_results)

    return scenario_study(
        scenario, device, vsync_buffers, dvsync_config, runs
    ).run()
