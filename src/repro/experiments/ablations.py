"""Ablations of D-VSync's design choices (DESIGN.md §5).

Four studies isolate why each component exists:

- **DTV off** — pre-render with wall-clock content timestamps: animations
  visibly mis-pace (the "chaotic content despite higher frame rates" of §7).
- **IPL predictor choice** — hold-last-value vs linear vs quadratic curve
  fitting for interactive frames.
- **Pre-render limit sweep** — the aware-channel knob balancing drops vs
  memory (§4.5 capability 2).
- **LTPO co-design off** — rate switches while old-rate frames sit queued,
  producing the rate-mismatched presents §5.3's drain rule prevents.
- **Pipeline flavor** — Android's completion-chained render thread vs
  OpenHarmony's VSync-rs-triggered render service (§2): same baseline
  behaviour on light loads, with the OH flavor exhibiting edge-alignment
  slips when UI logic crosses the VSync-rs offset.

The five parts form one :class:`~repro.study.CompositeStudy`: the DTV and
limit-sweep matrices describe their runs as RunSpecs (batched through the
executor, parallel + cached), while the IPL/LTPO/flavor parts attach live
objects to the scheduler (predictors, the co-design bridge) and run as live
cells by design.
"""

from __future__ import annotations

from repro.core.config import DVSyncConfig
from repro.core.dvsync import DVSyncScheduler
from repro.core.ipl import (
    AlphaBetaPredictor,
    LastValuePredictor,
    LinearPredictor,
    QuadraticPredictor,
)
from repro.core.ltpo_codesign import LTPOCoDesign
from repro.display.device import MATE_60_PRO, PIXEL_5
from repro.display.ltpo import LTPOController
from repro.exec.spec import DriverSpec, RunSpec
from repro.experiments.base import ExperimentResult, mean
from repro.metrics.fdps import fdps
from repro.study import CompositeStudy, Study, StudyResult
from repro.units import ms
from repro.workloads.distributions import params_for_target_fdps
from repro.workloads.drivers import AnimationDriver, InteractionDriver
from repro.workloads.touch import SwipeGesture

DTV_ARMS = (
    ("vsync", {"architecture": "vsync", "buffer_count": 3}),
    ("dvsync+dtv", {"architecture": "dvsync", "dvsync": DVSyncConfig(buffer_count=4)}),
    (
        "dvsync-no-dtv",
        {
            "architecture": "dvsync",
            "dvsync": DVSyncConfig(buffer_count=4, dtv_enabled=False),
        },
    ),
)


def build_ablation_animation(name: str, run_index: int, bursts: int) -> AnimationDriver:
    """RunSpec builder: the droppy animation shared by the ablation sweeps."""
    params = params_for_target_fdps(3.0, PIXEL_5.refresh_hz)
    return AnimationDriver(
        f"{name}#{run_index}",
        params,
        duration_ns=ms(400),
        bursts=bursts,
        burst_period_ns=ms(600),
    )


def _animation_spec(name: str, run_index: int, bursts: int, **kwargs) -> RunSpec:
    return RunSpec(
        driver=DriverSpec.of(
            "repro.experiments.ablations:build_ablation_animation",
            name=name,
            run_index=run_index,
            bursts=bursts,
        ),
        device=PIXEL_5,
        **kwargs,
    )


def _pacing_error(result, driver, period_ns: int, depth: int = 2) -> float:
    """Mean |drawn - ideal| of displayed animation content, in panel heights.

    The ideal content of a frame shown at ``present`` represents
    ``present - depth * period`` (the architecture's content-time
    convention); any deviation is visible pacing error.
    """
    errors = []
    for frame in result.presented_frames:
        if frame.content_value is None or frame.present_time is None:
            continue
        ideal = driver.true_value(frame.present_time - depth * period_ns)
        errors.append(abs(frame.content_value - ideal))
    return mean(errors)


# --------------------------------------------------------------------- DTV
def dtv_study(runs: int = 3, quick: bool = False) -> Study:
    """Pre-rendering with and without the Display Time Virtualizer."""
    effective_runs = 2 if quick else runs
    matrix = Study(
        "ablation-dtv", analyze=lambda result: _analyze_dtv(result, effective_runs)
    )
    for repetition in range(effective_runs):
        for label, kwargs in DTV_ARMS:
            matrix.add(
                _animation_spec("abl-dtv", repetition, 8, **kwargs),
                arm=label,
                rep=repetition,
            )
    return matrix


def _analyze_dtv(result: StudyResult, effective_runs: int) -> ExperimentResult:
    period = PIXEL_5.vsync_period
    errors = {label: [] for label, _kwargs in DTV_ARMS}
    for repetition in range(effective_runs):
        # The pacing check compares drawn content against the motion curve;
        # rebuild the (deterministic) driver the specs described.
        driver = build_ablation_animation("abl-dtv", repetition, 8)
        for label, _kwargs in DTV_ARMS:
            run_result = result.get(arm=label, rep=repetition)
            if run_result is None:
                continue
            errors[label].append(_pacing_error(run_result, driver, period))
    rows = [[arm, round(mean(vals), 4)] for arm, vals in errors.items()]
    return ExperimentResult(
        experiment_id="ablation-dtv",
        title="Animation pacing error with and without DTV (panel heights)",
        headers=["arm", "mean pacing error"],
        rows=rows,
        comparisons=[
            (
                "no-DTV error vs DTV error (ratio)",
                ">> 1 (content breaks)",
                round(
                    mean(errors["dvsync-no-dtv"]) / max(1e-9, mean(errors["dvsync+dtv"])), 1
                ),
            ),
        ],
    )


def run_dtv_ablation(runs: int = 3, quick: bool = False) -> ExperimentResult:
    """Pre-rendering with and without the Display Time Virtualizer."""
    return dtv_study(runs, quick).run()


# --------------------------------------------------------------------- IPL
def ipl_study(runs: int = 3, quick: bool = False) -> Study:
    """Interactive content error under different IPL predictors.

    The predictors are live objects registered with the scheduler (and some
    keep state across repetitions), so every cell is a live thunk executed
    in insertion order — label-major, repetition-minor, exactly the loop the
    serial implementation ran.
    """
    effective_runs = 2 if quick else runs
    predictors = {
        "hold-last-value": LastValuePredictor(),
        "linear": LinearPredictor(),
        "quadratic": QuadraticPredictor(),
        "alpha-beta": AlphaBetaPredictor(),
    }
    matrix = Study(
        "ablation-ipl",
        analyze=lambda result: _analyze_ipl(result, list(predictors)),
    )
    params = params_for_target_fdps(2.0, PIXEL_5.refresh_hz)

    def one_rep(predictor, repetition: int) -> float:
        name = f"abl-ipl#{repetition}"

        def factory(start: int, _n=name):
            return SwipeGesture(start, ms(800), name=_n)

        driver = InteractionDriver(name, params, factory)
        scheduler = DVSyncScheduler(driver, PIXEL_5, DVSyncConfig(buffer_count=4))
        scheduler.api.register_input_predictor(predictor)
        result = scheduler.run()
        frame_errors = [
            abs(driver.true_value(f.present_time) - f.content_value)
            for f in result.presented_frames
            if f.content_value is not None
        ]
        return mean(frame_errors)

    for label, predictor in predictors.items():
        for repetition in range(effective_runs):
            matrix.add_live(
                lambda predictor=predictor, repetition=repetition: (
                    one_rep(predictor, repetition)
                ),
                predictor=label,
                rep=repetition,
            )
    return matrix


def _analyze_ipl(result: StudyResult, labels: list[str]) -> ExperimentResult:
    rows = []
    results = {}
    for label in labels:
        errors = [
            value for value in result.select(predictor=label) if value is not None
        ]
        results[label] = mean(errors)
        rows.append([label, round(results[label], 4)])
    return ExperimentResult(
        experiment_id="ablation-ipl",
        title="Interactive content error at display time per IPL predictor",
        headers=["predictor", "mean error (panel heights)"],
        rows=rows,
        comparisons=[
            (
                "curve fitting beats hold-last (error ratio)",
                "< 1",
                round(results["linear"] / max(1e-9, results["hold-last-value"]), 2),
            ),
        ],
    )


def run_ipl_ablation(runs: int = 3, quick: bool = False) -> ExperimentResult:
    """Interactive content error under different IPL predictors."""
    return ipl_study(runs, quick).run()


# ------------------------------------------------------------- limit sweep
def limit_study(runs: int = 3, quick: bool = False) -> Study:
    """FDPS as a function of the pre-rendering limit (7-buffer queue)."""
    effective_runs = 2 if quick else runs
    limits = (1, 2, 3, 4, 6) if quick else (1, 2, 3, 4, 5, 6)
    matrix = Study(
        "ablation-limit", analyze=lambda result: _analyze_limit(result, limits)
    )
    for limit in limits:
        for repetition in range(effective_runs):
            matrix.add(
                _animation_spec(
                    "abl-limit",
                    repetition,
                    12,
                    architecture="dvsync",
                    dvsync=DVSyncConfig(buffer_count=7, prerender_limit=limit),
                ),
                limit=limit,
                rep=repetition,
            )
    return matrix


def _analyze_limit(result: StudyResult, limits) -> ExperimentResult:
    rows = []
    values_by_limit = {}
    for limit in limits:
        values = [fdps(r) for r in result.select(limit=limit) if r is not None]
        values_by_limit[limit] = mean(values)
        rows.append([limit, round(values_by_limit[limit], 2)])
    return ExperimentResult(
        experiment_id="ablation-limit",
        title="FDPS vs pre-rendering limit (7-buffer queue, Pixel 5)",
        headers=["prerender limit", "FDPS"],
        rows=rows,
        comparisons=[
            (
                "FDPS monotonically drops with the limit",
                "yes",
                "yes"
                if values_by_limit[limits[-1]] <= values_by_limit[limits[0]]
                else "no",
            ),
        ],
    )


def run_limit_sweep(runs: int = 3, quick: bool = False) -> ExperimentResult:
    """FDPS as a function of the pre-rendering limit (7-buffer queue)."""
    return limit_study(runs, quick).run()


# -------------------------------------------------------------------- LTPO
def ltpo_study(runs: int = 3, quick: bool = False) -> Study:
    """Rate-mismatched presents with and without the drain rule (§5.3)."""
    effective_runs = 2 if quick else runs
    matrix = Study("ablation-ltpo", analyze=_analyze_ltpo)

    def one_rep(enforce: bool, repetition: int) -> int:
        params = params_for_target_fdps(2.0, MATE_60_PRO.refresh_hz)
        driver = AnimationDriver(
            f"abl-ltpo#{repetition}",
            params,
            duration_ns=ms(1500),
            curve=None,  # default ease-in-out: speed sweeps tiers
            bursts=4 if quick else 8,
            burst_period_ns=ms(1700),
        )
        scheduler = DVSyncScheduler(
            driver, MATE_60_PRO, DVSyncConfig(buffer_count=4)
        )
        ltpo = LTPOController(scheduler.hw_vsync, max_hz=MATE_60_PRO.refresh_hz)
        bridge = LTPOCoDesign(scheduler, ltpo, enforce_drain=enforce)
        scheduler.run()
        return bridge.rate_mismatched_presents

    for enforce, label in ((True, "co-design"), (False, "no-co-design")):
        for repetition in range(effective_runs):
            matrix.add_live(
                lambda enforce=enforce, repetition=repetition: (
                    one_rep(enforce, repetition)
                ),
                arm=label,
                rep=repetition,
            )
    return matrix


def _analyze_ltpo(result: StudyResult) -> ExperimentResult:
    mismatches = {
        label: [v for v in result.select(arm=label) if v is not None]
        for label in ("co-design", "no-co-design")
    }
    rows = [[label, round(mean(vals), 1)] for label, vals in mismatches.items()]
    return ExperimentResult(
        experiment_id="ablation-ltpo",
        title="Rate-mismatched presents with/without the LTPO drain rule",
        headers=["arm", "mismatched presents"],
        rows=rows,
        comparisons=[
            ("co-design mismatches", 0, round(mean(mismatches["co-design"]), 1)),
            (
                "no-co-design mismatches",
                "> 0",
                round(mean(mismatches["no-co-design"]), 1),
            ),
        ],
    )


def run_ltpo_ablation(runs: int = 3, quick: bool = False) -> ExperimentResult:
    """Rate-mismatched presents with and without the drain rule (§5.3)."""
    return ltpo_study(runs, quick).run()


# ------------------------------------------------------------------ flavor
def flavor_study(runs: int = 3, quick: bool = False) -> Study:
    """Android-chained vs OpenHarmony VSync-rs render triggering (§2)."""
    from repro.metrics.latency import latency_summary
    from repro.vsync.oh_scheduler import OpenHarmonyVSyncScheduler
    from repro.vsync.scheduler import VSyncScheduler

    effective_runs = 2 if quick else runs
    matrix = Study("ablation-flavor", analyze=_analyze_flavor)

    def one_rep(flavor: str, repetition: int):
        params = params_for_target_fdps(4.0, MATE_60_PRO.refresh_hz)
        driver = AnimationDriver(
            f"abl-flavor#{repetition}",
            params,
            duration_ns=ms(400),
            bursts=8 if quick else 14,
            burst_period_ns=ms(600),
        )
        # Sprinkle UI-heavy frames (layout storms) that cross the
        # VSync-rs offset — the records that slip an edge under OH.
        import dataclasses as _dc

        for index in range(6, len(driver._workloads), 24):
            workload = driver._workloads[index]
            driver._workloads[index] = _dc.replace(
                workload, ui_ns=round(MATE_60_PRO.vsync_period * 0.6)
            )
        if flavor == "android":
            scheduler = VSyncScheduler(driver, MATE_60_PRO, buffer_count=4)
        else:
            scheduler = OpenHarmonyVSyncScheduler(driver, MATE_60_PRO)
        result = scheduler.run()
        slips = scheduler.rs_slips if flavor == "openharmony" else None
        return fdps(result), latency_summary(result).mean_ms, slips

    for repetition in range(effective_runs):
        for flavor in ("android", "openharmony"):
            matrix.add_live(
                lambda flavor=flavor, repetition=repetition: (
                    one_rep(flavor, repetition)
                ),
                flavor=flavor,
                rep=repetition,
            )
    return matrix


def _analyze_flavor(result: StudyResult) -> ExperimentResult:
    stats = {"android": {"fdps": [], "latency": []}, "openharmony": {"fdps": [], "latency": []}}
    slips = []
    for flavor in ("android", "openharmony"):
        for payload in result.select(flavor=flavor):
            if payload is None:
                continue
            fdps_value, latency_value, slip_count = payload
            stats[flavor]["fdps"].append(fdps_value)
            stats[flavor]["latency"].append(latency_value)
            if slip_count is not None:
                slips.append(slip_count)
    rows = [
        [flavor, round(mean(values["fdps"]), 2), round(mean(values["latency"]), 1)]
        for flavor, values in stats.items()
    ]
    ratio = mean(stats["openharmony"]["fdps"]) / max(1e-9, mean(stats["android"]["fdps"]))
    return ExperimentResult(
        experiment_id="ablation-flavor",
        title="Baseline pipeline flavor: chained render thread vs VSync-rs service",
        headers=["flavor", "FDPS", "mean latency (ms)"],
        rows=rows,
        comparisons=[
            ("OH/Android baseline FDPS ratio", "~1 (same architecture class)", round(ratio, 2)),
            ("VSync-rs edge slips observed", "> 0", round(mean(slips), 1)),
        ],
    )


def run_pipeline_flavor(runs: int = 3, quick: bool = False) -> ExperimentResult:
    """Android-chained vs OpenHarmony VSync-rs render triggering (§2)."""
    return flavor_study(runs, quick).run()


# --------------------------------------------------------------- composite
def _merge(parts: list[ExperimentResult]) -> ExperimentResult:
    rows = []
    comparisons = []
    for part in parts:
        rows.append([f"--- {part.title} ---", ""])
        rows.extend([[str(r[0]), str(r[1])] for r in part.rows])
        comparisons.extend(part.comparisons)
    return ExperimentResult(
        experiment_id="ablations",
        title="Design-choice ablations",
        headers=["item", "value"],
        rows=rows,
        comparisons=comparisons,
    )


def study(runs: int = 3, quick: bool = False) -> CompositeStudy:
    """All five ablations as one composite matrix (one executor batch)."""
    return CompositeStudy(
        "ablations",
        parts=[
            dtv_study(runs, quick),
            ipl_study(runs, quick),
            limit_study(runs, quick),
            ltpo_study(runs, quick),
            flavor_study(runs, quick),
        ],
        combine=_merge,
    )


def run(runs: int = 3, quick: bool = False) -> ExperimentResult:
    """Run all five ablations and merge their reports."""
    return study(runs=runs, quick=quick).run()
