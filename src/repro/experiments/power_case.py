"""§6.7: power consumption and CPU instructions.

End-to-end device power rises only 0.13 % for the map-app animation under
D-VSync (0.37 % when 10 % of frames additionally run the ZDP curve fitting),
because D-VSync merely shifts load forward plus renders the frames VSync
would have dropped. Render-service instructions: 10.849 vs 10.793 M per
frame (+0.52 %).
"""

from __future__ import annotations

from repro.core.config import DVSyncConfig
from repro.core.ipl import ZoomingDistancePredictor
from repro.display.device import PIXEL_5
from repro.exec.spec import DriverSpec, RunSpec
from repro.experiments.base import ExperimentResult, mean
from repro.metrics.power import instructions_per_frame, power_increase_percent
from repro.study import Study, StudyResult
from repro.units import ms
from repro.workloads.distributions import params_for_target_fdps
from repro.workloads.drivers import AnimationDriver

PAPER_POWER_INCREASE = 0.13
PAPER_POWER_INCREASE_ZDP = 0.37
PAPER_INSTR_DVSYNC = 10.849
PAPER_INSTR_VSYNC = 10.793
PAPER_INSTR_OVERHEAD = 0.52


def build_power_driver(run_index: int, bursts: int) -> AnimationDriver:
    """RunSpec builder: the §6.7 map-animation reference workload.

    Light, with only occasional drops — the extra power is dominated by the
    scheduler modules, not by recovered frames.
    """
    params = params_for_target_fdps(0.5, PIXEL_5.refresh_hz)
    return AnimationDriver(
        f"power-map-anim#{run_index}",
        params,
        duration_ns=ms(400),
        bursts=bursts,
        burst_period_ns=ms(600),
    )


def study(runs: int = 3, quick: bool = False) -> Study:
    """The §6.7 matrix: architecture × repetition, one batch."""
    effective_runs = 2 if quick else runs
    bursts = 6 if quick else 20
    matrix = Study(
        "power", analyze=lambda result: _analyze(result, effective_runs)
    )
    drivers = [
        DriverSpec.of(
            "repro.experiments.power_case:build_power_driver",
            run_index=repetition,
            bursts=bursts,
        )
        for repetition in range(effective_runs)
    ]
    for repetition, driver in enumerate(drivers):
        matrix.add(
            RunSpec(driver=driver, device=PIXEL_5, architecture="vsync", buffer_count=3),
            architecture="vsync",
            rep=repetition,
        )
    for repetition, driver in enumerate(drivers):
        matrix.add(
            RunSpec(
                driver=driver,
                device=PIXEL_5,
                architecture="dvsync",
                dvsync=DVSyncConfig(buffer_count=4),
            ),
            architecture="dvsync",
            rep=repetition,
        )
    return matrix


def _analyze(result: StudyResult, effective_runs: int) -> ExperimentResult:
    increases, increases_zdp = [], []
    instr_vsync, instr_dvsync = [], []
    for baseline, improved in result.pairs(
        {"architecture": "vsync"}, {"architecture": "dvsync"}
    ):
        increases.append(power_increase_percent(baseline, improved))
        # ZDP arm: 10 % of frames additionally run the curve fitting (§6.7).
        zdp_frames = round(0.10 * len(improved.frames))
        zdp_extra_ns = zdp_frames * ZoomingDistancePredictor.overhead_ns
        increases_zdp.append(
            power_increase_percent(baseline, improved, improved_extra_ns=zdp_extra_ns)
        )
        instr_vsync.append(instructions_per_frame(baseline) / 1e6)
        instr_dvsync.append(instructions_per_frame(improved) / 1e6)
    instr_overhead = (
        (mean(instr_dvsync) - mean(instr_vsync)) / mean(instr_vsync) * 100
        if mean(instr_vsync)
        else 0.0
    )
    rows = [
        ["power increase, D-VSync (%)", round(mean(increases), 3)],
        ["power increase, D-VSync + ZDP on 10% frames (%)", round(mean(increases_zdp), 3)],
        ["instructions/frame, VSync (M)", round(mean(instr_vsync), 3)],
        ["instructions/frame, D-VSync (M)", round(mean(instr_dvsync), 3)],
        ["instruction overhead (%)", round(instr_overhead, 2)],
    ]
    return ExperimentResult(
        experiment_id="power",
        title="Power and CPU-instruction overhead of D-VSync",
        headers=["metric", "value"],
        rows=rows,
        comparisons=[
            ("end-to-end power increase (%)", PAPER_POWER_INCREASE, round(mean(increases), 2)),
            (
                "power increase with ZDP (%)",
                PAPER_POWER_INCREASE_ZDP,
                round(mean(increases_zdp), 2),
            ),
            ("instruction overhead (%)", PAPER_INSTR_OVERHEAD, round(instr_overhead, 2)),
        ],
        notes=(
            "The increase is the work of frames VSync would have dropped plus "
            "the little-core scheduler overhead, against the device baseline."
        ),
    )


def run(runs: int = 3, quick: bool = False) -> ExperimentResult:
    """Regenerate the §6.7 power/instruction accounting."""
    return study(runs=runs, quick=quick).run()
