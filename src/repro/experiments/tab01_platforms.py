"""Table 1: platform configuration.

Static regeneration of the device table from the profiles the simulator uses,
verifying the derived quantities (VSync period per refresh rate).
"""

from __future__ import annotations

from repro.display.device import ALL_DEVICES
from repro.experiments.base import ExperimentResult
from repro.study import Study
from repro.units import to_ms


def study(runs: int = 1, quick: bool = False) -> Study:
    """Table 1 is static data: a zero-cell study."""
    return Study("tab01", analyze=lambda _result: _build())


def _build() -> ExperimentResult:
    rows = []
    for device in ALL_DEVICES:
        rows.append(
            [
                device.name,
                device.release,
                device.os.value,
                device.backend.value,
                f"{device.width} x {device.height}",
                f"{device.refresh_hz}Hz / {to_ms(device.vsync_period):.1f}ms",
            ]
        )
    return ExperimentResult(
        experiment_id="tab01",
        title="Platform configuration",
        headers=["device", "release", "OS", "backend", "screen", "refresh rate"],
        rows=rows,
        comparisons=[
            ("Pixel 5 period (ms)", 16.7, round(to_ms(ALL_DEVICES[0].vsync_period), 1)),
            ("Mate 40 Pro period (ms)", 11.1, round(to_ms(ALL_DEVICES[1].vsync_period), 1)),
            ("Mate 60 Pro period (ms)", 8.3, round(to_ms(ALL_DEVICES[2].vsync_period), 1)),
        ],
    )


def run(runs: int = 1, quick: bool = False) -> ExperimentResult:
    """Regenerate Table 1."""
    return study(runs=runs, quick=quick).run()
