"""Extensions beyond the paper's core contribution.

Composable techniques from the paper's related-work section (§8) that the
authors call orthogonal-but-applicable to D-VSync — currently the
prediction-guided DVFS governor.
"""

from repro.extensions.dvfs import (
    DEFAULT_LEVELS,
    FrequencyGovernor,
    GovernedDriver,
    GovernorStats,
)

__all__ = ["DEFAULT_LEVELS", "FrequencyGovernor", "GovernedDriver", "GovernorStats"]
