"""Prediction-guided DVFS governing (§8's orthogonal energy work).

Lo et al. and Choi et al. estimate each frame's execution time and lower the
CPU/GPU frequency so the frame finishes *just before* its VSync deadline,
trading slack for energy. The paper argues these governors compose with
D-VSync, which hands them a bigger time window: with a pre-render window of W
periods the governor can clock lower than a 1-period deadline allows, for the
same (or fewer) drops.

The model here is the standard DVFS first-order approximation: execution time
scales as ``1/f`` and dynamic energy for fixed work scales as ``f²`` (through
the voltage/frequency proportionality). :class:`GovernedDriver` wraps any
scenario driver, picks a frequency level per frame from an EWMA estimate of
recent frame cost at maximum frequency, stretches the frame's stage times
accordingly, and keeps an energy ledger for comparison.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.pipeline.driver import ScenarioDriver
from repro.pipeline.frame import FrameCategory, FrameWorkload

DEFAULT_LEVELS = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


@dataclasses.dataclass
class GovernorStats:
    """What the governor did over one run."""

    frames: int = 0
    level_sum: float = 0.0
    energy_index: float = 0.0  # sum(work_at_fmax * level^2), arbitrary units
    baseline_energy_index: float = 0.0  # the same work always at fmax

    @property
    def mean_level(self) -> float:
        return self.level_sum / self.frames if self.frames else 1.0

    @property
    def energy_saving_percent(self) -> float:
        if self.baseline_energy_index <= 0:
            return 0.0
        return (1 - self.energy_index / self.baseline_energy_index) * 100


class FrequencyGovernor:
    """Chooses a frequency level so the frame fits its deadline window."""

    def __init__(
        self,
        window_periods: float,
        period_ns: int,
        levels: tuple[float, ...] = DEFAULT_LEVELS,
        margin: float = 1.2,
        ewma_alpha: float = 0.3,
    ) -> None:
        if window_periods <= 0:
            raise ConfigurationError("window must be positive")
        if not levels or any(not 0 < level <= 1 for level in levels):
            raise ConfigurationError("levels must be fractions of fmax in (0, 1]")
        if margin < 1:
            raise ConfigurationError("margin must be >= 1")
        self.window_ns = round(window_periods * period_ns)
        self.levels = tuple(sorted(levels))
        self.margin = margin
        self.ewma_alpha = ewma_alpha
        self._estimate_ns = period_ns // 2
        self.stats = GovernorStats()

    def choose_level(self) -> float:
        """Lowest level whose stretched estimate still fits the window."""
        budget = self.window_ns / self.margin
        for level in self.levels:
            if self._estimate_ns / level <= budget:
                return level
        return self.levels[-1]

    def observe(self, fmax_cost_ns: int, level: float) -> None:
        """Account one executed frame and update the cost estimate."""
        self._estimate_ns = round(
            (1 - self.ewma_alpha) * self._estimate_ns + self.ewma_alpha * fmax_cost_ns
        )
        self.stats.frames += 1
        self.stats.level_sum += level
        self.stats.energy_index += fmax_cost_ns * level**2
        self.stats.baseline_energy_index += fmax_cost_ns


class GovernedDriver(ScenarioDriver):
    """Wraps a driver, stretching each frame per the governor's level.

    The wrapped driver's workloads are taken as costs at maximum frequency;
    the governed workload divides every stage by the chosen level (longer
    wall time, quadratically less dynamic energy).
    """

    def __init__(self, inner: ScenarioDriver, governor: FrequencyGovernor) -> None:
        self.inner = inner
        self.governor = governor
        self.name = f"{inner.name}+dvfs"

    def begin(self, start_time: int) -> None:
        super().begin(start_time)
        self.inner.begin(start_time)

    def wants_frame(self, content_timestamp: int, now: int) -> bool:
        return self.inner.wants_frame(content_timestamp, now)

    def finished(self, now: int) -> bool:
        return self.inner.finished(now)

    def frame_category(self, frame_index: int) -> FrameCategory:
        return self.inner.frame_category(frame_index)

    def make_workload(self, frame_index: int, content_timestamp: int) -> FrameWorkload:
        workload = self.inner.make_workload(frame_index, content_timestamp)
        level = self.governor.choose_level()
        self.governor.observe(workload.total_ns, level)
        return FrameWorkload(
            ui_ns=round(workload.ui_ns / level),
            render_ns=round(workload.render_ns / level),
            gpu_ns=round(workload.gpu_ns / level),
            category=workload.category,
        )

    def observe_input(self, up_to: int):
        return self.inner.observe_input(up_to)

    def true_value(self, at: int):
        return self.inner.true_value(at)

    def animation_speed(self, at: int) -> float:
        return self.inner.animation_speed(at)
