"""The two-stage rendering pipeline (Fig 2).

``RenderPipeline`` executes frames through the stage graph of a real
smartphone rendering service:

1. **UI stage** — the app UI thread handles input and UI logic;
2. **Render stage** — the render thread (Android) or render service
   (OpenHarmony/iOS) dequeues a buffer, records GPU commands, and — for
   workloads that model GPU time separately (games) — waits for the GPU
   before the buffer is queued for composition.

The pipeline is policy-free: *when* a frame starts is the scheduler's
decision (VSync tick or D-VSync event). The pipeline faithfully models the
resource constraints that create frame drops: one UI thread, one render
thread, and buffer-pool backpressure (``dequeueBuffer`` stalls when every
slot is in flight — the "buffer stuffing" mechanism of §3.3).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import PipelineError
from repro.graphics.bufferqueue import BufferQueue
from repro.pipeline.frame import FrameRecord
from repro.pipeline.threads import SimThread
from repro.sim.engine import Simulator

FrameCallback = Callable[[FrameRecord], None]


class RenderPipeline:
    """Executes frames through UI → render → (GPU) → buffer queue."""

    def __init__(
        self, sim: Simulator, buffer_queue: BufferQueue, auto_render: bool = True
    ) -> None:
        self.sim = sim
        self.buffer_queue = buffer_queue
        self.ui_thread = SimThread(sim, "ui")
        self.render_thread = SimThread(sim, "render")
        self.gpu = SimThread(sim, "gpu")
        self.on_ui_complete: list[FrameCallback] = []
        self.on_frame_queued: list[FrameCallback] = []
        self.frames_in_flight = 0
        self.render_rate_hz = 60
        # Android-style pipelines chain the render stage on UI completion;
        # OpenHarmony's render service instead picks records up on its own
        # VSync-rs signal — schedulers for that flavor set auto_render=False
        # and call submit_render() themselves.
        self.auto_render = auto_render
        self._render_backlog: list[FrameRecord] = []
        self._render_active = False
        self._waiting_for_buffer = False
        self._waiting_since: int | None = None
        buffer_queue.on_slot_freed.append(self._on_slot_freed)

    @property
    def ui_idle(self) -> bool:
        """True if the UI thread can start a new frame's logic immediately."""
        return self.ui_thread.idle

    @property
    def render_backlog(self) -> int:
        """Frames at the render stage: currently rendering plus waiting.

        Classic VSync pipelines are lockstep — the UI thread synchronizes
        with the render thread each frame (Android's ``syncAndDrawFrame``),
        so the app never runs more than one frame ahead of rendering. The
        VSync scheduler consults this to skip ticks when the pipe is full;
        D-VSync deliberately does not (decoupled run-ahead is the point).
        """
        return len(self._render_backlog) + (1 if self._render_active else 0)

    @property
    def undisplayed_frames(self) -> int:
        """Frames committed to the pipeline but not yet latched: in-flight
        plus queued buffers. This is the FPE's pre-render occupancy."""
        return self.frames_in_flight + self.buffer_queue.queued_depth

    def start_frame(self, frame: FrameRecord) -> None:
        """Begin executing *frame*, starting with its UI-stage work."""
        if frame.ui_start is not None:
            raise PipelineError(f"frame {frame.frame_id} was already started")
        self.frames_in_flight += 1

        def ui_started(at: int) -> None:
            frame.ui_start = at

        def ui_finished(at: int) -> None:
            frame.ui_end = at
            for hook in list(self.on_ui_complete):
                hook(frame)
            if self.auto_render:
                self.submit_render(frame)

        self.ui_thread.submit(frame.workload.ui_ns, ui_started, ui_finished)

    def submit_render(self, frame: FrameRecord) -> None:
        """Hand a UI-completed frame to the render stage.

        Called automatically when ``auto_render`` is set; OpenHarmony-flavor
        schedulers call it from their VSync-rs handler instead.
        """
        if frame.ui_end is None:
            raise PipelineError(
                f"frame {frame.frame_id} cannot render before its UI stage completes"
            )
        self._render_backlog.append(frame)
        self._pump_render()

    # ------------------------------------------------------------ render side
    def _on_slot_freed(self) -> None:
        if self._waiting_for_buffer:
            self._waiting_for_buffer = False
            self._pump_render()

    def _pump_render(self) -> None:
        """Start the next backlog frame if the render thread and a buffer are free."""
        if self._render_active or not self._render_backlog:
            return
        frame = self._render_backlog[0]
        buffer = self.buffer_queue.try_dequeue()
        if buffer is None:
            # dequeueBuffer stalls: remember when the stall began so the
            # frame's buffer_wait_ns reflects backpressure time.
            self._waiting_for_buffer = True
            if self._waiting_since is None:
                self._waiting_since = self.sim.now
            return
        self._render_backlog.pop(0)
        if self._waiting_since is not None:
            frame.buffer_wait_ns = self.sim.now - self._waiting_since
            self._waiting_since = None
        self._render_active = True
        frame.buffer_slot = buffer.slot

        def render_started(at: int) -> None:
            frame.render_start = at

        def render_finished(at: int) -> None:
            frame.render_end = at
            if frame.workload.gpu_ns > 0:
                self.gpu.submit(
                    frame.workload.gpu_ns,
                    on_complete=lambda t: self._finish_frame(frame, buffer, t),
                )
            else:
                self._finish_frame(frame, buffer, at)
            # The render thread is free for the next frame's CPU work even
            # while the GPU finishes this one (pipelined, as on real devices).
            self._render_active = False
            self._pump_render()

        self.render_thread.submit(frame.workload.render_ns, render_started, render_finished)

    def _finish_frame(self, frame: FrameRecord, buffer, at: int) -> None:
        frame.gpu_end = at if frame.workload.gpu_ns > 0 else None
        frame.queued_time = at
        frame.render_rate_hz = self.render_rate_hz
        self.buffer_queue.queue(
            buffer,
            frame_id=frame.frame_id,
            content_timestamp=frame.content_timestamp,
            render_rate_hz=self.render_rate_hz,
            now=at,
        )
        self.frames_in_flight -= 1
        for hook in list(self.on_frame_queued):
            hook(frame)
