"""Simulated CPU threads.

A :class:`SimThread` serializes work items on one logical core: a submitted
task starts when the thread becomes idle and completes ``duration`` later.
This captures what matters for the rendering pipeline — the UI thread cannot
start frame N+1's logic while frame N's logic still runs — without modelling
instruction-level detail. Total busy time feeds the §6.7 power model.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import PipelineError
from repro.sim.engine import Simulator


class SimThread:
    """A serialized execution resource on the simulator.

    Tasks run in submission order (FIFO). ``busy_until`` is the time the
    thread drains everything currently queued.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self._busy_until = 0
        self.total_busy_ns = 0
        self.tasks_executed = 0

    @property
    def busy_until(self) -> int:
        """Absolute time at which all queued work completes."""
        return max(self._busy_until, self.sim.now)

    @property
    def idle(self) -> bool:
        """True if the thread has no queued or running work."""
        return self._busy_until <= self.sim.now

    def submit(
        self,
        duration: int,
        on_start: Callable[[int], Any] | None = None,
        on_complete: Callable[[int], Any] | None = None,
    ) -> int:
        """Queue *duration* ns of work; returns the completion time.

        ``on_start`` fires when the work actually begins (after queued work
        drains), ``on_complete`` when it finishes. Zero-duration tasks are
        legal and complete at their start instant.
        """
        if duration < 0:
            raise PipelineError(f"task duration must be non-negative, got {duration}")
        start = max(self.sim.now, self._busy_until)
        end = start + duration
        self._busy_until = end
        self.total_busy_ns += duration
        self.tasks_executed += 1
        if on_start is not None:
            self.sim.schedule_at(start, lambda: on_start(start))
        if on_complete is not None:
            self.sim.schedule_at(end, lambda: on_complete(end))
        return end

    def utilization(self, window_ns: int) -> float:
        """Fraction of *window_ns* this thread spent busy (can exceed 1 only
        if more work was queued than the window can hold — callers normally
        pass the full run duration)."""
        if window_ns <= 0:
            raise PipelineError("utilization window must be positive")
        return self.total_busy_ns / window_ns

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimThread({self.name!r}, busy_until={self._busy_until})"
