"""Common machinery shared by the VSync and D-VSync schedulers.

:class:`SchedulerBase` wires one scenario run together: the simulator, the
HW-VSync source, software VSync channels, the buffer queue sized for the
architecture under test, the two-stage render pipeline, the compositor, and
the HAL. Subclasses implement exactly one thing — the *frame triggering
policy* — which is the entire difference between VSync and D-VSync (§4.1).

A run produces a :class:`RunResult`: the raw material every metric in
:mod:`repro.metrics` is computed from.
"""

from __future__ import annotations

import abc
import dataclasses
import time
from typing import TYPE_CHECKING, Callable

from repro.display.device import DeviceProfile
from repro.display.hal import PresentRecord, ScreenHAL
from repro.display.vsync import HWVsyncSource, VsyncChannel, VsyncOffsets
from repro.errors import ConfigurationError
from repro.graphics.bufferqueue import BufferQueue
from repro.pipeline.compositor import Compositor, DropEvent
from repro.pipeline.driver import ScenarioDriver
from repro.pipeline.frame import FrameCategory, FrameRecord, FrameWorkload
from repro.pipeline.stages import RenderPipeline
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.session import NullTelemetry, Telemetry, TelemetrySnapshot
    from repro.verify.invariants import InvariantChecker

# Safety valve for run(); generous enough for hours of simulated 120 Hz.
_MAX_EVENTS = 20_000_000


@dataclasses.dataclass
class RunResult:
    """Everything observed during one scenario run."""

    scheduler: str
    scenario: str
    device: DeviceProfile
    buffer_count: int
    frames: list[FrameRecord]
    drops: list[DropEvent]
    presents: list[PresentRecord]
    start_time: int
    end_time: int
    ui_busy_ns: int
    render_busy_ns: int
    gpu_busy_ns: int
    scheduler_overhead_ns: int = 0
    extra: dict = dataclasses.field(default_factory=dict)
    telemetry: "TelemetrySnapshot | None" = None

    @property
    def presented_frames(self) -> list[FrameRecord]:
        """Frames that reached the panel."""
        return [f for f in self.frames if f.presented]

    @property
    def first_present_time(self) -> int | None:
        """Present-fence time of the first displayed frame."""
        return self.presents[0].present_time if self.presents else None

    @property
    def last_present_time(self) -> int | None:
        """Present-fence time of the last displayed frame."""
        return self.presents[-1].present_time if self.presents else None

    @property
    def display_span_ns(self) -> int:
        """Active display span: first present to one period past the last.

        This is the denominator of FDPS, matching the industrial "drops per
        second of display time" metric (§3.2).
        """
        if not self.presents:
            return 0
        return (
            self.presents[-1].present_time
            - self.presents[0].present_time
            + self.presents[-1].refresh_period
        )

    @property
    def effective_drops(self) -> list[DropEvent]:
        """Drops within the active display span (pipeline-fill edges excluded).

        The first frame of any run necessarily spends the pipeline depth
        without content on screen; industrial counters start once content is
        up, so we exclude janks before the first latch.
        """
        first = self.first_present_time
        if first is None:
            return list(self.drops)
        first_latch = self.presents[0].present_time - self.presents[0].refresh_period
        return [d for d in self.drops if d.time >= first_latch]


class SchedulerBase(abc.ABC):
    """One scenario run under a specific frame-triggering architecture.

    The construction contract is shared by every scheduler: positional
    ``(driver, device)``, one positional-or-keyword architecture knob
    (``buffer_count`` here and on the VSync subclasses, ``config`` on
    D-VSync), and keyword-only ``offsets`` / ``sim`` / ``telemetry`` /
    ``verify``.
    Likewise :meth:`run` is defined once, here — subclasses customize the
    result through :meth:`_finalize_result`, never by overriding ``run``.
    """

    scheduler_name = "base"
    #: Telemetry session for this run; ``None`` until construction installs
    #: one (the null session when telemetry is off).
    telemetry: "Telemetry | NullTelemetry | None" = None
    #: Invariant checker for this run; stays ``None`` when verification is
    #: disabled (the zero-cost default — no hooks are registered).
    verifier: "InvariantChecker | None" = None

    def __init__(
        self,
        driver: ScenarioDriver,
        device: DeviceProfile,
        buffer_count: int | None = None,
        *,
        offsets: VsyncOffsets | None = None,
        sim: Simulator | None = None,
        telemetry: "Telemetry | NullTelemetry | bool | None" = None,
        verify: "InvariantChecker | bool | None" = None,
    ) -> None:
        self.driver = driver
        self.device = device
        self.buffer_count = buffer_count or device.default_buffer_count
        if self.buffer_count < 2:
            raise ConfigurationError("buffer_count must be at least 2")
        self.sim = sim or Simulator()
        self.offsets = offsets or VsyncOffsets()
        self.hw_vsync = HWVsyncSource(self.sim, device.vsync_period)
        self.buffer_queue = BufferQueue(self.buffer_count, device.framebuffer_bytes)
        self.pipeline = RenderPipeline(self.sim, self.buffer_queue)
        self.pipeline.render_rate_hz = device.refresh_hz
        self.hal = ScreenHAL()
        # The compositor registers on HW-VSync *before* the app channel so
        # that, on any given edge, buffer consumption (and the jank check)
        # happens before new frames are triggered — a frame spawned at edge T
        # must not count as content that edge T was waiting for.
        self.compositor = Compositor(
            self.hw_vsync,
            self.buffer_queue,
            self.hal,
            self._frame_by_id,
            self._expects_content,
            lambda: self.pipeline.frames_in_flight,
        )
        self.app_channel = VsyncChannel(self.hw_vsync, self.offsets.app_offset, "vsync-app")
        self.frames: list[FrameRecord] = []
        self._frames_by_id: dict[int, FrameRecord] = {}
        self._frame_counter = 0
        self._driver_done = False
        self._started = False
        self.scheduler_overhead_ns = 0
        # Fault-injection seams (repro.faults): workload filters transform
        # each spawned frame's demand (thermal throttling), input filters
        # transform the observed input stream (sample loss/staleness), and
        # result hooks annotate the RunResult (fault/watchdog summaries).
        self.workload_filters: list[Callable[[FrameWorkload, int], FrameWorkload]] = []
        self.input_filters: list[
            Callable[[list[tuple[int, float]], int], list[tuple[int, float]]]
        ] = []
        self.result_hooks: list[Callable[[RunResult], None]] = []
        # Observability seam: fires after a frame is created and handed to the
        # pipeline. Telemetry registers here; the list stays empty otherwise.
        self.on_frame_spawned: list[Callable[[FrameRecord], None]] = []
        self.compositor.after_tick.append(self._after_tick)
        self._install_telemetry(telemetry)
        self._install_verifier(verify)

    # -------------------------------------------------------------- telemetry
    def _install_telemetry(
        self, telemetry: "Telemetry | NullTelemetry | bool | None"
    ) -> None:
        """Resolve the telemetry argument and, when enabled, attach probes.

        Disabled telemetry registers **nothing**: every emission below rides
        an existing hook list, so a run without telemetry executes the same
        code paths as one built before the subsystem existed.
        """
        from repro.telemetry.session import resolve_telemetry

        session = resolve_telemetry(
            telemetry, name=f"{self.scheduler_name}@{self.driver.name}"
        )
        self.telemetry = session
        if not session.enabled:
            return
        pipeline_probe = session.probe("ui")
        trigger_probe = session.probe("trigger")
        display_probe = session.probe("display")
        jank_probe = session.probe("janks")

        def frame_spawned(frame: FrameRecord) -> None:
            trigger_probe.instant(
                "d-vsync" if frame.decoupled else "vsync-app", frame.trigger_time
            )
            trigger_probe.count("frames")

        def ui_complete(frame: FrameRecord) -> None:
            if frame.ui_start is not None and frame.ui_end is not None:
                pipeline_probe.span(
                    f"frame-{frame.frame_id}", frame.ui_start, frame.ui_end,
                )
                pipeline_probe.observe("self_ns", frame.ui_end - frame.ui_start)

        def frame_queued(frame: FrameRecord) -> None:
            if frame.render_start is not None and frame.render_end is not None:
                session.trace.add_span(
                    "render", f"frame-{frame.frame_id}", frame.render_start, frame.render_end
                )
            if frame.workload.gpu_ns and frame.render_end is not None and frame.gpu_end:
                session.trace.add_span(
                    "gpu", f"frame-{frame.frame_id}", frame.render_end, frame.gpu_end
                )
            if frame.buffer_wait_ns:
                session.metrics.histogram("queue.buffer_wait_ns").observe(
                    frame.buffer_wait_ns
                )

        def presented(record: PresentRecord) -> None:
            display_probe.instant(f"frame-{record.frame_id}", record.present_time)
            display_probe.counter(
                record.present_time, record.queue_depth_after, name="queue-depth"
            )
            display_probe.count("presents")

        drops_seen = 0

        def after_tick(timestamp: int, index: int) -> None:
            nonlocal drops_seen
            jank_probe.count("ticks")
            while drops_seen < len(self.compositor.drops):
                drop = self.compositor.drops[drops_seen]
                drops_seen += 1
                jank_probe.instant("frame-drop", drop.time)
                jank_probe.count("drops")

        self.on_frame_spawned.append(frame_spawned)
        self.pipeline.on_ui_complete.append(ui_complete)
        self.pipeline.on_frame_queued.append(frame_queued)
        self.hal.add_listener(presented)
        self.compositor.after_tick.append(after_tick)
        # The simulator self-times its event loop (wall clock) into the session.
        self.sim.telemetry = session

    # ----------------------------------------------------------- verification
    def _install_verifier(self, verify: "InvariantChecker | bool | None") -> None:
        """Resolve the verify argument; when enabled, bind the checker.

        Disabled verification (the default) binds **nothing**: the checker's
        per-event hooks only exist on runs that asked for them, so a run
        without verification executes the same code paths as one built before
        the subsystem existed. The checker's event hooks install at the top
        of :meth:`run` (see :meth:`InvariantChecker.arm`), after every
        component and listener exists.
        """
        from repro.verify.invariants import resolve_checker

        checker = resolve_checker(verify)
        if checker is not None:
            self.verifier = checker
            checker.attach(self)

    # ------------------------------------------------------------------ hooks
    def _frame_by_id(self, frame_id: int) -> FrameRecord | None:
        return self._frames_by_id.get(frame_id)

    def _expects_content(self) -> bool:
        return self.pipeline.frames_in_flight > 0

    def _after_tick(self, timestamp: int, index: int) -> None:
        if (
            self._driver_done
            and self.pipeline.frames_in_flight == 0
            and self.buffer_queue.queued_depth == 0
        ):
            self.hw_vsync.stop()

    # -------------------------------------------------------------- frame ops
    def _next_frame_index(self) -> int:
        return self._frame_counter

    def _mark_driver_done(self) -> None:
        self._driver_done = True

    def _spawn_frame(self, content_timestamp: int, decoupled: bool) -> FrameRecord:
        """Create frame records and hand the frame to the pipeline."""
        index = self._frame_counter
        self._frame_counter += 1
        workload = self.driver.make_workload(index, content_timestamp)
        for workload_filter in self.workload_filters:
            workload = workload_filter(workload, self.sim.now)
        frame = FrameRecord(
            frame_id=index,
            workload=workload,
            trigger_time=self.sim.now,
            content_timestamp=content_timestamp,
            decoupled=decoupled,
        )
        frame.content_value = self._content_value_for(frame)
        self.frames.append(frame)
        self._frames_by_id[index] = frame
        self.pipeline.start_frame(frame)
        for hook in list(self.on_frame_spawned):
            hook(frame)
        return frame

    def _content_value_for(self, frame: FrameRecord) -> float | None:
        """What the app draws in this frame.

        Animations sample their motion curve at the content timestamp (they
        are deterministic functions of time). Interactions can only use input
        observed by *now*; the D-VSync scheduler overrides this to route
        interactive frames through the IPL.
        """
        if frame.workload.category is FrameCategory.PREDICTABLE_INTERACTION:
            samples = self._observe_input(self.sim.now)
            return samples[-1][1] if samples else None
        return self.driver.true_value(frame.content_timestamp)

    def _observe_input(self, up_to: int) -> list[tuple[int, float]]:
        """Driver input stream as the scheduler sees it, after fault filters."""
        samples = self.driver.observe_input(up_to)
        for input_filter in self.input_filters:
            samples = input_filter(samples, up_to)
        return samples

    # --------------------------------------------------------------- run loop
    @abc.abstractmethod
    def _kick(self) -> None:
        """Arm the first frame trigger; subclasses define the policy."""

    def _finalize_result(self, result: RunResult) -> None:
        """Attach subclass-specific statistics to a finished result.

        The template-method half of the unified :meth:`run` contract:
        subclasses override this (not ``run``) to annotate ``result.extra``.
        """

    def run(self, start_time: int = 0, horizon: int | None = None) -> RunResult:
        """Execute the scenario to completion and return the run result.

        This is the one run signature every scheduler shares; subclasses
        inherit it unchanged and customize via :meth:`_finalize_result`.
        """
        telemetry = self.telemetry
        recording = telemetry is not None and telemetry.enabled
        run_started = time.perf_counter() if recording else None
        if self.verifier is not None:
            self.verifier.arm()
        self.driver.begin(start_time)
        self._started = True
        self.hw_vsync.start(start_time)
        self._kick()
        self.sim.run(until=horizon, max_events=_MAX_EVENTS)
        self.hw_vsync.stop()
        result = RunResult(
            scheduler=self.scheduler_name,
            scenario=self.driver.name,
            device=self.device,
            buffer_count=self.buffer_count,
            frames=self.frames,
            drops=list(self.compositor.drops),
            presents=list(self.hal.presents),
            start_time=start_time,
            end_time=self.sim.now,
            ui_busy_ns=self.pipeline.ui_thread.total_busy_ns,
            render_busy_ns=self.pipeline.render_thread.total_busy_ns,
            gpu_busy_ns=self.pipeline.gpu.total_busy_ns,
            scheduler_overhead_ns=self.scheduler_overhead_ns,
        )
        if self.hal.contained_errors:
            result.extra["contained_exceptions"] = [
                (c.time, c.listener, c.error) for c in self.hal.contained_errors
            ]
        self._finalize_result(result)
        if run_started is not None:
            telemetry.add_profile("scheduler.run", time.perf_counter() - run_started)
            telemetry.metrics.gauge("run.frames").set(len(result.frames))
            telemetry.metrics.gauge("run.drops").set(len(result.drops))
            telemetry.metrics.gauge("run.presents").set(len(result.presents))
            result.telemetry = telemetry.snapshot(
                f"{self.scheduler_name}@{self.driver.name}"
            )
        for hook in list(self.result_hooks):
            hook(result)
        if self.verifier is not None:
            self.verifier.enforce(result)
        return result
