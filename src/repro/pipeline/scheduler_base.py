"""Common machinery shared by the VSync and D-VSync schedulers.

:class:`SchedulerBase` wires one scenario run together: the simulator, the
HW-VSync source, software VSync channels, the buffer queue sized for the
architecture under test, the two-stage render pipeline, the compositor, and
the HAL. Subclasses implement exactly one thing — the *frame triggering
policy* — which is the entire difference between VSync and D-VSync (§4.1).

A run produces a :class:`RunResult`: the raw material every metric in
:mod:`repro.metrics` is computed from.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Callable

from repro.display.device import DeviceProfile
from repro.display.hal import PresentRecord, ScreenHAL
from repro.display.vsync import HWVsyncSource, VsyncChannel, VsyncOffsets
from repro.errors import ConfigurationError
from repro.graphics.bufferqueue import BufferQueue
from repro.pipeline.compositor import Compositor, DropEvent
from repro.pipeline.driver import ScenarioDriver
from repro.pipeline.frame import FrameCategory, FrameRecord, FrameWorkload
from repro.pipeline.stages import RenderPipeline
from repro.sim.engine import Simulator

# Safety valve for run(); generous enough for hours of simulated 120 Hz.
_MAX_EVENTS = 20_000_000


@dataclasses.dataclass
class RunResult:
    """Everything observed during one scenario run."""

    scheduler: str
    scenario: str
    device: DeviceProfile
    buffer_count: int
    frames: list[FrameRecord]
    drops: list[DropEvent]
    presents: list[PresentRecord]
    start_time: int
    end_time: int
    ui_busy_ns: int
    render_busy_ns: int
    gpu_busy_ns: int
    scheduler_overhead_ns: int = 0
    extra: dict = dataclasses.field(default_factory=dict)

    @property
    def presented_frames(self) -> list[FrameRecord]:
        """Frames that reached the panel."""
        return [f for f in self.frames if f.presented]

    @property
    def first_present_time(self) -> int | None:
        """Present-fence time of the first displayed frame."""
        return self.presents[0].present_time if self.presents else None

    @property
    def last_present_time(self) -> int | None:
        """Present-fence time of the last displayed frame."""
        return self.presents[-1].present_time if self.presents else None

    @property
    def display_span_ns(self) -> int:
        """Active display span: first present to one period past the last.

        This is the denominator of FDPS, matching the industrial "drops per
        second of display time" metric (§3.2).
        """
        if not self.presents:
            return 0
        return (
            self.presents[-1].present_time
            - self.presents[0].present_time
            + self.presents[-1].refresh_period
        )

    @property
    def effective_drops(self) -> list[DropEvent]:
        """Drops within the active display span (pipeline-fill edges excluded).

        The first frame of any run necessarily spends the pipeline depth
        without content on screen; industrial counters start once content is
        up, so we exclude janks before the first latch.
        """
        first = self.first_present_time
        if first is None:
            return list(self.drops)
        first_latch = self.presents[0].present_time - self.presents[0].refresh_period
        return [d for d in self.drops if d.time >= first_latch]


class SchedulerBase(abc.ABC):
    """One scenario run under a specific frame-triggering architecture."""

    scheduler_name = "base"

    def __init__(
        self,
        driver: ScenarioDriver,
        device: DeviceProfile,
        buffer_count: int | None = None,
        offsets: VsyncOffsets | None = None,
        sim: Simulator | None = None,
    ) -> None:
        self.driver = driver
        self.device = device
        self.buffer_count = buffer_count or device.default_buffer_count
        if self.buffer_count < 2:
            raise ConfigurationError("buffer_count must be at least 2")
        self.sim = sim or Simulator()
        self.offsets = offsets or VsyncOffsets()
        self.hw_vsync = HWVsyncSource(self.sim, device.vsync_period)
        self.buffer_queue = BufferQueue(self.buffer_count, device.framebuffer_bytes)
        self.pipeline = RenderPipeline(self.sim, self.buffer_queue)
        self.pipeline.render_rate_hz = device.refresh_hz
        self.hal = ScreenHAL()
        # The compositor registers on HW-VSync *before* the app channel so
        # that, on any given edge, buffer consumption (and the jank check)
        # happens before new frames are triggered — a frame spawned at edge T
        # must not count as content that edge T was waiting for.
        self.compositor = Compositor(
            self.hw_vsync,
            self.buffer_queue,
            self.hal,
            self._frame_by_id,
            self._expects_content,
            lambda: self.pipeline.frames_in_flight,
        )
        self.app_channel = VsyncChannel(self.hw_vsync, self.offsets.app_offset, "vsync-app")
        self.frames: list[FrameRecord] = []
        self._frames_by_id: dict[int, FrameRecord] = {}
        self._frame_counter = 0
        self._driver_done = False
        self._started = False
        self.scheduler_overhead_ns = 0
        # Fault-injection seams (repro.faults): workload filters transform
        # each spawned frame's demand (thermal throttling), input filters
        # transform the observed input stream (sample loss/staleness), and
        # result hooks annotate the RunResult (fault/watchdog summaries).
        self.workload_filters: list[Callable[[FrameWorkload, int], FrameWorkload]] = []
        self.input_filters: list[
            Callable[[list[tuple[int, float]], int], list[tuple[int, float]]]
        ] = []
        self.result_hooks: list[Callable[[RunResult], None]] = []
        self.compositor.after_tick.append(self._after_tick)

    # ------------------------------------------------------------------ hooks
    def _frame_by_id(self, frame_id: int) -> FrameRecord | None:
        return self._frames_by_id.get(frame_id)

    def _expects_content(self) -> bool:
        return self.pipeline.frames_in_flight > 0

    def _after_tick(self, timestamp: int, index: int) -> None:
        if (
            self._driver_done
            and self.pipeline.frames_in_flight == 0
            and self.buffer_queue.queued_depth == 0
        ):
            self.hw_vsync.stop()

    # -------------------------------------------------------------- frame ops
    def _next_frame_index(self) -> int:
        return self._frame_counter

    def _mark_driver_done(self) -> None:
        self._driver_done = True

    def _spawn_frame(self, content_timestamp: int, decoupled: bool) -> FrameRecord:
        """Create frame records and hand the frame to the pipeline."""
        index = self._frame_counter
        self._frame_counter += 1
        workload = self.driver.make_workload(index, content_timestamp)
        for workload_filter in self.workload_filters:
            workload = workload_filter(workload, self.sim.now)
        frame = FrameRecord(
            frame_id=index,
            workload=workload,
            trigger_time=self.sim.now,
            content_timestamp=content_timestamp,
            decoupled=decoupled,
        )
        frame.content_value = self._content_value_for(frame)
        self.frames.append(frame)
        self._frames_by_id[index] = frame
        self.pipeline.start_frame(frame)
        return frame

    def _content_value_for(self, frame: FrameRecord) -> float | None:
        """What the app draws in this frame.

        Animations sample their motion curve at the content timestamp (they
        are deterministic functions of time). Interactions can only use input
        observed by *now*; the D-VSync scheduler overrides this to route
        interactive frames through the IPL.
        """
        if frame.workload.category is FrameCategory.PREDICTABLE_INTERACTION:
            samples = self._observe_input(self.sim.now)
            return samples[-1][1] if samples else None
        return self.driver.true_value(frame.content_timestamp)

    def _observe_input(self, up_to: int) -> list[tuple[int, float]]:
        """Driver input stream as the scheduler sees it, after fault filters."""
        samples = self.driver.observe_input(up_to)
        for input_filter in self.input_filters:
            samples = input_filter(samples, up_to)
        return samples

    # --------------------------------------------------------------- run loop
    @abc.abstractmethod
    def _kick(self) -> None:
        """Arm the first frame trigger; subclasses define the policy."""

    def run(self, start_time: int = 0, horizon: int | None = None) -> RunResult:
        """Execute the scenario to completion and return the run result."""
        self.driver.begin(start_time)
        self._started = True
        self.hw_vsync.start(start_time)
        self._kick()
        self.sim.run(until=horizon, max_events=_MAX_EVENTS)
        self.hw_vsync.stop()
        result = RunResult(
            scheduler=self.scheduler_name,
            scenario=self.driver.name,
            device=self.device,
            buffer_count=self.buffer_count,
            frames=self.frames,
            drops=list(self.compositor.drops),
            presents=list(self.hal.presents),
            start_time=start_time,
            end_time=self.sim.now,
            ui_busy_ns=self.pipeline.ui_thread.total_busy_ns,
            render_busy_ns=self.pipeline.render_thread.total_busy_ns,
            gpu_busy_ns=self.pipeline.gpu.total_busy_ns,
            scheduler_overhead_ns=self.scheduler_overhead_ns,
        )
        if self.hal.contained_errors:
            result.extra["contained_exceptions"] = [
                (c.time, c.listener, c.error) for c in self.hal.contained_errors
            ]
        for hook in list(self.result_hooks):
            hook(result)
        return result
