"""Per-frame records and workload descriptions.

A :class:`FrameWorkload` is what a scenario *demands* for one frame: stage
durations and the frame's category (Fig 9 taxonomy). A :class:`FrameRecord`
is what the pipeline *observed*: every timestamp from trigger to present
fence. All analysis in :mod:`repro.metrics` is computed from these records,
the same way the paper's scripts post-process Perfetto traces.
"""

from __future__ import annotations

import dataclasses
import enum


class FrameCategory(enum.Enum):
    """Frame taxonomy from the paper's scope study (Fig 9).

    - ``DETERMINISTIC_ANIMATION`` (~85 % of frames): animations following a
      click; pre-renderable with no app changes (oblivious channel).
    - ``PREDICTABLE_INTERACTION`` (~10 %): a fingertip is on the screen and
      its motion is predictable; pre-renderable via the IPL (aware channel).
    - ``REALTIME`` (~5 %): sensor/online data (camera, PvP games); D-VSync
      stays off and frames take the traditional VSync path.
    """

    DETERMINISTIC_ANIMATION = "deterministic_animation"
    PREDICTABLE_INTERACTION = "predictable_interaction"
    REALTIME = "realtime"

    @property
    def decouplable(self) -> bool:
        """True if the FPE may pre-render frames of this category at all."""
        return self is not FrameCategory.REALTIME

    @property
    def needs_input_prediction(self) -> bool:
        """True if pre-rendering requires the Input Prediction Layer."""
        return self is FrameCategory.PREDICTABLE_INTERACTION


@dataclasses.dataclass(frozen=True)
class FrameWorkload:
    """Execution demand of one frame.

    Attributes:
        ui_ns: App UI-thread logic duration (input handling, layout, anims).
        render_ns: Render-thread / render-service CPU duration.
        gpu_ns: GPU duration after CPU submission (games trace both, §6.1).
        category: Fig 9 category of this frame.
    """

    ui_ns: int
    render_ns: int
    gpu_ns: int = 0
    category: FrameCategory = FrameCategory.DETERMINISTIC_ANIMATION

    def __post_init__(self) -> None:
        if self.ui_ns < 0 or self.render_ns < 0 or self.gpu_ns < 0:
            raise ValueError("stage durations must be non-negative")

    @property
    def total_ns(self) -> int:
        """Critical-path duration of the frame (UI + render + GPU)."""
        return self.ui_ns + self.render_ns + self.gpu_ns


@dataclasses.dataclass
class FrameRecord:
    """Observed lifecycle of one frame through the pipeline.

    Timestamps are ns, None until the stage happens. ``content_timestamp`` is
    the time the frame's *content* represents: the VSync-app tick under VSync,
    the DTV-issued D-Timestamp under D-VSync. ``content_value`` optionally
    stores what the app drew (e.g. a scroll offset sampled from the motion
    curve at the content timestamp) so experiments can check correctness of
    pacing and input prediction, not just timing.
    """

    frame_id: int
    workload: FrameWorkload
    trigger_time: int
    content_timestamp: int
    decoupled: bool = False
    ui_start: int | None = None
    ui_end: int | None = None
    render_start: int | None = None
    render_end: int | None = None
    gpu_end: int | None = None
    queued_time: int | None = None
    latch_time: int | None = None
    present_time: int | None = None
    buffer_slot: int | None = None
    render_rate_hz: int | None = None
    buffer_wait_ns: int = 0
    content_value: float | None = None
    input_predicted: bool = False

    @property
    def presented(self) -> bool:
        """True once the frame reached the panel."""
        return self.present_time is not None

    @property
    def queue_wait_ns(self) -> int:
        """Time the rendered buffer waited in the queue before latch."""
        if self.queued_time is None or self.latch_time is None:
            return 0
        return self.latch_time - self.queued_time

    @property
    def execution_ns(self) -> int:
        """Trigger-to-queue execution span (includes buffer-wait stalls)."""
        if self.queued_time is None:
            return 0
        return self.queued_time - self.trigger_time

    @property
    def latency_ns(self) -> int:
        """The paper's §6.3 rendering latency for this frame.

        Duration from the frame's execution anchor to its final display: the
        trigger (VSync-app tick) under VSync, the D-Timestamp issue under
        D-VSync — which is ``content_timestamp`` in both cases for decoupled
        frames and ``trigger_time`` otherwise. Falls back to 0 when the frame
        never displayed (end-of-run truncation).
        """
        if self.present_time is None:
            return 0
        anchor = self.content_timestamp if self.decoupled else self.trigger_time
        return max(0, self.present_time - anchor)
