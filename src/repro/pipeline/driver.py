"""Scenario drivers: the app side of the rendering contract.

A :class:`ScenarioDriver` stands in for "the thing that wants frames" — an
animation started by a click, a fling, a pinch-zoom, a game scene. It is
deliberately *time-based*: ``wants_frame(content_timestamp, now)`` asks
whether a frame should exist for that content time, so the same driver
produces fewer displayed frames under a janky scheduler (dropped ticks) and
early-rendered frames under D-VSync (content timestamps run ahead of the wall
clock) without any driver changes — exactly the decoupling-oblivious channel.

Two times matter:

- ``content_timestamp`` — the moment the frame's content represents;
- ``now`` — the wall clock at trigger time. Real workloads are *bursts* of
  animation separated by user inputs (a swipe every half second, §6.1), and
  an animation cannot be pre-rendered before the input that starts it has
  physically happened. Drivers enforce that causality through ``now``.
"""

from __future__ import annotations

import abc

from repro.pipeline.frame import FrameCategory, FrameWorkload


class ScenarioDriver(abc.ABC):
    """Produces per-frame workloads for a scenario.

    Subclasses implement the demand side: whether the scenario still needs a
    frame at a given content time, what that frame costs, and (optionally)
    what the frame draws, so correctness experiments can compare drawn content
    against ground truth.
    """

    name: str = "scenario"

    def begin(self, start_time: int) -> None:
        """Called once before the first frame with the run's start time (ns)."""
        self.start_time = start_time

    @abc.abstractmethod
    def wants_frame(self, content_timestamp: int, now: int) -> bool:
        """True if a frame should exist for this content timestamp.

        ``now`` is the wall-clock trigger time: a frame may not be produced
        for an animation whose starting input has not yet arrived, no matter
        how far ahead the scheduler would like to render.
        """

    @abc.abstractmethod
    def finished(self, now: int) -> bool:
        """True once the scenario is over at wall-clock time *now*.

        Monotonic: once True it stays True. Between bursts a driver is
        neither wanting frames nor finished — the screen is simply idle.
        """

    @abc.abstractmethod
    def make_workload(self, frame_index: int, content_timestamp: int) -> FrameWorkload:
        """Return the execution demand of frame *frame_index*."""

    def frame_category(self, frame_index: int) -> FrameCategory:
        """Category of the upcoming frame, known before its workload is built.

        The FPE consults this *before* triggering: REALTIME frames must take
        the traditional VSync path (§4.2).
        """
        return FrameCategory.DETERMINISTIC_ANIMATION

    def observe_input(self, up_to: int) -> list[tuple[int, float]]:
        """Input samples (time, value) visible by wall-clock time *up_to*.

        Interactive drivers override this; the IPL fits its curve on these
        samples. Animation drivers have no input stream.
        """
        return []

    def true_value(self, at: int) -> float | None:
        """Ground-truth content value at time *at* (for correctness metrics)."""
        return None

    def animation_speed(self, at: int) -> float:
        """Motion speed in panel-heights/second at content time *at* (LTPO)."""
        return 1.0
