"""Scenario drivers: the app side of the rendering contract.

A :class:`ScenarioDriver` stands in for "the thing that wants frames" — an
animation started by a click, a fling, a pinch-zoom, a game scene. It is
deliberately *time-based*: ``wants_frame(content_timestamp, now)`` asks
whether a frame should exist for that content time, so the same driver
produces fewer displayed frames under a janky scheduler (dropped ticks) and
early-rendered frames under D-VSync (content timestamps run ahead of the wall
clock) without any driver changes — exactly the decoupling-oblivious channel.

Two times matter:

- ``content_timestamp`` — the moment the frame's content represents;
- ``now`` — the wall clock at trigger time. Real workloads are *bursts* of
  animation separated by user inputs (a swipe every half second, §6.1), and
  an animation cannot be pre-rendered before the input that starts it has
  physically happened. Drivers enforce that causality through ``now``.
"""

from __future__ import annotations

import abc
import dataclasses

from repro.pipeline.frame import FrameCategory, FrameWorkload


@dataclasses.dataclass(frozen=True)
class ReplayProfile:
    """A trace-pure driver's declarative replay contract (``repro.fastpath``).

    A driver that can describe itself this way is *trace pure*: its demand is
    a deterministic function of time (gated only by input arrivals), and its
    per-frame cost is a precomputed frame-time array. The fastpath replay
    engine uses the profile to fast-forward idle spans between bursts and to
    inline the per-frame lookups; where the profile leaves a field unset it
    falls back to the live driver's ``wants_frame`` / ``make_workload`` /
    ``true_value`` for the authoritative answers, so a minimal profile never
    has to duplicate policy.

    Attributes:
        input_arrival_offsets: Offsets (ns) from the run's start time at which
            gating user inputs arrive, ascending. Between one burst's demand
            ending and the next offset, the driver neither wants frames nor
            finishes — the screen is simply idle.
        total_span_ns: Offset (ns) from start time at which ``finished``
            becomes (and stays) True. This is a contract, not a hint:
            ``finished(now)`` must be exactly ``now - start >= total_span_ns``
            (the replay kernel never calls ``finished``).
        frame_times: Per-frame ``(ui_ns, render_ns, gpu_ns)`` stage durations,
            indexed by frame index (clamped to the last entry, or wrapped when
            ``loop`` is set — the same convention as ``make_workload``).
        loop: True when frame indexes wrap around ``frame_times`` instead of
            clamping (looping trace replay).
        workloads: Optional pre-normalized :class:`FrameWorkload` objects,
            aligned with ``frame_times``. When set, ``workloads[i]`` (under
            the same clamp/wrap convention) must equal what
            ``make_workload(i, ...)`` would return, category included; the
            kernel then indexes this tuple instead of calling the driver per
            frame. ``None`` falls back to ``make_workload``.
        burst_duration_ns: Optional demand window after each input arrival.
            When set, it declares ``wants_frame(ts, now)`` analytically:
            with ``rel = ts - start``, a frame is wanted iff
            ``0 <= rel < total_span_ns``, ``rel - k * stride <
            burst_duration_ns`` for the burst ``k`` containing ``rel``
            (``stride`` being the uniform arrival spacing; the window must
            not exceed it), and ``now`` is at or past burst *k*'s arrival.
            ``None`` (or non-uniform arrivals) falls back to the driver's
            ``wants_frame``.
    """

    input_arrival_offsets: tuple[int, ...]
    total_span_ns: int
    frame_times: tuple[tuple[int, int, int], ...]
    loop: bool = False
    workloads: "tuple[FrameWorkload, ...] | None" = None
    burst_duration_ns: int | None = None


class ScenarioDriver(abc.ABC):
    """Produces per-frame workloads for a scenario.

    Subclasses implement the demand side: whether the scenario still needs a
    frame at a given content time, what that frame costs, and (optionally)
    what the frame draws, so correctness experiments can compare drawn content
    against ground truth.
    """

    name: str = "scenario"

    def begin(self, start_time: int) -> None:
        """Called once before the first frame with the run's start time (ns)."""
        self.start_time = start_time

    @abc.abstractmethod
    def wants_frame(self, content_timestamp: int, now: int) -> bool:
        """True if a frame should exist for this content timestamp.

        ``now`` is the wall-clock trigger time: a frame may not be produced
        for an animation whose starting input has not yet arrived, no matter
        how far ahead the scheduler would like to render.
        """

    @abc.abstractmethod
    def finished(self, now: int) -> bool:
        """True once the scenario is over at wall-clock time *now*.

        Monotonic: once True it stays True. Between bursts a driver is
        neither wanting frames nor finished — the screen is simply idle.
        """

    @abc.abstractmethod
    def make_workload(self, frame_index: int, content_timestamp: int) -> FrameWorkload:
        """Return the execution demand of frame *frame_index*."""

    def frame_category(self, frame_index: int) -> FrameCategory:
        """Category of the upcoming frame, known before its workload is built.

        The FPE consults this *before* triggering: REALTIME frames must take
        the traditional VSync path (§4.2).
        """
        return FrameCategory.DETERMINISTIC_ANIMATION

    def observe_input(self, up_to: int) -> list[tuple[int, float]]:
        """Input samples (time, value) visible by wall-clock time *up_to*.

        Interactive drivers override this; the IPL fits its curve on these
        samples. Animation drivers have no input stream.
        """
        return []

    def true_value(self, at: int) -> float | None:
        """Ground-truth content value at time *at* (for correctness metrics)."""
        return None

    def replay_profile(self) -> ReplayProfile | None:
        """Declare this driver trace-pure for the fastpath replay engine.

        ``None`` (the default) means the driver's demand depends on state the
        replay engine cannot precompute (live input streams, gestures built at
        ``begin`` time, non-deterministic categories), so only the full
        discrete-event engine may run it. Deterministic drivers override this.
        """
        return None

    def replay_values(self):
        """A faster exact equivalent of ``true_value`` for the replay engine.

        Called once per replay, after ``begin``, so the returned callable can
        capture the run's start time. It must return the *same floats*
        ``true_value`` returns for every timestamp — dual-engine parity is
        byte-exact — or ``None`` (the default) to make the kernel call
        ``true_value`` per frame instead.
        """
        return None

    def animation_speed(self, at: int) -> float:
        """Motion speed in panel-heights/second at content time *at* (LTPO)."""
        return 1.0
