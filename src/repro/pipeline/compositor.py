"""The compositor: buffer consumption at HW-VSync (SurfaceFlinger's role).

At every HW-VSync edge the compositor latches the **oldest** queued buffer
(FIFO, §4.4) as the new front buffer and signals its present fence one period
later, when the panel scan-out actually makes the content visible — this is
the two-period pipeline floor of Fig 2. If nothing is queued while the
producer side still owes frames, the edge is a **jank**: the panel re-displays
the previous frame and a :class:`DropEvent` is recorded.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.display.hal import PresentRecord, ScreenHAL
from repro.display.vsync import HWVsyncSource
from repro.graphics.bufferqueue import BufferQueue
from repro.pipeline.frame import FrameRecord


@dataclasses.dataclass(frozen=True)
class DropEvent:
    """One frame drop: a VSync edge with no new content to display."""

    time: int
    vsync_index: int
    queued_depth: int
    frames_in_flight: int


class Compositor:
    """Latches buffers from the queue on each HW-VSync edge."""

    def __init__(
        self,
        source: HWVsyncSource,
        buffer_queue: BufferQueue,
        hal: ScreenHAL,
        frame_lookup: Callable[[int], FrameRecord | None],
        expects_content: Callable[[], bool],
        frames_in_flight: Callable[[], int] = lambda: 0,
    ) -> None:
        self.source = source
        self.buffer_queue = buffer_queue
        self.hal = hal
        self._frame_lookup = frame_lookup
        self._expects_content = expects_content
        self._frames_in_flight = frames_in_flight
        self.drops: list[DropEvent] = []
        self.latches = 0
        self.after_tick: list[Callable[[int, int], None]] = []
        source.add_listener(self._on_hw_vsync)

    @property
    def drop_count(self) -> int:
        """Total janks recorded so far."""
        return len(self.drops)

    def _on_hw_vsync(self, timestamp: int, index: int) -> None:
        head = self.buffer_queue.peek_queued()
        # A buffer queued exactly on the edge misses this latch (strictly
        # earlier arrivals only), matching real swap-in deadline semantics.
        if head is not None and head.queued_at is not None and head.queued_at < timestamp:
            buffer = self.buffer_queue.acquire()
            self.latches += 1
            frame = self._frame_lookup(buffer.frame_id) if buffer.frame_id is not None else None
            present_time = timestamp + self.source.period
            if frame is not None:
                frame.latch_time = timestamp
                frame.present_time = present_time
            self.hal.signal_present(
                PresentRecord(
                    frame_id=buffer.frame_id if buffer.frame_id is not None else -1,
                    present_time=present_time,
                    vsync_index=index,
                    content_timestamp=buffer.content_timestamp or 0,
                    queue_depth_after=self.buffer_queue.queued_depth,
                    refresh_period=self.source.period,
                )
            )
        elif head is not None or self._expects_content():
            # Either a buffer arrived too late for this edge (queued on/after
            # it) or frames are still executing: the producer owed this edge
            # content and the panel repeats the previous frame — a jank.
            self.drops.append(
                DropEvent(
                    time=timestamp,
                    vsync_index=index,
                    queued_depth=self.buffer_queue.queued_depth,
                    frames_in_flight=max(0, self._frames_in_flight()),
                )
            )
        for hook in list(self.after_tick):
            hook(timestamp, index)
