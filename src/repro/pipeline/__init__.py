"""Rendering-pipeline substrate: frames, threads, stages, compositor."""

from repro.pipeline.compositor import Compositor, DropEvent
from repro.pipeline.driver import ScenarioDriver
from repro.pipeline.frame import FrameCategory, FrameRecord, FrameWorkload
from repro.pipeline.scheduler_base import RunResult, SchedulerBase
from repro.pipeline.stages import RenderPipeline
from repro.pipeline.threads import SimThread

__all__ = [
    "Compositor",
    "DropEvent",
    "ScenarioDriver",
    "FrameCategory",
    "FrameRecord",
    "FrameWorkload",
    "RunResult",
    "SchedulerBase",
    "RenderPipeline",
    "SimThread",
]
