"""The 25 popular Android apps evaluated on Google Pixel 5 (Fig 6, Fig 11).

The paper records 1,000 frames per app by swiping the main page twice a
second on the 60 Hz panel. Per-app baselines follow the Fig 11 bar shape
(Walmart worst at ~4.8, Pinterest best), pinned to the published 2.04 FDPS
average. Walmart and QQMusic carry the tail profiles the paper's analysis
describes: Walmart's drops are scattered with long frames under ~3 periods
(fully absorbed by D-VSync), QQMusic's distribution is skewed with long
frames even 7 buffers cannot hide.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.scenarios import Scenario, targets_from_weights

PIXEL5_HZ = 60
FIG11_AVERAGE = 2.04

# (app, relative bar height, tail profile) in Fig 11's left-to-right order.
_APP_BARS: list[tuple[str, float, str]] = [
    ("Walmart", 4.8, "scattered"),
    ("QQMusic", 2.6, "skewed"),
    ("X", 4.1, "moderate"),
    ("Apkpure", 3.8, "moderate"),
    ("GroupMe", 3.5, "scattered"),
    ("FoxNews", 3.3, "moderate"),
    ("Facebook", 3.0, "scattered"),
    ("Weibo", 2.8, "moderate"),
    ("Shein", 2.6, "moderate"),
    ("StudentUniv", 2.4, "scattered"),
    ("Instagram", 2.2, "moderate"),
    ("Zhihu", 2.0, "scattered"),
    ("Lark", 1.9, "moderate"),
    ("Reddit", 1.7, "scattered"),
    ("Booking", 1.6, "moderate"),
    ("Tidal", 1.4, "scattered"),
    ("DoorDash", 1.3, "moderate"),
    ("CNN", 1.2, "scattered"),
    ("Discord", 1.0, "moderate"),
    ("Bilibili", 0.9, "scattered"),
    ("Snapchat", 0.8, "moderate"),
    ("Taobao", 0.7, "skewed"),
    ("VidMate", 0.6, "scattered"),
    ("Tripadvisor", 0.5, "moderate"),
    ("Pinterest", 0.4, "scattered"),
]

APP_NAMES: tuple[str, ...] = tuple(name for name, _, _ in _APP_BARS)

_TARGETS = targets_from_weights(
    [name for name, _, _ in _APP_BARS],
    [weight for _, weight, _ in _APP_BARS],
    FIG11_AVERAGE,
)

_PROFILES = {name: profile for name, _, profile in _APP_BARS}

# 1000 frames at 60 Hz is ~16.7 s of swiping twice a second (§6.1
# methodology: "to let the app keep rendering new content") — the flings
# overlap, so the animation is continuous: back-to-back 500 ms swipe
# segments, each loading fresh content in its early frames.
_SWIPE_PERIOD_MS = 500.0
_SWIPE_FLING_MS = 500.0
_SWIPE_COUNT = round(1000 / PIXEL5_HZ * 1000 / _SWIPE_PERIOD_MS)


def app_scenario(name: str) -> Scenario:
    """Scenario spec for one of the 25 apps on Pixel 5."""
    if name not in _TARGETS:
        raise WorkloadError(f"unknown Android app {name!r}; known: {APP_NAMES}")
    return Scenario(
        name=name,
        description=f"Swipe the main page of {name} twice a second (Pixel 5, 60 Hz)",
        refresh_hz=PIXEL5_HZ,
        target_vsync_fdps=_TARGETS[name],
        profile=_PROFILES[name],
        # One continuous scroll: the flings overlap, so production is never
        # re-gated on input, while content loads recur every swipe segment.
        duration_ms=_SWIPE_PERIOD_MS * _SWIPE_COUNT,
        bursts=1,
        burst_period_ms=None,
        key_zone_period_ms=_SWIPE_PERIOD_MS,
        curve="decelerate",
    )


def app_scenarios() -> list[Scenario]:
    """All 25 app scenarios in Fig 11's order."""
    return [app_scenario(name) for name in APP_NAMES]
