"""The 15 mobile-game simulations (Fig 14, §6.1).

The paper collects runtime traces (CPU and GPU time of every frame) of 15
games' UI and scene animations, then *simulates* the D-VSync pre-rendering
pattern over the traces — the exact methodology this module reproduces. Each
game renders at its own frame rate (30/60/90 Hz, as labelled in Fig 14);
baselines follow the figure's bar shape pinned to the 0.79 FDPS average.

Games use custom rendering engines that bypass the OS framework, so they
enter D-VSync through the decoupling-aware channel; the traces cover the
deterministic UI/scene-animation frames where D-VSync applies.
"""

from __future__ import annotations

import dataclasses

from repro.errors import WorkloadError
from repro.sim.rng import SeededRng
from repro.workloads.distributions import PROFILES, PowerLawFrameModel, params_for_target_fdps
from repro.workloads.frametrace import FrameTrace
from repro.workloads.scenarios import targets_from_weights

FIG14_AVERAGE = 0.79


@dataclasses.dataclass(frozen=True)
class GameSpec:
    """One Fig 14 game: display label, rendering rate, relative bar height."""

    name: str
    refresh_hz: int
    weight: float
    profile: str = "moderate"


GAME_SPECS: tuple[GameSpec, ...] = (
    GameSpec("Honor of Kings (UI)", 60, 1.55),
    GameSpec("Identity V (UI)", 30, 1.40),
    GameSpec("Game for Peace (UI)", 30, 1.25, "scattered"),
    GameSpec("RTK Mobile", 30, 1.15),
    GameSpec("CF: Legends (UI)", 60, 1.05),
    GameSpec("Survive", 60, 0.95, "scattered"),
    GameSpec("8 Ball Pool", 60, 0.85),
    GameSpec("Happy Poker", 30, 0.75, "scattered"),
    GameSpec("Thief Puzzle", 60, 0.65),
    GameSpec("Teamfight Tactics", 30, 0.55),
    GameSpec("TK: Conspiracy", 30, 0.48, "scattered"),
    GameSpec("FWJ", 60, 0.40),
    GameSpec("Original Legends", 60, 0.32, "scattered"),
    GameSpec("PvZ 2", 30, 0.25),
    GameSpec("LTK", 90, 0.18),
)

_TARGETS = targets_from_weights(
    [g.name for g in GAME_SPECS], [g.weight for g in GAME_SPECS], FIG14_AVERAGE
)

# Games split body frames roughly 60/40 between CPU and GPU in the traces.
GAME_GPU_FRACTION = 0.40

# Each trace covers ~30 s of gameplay animation at the game's rate.
TRACE_SECONDS = 30


def game_target_fdps(name: str) -> float:
    """Published-shape VSync baseline FDPS for one game."""
    try:
        return _TARGETS[name]
    except KeyError:
        raise WorkloadError(f"unknown game {name!r}") from None


def record_game_trace(spec: GameSpec, run: int = 0) -> FrameTrace:
    """Synthesize the runtime trace (CPU + GPU per frame) for one game.

    Stands in for the paper's on-device trace collection; the distribution is
    calibrated so replaying the trace under VSync reproduces the published
    baseline FDPS shape.
    """
    params = params_for_target_fdps(
        game_target_fdps(spec.name),
        spec.refresh_hz,
        profile=PROFILES[spec.profile],
        gpu_fraction=GAME_GPU_FRACTION,
        base_fraction=0.48,
    )
    rng = SeededRng.for_scenario(spec.name, salt=f"game-trace-{run}")
    model = PowerLawFrameModel(params, rng)
    count = TRACE_SECONDS * spec.refresh_hz
    return FrameTrace(
        name=spec.name, refresh_hz=spec.refresh_hz, workloads=model.generate(count)
    )


def all_game_traces(run: int = 0) -> list[FrameTrace]:
    """Traces for all 15 games in Fig 14's order."""
    return [record_game_trace(spec, run) for spec in GAME_SPECS]
