"""Scenario specifications: named, reproducible evaluation cases.

A :class:`Scenario` is the declarative description of one evaluation case —
its refresh rate, how drop-prone the paper measured it to be under VSync
(``target_vsync_fdps``, the calibration anchor from DESIGN.md §6), its tail
profile, and whether it is an animation or a touch interaction.
:meth:`Scenario.build_driver` turns the spec into a fresh, seeded
:class:`ScenarioDriver`; passing a ``run`` index derives an independent seed
per repetition, matching the paper's five-run averaging (Appendix A.2).
"""

from __future__ import annotations

import dataclasses
import statistics

from repro.errors import WorkloadError
from repro.pipeline.driver import ScenarioDriver
from repro.pipeline.frame import FrameCategory
from repro.units import ms
from repro.workloads.animations import curve_by_name
from repro.workloads.distributions import (
    PROFILES,
    FrameTimeParams,
    TailProfile,
    params_for_target_fdps,
)
from repro.workloads.drivers import AnimationDriver, InteractionDriver
from repro.workloads.touch import PinchGesture, SwipeGesture


@dataclasses.dataclass(frozen=True)
class Scenario:
    """Declarative description of one evaluation case.

    Attributes:
        name: Stable identifier (the paper's abbreviation where one exists).
        description: Human-readable description (Table 3 wording).
        refresh_hz: Panel rate of the device/configuration under test.
        target_vsync_fdps: Frame drops per second the paper measured under
            VSync — the workload generator is inverted against this value.
        profile: Tail-profile name (``scattered`` / ``moderate`` / ``skewed``).
        duration_ms: Length of one animation burst (or of the whole gesture
            for interactive scenarios).
        bursts: Number of animation bursts per run — real test scripts repeat
            the operation (a swipe every half second, §6.1), and each burst
            starts from a drained buffer queue.
        burst_period_ms: Input-to-input spacing of the bursts.
        key_zone_period_ms: Cadence of the content-load key-frame zone when
            it differs from the burst structure (continuous scrolls reload
            content every swipe segment without re-gating production).
        curve: Motion-curve name for animation scenarios.
        interactive: True for fingertip-driven scenarios (IPL territory).
        gesture: ``"swipe"`` or ``"pinch"`` for interactive scenarios.
        gpu_fraction: GPU share of body frames (games).
        base_fraction: Median short-frame load as a period fraction.
    """

    name: str
    description: str
    refresh_hz: int
    target_vsync_fdps: float
    profile: str = "moderate"
    duration_ms: float = 400.0
    bursts: int = 10
    burst_period_ms: float | None = 600.0
    key_zone_period_ms: float | None = None
    curve: str = "ease-in-out"
    interactive: bool = False
    gesture: str = "swipe"
    gpu_fraction: float = 0.0
    base_fraction: float = 0.42

    def tail_profile(self) -> TailProfile:
        """Resolve the named tail profile."""
        try:
            return PROFILES[self.profile]
        except KeyError:
            raise WorkloadError(
                f"scenario {self.name!r}: unknown profile {self.profile!r}"
            ) from None

    def frame_params(self) -> FrameTimeParams:
        """Frame-time parameters calibrated to the published baseline."""
        category = (
            FrameCategory.PREDICTABLE_INTERACTION
            if self.interactive
            else FrameCategory.DETERMINISTIC_ANIMATION
        )
        return params_for_target_fdps(
            self.target_vsync_fdps,
            self.refresh_hz,
            profile=self.tail_profile(),
            category=category,
            base_fraction=self.base_fraction,
            gpu_fraction=self.gpu_fraction,
        )

    def build_driver(self, run: int = 0) -> ScenarioDriver:
        """Instantiate a seeded driver for repetition *run*."""
        run_name = self.name if run == 0 else f"{self.name}#run{run}"
        duration_ns = ms(self.duration_ms)
        params = self.frame_params()
        if self.interactive:
            if self.gesture == "pinch":
                def factory(start: int, _n=run_name, _d=duration_ns):
                    return PinchGesture(start, _d, name=_n)
            elif self.gesture == "swipe":
                def factory(start: int, _n=run_name, _d=duration_ns):
                    return SwipeGesture(start, _d, name=_n)
            else:
                raise WorkloadError(
                    f"scenario {self.name!r}: unknown gesture {self.gesture!r}"
                )
            return InteractionDriver(run_name, params, factory)
        burst_period_ns = ms(self.burst_period_ms) if self.burst_period_ms else None
        key_zone_frames = None
        if self.key_zone_period_ms is not None:
            key_zone_frames = max(1, round(self.key_zone_period_ms * self.refresh_hz / 1000))
        return AnimationDriver(
            run_name,
            params,
            duration_ns=duration_ns,
            curve=curve_by_name(self.curve),
            bursts=self.bursts,
            burst_period_ns=burst_period_ns,
            key_zone_period_frames=key_zone_frames,
        )


def targets_from_weights(
    names: list[str], weights: list[float], published_average: float
) -> dict[str, float]:
    """Scale relative per-case weights so their mean equals the paper's average.

    The figures publish exact averages and bar *shapes*; this helper keeps the
    shape (read off the bars) while pinning the mean to the published number.
    """
    if len(names) != len(weights):
        raise WorkloadError("names and weights must have the same length")
    if not names:
        raise WorkloadError("at least one case is required")
    if any(w < 0 for w in weights):
        raise WorkloadError("weights must be non-negative")
    mean_weight = statistics.fmean(weights)
    if mean_weight <= 0:
        raise WorkloadError("weights must have a positive mean")
    return {
        name: published_average * weight / mean_weight
        for name, weight in zip(names, weights)
    }
