"""Composite drivers: several scenarios in one simulated session.

The Table 2 UX tasks chain different scenes — open an app, swipe its feed,
switch to another app — inside one continuous evaluation. A
:class:`CompositeDriver` plays a sequence of child drivers back to back on a
single simulator timeline, with an idle gap between segments (the user's
hand moving), so queue drain and re-accumulation across scene boundaries are
exercised exactly once per boundary rather than approximated by separate
runs.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.pipeline.driver import ScenarioDriver
from repro.pipeline.frame import FrameCategory, FrameWorkload
from repro.units import ms


class CompositeDriver(ScenarioDriver):
    """Plays child drivers sequentially with idle gaps in between.

    Children are positioned on the timeline at ``begin`` time: child *k*
    starts when child *k-1*'s span ends plus ``gap_ns``. Each child keeps its
    own workload trace, categories, and content curves; the composite
    forwards every query to whichever child owns the queried time or frame.
    """

    def __init__(
        self,
        name: str,
        children: list[ScenarioDriver],
        gap_ns: int = ms(250),
    ) -> None:
        if not children:
            raise WorkloadError("a composite needs at least one child driver")
        if gap_ns < 0:
            raise WorkloadError("gap must be non-negative")
        self.name = name
        self.children = children
        self.gap_ns = gap_ns
        self._offsets: list[int] = []
        self._frame_base: list[int] = []
        self._frames_issued = 0
        self.start_time = 0

    # ---------------------------------------------------------------- layout
    def _child_span(self, child: ScenarioDriver) -> int:
        span = getattr(child, "total_span_ns", None)
        if span is not None:
            return span
        duration = getattr(child, "duration_ns", None)
        if duration is None:
            raise WorkloadError(
                f"child {child.name!r} exposes neither total_span_ns nor duration_ns"
            )
        return duration

    def begin(self, start_time: int) -> None:
        super().begin(start_time)
        self._offsets = []
        cursor = start_time
        for child in self.children:
            child.begin(cursor)
            self._offsets.append(cursor)
            cursor += self._child_span(child) + self.gap_ns
        self._end_time = cursor - self.gap_ns
        self._frame_base = [0] * len(self.children)
        self._frames_issued = 0
        self._active_index = 0

    def _child_for_time(self, at: int) -> int:
        index = 0
        for child_index, offset in enumerate(self._offsets):
            if at >= offset:
                index = child_index
        return index

    # --------------------------------------------------------------- protocol
    def wants_frame(self, content_timestamp: int, now: int) -> bool:
        index = self._child_for_time(content_timestamp)
        return self.children[index].wants_frame(content_timestamp, now)

    def finished(self, now: int) -> bool:
        return now >= self._end_time

    def frame_category(self, frame_index: int) -> FrameCategory:
        child, local = self._resolve_frame(frame_index)
        return child.frame_category(local)

    def make_workload(self, frame_index: int, content_timestamp: int) -> FrameWorkload:
        # Frames are issued in timestamp order; track which child the run has
        # progressed into so local frame indices restart per segment.
        index = self._child_for_time(content_timestamp)
        if index != self._active_index:
            self._active_index = index
            self._frame_base[index] = frame_index
        child = self.children[index]
        local = frame_index - self._frame_base[index]
        return child.make_workload(local, content_timestamp)

    def _resolve_frame(self, frame_index: int):
        # Best-effort mapping for category queries that may precede the
        # workload call: attribute the frame to the currently active child.
        index = self._active_index if hasattr(self, "_active_index") else 0
        child = self.children[index]
        local = max(0, frame_index - (self._frame_base[index] if self._frame_base else 0))
        return child, local

    def observe_input(self, up_to: int) -> list[tuple[int, float]]:
        index = self._child_for_time(up_to)
        return self.children[index].observe_input(up_to)

    def true_value(self, at: int) -> float | None:
        index = self._child_for_time(at)
        return self.children[index].true_value(at)

    def animation_speed(self, at: int) -> float:
        index = self._child_for_time(at)
        child = self.children[index]
        offset = self._offsets[index]
        span = self._child_span(child)
        if not offset <= at < offset + span:
            return 0.0  # inter-segment gap: the screen is static
        return child.animation_speed(at)
