"""Workload generation: distributions, traces, scenarios, and registries."""

from repro.workloads.animations import (
    CURVES,
    DecelerateCurve,
    EaseInOutCurve,
    LinearCurve,
    MotionCurve,
    SpringCurve,
    curve_by_name,
)
from repro.workloads.distributions import (
    MODERATE,
    PROFILES,
    SCATTERED,
    SKEWED,
    FrameTimeParams,
    PowerLawFrameModel,
    TailProfile,
    fig1_model,
    params_for_target_fdps,
)
from repro.workloads.composite import CompositeDriver
from repro.workloads.drivers import AnimationDriver, InteractionDriver, TraceDriver
from repro.workloads.features import (
    FEATURES,
    CostClass,
    EffectComposer,
    GraphicsFeature,
    cumulative_feature_count,
    feature,
    features_in,
)
from repro.workloads.frametrace import FrameTrace
from repro.workloads.scenarios import Scenario, targets_from_weights
from repro.workloads.touch import (
    FlingGesture,
    InputGesture,
    PinchGesture,
    SwipeGesture,
    TouchSample,
)

__all__ = [
    "CURVES",
    "DecelerateCurve",
    "EaseInOutCurve",
    "LinearCurve",
    "MotionCurve",
    "SpringCurve",
    "curve_by_name",
    "MODERATE",
    "PROFILES",
    "SCATTERED",
    "SKEWED",
    "FrameTimeParams",
    "PowerLawFrameModel",
    "TailProfile",
    "fig1_model",
    "params_for_target_fdps",
    "AnimationDriver",
    "CompositeDriver",
    "FEATURES",
    "CostClass",
    "EffectComposer",
    "GraphicsFeature",
    "cumulative_feature_count",
    "feature",
    "features_in",
    "InteractionDriver",
    "TraceDriver",
    "FrameTrace",
    "Scenario",
    "targets_from_weights",
    "FlingGesture",
    "InputGesture",
    "PinchGesture",
    "SwipeGesture",
    "TouchSample",
]
