"""Touch-input synthesis for interactive scenarios.

The paper's interactive frames (§4.6) have a fingertip physically on the
screen producing a stream of input samples at the digitizer rate (120–240 Hz
on modern phones). :class:`InputGesture` generates those streams
deterministically: the ground-truth trajectory is an analytic function of
time, samples are taken at the digitizer rate with optional sensor noise, and
``samples_until(t)`` exposes exactly what an app could have observed by
wall-clock time ``t`` — the causality constraint the IPL exists to overcome.
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import WorkloadError
from repro.sim.rng import SeededRng
from repro.units import NSEC_PER_SEC, hz_to_period


@dataclasses.dataclass(frozen=True)
class TouchSample:
    """One digitizer report."""

    time: int
    value: float


class InputGesture:
    """Base class for synthetic gestures; subclasses define the trajectory."""

    def __init__(
        self,
        start_time: int,
        duration_ns: int,
        sample_rate_hz: int = 120,
        noise: float = 0.0,
        rng: SeededRng | None = None,
        name: str = "gesture",
    ) -> None:
        if duration_ns <= 0:
            raise WorkloadError("gesture duration must be positive")
        if sample_rate_hz <= 0:
            raise WorkloadError("sample rate must be positive")
        self.start_time = start_time
        self.duration_ns = duration_ns
        self.sample_rate_hz = sample_rate_hz
        self.noise = noise
        self.name = name
        self._rng = rng or SeededRng.for_scenario(name, salt="touch")
        self._samples: list[TouchSample] = []
        self._generate_samples()

    # ----------------------------------------------------------- trajectory
    def value_at(self, t: int) -> float:
        """Ground-truth gesture value at absolute time *t* (clamped)."""
        u = (t - self.start_time) / self.duration_ns
        u = min(1.0, max(0.0, u))
        return self._trajectory(u)

    def _trajectory(self, u: float) -> float:
        """Normalized trajectory; subclasses override."""
        raise NotImplementedError

    def speed_at(self, t: int) -> float:
        """|d value/dt| in value-units per second (finite difference)."""
        h = self.duration_ns / 1000
        v0 = self.value_at(round(t - h))
        v1 = self.value_at(round(t + h))
        return abs(v1 - v0) / (2 * h / NSEC_PER_SEC)

    # -------------------------------------------------------------- sampling
    def _generate_samples(self) -> None:
        period = hz_to_period(self.sample_rate_hz)
        t = self.start_time
        end = self.start_time + self.duration_ns
        while t <= end:
            value = self.value_at(t)
            if self.noise > 0:
                value += self._rng.normal(0.0, self.noise)
            self._samples.append(TouchSample(time=t, value=value))
            t += period

    @property
    def samples(self) -> list[TouchSample]:
        """All digitizer samples of the gesture."""
        return list(self._samples)

    @property
    def end_time(self) -> int:
        """Absolute time the fingertip lifts."""
        return self.start_time + self.duration_ns

    def samples_until(self, t: int) -> list[tuple[int, float]]:
        """(time, value) pairs observable by wall-clock time *t* (inclusive)."""
        return [(s.time, s.value) for s in self._samples if s.time <= t]


class SwipeGesture(InputGesture):
    """A vertical swipe: near-constant velocity with slight ease-out.

    Value is the fingertip's normalized y-displacement in panel heights.
    """

    def __init__(self, *args, distance: float = 1.0, **kwargs) -> None:
        self.distance = distance
        kwargs.setdefault("name", "swipe")
        super().__init__(*args, **kwargs)

    def _trajectory(self, u: float) -> float:
        # Constant speed for 80 % of the gesture, easing out at the end.
        if u < 0.8:
            return self.distance * u / 0.8 * 0.9
        tail = (u - 0.8) / 0.2
        return self.distance * (0.9 + 0.1 * (1 - (1 - tail) ** 2))


class PinchGesture(InputGesture):
    """A two-finger pinch: value is the fingertip distance (zoom driver).

    The distance grows from ``start_distance`` to ``end_distance`` with a
    smooth-step profile, matching how users accelerate into and out of a
    zoom (§6.5's zooming scenario).
    """

    def __init__(
        self,
        *args,
        start_distance: float = 0.2,
        end_distance: float = 0.8,
        **kwargs,
    ) -> None:
        if end_distance == start_distance:
            raise WorkloadError("pinch must change the fingertip distance")
        self.start_distance = start_distance
        self.end_distance = end_distance
        kwargs.setdefault("name", "pinch")
        super().__init__(*args, **kwargs)

    def _trajectory(self, u: float) -> float:
        smooth = u * u * (3 - 2 * u)
        return self.start_distance + (self.end_distance - self.start_distance) * smooth


class FlingGesture(InputGesture):
    """A fast flick that decelerates while the finger is still down."""

    def __init__(self, *args, distance: float = 1.5, rate: float = 3.0, **kwargs) -> None:
        if rate <= 0:
            raise WorkloadError("fling rate must be positive")
        self.distance = distance
        self.rate = rate
        kwargs.setdefault("name", "fling")
        super().__init__(*args, **kwargs)

    def _trajectory(self, u: float) -> float:
        norm = 1 - math.exp(-self.rate)
        return self.distance * (1 - math.exp(-self.rate * u)) / norm
