"""The graphics-feature catalog behind Figure 4.

Figure 4 lists the visual effects each OS generation added — Gaussian blur,
dynamic shadows, particle effects, … — with darker entries marking heavier
rendering work in key frames ("usually over 1 ms"). This module turns that
figure into data: every feature carries its introducing OS release and a cost
class, and :class:`EffectComposer` converts a feature set into the render-
stage cost a key frame pays, so scenario authors can build workloads from
named effects instead of raw milliseconds.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.errors import WorkloadError
from repro.sim.rng import SeededRng
from repro.units import ms


class CostClass(enum.Enum):
    """Rendering weight of a feature's key frames (Fig 4's shading)."""

    LIGHT = "light"  # layout/metadata work, well under a millisecond
    MEDIUM = "medium"  # ~1 ms key frames, cache usually reusable
    HEAVY = "heavy"  # multi-millisecond key frames, often re-rendered


# Representative key-frame cost per class (milliseconds of render work).
CLASS_COST_MS = {
    CostClass.LIGHT: 0.3,
    CostClass.MEDIUM: 1.2,
    CostClass.HEAVY: 3.5,
}


@dataclasses.dataclass(frozen=True)
class GraphicsFeature:
    """One Fig 4 entry: a visual effect and where it appeared."""

    name: str
    os_release: str
    cost: CostClass


# The Fig 4 inventory. OpenHarmony generations first, then Android.
FEATURES: tuple[GraphicsFeature, ...] = (
    # OpenHarmony 4.0
    GraphicsFeature("Gaussian Blur", "OH 4.0", CostClass.HEAVY),
    GraphicsFeature("Transparency", "OH 4.0", CostClass.LIGHT),
    GraphicsFeature("Color Gradient", "OH 4.0", CostClass.LIGHT),
    GraphicsFeature("Shadowing", "OH 4.0", CostClass.MEDIUM),
    GraphicsFeature("Complementary Colors", "OH 4.0", CostClass.LIGHT),
    GraphicsFeature("Particle Effect", "OH 4.0", CostClass.HEAVY),
    GraphicsFeature("Geometric Transformation", "OH 4.0", CostClass.LIGHT),
    GraphicsFeature("HSL/HSV", "OH 4.0", CostClass.LIGHT),
    # OpenHarmony 4.1
    GraphicsFeature("Glyph Blur", "OH 4.1", CostClass.MEDIUM),
    GraphicsFeature("Glass Material", "OH 4.1", CostClass.HEAVY),
    GraphicsFeature("Double Stroke", "OH 4.1", CostClass.LIGHT),
    GraphicsFeature("Blurring Gradient", "OH 4.1", CostClass.HEAVY),
    GraphicsFeature("G2 Rounded Corner", "OH 4.1", CostClass.LIGHT),
    GraphicsFeature("Icon Blur", "OH 4.1", CostClass.MEDIUM),
    GraphicsFeature("Transparency Gradient", "OH 4.1", CostClass.LIGHT),
    GraphicsFeature("Dynamic Lighting", "OH 4.1", CostClass.HEAVY),
    # OpenHarmony 5.x (beta)
    GraphicsFeature("Motion Blur", "OH 5.X", CostClass.HEAVY),
    GraphicsFeature("Parallax", "OH 5.X", CostClass.MEDIUM),
    GraphicsFeature("Bokeh", "OH 5.X", CostClass.HEAVY),
    GraphicsFeature("Rim Light", "OH 5.X", CostClass.MEDIUM),
    GraphicsFeature("Dynamic Shadowing", "OH 5.X", CostClass.HEAVY),
    GraphicsFeature("Dynamic Icon", "OH 5.X", CostClass.MEDIUM),
    # Android generations (abridged to the figure's entries)
    GraphicsFeature("Scene Transition", "Android 4", CostClass.MEDIUM),
    GraphicsFeature("Translucent UI", "Android 4", CostClass.LIGHT),
    GraphicsFeature("Full-screen Immersive", "Android 4", CostClass.LIGHT),
    GraphicsFeature("Resolution Switch", "Android 4", CostClass.LIGHT),
    GraphicsFeature("3D Views", "Android 5/6", CostClass.MEDIUM),
    GraphicsFeature("Realtime Shadowing", "Android 5/6", CostClass.HEAVY),
    GraphicsFeature("Ripple Animation", "Android 5/6", CostClass.MEDIUM),
    GraphicsFeature("Vector Drawable", "Android 5/6", CostClass.LIGHT),
    GraphicsFeature("Multi-window", "Android 7", CostClass.MEDIUM),
    GraphicsFeature("Notification Template", "Android 7", CostClass.LIGHT),
    GraphicsFeature("Custom Pointer", "Android 7", CostClass.LIGHT),
    GraphicsFeature("Color Calibration", "Android 8/9", CostClass.LIGHT),
    GraphicsFeature("Unified Margin", "Android 8/9", CostClass.LIGHT),
    GraphicsFeature("Picture-in-Picture", "Android 8/9", CostClass.MEDIUM),
    GraphicsFeature("Wide-gamut Color", "Android 8/9", CostClass.MEDIUM),
    GraphicsFeature("Adaptive Icon", "Android 8/9", CostClass.LIGHT),
    GraphicsFeature("Dark Theme", "Android 10/11", CostClass.LIGHT),
    GraphicsFeature("Bubbles", "Android 10/11", CostClass.MEDIUM),
    GraphicsFeature("Gesture Navigation", "Android 10/11", CostClass.MEDIUM),
    GraphicsFeature("Flexible Layouts", "Android 10/11", CostClass.LIGHT),
    GraphicsFeature("Splash Screen", "Android 12", CostClass.MEDIUM),
    GraphicsFeature("Color Vector Fonts", "Android 12", CostClass.LIGHT),
    GraphicsFeature("Programmable Shaders", "Android 13/14", CostClass.HEAVY),
    GraphicsFeature("Custom Meshes", "Android 13/14", CostClass.HEAVY),
    GraphicsFeature("Matrix44", "Android 13/14", CostClass.LIGHT),
    GraphicsFeature("ClipShader", "Android 13/14", CostClass.MEDIUM),
    GraphicsFeature("Large-screen Multitasking", "Android 13/14", CostClass.MEDIUM),
    GraphicsFeature("Dynamic Depth", "Android 15", CostClass.HEAVY),
    GraphicsFeature("Rounded Corner API", "Android 15", CostClass.LIGHT),
    GraphicsFeature("Themed Icon", "Android 15", CostClass.LIGHT),
    GraphicsFeature("HDR Headroom", "Android 15", CostClass.MEDIUM),
    GraphicsFeature("Picture-in-Picture Animations", "Android 15", CostClass.MEDIUM),
)

_BY_NAME = {feature.name: feature for feature in FEATURES}

# Ordered generations for trend queries.
OS_GENERATIONS: tuple[str, ...] = (
    "Android 4", "Android 5/6", "Android 7", "Android 8/9", "Android 10/11",
    "Android 12", "Android 13/14", "Android 15",
    "OH 4.0", "OH 4.1", "OH 5.X",
)


def feature(name: str) -> GraphicsFeature:
    """Look up a feature by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise WorkloadError(f"unknown graphics feature {name!r}") from None


def features_in(os_release: str) -> list[GraphicsFeature]:
    """All features introduced by one OS generation."""
    found = [f for f in FEATURES if f.os_release == os_release]
    if not found:
        raise WorkloadError(f"unknown OS release {os_release!r}")
    return found


def cumulative_feature_count() -> list[tuple[str, int, int]]:
    """(generation, new features, cumulative heavy features) per lineage.

    The Fig 4 trend: both the list and its heavy share keep growing.
    """
    rows = []
    heavy_android = heavy_oh = total_android = total_oh = 0
    for generation in OS_GENERATIONS:
        batch = features_in(generation)
        heavy = sum(1 for f in batch if f.cost is CostClass.HEAVY)
        if generation.startswith("OH"):
            total_oh += len(batch)
            heavy_oh += heavy
            rows.append((generation, len(batch), heavy_oh))
        else:
            total_android += len(batch)
            heavy_android += heavy
            rows.append((generation, len(batch), heavy_android))
    return rows


class EffectComposer:
    """Turns a set of active effects into per-key-frame render cost.

    Key frames pay each active feature's class cost plus lognormal jitter;
    subsequent frames "may or may not reuse the rendered cache" (§3.1), so a
    per-feature reuse probability discounts the steady-state cost.
    """

    def __init__(
        self,
        effect_names: list[str],
        rng: SeededRng | None = None,
        cache_reuse_probability: float = 0.7,
    ) -> None:
        if not effect_names:
            raise WorkloadError("an effect composition needs at least one feature")
        if not 0 <= cache_reuse_probability <= 1:
            raise WorkloadError("cache_reuse_probability must be in [0, 1]")
        # Sorted so the same stack samples identically regardless of the
        # order the caller listed the effects in.
        self.effects = sorted(
            (feature(name) for name in effect_names), key=lambda f: f.name
        )
        self.rng = rng or SeededRng.for_scenario("+".join(sorted(effect_names)))
        self.cache_reuse_probability = cache_reuse_probability

    def key_frame_cost_ns(self) -> int:
        """Render cost of a key frame with every effect re-rendered."""
        total_ms = 0.0
        for effect in self.effects:
            base = CLASS_COST_MS[effect.cost]
            total_ms += base * self.rng.lognormal(0.0, 0.25)
        return ms(total_ms)

    def steady_frame_cost_ns(self) -> int:
        """Render cost of a steady frame, with per-feature cache reuse."""
        total_ms = 0.0
        for effect in self.effects:
            if self.rng.chance(self.cache_reuse_probability):
                continue  # cached layer composited for free (approximately)
            total_ms += CLASS_COST_MS[effect.cost] * self.rng.lognormal(0.0, 0.25)
        return ms(total_ms)
