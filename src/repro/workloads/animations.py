"""Motion curves for deterministic animations.

Animations are deterministic functions of time (§4.2): a frame's content is
fully determined by sampling its motion curve at the frame's content
timestamp. This is the property that makes pre-rendering correct once DTV
supplies the right timestamp — and the property the DTV-off ablation breaks.

All curves map normalized progress ``u ∈ [0, 1]`` to a normalized position
``[0, 1]`` (panel heights, zoom fractions, alpha — whatever the scenario
animates). Velocity is analytic so the LTPO policy gets exact speeds.
"""

from __future__ import annotations

import abc
import math

from repro.errors import WorkloadError


class MotionCurve(abc.ABC):
    """Normalized position/velocity curve of an animation."""

    name = "curve"

    @abc.abstractmethod
    def position(self, u: float) -> float:
        """Normalized position at progress *u* (clamped to [0, 1])."""

    @abc.abstractmethod
    def velocity(self, u: float) -> float:
        """d(position)/du at progress *u*."""

    @staticmethod
    def _clamp(u: float) -> float:
        return min(1.0, max(0.0, u))


class LinearCurve(MotionCurve):
    """Constant-velocity motion (progress bars, marquee)."""

    name = "linear"

    def position(self, u: float) -> float:
        return self._clamp(u)

    def velocity(self, u: float) -> float:
        return 1.0 if 0.0 <= u <= 1.0 else 0.0


class EaseInOutCurve(MotionCurve):
    """Cubic ease-in-out: the default app-open/page-transition curve."""

    name = "ease-in-out"

    def position(self, u: float) -> float:
        u = self._clamp(u)
        if u < 0.5:
            return 4 * u**3
        return 1 - ((-2 * u + 2) ** 3) / 2

    def velocity(self, u: float) -> float:
        u = self._clamp(u)
        if u < 0.5:
            return 12 * u**2
        return 3 * (-2 * u + 2) ** 2


class DecelerateCurve(MotionCurve):
    """Exponential deceleration: list flings after a swipe release.

    ``rate`` controls how sharply the fling decays; the curve reaches
    ``1 - e^-rate`` of the distance at u = 1 and is renormalized to end at 1.
    """

    name = "decelerate"

    def __init__(self, rate: float = 4.0) -> None:
        if rate <= 0:
            raise WorkloadError("deceleration rate must be positive")
        self.rate = rate
        self._norm = 1 - math.exp(-rate)

    def position(self, u: float) -> float:
        u = self._clamp(u)
        return (1 - math.exp(-self.rate * u)) / self._norm

    def velocity(self, u: float) -> float:
        u = self._clamp(u)
        return self.rate * math.exp(-self.rate * u) / self._norm


class SpringCurve(MotionCurve):
    """Under-damped spring: physics-based bounce at the end of a transition."""

    name = "spring"

    def __init__(self, damping: float = 0.55, oscillations: float = 2.0) -> None:
        if not 0 < damping < 1:
            raise WorkloadError("damping must be in (0, 1)")
        if oscillations <= 0:
            raise WorkloadError("oscillations must be positive")
        self.damping = damping
        self.omega = oscillations * 2 * math.pi

    def position(self, u: float) -> float:
        u = self._clamp(u)
        decay = math.exp(-self.damping * self.omega * u)
        return 1 - decay * math.cos(self.omega * math.sqrt(1 - self.damping**2) * u)

    def velocity(self, u: float) -> float:
        u = self._clamp(u)
        wd = self.omega * math.sqrt(1 - self.damping**2)
        decay = math.exp(-self.damping * self.omega * u)
        return decay * (
            self.damping * self.omega * math.cos(wd * u) + wd * math.sin(wd * u)
        )


CURVES: dict[str, MotionCurve] = {
    "linear": LinearCurve(),
    "ease-in-out": EaseInOutCurve(),
    "decelerate": DecelerateCurve(),
    "spring": SpringCurve(),
}


def curve_by_name(name: str) -> MotionCurve:
    """Look up a shared motion-curve instance by name."""
    try:
        return CURVES[name]
    except KeyError:
        raise WorkloadError(
            f"unknown motion curve {name!r}; available: {sorted(CURVES)}"
        ) from None
