"""The 75 common OS use cases (paper Table 3 / Appendix A).

The registry carries every case with its paper abbreviation and category.
The drop-prone subsets shown in Figures 12 and 13 carry per-case VSync
baseline targets whose *shape* follows the published bars and whose mean is
pinned to the published average (8.42 Vulkan / 7.51 GLES on Mate 60 Pro,
3.17 on Mate 40 Pro) via :func:`repro.workloads.scenarios.targets_from_weights`.
Cases absent from the figures had no frame drops under VSync and get a zero
key-frame probability.
"""

from __future__ import annotations

import dataclasses

from repro.errors import WorkloadError
from repro.workloads.scenarios import Scenario, targets_from_weights


@dataclasses.dataclass(frozen=True)
class UseCase:
    """One Table 3 row."""

    number: int
    category: str
    description: str
    abbreviation: str
    interactive: bool = False
    curve: str = "ease-in-out"


USE_CASES: tuple[UseCase, ...] = (
    UseCase(1, "Phone Unlocking", "Swipe upwards in the lock screen to enter the password page", "lock to pswd"),
    UseCase(2, "Phone Unlocking", "Fly-in animation of the sceneboard after the last password digit", "pswd to desk"),
    UseCase(3, "Phone Unlocking", "Swipe upwards in the lock screen to unlock the phone", "unlock lock"),
    UseCase(4, "Phone Unlocking", "Fly-in animation of the sceneboard (without password)", "lock to desk"),
    UseCase(5, "Sceneboard", "Slide the sceneboard pages left and right", "slide desk", curve="decelerate"),
    UseCase(6, "Sceneboard", "Slide the sceneboard pages when exiting an app", "exit app slide", curve="decelerate"),
    UseCase(7, "Sceneboard", "Slide the sceneboard pages with full folders", "slide full fd", curve="decelerate"),
    UseCase(8, "App Operation", "App opening animation when clicking an app", "open app"),
    UseCase(9, "App Operation", "App closing animation when swiping upwards", "close app"),
    UseCase(10, "App Operation", "App closing animation when sliding rightwards", "sld cls app"),
    UseCase(11, "App Operation", "Quickly open and close apps one after another", "qk opn apps"),
    UseCase(12, "Folder", "Folder opening animation when clicking a folder", "open fd"),
    UseCase(13, "Folder", "Folder closing animation when tapping outside", "tap cls fd"),
    UseCase(14, "Folder", "Folder closing animation when sliding rightwards", "sld cls fd"),
    UseCase(15, "Folder", "Folder closing animation when swiping upwards", "swp cls fd"),
    UseCase(16, "Cards", "Long click the photos app and the cards show up", "shw ph cd"),
    UseCase(17, "Cards", "Tap outside to close the cards of the photos app", "cls ph cd"),
    UseCase(18, "Cards", "Long click the memos app and the cards show up", "shw mem cd"),
    UseCase(19, "Cards", "Tap outside to close the cards of the memos app", "cls mem cd"),
    UseCase(20, "Notification Center", "Swipe downwards to open the notification center", "open notif ctr"),
    UseCase(21, "Notification Center", "Swipe upwards to close the notification center", "cls notif ctr"),
    UseCase(22, "Notification Center", "Tap the empty space to close the notification center", "tap cls notif"),
    UseCase(23, "Notification Center", "Click the trash can to clear all notifications", "clr all notif"),
    UseCase(24, "Notification Center", "Slide rightwards to delete one notification", "del one notif"),
    UseCase(25, "Control Center", "Swipe downwards to open the control center", "open ctrl ctr"),
    UseCase(26, "Control Center", "Swipe upwards to close the control center", "cls ctrl ctr"),
    UseCase(27, "Control Center", "Tap the empty space to close the control center", "tap cls ctrl"),
    UseCase(28, "Control Center", "Click the unfold button to show all control buttons", "shw ctrl btns"),
    UseCase(29, "Control Center", "Screen rotation button animation on click", "rot btn anim"),
    UseCase(30, "Control Center", "Click the settings button to enter the settings", "clck settings"),
    UseCase(31, "Control Center", "Adjust the screen brightness in the control center", "brtness adj", interactive=True),
    UseCase(32, "Volume Bar", "Volume bar appears on physical volume button", "shw vol bar"),
    UseCase(33, "Volume Bar", "Disappearing animation of the volume bar", "vol bar gone"),
    UseCase(34, "Volume Bar", "Short click the volume button to adjust volume", "clck adj vol"),
    UseCase(35, "Volume Bar", "Long click the volume button to adjust volume", "lclck adj vol"),
    UseCase(36, "Volume Bar", "Slide the volume bar on screen to adjust volume", "sld adj vol", interactive=True),
    UseCase(37, "Volume Bar", "Tap the empty space to hide the volume bar", "hide vol bar"),
    UseCase(38, "Tasks", "Swipe upwards on the sceneboard to enter tasks", "opn tasks dsk"),
    UseCase(39, "Tasks", "Swipe upwards on the app to enter tasks", "opn tasks app"),
    UseCase(40, "Tasks", "Slide the tasks left and right", "sld tasks", interactive=True),
    UseCase(41, "Tasks", "Swipe upwards to delete one task", "del one task"),
    UseCase(42, "Tasks", "Click the trash can to clear all tasks", "clr all tasks"),
    UseCase(43, "Tasks", "Tap the empty space to leave the tasks", "leave tasks"),
    UseCase(44, "Tasks", "Click one task to enter the app", "task open app"),
    UseCase(45, "HiBoard", "Slide rightwards from the first page to enter HiBoard", "enter hibd"),
    UseCase(46, "HiBoard", "Click the weather card on HiBoard", "clck hibd cd"),
    UseCase(47, "HiBoard", "Swipe upwards in the weather app to return to HiBoard", "swp ret hibd"),
    UseCase(48, "HiBoard", "Slide rightwards in the weather app to return to HiBoard", "sld ret hibd"),
    UseCase(49, "Global Search", "Swipe downwards to open global search", "open search"),
    UseCase(50, "Global Search", "Slide rightwards to close global search", "cls search"),
    UseCase(51, "Keyboard", "Click the browser search bar to show the keyboard", "shw kb"),
    UseCase(52, "Keyboard", "Click the hide button to hide the keyboard", "hide kb"),
    UseCase(53, "Screen Rotation", "Rotate vertical to horizontal on a full-screen photo", "vert ph hori"),
    UseCase(54, "Screen Rotation", "Rotate horizontal to vertical on a full-screen photo", "hori ph vert"),
    UseCase(55, "Screen Rotation", "Rotate vertical to horizontal when displaying an app", "vert to hori"),
    UseCase(56, "Screen Rotation", "Rotate horizontal to vertical when displaying an app", "hori to vert"),
    UseCase(57, "Photos", "Scroll the albums in the photos app", "scrl albums", curve="decelerate"),
    UseCase(58, "Photos", "Click into one album and enter its photo list", "open album"),
    UseCase(59, "Photos", "Scroll the photo list in the photos app", "scrl photos", curve="decelerate"),
    UseCase(60, "Photos", "Click into one photo and view it full screen", "clck photo"),
    UseCase(61, "Photos", "Browse the full-screen photo", "brws photo", interactive=True),
    UseCase(62, "Photos", "Swipe downwards the photo to return to the list", "ret photos"),
    UseCase(63, "Photos", "Slide rightwards the photo to return to the list", "sld ret photos"),
    UseCase(64, "Photos", "Click the back button to return to the album list", "ret albums"),
    UseCase(65, "Camera", "Click the photo preview to enter the photos app", "cam to pht"),
    UseCase(66, "Camera", "Slide rightwards from photos back to the camera", "pht to cam"),
    UseCase(67, "Camera", "Slide inside the camera app to select camera modes", "cam mode sel", interactive=True),
    UseCase(68, "Browser", "Click the pages button to see all opening pages", "brwsr pages"),
    UseCase(69, "Settings", "Scroll the settings main page", "scrl sets", curve="decelerate"),
    UseCase(70, "Settings", "Click the bluetooth setting to enter the subpage", "clck bt"),
    UseCase(71, "Settings", "Click the WLAN setting to enter the subpage", "clck wlan"),
    UseCase(72, "Settings", "Click the login tab to enter the subpage", "clck login"),
    UseCase(73, "Other Apps", "Scroll the main page of WeChat", "scrl wechat", curve="decelerate"),
    UseCase(74, "Other Apps", "Scroll the videos of TikTok", "scrl tiktok", curve="decelerate"),
    UseCase(75, "Other Apps", "Scroll the video lists of Videos", "scrl videos", curve="decelerate"),
)

_BY_ABBREVIATION = {case.abbreviation: case for case in USE_CASES}


def use_case(abbreviation: str) -> UseCase:
    """Look up a Table 3 row by its abbreviation."""
    try:
        return _BY_ABBREVIATION[abbreviation]
    except KeyError:
        raise WorkloadError(f"unknown OS use case {abbreviation!r}") from None


# ---------------------------------------------------------------------------
# Drop-prone subsets from the figures: (abbreviation, relative bar height).
# Means are pinned to the published averages below.
# ---------------------------------------------------------------------------

_FIG12_VULKAN_BARS: list[tuple[str, float]] = [
    ("cls notif ctr", 24.0), ("rot btn anim", 22.0), ("cam mode sel", 20.5),
    ("tap cls notif", 19.0), ("clr all notif", 17.5), ("del one notif", 16.0),
    ("cls ctrl ctr", 14.5), ("pht to cam", 13.5), ("tap cls ctrl", 12.5),
    ("unlock lock", 11.5), ("scrl tiktok", 10.5), ("cam to pht", 9.5),
    ("clr all tasks", 9.0), ("clck hibd cd", 8.0), ("scrl albums", 7.5),
    ("sld ret hibd", 7.0), ("scrl wechat", 6.5), ("vert to hori", 6.0),
    ("open album", 5.5), ("open ctrl ctr", 5.0), ("enter hibd", 4.5),
    ("lock to pswd", 4.0), ("open search", 3.5), ("open notif ctr", 3.0),
    ("qk opn apps", 2.7), ("swp ret hibd", 2.4), ("exit app slide", 2.1),
    ("brtness adj", 1.8), ("shw ph cd", 1.5),
]
FIG12_VULKAN_AVG = 8.42

_FIG13_MATE40_BARS: list[tuple[str, float]] = [
    ("pht to cam", 7.2), ("scrl videos", 5.4), ("cls notif ctr", 4.2),
    ("cam mode sel", 3.4), ("vert to hori", 2.8), ("hori to vert", 2.3),
    ("clr all notif", 1.8), ("scrl photos", 1.3), ("scrl wechat", 0.9),
]
FIG13_MATE40_AVG = 3.17

_FIG13_MATE60_BARS: list[tuple[str, float]] = [
    ("clck settings", 34.0), ("scrl videos", 19.0), ("vert to hori", 16.0),
    ("shw ctrl btns", 13.0), ("clr all notif", 11.0), ("hori to vert", 9.5),
    ("scrl photos", 8.5), ("cls notif ctr", 7.5), ("scrl tiktok", 6.5),
    ("scrl albums", 6.0), ("scrl wechat", 5.5), ("pht to cam", 5.0),
    ("sld cls fd", 4.5), ("open ctrl ctr", 4.0), ("cam to pht", 3.5),
    ("lock to pswd", 3.0), ("clck hibd cd", 2.6), ("tap cls fd", 2.2),
    ("cls ctrl ctr", 1.8), ("scrl sets", 1.4),
]
FIG13_MATE60_AVG = 7.51


def _targets(bars: list[tuple[str, float]], average: float) -> dict[str, float]:
    names = [name for name, _ in bars]
    weights = [weight for _, weight in bars]
    return targets_from_weights(names, weights, average)


MATE60_VULKAN_TARGETS = _targets(_FIG12_VULKAN_BARS, FIG12_VULKAN_AVG)
MATE40_GLES_TARGETS = _targets(_FIG13_MATE40_BARS, FIG13_MATE40_AVG)
MATE60_GLES_TARGETS = _targets(_FIG13_MATE60_BARS, FIG13_MATE60_AVG)

# config -> (refresh_hz, targets, default tail profile). The Vulkan backend's
# drops come from scattered one-off long frames (its current implementation
# stalls on pipeline compilation), which D-VSync removes almost entirely
# (83.5 % reduction); the GLES drops carry the deeper moderate tail
# (66–69 % reduction), matching §6.1's per-backend numbers.
_CONFIGS: dict[str, tuple[int, dict[str, float], str]] = {
    "mate40-gles": (90, MATE40_GLES_TARGETS, "fluctuation-deep"),
    "mate60-gles": (120, MATE60_GLES_TARGETS, "fluctuation-deep"),
    "mate60-vulkan": (120, MATE60_VULKAN_TARGETS, "fluctuation"),
}


def _profile_for(case: UseCase, default: str) -> str:
    # Scroll/fling drops are scattered cache-miss key frames while new
    # content loads, regardless of backend.
    if case.abbreviation.startswith("scrl"):
        return "scattered"
    return default


def scenario_for_case(
    case: UseCase, refresh_hz: int, target_fdps: float, default_profile: str = "moderate"
) -> Scenario:
    """Build the scenario spec for one use case on one configuration."""
    return Scenario(
        name=case.abbreviation,
        description=case.description,
        refresh_hz=refresh_hz,
        target_vsync_fdps=target_fdps,
        profile=_profile_for(case, default_profile),
        curve=case.curve,
        interactive=case.interactive,
    )


def os_case_scenarios(config: str, drop_prone_only: bool = True) -> list[Scenario]:
    """Scenarios for one device configuration.

    Args:
        config: ``"mate40-gles"``, ``"mate60-gles"``, or ``"mate60-vulkan"``.
        drop_prone_only: If True (the figures' framing), only the cases that
            exhibited frame drops under VSync; otherwise all 75 cases, the
            remainder with a zero drop target.
    """
    try:
        refresh_hz, targets, default_profile = _CONFIGS[config]
    except KeyError:
        raise WorkloadError(
            f"unknown configuration {config!r}; known: {sorted(_CONFIGS)}"
        ) from None
    scenarios = []
    for case in USE_CASES:
        target = targets.get(case.abbreviation)
        if target is None:
            if drop_prone_only:
                continue
            target = 0.0
        scenarios.append(scenario_for_case(case, refresh_hz, target, default_profile))
    if drop_prone_only:
        order = {name: i for i, (name, _) in enumerate(_ordered_bars(config))}
        scenarios.sort(key=lambda s: order[s.name])
    return scenarios


def _ordered_bars(config: str) -> list[tuple[str, float]]:
    if config == "mate40-gles":
        return _FIG13_MATE40_BARS
    if config == "mate60-gles":
        return _FIG13_MATE60_BARS
    return _FIG12_VULKAN_BARS
