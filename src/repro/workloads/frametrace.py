"""Frame traces: reproducible per-frame workload sequences.

A :class:`FrameTrace` is the simulation analogue of the paper's recorded
runtime traces ("CPU and GPU time of every frame", §6.1): an ordered list of
:class:`FrameWorkload` plus the refresh rate it was captured for. Traces are
what both schedulers replay, guaranteeing the VSync and D-VSync arms see the
exact same series of workloads (Fig 10's premise).
"""

from __future__ import annotations

import dataclasses
import statistics

from repro.errors import WorkloadError
from repro.pipeline.frame import FrameCategory, FrameWorkload
from repro.units import hz_to_period, to_ms


@dataclasses.dataclass
class FrameTrace:
    """An ordered, named sequence of frame workloads."""

    name: str
    refresh_hz: int
    workloads: list[FrameWorkload]

    def __post_init__(self) -> None:
        if self.refresh_hz <= 0:
            raise WorkloadError("refresh_hz must be positive")
        if not self.workloads:
            raise WorkloadError(f"trace {self.name!r} has no frames")

    def __len__(self) -> int:
        return len(self.workloads)

    def __getitem__(self, index: int) -> FrameWorkload:
        return self.workloads[index]

    @property
    def period_ns(self) -> int:
        """VSync period of the capture rate."""
        return hz_to_period(self.refresh_hz)

    @property
    def duration_ns(self) -> int:
        """Nominal duration at full frame rate."""
        return len(self.workloads) * self.period_ns

    def total_times_ms(self) -> list[float]:
        """Critical-path time of every frame in milliseconds."""
        return [to_ms(w.total_ns) for w in self.workloads]

    def long_frame_fraction(self) -> float:
        """Fraction of frames whose critical path exceeds one period."""
        period = self.period_ns
        return sum(1 for w in self.workloads if w.total_ns > period) / len(self.workloads)

    def stats(self) -> dict[str, float]:
        """Summary statistics of the frame times (ms)."""
        times = sorted(self.total_times_ms())
        n = len(times)
        return {
            "mean_ms": statistics.fmean(times),
            "median_ms": times[n // 2],
            "p95_ms": times[min(n - 1, round(0.95 * n))],
            "p99_ms": times[min(n - 1, round(0.99 * n))],
            "max_ms": times[-1],
            "long_fraction": self.long_frame_fraction(),
        }

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """Plain-dict form for JSON round-tripping (see repro.trace.format)."""
        return {
            "name": self.name,
            "refresh_hz": self.refresh_hz,
            "frames": [
                {
                    "ui_ns": w.ui_ns,
                    "render_ns": w.render_ns,
                    "gpu_ns": w.gpu_ns,
                    "category": w.category.value,
                }
                for w in self.workloads
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FrameTrace":
        """Inverse of :meth:`to_dict`."""
        try:
            workloads = [
                FrameWorkload(
                    ui_ns=f["ui_ns"],
                    render_ns=f["render_ns"],
                    gpu_ns=f.get("gpu_ns", 0),
                    category=FrameCategory(f.get("category", "deterministic_animation")),
                )
                for f in data["frames"]
            ]
            return cls(name=data["name"], refresh_hz=data["refresh_hz"], workloads=workloads)
        except (KeyError, TypeError, ValueError) as exc:
            raise WorkloadError(f"malformed trace payload: {exc}") from exc
