"""Concrete scenario drivers.

Three driver families cover the paper's evaluation surface:

- :class:`AnimationDriver` — deterministic animations (85 % of frames):
  app opening, page transitions, notification clearing. Content is a motion
  curve sampled at the content timestamp. Supports *bursts*: the Fig 11
  methodology swipes twice a second, so each run is a train of short
  animations separated by idle gaps, each burst gated on its triggering
  input's wall-clock arrival.
- :class:`InteractionDriver` — predictable interactions (10 %): a fingertip
  on the screen generates input samples; the drawn content follows the input
  (directly under VSync, through the IPL under D-VSync).
- :class:`TraceDriver` — replays a recorded :class:`FrameTrace` (the game
  simulations of §6.1 and any imported trace).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable

from repro.errors import WorkloadError
from repro.pipeline.driver import ReplayProfile, ScenarioDriver
from repro.pipeline.frame import FrameCategory, FrameWorkload
from repro.sim.rng import SeededRng
from repro.units import NSEC_PER_SEC
from repro.workloads.animations import EaseInOutCurve, MotionCurve
from repro.workloads.distributions import FrameTimeParams, PowerLawFrameModel
from repro.workloads.frametrace import FrameTrace
from repro.workloads.touch import InputGesture


# Frames [2, 9) of each burst carry most of the key-frame mass: the heavy
# content loading of a transition happens right after its triggering input,
# which is also why a jank leaves the rest of the burst buffer-stuffed under
# VSync (Fig 6) while D-VSync has already accumulated buffers by then.
_EARLY_ZONE = range(2, 9)
_EARLY_BIAS = 2.5


def _pregenerate(
    params: FrameTimeParams,
    duration_ns: int,
    name: str,
    frames_per_burst: int | None = None,
) -> list[FrameWorkload]:
    """Sample a deterministic workload trace long enough for any scheduler.

    D-VSync's accumulation lets content time run ahead of wall-clock, so the
    trace carries a generous margin beyond the nominal frame count. When
    ``frames_per_burst`` is given, key frames are biased toward each burst's
    early zone with the total key mass preserved.
    """
    nominal = math.ceil(duration_ns / params.period_ns)
    count = nominal + max(32, nominal // 4)
    model = PowerLawFrameModel(params, SeededRng.for_scenario(name, salt="workload"))
    if frames_per_burst is None or frames_per_burst <= len(_EARLY_ZONE):
        return model.generate(count)
    early_fraction = len(_EARLY_ZONE) / frames_per_burst
    bias = min(_EARLY_BIAS, 0.45 / max(1e-9, params.key_prob * early_fraction))
    bias = max(1.0, bias)
    late_weight = max(0.0, (1 - bias * early_fraction) / (1 - early_fraction))
    workloads = []
    for index in range(count):
        position = index % frames_per_burst
        weight = bias if position in _EARLY_ZONE else late_weight
        workloads.append(model.next_workload(key_weight=weight))
    return workloads


class AnimationDriver(ScenarioDriver):
    """Deterministic animation bursts: motion curve + power-law workloads.

    One burst is ``duration_ns`` of animation; ``bursts`` of them repeat every
    ``burst_period_ns`` (default: back to back). Burst *k* is triggered by a
    user input at ``start + k * burst_period_ns``: no frame of that burst can
    be produced before then, however eagerly a scheduler pre-renders.
    """

    def __init__(
        self,
        name: str,
        params: FrameTimeParams,
        duration_ns: int,
        curve: MotionCurve | None = None,
        distance: float = 1.0,
        bursts: int = 1,
        burst_period_ns: int | None = None,
        key_zone_period_frames: int | None = None,
        category_weights: dict[FrameCategory, float] | None = None,
    ) -> None:
        if duration_ns <= 0:
            raise WorkloadError("animation duration must be positive")
        if bursts < 1:
            raise WorkloadError("bursts must be >= 1")
        self.name = name
        self.params = params
        self.duration_ns = duration_ns
        self.bursts = bursts
        self.burst_period_ns = burst_period_ns or duration_ns
        if self.burst_period_ns < duration_ns:
            raise WorkloadError("burst period cannot be shorter than the animation")
        self.curve = curve or EaseInOutCurve()
        self.distance = distance
        total = duration_ns * bursts
        # Key frames bias toward the frames right after each content load:
        # per input-gated burst by default, or on an explicit cadence for
        # continuous scrolls whose content reloads without a new gesture.
        if key_zone_period_frames is None:
            key_zone_period_frames = max(1, int(duration_ns // params.period_ns))
        self._workloads = _pregenerate(
            params, total, name, frames_per_burst=key_zone_period_frames
        )
        self._categories = self._assign_categories(category_weights)
        self.start_time = 0

    def _assign_categories(
        self, weights: dict[FrameCategory, float] | None
    ) -> list[FrameCategory]:
        if not weights:
            return [self.params.category] * len(self._workloads)
        total = sum(weights.values())
        if total <= 0:
            raise WorkloadError("category weights must sum to a positive value")
        rng = SeededRng.for_scenario(self.name, salt="categories")
        categories, cumulative = [], []
        acc = 0.0
        for cat, w in weights.items():
            acc += w / total
            categories.append(cat)
            cumulative.append(acc)
        assigned = []
        for _ in self._workloads:
            draw = rng.uniform(0.0, 1.0)
            for cat, edge in zip(categories, cumulative):
                if draw <= edge:
                    assigned.append(cat)
                    break
            else:  # pragma: no cover - float edge
                assigned.append(categories[-1])
        return assigned

    @property
    def total_span_ns(self) -> int:
        """Wall span from the first input to the last burst's animation end."""
        return (self.bursts - 1) * self.burst_period_ns + self.duration_ns

    def _burst_phase(self, at: int) -> tuple[int, int]:
        """(burst index, offset within the burst period) for time *at*."""
        rel = at - self.start_time
        index = min(self.bursts - 1, max(0, rel // self.burst_period_ns))
        return index, rel - index * self.burst_period_ns

    def wants_frame(self, content_timestamp: int, now: int) -> bool:
        rel = content_timestamp - self.start_time
        if rel < 0 or rel >= self.total_span_ns:
            return False
        burst, offset = self._burst_phase(content_timestamp)
        if offset >= self.duration_ns:
            return False  # idle gap between bursts
        input_arrival = self.start_time + burst * self.burst_period_ns
        return now >= input_arrival

    def finished(self, now: int) -> bool:
        return now - self.start_time >= self.total_span_ns

    def frame_category(self, frame_index: int) -> FrameCategory:
        return self._categories[min(frame_index, len(self._categories) - 1)]

    def make_workload(self, frame_index: int, content_timestamp: int) -> FrameWorkload:
        workload = self._workloads[min(frame_index, len(self._workloads) - 1)]
        category = self.frame_category(frame_index)
        if workload.category is not category:
            workload = dataclasses.replace(workload, category=category)
        return workload

    def _progress(self, at: int) -> float:
        _, offset = self._burst_phase(at)
        return min(1.0, max(0.0, offset / self.duration_ns))

    def true_value(self, at: int) -> float:
        return self.curve.position(self._progress(at)) * self.distance

    def animation_speed(self, at: int) -> float:
        _, offset = self._burst_phase(at)
        if offset >= self.duration_ns:
            return 0.0
        du_per_second = NSEC_PER_SEC / self.duration_ns
        return abs(self.curve.velocity(self._progress(at))) * self.distance * du_per_second

    def replay_profile(self) -> ReplayProfile | None:
        # Mixed-category runs route some frames through the IPL or VSync
        # fallback channels, which only the event engine models.
        deterministic = FrameCategory.DETERMINISTIC_ANIMATION
        if any(category is not deterministic for category in self._categories):
            return None
        return ReplayProfile(
            input_arrival_offsets=tuple(
                burst * self.burst_period_ns for burst in range(self.bursts)
            ),
            total_span_ns=self.total_span_ns,
            frame_times=tuple(
                (w.ui_ns, w.render_ns, w.gpu_ns) for w in self._workloads
            ),
            workloads=tuple(
                w
                if w.category is deterministic
                else dataclasses.replace(w, category=deterministic)
                for w in self._workloads
            ),
            burst_duration_ns=self.duration_ns,
        )

    def replay_values(self):
        # Same arithmetic as true_value/_progress/_burst_phase, with the
        # attribute lookups hoisted out of the per-frame call.
        bp = self.burst_period_ns
        dur = self.duration_ns
        bmax = self.bursts - 1
        dist = self.distance
        pos = self.curve.position
        start = self.start_time

        def value(at: int) -> float:
            rel = at - start
            k = rel // bp
            if k < 0:
                k = 0
            elif k > bmax:
                k = bmax
            # _progress's clamp is elided: every MotionCurve.position clamps
            # its input identically (idempotent), so the floats match.
            return pos((rel - k * bp) / dur) * dist

        return value


class InteractionDriver(ScenarioDriver):
    """A continuous touch interaction driving the screen content.

    ``gesture_factory`` builds the gesture at ``begin`` time so the input
    stream is anchored to the run's start. The drawn content is the gesture
    value — under D-VSync the scheduler routes it through the IPL because the
    future input does not exist yet.
    """

    def __init__(
        self,
        name: str,
        params: FrameTimeParams,
        gesture_factory: Callable[[int], InputGesture],
    ) -> None:
        self.name = name
        if params.category is not FrameCategory.PREDICTABLE_INTERACTION:
            params = dataclasses.replace(
                params, category=FrameCategory.PREDICTABLE_INTERACTION
            )
        self.params = params
        self._gesture_factory = gesture_factory
        self.gesture: InputGesture | None = None
        self._workloads: list[FrameWorkload] = []
        self.start_time = 0

    def begin(self, start_time: int) -> None:
        super().begin(start_time)
        self.gesture = self._gesture_factory(start_time)
        self._workloads = _pregenerate(self.params, self.gesture.duration_ns, self.name)

    def _require_gesture(self) -> InputGesture:
        if self.gesture is None:
            raise WorkloadError(f"driver {self.name!r} used before begin()")
        return self.gesture

    @property
    def duration_ns(self) -> int:
        """Span of the gesture (available once the run has begun)."""
        return self._require_gesture().duration_ns

    def wants_frame(self, content_timestamp: int, now: int) -> bool:
        gesture = self._require_gesture()
        return gesture.start_time <= content_timestamp < gesture.end_time

    def finished(self, now: int) -> bool:
        return now >= self._require_gesture().end_time

    def frame_category(self, frame_index: int) -> FrameCategory:
        return FrameCategory.PREDICTABLE_INTERACTION

    def make_workload(self, frame_index: int, content_timestamp: int) -> FrameWorkload:
        return self._workloads[min(frame_index, len(self._workloads) - 1)]

    def observe_input(self, up_to: int) -> list[tuple[int, float]]:
        return self._require_gesture().samples_until(up_to)

    def true_value(self, at: int) -> float:
        return self._require_gesture().value_at(at)

    def animation_speed(self, at: int) -> float:
        return self._require_gesture().speed_at(at)


class TraceDriver(ScenarioDriver):
    """Replays a recorded frame trace (the paper's game-simulation method).

    ``scene_period_ns`` optionally inserts an idle gap every so often,
    modelling game scene transitions where the render loop pauses briefly;
    continuous by default.
    """

    def __init__(
        self,
        trace: FrameTrace,
        category: FrameCategory = FrameCategory.DETERMINISTIC_ANIMATION,
        loop: bool = False,
    ) -> None:
        self.name = trace.name
        self.trace = trace
        self.category = category
        self.loop = loop
        self.start_time = 0

    @property
    def duration_ns(self) -> int:
        return self.trace.duration_ns

    def wants_frame(self, content_timestamp: int, now: int) -> bool:
        rel = content_timestamp - self.start_time
        return 0 <= rel < self.trace.duration_ns

    def finished(self, now: int) -> bool:
        return now - self.start_time >= self.trace.duration_ns

    def frame_category(self, frame_index: int) -> FrameCategory:
        return self.category

    def make_workload(self, frame_index: int, content_timestamp: int) -> FrameWorkload:
        if self.loop:
            workload = self.trace[frame_index % len(self.trace)]
        else:
            workload = self.trace[min(frame_index, len(self.trace) - 1)]
        if workload.category is not self.category:
            workload = dataclasses.replace(workload, category=self.category)
        return workload

    def true_value(self, at: int) -> float:
        # Scene animations progress linearly through the trace.
        u = (at - self.start_time) / max(1, self.trace.duration_ns)
        return min(1.0, max(0.0, u))

    def replay_profile(self) -> ReplayProfile | None:
        if self.category is not FrameCategory.DETERMINISTIC_ANIMATION:
            return None
        items = [self.trace[i] for i in range(len(self.trace))]
        return ReplayProfile(
            input_arrival_offsets=(0,),
            total_span_ns=self.trace.duration_ns,
            frame_times=tuple((w.ui_ns, w.render_ns, w.gpu_ns) for w in items),
            loop=self.loop,
            workloads=tuple(
                w
                if w.category is self.category
                else dataclasses.replace(w, category=self.category)
                for w in items
            ),
            burst_duration_ns=self.trace.duration_ns,
        )

    def replay_values(self):
        start = self.start_time
        denom = max(1, self.trace.duration_ns)

        def value(at: int) -> float:
            return min(1.0, max(0.0, (at - start) / denom))

        return value
