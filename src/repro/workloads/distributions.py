"""Power-law frame-time generation (Fig 1, §3.2).

The paper's central workload observation: frame rendering time follows a
power-law-like distribution — the majority (≥95 %) of frames are short and
quick, while a small portion (≤5 %) of *key frames* are heavily loaded and
cause drops. :class:`PowerLawFrameModel` reproduces that shape:

- the **body** is lognormal around a fraction of the VSync period (short
  frames that leave idle time for D-VSync to recycle);
- **key frames** occur with a small probability and carry an exponential
  *render-stage* excess beyond one period (heavy visual effects — Gaussian
  blur, particle systems — load the render service, §3.1), so one isolated
  key frame with excess *e* costs about ``ceil(e)`` janks under VSync;
- key frames optionally **cluster** through a two-state Markov chain
  (``burstiness``), reproducing the back-to-back long frames that drain
  D-VSync's accumulated buffers.

:func:`params_for_target_fdps` inverts the model: given the frame-drop rate
the paper measured for a scenario under VSync, it picks a key-frame
probability that lands the simulated baseline near that value, so the
D-VSync results are pure predictions (see DESIGN.md §6).
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import WorkloadError
from repro.pipeline.frame import FrameCategory, FrameWorkload
from repro.sim.rng import SeededRng
from repro.units import hz_to_period, ms, to_ms


@dataclasses.dataclass(frozen=True)
class TailProfile:
    """Shape of key-frame excess, in units of VSync periods.

    A key frame's render-stage time is ``period * (1.02 + excess)`` with
    ``excess = offset + Exp(scale)`` truncated at ``max_excess``.
    ``burstiness`` is the Markov probability that a key frame is followed by
    another key frame (0 = independent draws).
    """

    name: str
    offset: float
    scale: float
    max_excess: float
    burstiness: float

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise WorkloadError("tail scale must be positive")
        if not 0 <= self.burstiness < 1:
            raise WorkloadError("burstiness must be in [0, 1)")
        if self.max_excess <= self.offset:
            raise WorkloadError("max_excess must exceed offset")

    def expected_drops_per_key_frame(self) -> float:
        """E[ceil(excess)]: janks one isolated key frame costs under VSync.

        Uses E[ceil(X)] = sum_k P(X > k) for the truncated shifted
        exponential.
        """
        total = 0.0
        k = 0
        while k < self.max_excess:
            if k < self.offset:
                total += 1.0
            else:
                total += math.exp(-(k - self.offset) / self.scale)
            k += 1
        return max(total, 1.0)


# Walmart-like: drops scattered in time, long frames below ~3 periods, which
# the default 4-buffer D-VSync hides almost completely (§6.1 analysis).
SCATTERED = TailProfile("scattered", offset=0.05, scale=0.70, max_excess=2.6, burstiness=0.08)

# The common case: most long frames absorbable at 4–5 buffers, a thin band
# reaching ~4–5 periods that needs the larger pre-render limits.
MODERATE = TailProfile("moderate", offset=0.20, scale=1.15, max_excess=4.5, burstiness=0.12)

# QQMusic-like: a considerably skewed distribution whose long frames (GC/IO
# hitches of 4–7.5 periods) even 7 buffers partly fail to hide (§6.1).
SKEWED = TailProfile("skewed", offset=4.0, scale=1.5, max_excess=7.5, burstiness=0.35)

# Heavy OS transitions on 120 Hz panels (the 10–25 FDPS cases of Figs 12/13):
# dense single key frames just under two periods — visual-effect spikes small
# enough for the 3-back-buffer window to absorb almost entirely. The Vulkan
# backend's stalls cluster here (83.5 % reduction, §6.1).
FLUCTUATION = TailProfile("fluctuation", offset=1.05, scale=0.28, max_excess=1.9, burstiness=0.04)

# GLES-style heavy transitions: the same dense spikes with a deeper reach
# (up to ~4 periods), leaving more residual at the default limit (66 %
# reduction on Mate 60 Pro GLES, §6.1).
FLUCTUATION_DEEP = TailProfile(
    "fluctuation-deep", offset=1.2, scale=0.65, max_excess=3.8, burstiness=0.15
)

PROFILES: dict[str, TailProfile] = {
    SCATTERED.name: SCATTERED,
    MODERATE.name: MODERATE,
    SKEWED.name: SKEWED,
    FLUCTUATION.name: FLUCTUATION,
    FLUCTUATION_DEEP.name: FLUCTUATION_DEEP,
}


@dataclasses.dataclass(frozen=True)
class FrameTimeParams:
    """Full parameterization of a scenario's frame-time distribution.

    Attributes:
        refresh_hz: Panel rate the scenario runs at (sets the period).
        base_fraction: Median short-frame total time as a fraction of the
            period (short frames leave ``1 - base_fraction`` idle for
            D-VSync's accumulation to recycle).
        sigma: Lognormal shape of the short-frame body.
        body_max_fraction: Truncation of the body, as a period fraction.
            Scenario models keep it below one period (frames above the
            deadline are key frames by definition); the Fig 1 aggregate
            exhibit relaxes it to show the 1–2-period mid-range.
        key_prob: Stationary probability that a frame is a heavy key frame.
        tail: Key-frame excess shape.
        ui_fraction: Share of a body frame's CPU time spent in the UI stage.
        gpu_fraction: Share of a body frame executed on the GPU after CPU
            submission (non-zero for game traces).
        category: Fig 9 category stamped on every generated frame.
    """

    refresh_hz: int
    base_fraction: float = 0.42
    sigma: float = 0.28
    body_max_fraction: float = 0.95
    key_prob: float = 0.02
    tail: TailProfile = MODERATE
    ui_fraction: float = 0.35
    gpu_fraction: float = 0.0
    category: FrameCategory = FrameCategory.DETERMINISTIC_ANIMATION

    def __post_init__(self) -> None:
        if not 0 < self.base_fraction < 1:
            raise WorkloadError("base_fraction must be in (0, 1)")
        if self.body_max_fraction <= self.base_fraction:
            raise WorkloadError("body_max_fraction must exceed base_fraction")
        if not 0 <= self.key_prob <= 0.5:
            raise WorkloadError("key_prob must be in [0, 0.5]")
        if not 0 < self.ui_fraction < 1:
            raise WorkloadError("ui_fraction must be in (0, 1)")
        if not 0 <= self.gpu_fraction < 1:
            raise WorkloadError("gpu_fraction must be in [0, 1)")

    @property
    def period_ns(self) -> int:
        """VSync period implied by the refresh rate."""
        return hz_to_period(self.refresh_hz)


class PowerLawFrameModel:
    """Samples per-frame workloads with the paper's short/long mix."""

    def __init__(self, params: FrameTimeParams, rng: SeededRng) -> None:
        self.params = params
        self.rng = rng
        self._in_burst = False
        self.key_frames_emitted = 0
        self.frames_emitted = 0

    def _key_transition(self, weight: float) -> bool:
        """Advance the two-state Markov chain; True if this frame is a key frame.

        With stationary probability p and burst continuation q, the
        normal→key probability is ``p (1 - q) / (1 - p)`` so the chain's
        stationary key fraction equals ``key_prob`` at ``weight`` 1.0.
        ``weight`` scales the entry probability: animation drivers weight the
        early frames of each burst up (content loading right after the input)
        and the steady tail down, which is what leaves most VSync frames
        running in the post-jank stuffed state (Fig 6).
        """
        p = self.params.key_prob
        q = self.params.tail.burstiness
        if p <= 0 or weight <= 0:
            return False
        if self._in_burst:
            enter = q
        else:
            enter = min(1.0, weight * p * (1 - q) / max(1e-9, 1 - p))
        self._in_burst = self.rng.chance(enter)
        return self._in_burst

    def _body_cpu_ns(self) -> int:
        period_ms_value = to_ms(self.params.period_ns)
        base = period_ms_value * self.params.base_fraction
        total = self.rng.lognormal(math.log(base), self.params.sigma)
        total = min(total, period_ms_value * self.params.body_max_fraction)
        return ms(total)

    def next_workload(self, key_weight: float = 1.0) -> FrameWorkload:
        """Sample one frame's workload.

        ``key_weight`` scales this frame's chance of being a key frame
        (see :meth:`_key_transition`).
        """
        self.frames_emitted += 1
        period_ms_value = to_ms(self.params.period_ns)
        body_ns = self._body_cpu_ns()
        gpu_ns = round(body_ns * self.params.gpu_fraction)
        cpu_ns = body_ns - gpu_ns
        ui_ns = round(cpu_ns * self.params.ui_fraction)
        render_ns = cpu_ns - ui_ns
        if self._key_transition(key_weight):
            # Key frame: heavy effects load the render service past the
            # deadline; the UI stage stays short (it only drives the logic).
            self.key_frames_emitted += 1
            tail = self.params.tail
            excess = min(tail.offset + self.rng.exponential(tail.scale), tail.max_excess)
            render_ns = ms(period_ms_value * (1.02 + excess))
        return FrameWorkload(
            ui_ns=ui_ns,
            render_ns=render_ns,
            gpu_ns=gpu_ns,
            category=self.params.category,
        )

    def generate(self, count: int) -> list[FrameWorkload]:
        """Sample *count* frames as a reproducible trace."""
        if count < 0:
            raise WorkloadError("count must be non-negative")
        return [self.next_workload() for _ in range(count)]


# Empirical yield of the simulated VSync baseline: measured-FDPS / analytic
# prediction, as a function of the requested drops-per-frame density. Below
# 1.0 because janks throttle production (skipped ticks mean fewer key-frame
# opportunities per second) and because intra-burst stuffing absorbs part of
# each key frame's excess. Fitted from an 8-run sweep at 60/120 Hz (see
# tests/workloads/test_calibration.py for the band that pins this).
_YIELD_TABLE: dict[str, list[tuple[float, float]]] = {
    "scattered": [(0.01, 0.53), (0.05, 0.43), (0.10, 0.31), (0.20, 0.30)],
    "moderate": [(0.01, 0.50), (0.05, 0.49), (0.10, 0.44), (0.20, 0.41)],
    "skewed": [(0.01, 1.29), (0.05, 1.18), (0.10, 1.26), (0.20, 1.22)],
    "fluctuation": [(0.02, 0.60), (0.10, 0.42), (0.15, 0.35), (0.25, 0.32)],
    "fluctuation-deep": [(0.02, 0.62), (0.10, 0.45), (0.15, 0.38), (0.25, 0.34)],
}
_DEFAULT_YIELD = 0.55


def _baseline_yield(profile_name: str, drops_per_frame: float) -> float:
    """Interpolate the measured baseline yield for a drop density."""
    table = _YIELD_TABLE.get(profile_name)
    if table is None:
        return _DEFAULT_YIELD
    if drops_per_frame <= table[0][0]:
        return table[0][1]
    for (d0, y0), (d1, y1) in zip(table, table[1:]):
        if drops_per_frame <= d1:
            t = (drops_per_frame - d0) / (d1 - d0)
            return y0 + t * (y1 - y0)
    return table[-1][1]


def params_for_target_fdps(
    target_fdps: float,
    refresh_hz: int,
    profile: TailProfile = MODERATE,
    category: FrameCategory = FrameCategory.DETERMINISTIC_ANIMATION,
    base_fraction: float = 0.42,
    gpu_fraction: float = 0.0,
) -> FrameTimeParams:
    """Build frame-time parameters whose VSync baseline drops ~target_fdps/s.

    The inversion uses the analytic expectation — drops/s = refresh *
    key_prob * E[drops per key frame] — corrected by the empirically measured
    yield of the full pipeline simulation. Residual deviation is pinned by
    the calibration tests.
    """
    if target_fdps < 0:
        raise WorkloadError("target_fdps must be non-negative")
    drops_per_frame = target_fdps / refresh_hz
    expected = profile.expected_drops_per_key_frame()
    expected *= _baseline_yield(profile.name, drops_per_frame)
    key_prob = min(0.35, target_fdps / (refresh_hz * expected))
    return FrameTimeParams(
        refresh_hz=refresh_hz,
        base_fraction=base_fraction,
        key_prob=key_prob,
        tail=profile,
        gpu_fraction=gpu_fraction,
        category=category,
    )


def fig1_model(rng: SeededRng | None = None) -> PowerLawFrameModel:
    """The aggregate distribution behind Figure 1 (60 Hz).

    Calibrated so roughly 78 % of frames finish within one VSync period and
    about 5 % exceed two periods — the frames that fail even with triple
    buffering, matching the figure's annotations.
    """
    params = FrameTimeParams(
        refresh_hz=60,
        base_fraction=0.55,
        sigma=0.62,
        body_max_fraction=1.9,
        key_prob=0.08,
        tail=TailProfile("fig1", offset=0.05, scale=1.1, max_excess=6.0, burstiness=0.2),
    )
    return PowerLawFrameModel(params, rng or SeededRng.for_scenario("fig1"))
