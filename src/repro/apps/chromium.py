"""Case study 2: the Chromium-style browser compositor (§6.6).

Chromium is a custom-rendering app: web pages are split into layers whose
tiles are rasterized asynchronously, then composited synchronously on VSync
signals. During a fling after a swipe, the viewport sweeps across tile rows;
every row entering the viewport for the first time must be rasterized before
the frame can composite — those raster frames are the long key frames that
jank under VSync.

The fling is a deterministic animation, so the paper's port drives the
compositor through the decoupling-aware APIs and pre-renders fling frames,
cutting FDPS from 1.47 to 0.08 (94.3 %) on the Sina, Weather, and AI Life
pages. :class:`ChromiumFlingDriver` models exactly that structure: compose
cost per frame plus raster cost whenever the scroll position crosses into
un-rasterized rows.
"""

from __future__ import annotations

import dataclasses
import math

from repro.pipeline.driver import ScenarioDriver
from repro.pipeline.frame import FrameCategory, FrameWorkload
from repro.sim.rng import SeededRng
from repro.units import NSEC_PER_SEC, ms
from repro.workloads.animations import DecelerateCurve

FLING_DURATION_MS = 1200.0


@dataclasses.dataclass(frozen=True)
class WebPage:
    """Raster/composite cost model of one page.

    Attributes:
        name: Page label from §6.6.
        scroll_rows: Tile rows the fling sweeps across.
        raster_ms_per_row: CPU cost to rasterize one freshly exposed row.
        compose_ms: Per-frame synchronous compositing cost.
        compose_jitter: Lognormal sigma of the compose cost.
    """

    name: str
    scroll_rows: int
    raster_ms_per_row: float
    compose_ms: float
    compose_jitter: float = 0.25


# The three OpenHarmony browser pages from §6.6 on the Mate 60 Pro (120 Hz).
# Sina is a heavy news front page; Weather and AI Life are lighter.
PAGES: tuple[WebPage, ...] = (
    WebPage("Sina", scroll_rows=14, raster_ms_per_row=13.0, compose_ms=2.6),
    WebPage("Weather", scroll_rows=10, raster_ms_per_row=10.5, compose_ms=2.2),
    WebPage("AI Life", scroll_rows=12, raster_ms_per_row=11.5, compose_ms=2.4),
)

CHROMIUM_PAPER_BASELINE_FDPS = 1.47
CHROMIUM_PAPER_DVSYNC_FDPS = 0.08


class ChromiumFlingDriver(ScenarioDriver):
    """One fling through a page with raster-on-demand tile rows.

    Raster demand is a deterministic function of the scroll position (and
    therefore of the content timestamp): the first frame whose viewport
    reaches a new tile row pays that row's raster cost. Pre-rendering shifts
    *when* those frames execute, not what they cost — the decoupled
    architecture absorbs the spikes with accumulated buffers.
    """

    def __init__(self, page: WebPage, refresh_hz: int, run: int = 0) -> None:
        self.name = f"chromium-{page.name}#{run}"
        self.page = page
        self.refresh_hz = refresh_hz
        self.duration_ns = ms(FLING_DURATION_MS)
        self.curve = DecelerateCurve(rate=3.5)
        self._rng = SeededRng.for_scenario(self.name, salt="compose")
        self._rasterized_rows = 0
        self.raster_events = 0
        self.start_time = 0

    # The viewport's initial content is already rasterized when the swipe
    # lands (the user was looking at it); the fling only pays for rows it
    # newly exposes.
    INITIAL_ROWS = 2

    def begin(self, start_time: int) -> None:
        super().begin(start_time)
        self._rasterized_rows = self.INITIAL_ROWS
        self.raster_events = 0

    def _row_at(self, content_timestamp: int) -> int:
        progress = (content_timestamp - self.start_time) / self.duration_ns
        progress = min(1.0, max(0.0, progress))
        return math.ceil(self.curve.position(progress) * self.page.scroll_rows)

    def wants_frame(self, content_timestamp: int, now: int) -> bool:
        rel = content_timestamp - self.start_time
        return 0 <= rel < self.duration_ns

    def finished(self, now: int) -> bool:
        return now - self.start_time >= self.duration_ns

    def make_workload(self, frame_index: int, content_timestamp: int) -> FrameWorkload:
        compose = self._rng.lognormal(
            math.log(self.page.compose_ms), self.page.compose_jitter
        )
        needed = self._row_at(content_timestamp)
        new_rows = max(0, needed - self._rasterized_rows)
        if new_rows:
            self._rasterized_rows = needed
            self.raster_events += 1
        raster = new_rows * self.page.raster_ms_per_row
        render_ns = ms(compose + raster)
        ui_ns = ms(0.6)
        return FrameWorkload(
            ui_ns=ui_ns,
            render_ns=render_ns,
            category=FrameCategory.DETERMINISTIC_ANIMATION,
        )

    def true_value(self, at: int) -> float:
        progress = (at - self.start_time) / self.duration_ns
        return self.curve.position(min(1.0, max(0.0, progress)))

    def animation_speed(self, at: int) -> float:
        progress = (at - self.start_time) / self.duration_ns
        du_per_second = NSEC_PER_SEC / self.duration_ns
        return abs(self.curve.velocity(min(1.0, max(0.0, progress)))) * du_per_second
