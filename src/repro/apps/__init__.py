"""Reference applications: the paper's demo app and two case studies."""

from repro.apps.chromium import (
    CHROMIUM_PAPER_BASELINE_FDPS,
    CHROMIUM_PAPER_DVSYNC_FDPS,
    PAGES,
    ChromiumFlingDriver,
    WebPage,
)
from repro.apps.map_app import MapApp, MapRunReport
from repro.apps.touch_ball import BallLagResult, TouchBallApp

__all__ = [
    "CHROMIUM_PAPER_BASELINE_FDPS",
    "CHROMIUM_PAPER_DVSYNC_FDPS",
    "PAGES",
    "ChromiumFlingDriver",
    "WebPage",
    "MapApp",
    "MapRunReport",
    "BallLagResult",
    "TouchBallApp",
]
