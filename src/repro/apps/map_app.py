"""Case study 1: the decoupling-aware map app (§6.5, Fig 16).

Zooming a map keeps two fingers on the screen while different levels of
vector tiles load and render — heavier than browsing, with frame drops under
VSync. The paper's demo app uses the full aware-channel API:

1. registers a **Zooming Distance Predictor** (ZDP): a linear fit of the
   pinch distance evaluated at the D-Timestamp;
2. configures the pre-rendering limit to use 5 buffers;
3. retrieves frame display times from the DTV API;
4. switches D-VSync on for zooming only (browsing stays on VSync).

With ~200 extra lines the paper eliminates 100 % of zoom frame drops and cuts
latency by 30.2 %, with a 151.6 µs/frame ZDP cost. :class:`MapApp` drives the
same API surface against the simulated scheduler.
"""

from __future__ import annotations

import dataclasses

from repro.core.config import DVSyncConfig
from repro.core.dvsync import DVSyncScheduler
from repro.core.ipl import ZoomingDistancePredictor
from repro.display.device import PIXEL_5, DeviceProfile
from repro.metrics.fdps import fdps
from repro.metrics.latency import latency_summary
from repro.pipeline.scheduler_base import RunResult
from repro.units import ms, us
from repro.workloads.distributions import FLUCTUATION_DEEP, params_for_target_fdps
from repro.workloads.drivers import InteractionDriver
from repro.workloads.touch import PinchGesture

# Zooming at the paper's recorded scale: 3,600 frames at 60 Hz is ~60 s of
# continuous pinching; we split it into gesture repetitions per run.
ZOOM_GESTURE_MS = 4000.0
MAP_BUFFER_COUNT = 5
# Vector-tile loads make zooming drop-prone under VSync (Fig 16 left panel).
ZOOM_VSYNC_FDPS = 1.8


@dataclasses.dataclass(frozen=True)
class MapRunReport:
    """One arm of the Fig 16 evaluation."""

    scheduler: str
    fdps: float
    mean_latency_ms: float
    zdp_overhead_us_per_frame: float
    prediction_error_mean: float


class MapApp:
    """A decoupling-aware map application built on the aware-channel API."""

    def __init__(self, device: DeviceProfile = PIXEL_5) -> None:
        self.device = device

    def build_zoom_driver(self, run: int = 0) -> InteractionDriver:
        """The pinch-zoom interaction with tile-load-heavy frames."""
        name = f"map-zoom#{run}"
        # Vector-tile loads spike to a few periods but stay within the
        # 4-back-buffer window the app configures — which is why the paper's
        # map eliminates 100 % of zoom drops at 5 buffers.
        params = params_for_target_fdps(
            ZOOM_VSYNC_FDPS,
            self.device.refresh_hz,
            profile=FLUCTUATION_DEEP,
        )

        def factory(start: int, _name=name):
            return PinchGesture(
                start,
                ms(ZOOM_GESTURE_MS),
                start_distance=0.15,
                end_distance=0.85,
                noise=0.002,
                name=_name,
            )

        return InteractionDriver(name, params, factory)

    # ------------------------------------------------------------------ runs
    def run_vsync(self, run: int = 0) -> tuple[RunResult, InteractionDriver]:
        """Baseline arm: zooming under the traditional VSync architecture."""
        from repro.core.api import Arch, SimConfig
        from repro.facade import simulate

        driver = self.build_zoom_driver(run)
        result = simulate(
            driver,
            self.device,
            architecture=Arch.VSYNC,
            config=SimConfig(buffer_count=3),
        )
        return result, driver

    def run_dvsync(self, run: int = 0) -> tuple[RunResult, InteractionDriver]:
        """Aware arm: zooming with ZDP + 5 buffers via the decoupling APIs."""
        driver = self.build_zoom_driver(run)
        scheduler = DVSyncScheduler(
            driver,
            self.device,
            DVSyncConfig(buffer_count=MAP_BUFFER_COUNT),
        )
        # The aware-channel choreography from §6.5: the app registers its
        # heuristic curve, sizes the pre-render window, and (having already
        # been off during browsing) switches D-VSync on for the zoom.
        scheduler.api.register_input_predictor(ZoomingDistancePredictor())
        scheduler.api.set_prerender_limit(MAP_BUFFER_COUNT - 1)
        scheduler.api.set_dvsync_enabled(True)
        return scheduler.run(), driver

    # --------------------------------------------------------------- reports
    def report(self, result: RunResult, driver: InteractionDriver) -> MapRunReport:
        """Summarize one arm the way Fig 16 reports it."""
        frames = result.presented_frames
        errors = [
            abs(driver.true_value(f.present_time) - f.content_value)
            for f in frames
            if f.content_value is not None and f.present_time is not None
        ]
        zdp_overhead_ns = result.extra.get("ipl_overhead_ns", 0)
        predictions = max(1, result.extra.get("ipl_predictions", 0))
        overhead_us = (
            zdp_overhead_ns / predictions / 1000 if zdp_overhead_ns else 0.0
        )
        return MapRunReport(
            scheduler=result.scheduler,
            fdps=fdps(result),
            mean_latency_ms=latency_summary(result).mean_ms,
            zdp_overhead_us_per_frame=overhead_us,
            prediction_error_mean=(sum(errors) / len(errors)) if errors else 0.0,
        )


def expected_zdp_overhead_us() -> float:
    """The paper's measured ZDP execution time per frame (151.6 µs)."""
    return us(151.6) / 1000
