"""The touch-follow ball app (Fig 7).

The paper visualizes rendering latency with a minimal app that draws a red
ball at the position of the latest touch event every frame: swipe fast and
the ball visibly falls behind the fingertip — about 400 px (2.4 cm) at 45 ms
of rendering latency.

This module reproduces the app: a fast upward swipe drives an interactive
driver, and the lag series is the distance between the fingertip's true
position and the ball the frame actually shows at its present fence.
"""

from __future__ import annotations

import dataclasses

from repro.display.device import PIXEL_5, DeviceProfile
from repro.metrics.latency import touch_lag_pixels
from repro.pipeline.scheduler_base import RunResult
from repro.units import ms
from repro.workloads.distributions import MODERATE, params_for_target_fdps
from repro.workloads.drivers import InteractionDriver
from repro.workloads.touch import SwipeGesture

# A fast full-panel-height swipe: ~350 ms, the speed at which the paper's
# photo shows the 2.4 cm gap.
SWIPE_DURATION_MS = 350.0
SWIPE_DISTANCE = 1.0  # panel heights


@dataclasses.dataclass(frozen=True)
class BallLagResult:
    """Per-frame lag of the ball behind the fingertip."""

    scheduler: str
    lags_px: list[float]
    mean_latency_ms: float

    @property
    def max_lag_px(self) -> float:
        return max(self.lags_px, default=0.0)

    def max_lag_cm(self, pixels_per_cm: float = 165.0) -> float:
        """Convert the peak lag to centimetres (Pixel 5 is ~165 px/cm)."""
        return self.max_lag_px / pixels_per_cm


class TouchBallApp:
    """Draws a ball at the touch position; measures how far it falls behind."""

    def __init__(self, device: DeviceProfile = PIXEL_5, run: int = 0) -> None:
        self.device = device
        self.run = run

    def build_driver(self, run: int | None = None) -> InteractionDriver:
        """Fresh driver for one swipe (same seed → same gesture and frames)."""
        index = self.run if run is None else run
        name = f"touch-ball#{index}"
        params = params_for_target_fdps(
            # The workload drops enough that buffer stuffing develops during
            # the swipe — the state in which the paper photographs the 2.4 cm
            # gap at ~45 ms of rendering latency.
            target_fdps=6.0,
            refresh_hz=self.device.refresh_hz,
            profile=MODERATE,
        )

        def factory(start: int, _name=name):
            return SwipeGesture(
                start,
                ms(SWIPE_DURATION_MS),
                distance=SWIPE_DISTANCE,
                name=_name,
            )

        return InteractionDriver(name, params, factory)

    def lag_result(self, result: RunResult, driver: InteractionDriver) -> BallLagResult:
        """Compute the Fig 7 lag series from a finished run."""
        lags = touch_lag_pixels(result, driver.true_value, self.device.height)
        latencies = [f.latency_ns / 1e6 for f in result.presented_frames]
        mean_latency = sum(latencies) / len(latencies) if latencies else 0.0
        return BallLagResult(
            scheduler=result.scheduler, lags_px=lags, mean_latency_ms=mean_latency
        )
