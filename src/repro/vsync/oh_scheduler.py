"""OpenHarmony-flavor VSync scheduling: a render *service* on VSync-rs.

§2 describes two realizations of the VSync architecture. Android chains the
render thread on UI completion; OpenHarmony (and iOS) run a separate render
service whose frames are triggered by their own software signal, VSync-rs,
at a fixed offset from HW-VSync. A UI record produced before this period's
VSync-rs edge is rendered within the same period (preserving the two-period
floor); a record that misses the edge waits for the next one — which is the
signal-alignment slip this flavor models and the Android-style chaining
cannot exhibit.

The D-VSync scheduler needs no OH variant: §5.1 replaces both VSync-app and
VSync-rs with decoupling-enhanced events, i.e. completion-driven triggering,
which is exactly what :class:`repro.core.DVSyncScheduler` does.
"""

from __future__ import annotations

from repro.display.device import DeviceProfile
from repro.display.vsync import VsyncChannel, VsyncOffsets
from repro.pipeline.driver import ScenarioDriver
from repro.pipeline.frame import FrameRecord
from repro.sim.engine import Simulator
from repro.vsync.scheduler import VSyncScheduler


def default_rs_offset(device: DeviceProfile) -> int:
    """VSync-rs phase offset: ~35 % into the period, as OEM tuning does."""
    return round(device.vsync_period * 0.35)


class OpenHarmonyVSyncScheduler(VSyncScheduler):
    """Baseline VSync with the render service on its own VSync-rs signal."""

    scheduler_name = "vsync-oh"

    def __init__(
        self,
        driver: ScenarioDriver,
        device: DeviceProfile,
        buffer_count: int | None = None,
        *,
        offsets: VsyncOffsets | None = None,
        sim: Simulator | None = None,
        telemetry=None,
        verify=None,
    ) -> None:
        if offsets is None:
            offsets = VsyncOffsets(rs_offset=default_rs_offset(device))
        super().__init__(
            driver,
            device,
            buffer_count=buffer_count or device.default_buffer_count,
            offsets=offsets,
            sim=sim,
            telemetry=telemetry,
            verify=verify,
        )
        self.rs_channel = VsyncChannel(self.hw_vsync, self.offsets.rs_offset, "vsync-rs")
        self.pipeline.auto_render = False
        self.pipeline.on_ui_complete.append(self._on_ui_record_ready)
        self._pending_records: list[FrameRecord] = []
        self._rs_armed = False
        self.rs_slips = 0  # records that missed their period's VSync-rs edge

    # ---------------------------------------------------------------- UI side
    def _on_ui_record_ready(self, frame: FrameRecord) -> None:
        self._pending_records.append(frame)
        self._arm_rs()

    def _arm_rs(self) -> None:
        if self._rs_armed or not self._pending_records:
            return
        self._rs_armed = True
        self.rs_channel.request_callback(self._on_vsync_rs)

    # ---------------------------------------------------------------- RS side
    def _on_vsync_rs(self, timestamp: int, index: int) -> None:
        self._rs_armed = False
        if self._pending_records:
            frame = self._pending_records.pop(0)
            if frame.ui_end is not None and frame.ui_end < timestamp:
                # The record waited for this edge rather than rendering the
                # moment the UI finished — count edge-alignment slips where
                # the wait crossed into a later period.
                if timestamp - frame.ui_end > self.offsets.rs_offset:
                    self.rs_slips += 1
            self.pipeline.submit_render(frame)
        self._arm_rs()
