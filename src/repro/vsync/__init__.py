"""Baseline VSync rendering architectures (Android and OpenHarmony flavors)."""

from repro.vsync.oh_scheduler import OpenHarmonyVSyncScheduler, default_rs_offset
from repro.vsync.scheduler import VSyncScheduler

__all__ = ["OpenHarmonyVSyncScheduler", "VSyncScheduler", "default_rs_offset"]
