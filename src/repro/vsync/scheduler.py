"""The baseline VSync rendering architecture (§2, Fig 2).

Every frame is triggered by a software VSync-app signal derived from the
screen's HW-VSync: the app requests the next callback while its animation is
live, and a frame's content timestamp is the VSync tick that triggered it.
If the UI thread is still busy with the previous frame when the tick arrives,
the tick is skipped (Android's "Skipped frames!" behaviour). Backpressure
from the triple-buffered queue stalls the render thread, producing the buffer
stuffing of §3.3.

This scheduler is the control arm of every experiment.
"""

from __future__ import annotations

from repro.display.device import DeviceProfile
from repro.display.vsync import VsyncOffsets
from repro.pipeline.driver import ScenarioDriver
from repro.pipeline.scheduler_base import SchedulerBase
from repro.sim.engine import Simulator


class VSyncScheduler(SchedulerBase):
    """Classic VSync frame scheduling: one trigger opportunity per tick."""

    scheduler_name = "vsync"

    def __init__(
        self,
        driver: ScenarioDriver,
        device: DeviceProfile,
        buffer_count: "int | None" = None,
        *,
        offsets: VsyncOffsets | None = None,
        sim: Simulator | None = None,
        telemetry=None,
        verify=None,
    ) -> None:
        # Accept a typed SimConfig where an int buffer count is expected.
        if buffer_count is not None and not isinstance(buffer_count, int):
            from repro.core.api import Arch, SimConfig

            if isinstance(buffer_count, SimConfig):
                buffer_count, _ = buffer_count.normalize(Arch.VSYNC)
        super().__init__(
            driver,
            device,
            buffer_count,
            offsets=offsets,
            sim=sim,
            telemetry=telemetry,
            verify=verify,
        )
        self.skipped_ticks = 0

    def _kick(self) -> None:
        self.app_channel.request_callback(self._on_vsync_app)

    def _on_vsync_app(self, timestamp: int, index: int) -> None:
        if self._driver_done:
            return
        if self.driver.finished(self.sim.now):
            self._mark_driver_done()
            return
        if self.driver.wants_frame(timestamp, self.sim.now):
            if self.pipeline.ui_idle and self.pipeline.render_backlog <= 1:
                self._spawn_frame(content_timestamp=timestamp, decoupled=False)
            else:
                # Lockstep pipeline: either the UI thread is still on the
                # previous frame, or the render stage is more than one frame
                # behind (the UI thread would block in syncAndDrawFrame).
                # This tick produces no frame and animation time advances.
                self.skipped_ticks += 1
        # Idle gaps between animation bursts produce no frame; keep listening
        # for the next burst's input until the scenario ends.
        self.app_channel.request_callback(self._on_vsync_app)
