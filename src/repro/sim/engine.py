"""The discrete-event simulator that drives every experiment.

The :class:`Simulator` is a classic event-queue kernel: components schedule
callbacks at absolute or relative nanosecond times, and :meth:`Simulator.run`
pops them in timestamp order, advancing the clock instantaneously between
events. There is no notion of wall-clock time; "CPU work" is modelled by
scheduling a completion event ``duration`` nanoseconds ahead (see
:class:`repro.pipeline.threads.SimThread`).

Determinism guarantees:

- events at the same timestamp fire in scheduling order (FIFO tie-break);
- the queue holds integer times only, so no float rounding can reorder edges;
- all randomness flows through seeded :class:`repro.sim.rng.SeededRng`
  instances, never the global ``random`` module.
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.events import Event, EventHandle


def max_events_diagnostic(limit: int, time: int, seq: int) -> str:
    """Shared trip diagnostic naming the offending event.

    Used by both the :meth:`Simulator.run` safety valve (a
    :class:`SimulationError`) and the resource governor's
    :class:`~repro.exec.governor.BudgetGuard` (a
    :class:`~repro.errors.BudgetExceededError`), so every caller reports the
    tripping event's sim-time and scheduling seq — the coordinates that make
    a trip reproducible and cross-engine comparable.
    """
    return f"exceeded max_events={limit} at t={time} ns (event seq {seq})"


class Simulator:
    """A deterministic discrete-event simulation kernel.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule_at(100, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [100]
    """

    def __init__(self, start_time: int = 0) -> None:
        self._now = start_time
        self._queue: list[Event] = []
        self._seq = 0
        self._running = False
        self._events_processed = 0
        # Opt-in containment: when set, a callback exception is passed to the
        # handler as (time, exception); returning True swallows it and the
        # event loop continues. None (the default) preserves fail-fast
        # semantics — any callback exception aborts the run.
        self.exception_handler: Callable[[int, Exception], bool] | None = None
        # Opt-in observability: a telemetry session (repro.telemetry) that
        # run() self-times its event loop into — wall-clock seconds under the
        # "sim.loop" profile block plus an executed-event count. None (the
        # default) records nothing.
        self.telemetry = None
        # Opt-in governance: any object with on_event(time, seq) — in
        # practice a repro.exec.governor.BudgetGuard (duck-typed so this
        # kernel never imports the execution layer). run()/step() call it
        # once per executed event, before the callback fires; it raises
        # BudgetExceededError at a deterministic trip point.
        self.budget_guard = None

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled tombstones)."""
        return len(self._queue)

    def schedule_at(self, time: int, callback: Callable[[], Any]) -> EventHandle:
        """Schedule *callback* at absolute *time* (ns) and return its handle.

        Scheduling strictly in the past raises :class:`SimulationError`;
        scheduling at the current instant is allowed and fires after the
        currently-executing event returns.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} ns: simulation time is already {self._now} ns"
            )
        event = Event(time=time, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule(self, delay: int, callback: Callable[[], Any]) -> EventHandle:
        """Schedule *callback* to fire *delay* nanoseconds from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    def call_soon(self, callback: Callable[[], Any]) -> EventHandle:
        """Schedule *callback* at the current instant, after pending same-time events."""
        return self.schedule_at(self._now, callback)

    def run(self, until: int | None = None, max_events: int | None = None) -> None:
        """Run the event loop.

        Args:
            until: Stop once the clock would pass this absolute time; events
                at exactly ``until`` still fire, and the clock is left at
                ``until`` if the queue drains earlier.
            max_events: Safety valve — raise :class:`SimulationError` after
                this many callbacks, catching accidental infinite feedback
                loops in scheduler logic.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run() call)")
        self._running = True
        executed = 0
        loop_started = time.perf_counter() if self.telemetry is not None else None
        try:
            while self._queue:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                self._now = event.time
                if self.budget_guard is not None:
                    self.budget_guard.on_event(event.time, event.seq)
                self._execute(event)
                self._events_processed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        "run() "
                        + max_events_diagnostic(max_events, event.time, event.seq)
                        + "; likely a scheduling feedback loop"
                    )
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
            if loop_started is not None:
                self.telemetry.add_profile(
                    "sim.loop", time.perf_counter() - loop_started
                )
                self.telemetry.metrics.counter("sim.events").inc(executed)

    def step(self) -> bool:
        """Execute the single next pending event.

        Returns True if an event ran, False if the queue was empty. Like
        :meth:`run`, ``step`` is not re-entrant: calling it from inside a
        callback (while ``run()`` or another ``step()`` is executing) would
        advance ``now`` underneath the outer loop, so it raises
        :class:`SimulationError` instead.
        """
        if self._running:
            raise SimulationError(
                "simulator is already running (re-entrant step() call)"
            )
        self._running = True
        try:
            while self._queue:
                event = heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._now = event.time
                if self.budget_guard is not None:
                    self.budget_guard.on_event(event.time, event.seq)
                self._execute(event)
                self._events_processed += 1
                return True
            return False
        finally:
            self._running = False

    def _execute(self, event: Event) -> None:
        """Run one event's callback, containing the exception if a handler
        accepts it; the event counts as fired either way."""
        try:
            event.callback()
        except Exception as exc:
            if self.exception_handler is None or not self.exception_handler(
                self._now, exc
            ):
                raise
        finally:
            event.fired = True

    def drain_cancelled(self) -> int:
        """Remove cancelled tombstones from the queue; returns how many."""
        before = len(self._queue)
        live = [e for e in self._queue if not e.cancelled]
        heapq.heapify(live)
        self._queue = live
        return before - len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Simulator(now={self._now} ns, pending={len(self._queue)})"
