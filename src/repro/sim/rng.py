"""Seeded random-number utilities.

Every stochastic element of the reproduction — frame-time draws, gesture
jitter, scenario composition — pulls from a :class:`SeededRng` derived from a
scenario name, so two runs of the same experiment produce byte-identical
traces. Nothing in the library touches the global ``random`` state.
"""

from __future__ import annotations

import hashlib

import numpy as np


def seed_from_name(name: str, salt: str = "") -> int:
    """Derive a stable 64-bit seed from a human-readable scenario name.

    Uses SHA-256 rather than ``hash()`` because the latter is salted per
    interpreter process and would break run-to-run reproducibility.
    """
    digest = hashlib.sha256(f"{name}|{salt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class SeededRng:
    """A thin, explicit wrapper over :class:`numpy.random.Generator`.

    The wrapper exists so call sites express draws in domain terms
    (milliseconds, probabilities) and so the whole library shares one
    construction discipline: ``SeededRng.for_scenario("scrl wechat")``.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._gen = np.random.default_rng(seed)

    @classmethod
    def for_scenario(cls, name: str, salt: str = "") -> "SeededRng":
        """Build an rng deterministically bound to a scenario name."""
        return cls(seed_from_name(name, salt))

    def spawn(self, label: str) -> "SeededRng":
        """Derive an independent child stream labelled *label*.

        Children of the same parent with different labels are statistically
        independent; the same label always yields the same child.
        """
        return SeededRng(seed_from_name(f"{self.seed}", label))

    def uniform(self, low: float, high: float) -> float:
        """Draw one float uniformly from [low, high)."""
        return float(self._gen.uniform(low, high))

    def normal(self, mean: float, std: float) -> float:
        """Draw one float from a normal distribution."""
        return float(self._gen.normal(mean, std))

    def lognormal(self, mean: float, sigma: float) -> float:
        """Draw one float from a lognormal distribution (log-space params)."""
        return float(self._gen.lognormal(mean, sigma))

    def pareto(self, alpha: float) -> float:
        """Draw one float from a Pareto(alpha) distribution (support ≥ 0)."""
        return float(self._gen.pareto(alpha))

    def exponential(self, scale: float) -> float:
        """Draw one float from an exponential distribution."""
        return float(self._gen.exponential(scale))

    def chance(self, probability: float) -> bool:
        """Return True with the given probability."""
        return bool(self._gen.random() < probability)

    def integer(self, low: int, high: int) -> int:
        """Draw one integer uniformly from [low, high] inclusive."""
        return int(self._gen.integers(low, high + 1))

    def choice(self, options: list):
        """Pick one element of *options* uniformly."""
        index = int(self._gen.integers(0, len(options)))
        return options[index]

    def lognormal_array(self, mean: float, sigma: float, size: int) -> np.ndarray:
        """Draw *size* lognormal samples as a numpy array."""
        return self._gen.lognormal(mean, sigma, size)

    def random_array(self, size: int) -> np.ndarray:
        """Draw *size* uniform [0,1) samples as a numpy array."""
        return self._gen.random(size)
