"""Event objects and handles for the discrete-event simulator.

An :class:`Event` pairs a firing time with a callback. Ordering is total:
events fire by timestamp, ties broken by insertion sequence, so two events
scheduled for the same instant fire in the order they were scheduled. This
determinism matters for the rendering pipeline, where a buffer queued "at" a
VSync edge must be visible to the compositor callback scheduled earlier or
later at that same edge depending on program order.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

from repro.errors import SimulationError


@dataclasses.dataclass(order=True)
class Event:
    """A scheduled callback inside the simulator.

    Attributes:
        time: Absolute firing time in nanoseconds.
        seq: Monotonic tie-breaker assigned by the simulator.
        callback: Zero-argument callable invoked at ``time``. Excluded from
            ordering comparisons.
        cancelled: True once the event has been cancelled; the simulator skips
            cancelled events when it pops them.
    """

    time: int
    seq: int
    callback: Callable[[], Any] = dataclasses.field(compare=False)
    cancelled: bool = dataclasses.field(default=False, compare=False)
    fired: bool = dataclasses.field(default=False, compare=False)


class EventHandle:
    """Caller-facing handle to a scheduled event.

    Allows cancelling the event before it fires. Handles are single-use:
    cancelling twice, or cancelling an event that already fired, raises
    :class:`SimulationError` so scheduling bugs surface immediately instead of
    silently double-freeing timer slots.
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> int:
        """Absolute firing time of the underlying event in nanoseconds."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the event fired."""
        return self._event.cancelled

    @property
    def fired(self) -> bool:
        """True once the event's callback has run."""
        return self._event.fired

    @property
    def pending(self) -> bool:
        """True while the event is still waiting to fire."""
        return not self._event.fired and not self._event.cancelled

    def cancel(self) -> None:
        """Cancel the event so its callback never runs."""
        if self._event.fired:
            raise SimulationError("cannot cancel an event that already fired")
        if self._event.cancelled:
            raise SimulationError("event was already cancelled")
        self._event.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        return f"EventHandle(time={self._event.time}, seq={self._event.seq}, {state})"
