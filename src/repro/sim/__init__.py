"""Discrete-event simulation substrate.

Exports the deterministic event-queue kernel (:class:`Simulator`), event
handles, and seeded randomness used by every other subsystem.
"""

from repro.sim.engine import Simulator
from repro.sim.events import Event, EventHandle
from repro.sim.rng import SeededRng, seed_from_name

__all__ = ["Simulator", "Event", "EventHandle", "SeededRng", "seed_from_name"]
