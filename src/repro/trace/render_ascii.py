"""ASCII timeline rendering of pipeline traces (Fig 10-style).

Graphics engineers debug schedulers by *looking* at timelines. This module
renders a recorded :class:`repro.trace.record.Trace` as monospace art, one
row per track, one column per time bucket — enough to see the paper's Fig 10
patterns in a terminal: VSync's lockstep cadence with janks as gaps, versus
D-VSync's accumulation ramp and sync-stage pacing.

Glyphs: ``#`` span active in the bucket, ``.`` idle, ``!`` jank instant,
``|`` VSync-aligned present.
"""

from __future__ import annotations

from repro.trace.record import Trace
from repro.units import to_ms

DEFAULT_WIDTH = 100
SPAN_TRACKS = ("ui", "render", "gpu", "queue", "display")


def render_timeline(
    trace: Trace,
    width: int = DEFAULT_WIDTH,
    start: int | None = None,
    end: int | None = None,
) -> str:
    """Render the trace as an ASCII timeline.

    Args:
        trace: The recorded run.
        width: Number of character columns (time buckets).
        start / end: Window to render (ns); defaults to the trace bounds.
    """
    bounds = trace.time_bounds()
    lo = bounds[0] if start is None else start
    hi = bounds[1] if end is None else end
    if hi <= lo:
        return "(empty trace)"
    bucket = max(1, (hi - lo) // width)

    def column(t: int) -> int:
        return min(width - 1, max(0, (t - lo) // bucket))

    lines = []
    header = f"{'':>8s} {to_ms(lo):.1f} ms {'-' * max(0, width - 24)} {to_ms(hi):.1f} ms"
    lines.append(header)
    for track in SPAN_TRACKS:
        spans = trace.spans_on(track)
        if not spans:
            continue
        row = ["."] * width
        for span in spans:
            if span.end < lo or span.start > hi:
                continue
            for col in range(column(span.start), column(min(span.end, hi)) + 1):
                row[col] = "#"
        lines.append(f"{track:>8s} {''.join(row)}")
    jank_row = ["."] * width
    for instant in trace.instants_on("janks"):
        if lo <= instant.time <= hi:
            jank_row[column(instant.time)] = "!"
    lines.append(f"{'janks':>8s} {''.join(jank_row)}")
    present_row = ["."] * width
    for instant in trace.instants_on("present"):
        if lo <= instant.time <= hi:
            present_row[column(instant.time)] = "|"
    lines.append(f"{'present':>8s} {''.join(present_row)}")
    return "\n".join(lines)


def render_queue_depth(trace: Trace, width: int = DEFAULT_WIDTH) -> str:
    """Render the queue-depth counter as a bar strip (accumulation profile).

    Each column shows the maximum depth sampled in its bucket as a digit;
    D-VSync runs show the Fig 10 accumulation ramp followed by a plateau at
    the pre-render limit.
    """
    samples = [(c.time, c.value) for c in trace.counters if c.track == "queue-depth"]
    if not samples:
        return "(no queue-depth samples)"
    lo = min(t for t, _ in samples)
    hi = max(t for t, _ in samples)
    if hi == lo:
        return str(int(samples[0][1]))
    bucket = max(1, (hi - lo) // width)
    row = [0.0] * width
    for t, value in samples:
        col = min(width - 1, (t - lo) // bucket)
        row[col] = max(row[col], value)
    return "".join(str(min(9, int(v))) for v in row)
