"""Perfetto-lite runtime traces.

Graphics engineers live in trace viewers (§7: "graphics programmers often
rely on runtime traces to locate performance bottlenecks"); this module
gives the simulation the same vocabulary: spans (named intervals on named
tracks), instants (point events), and counters (sampled values).
:func:`record_run` converts a finished :class:`RunResult` into a trace with
one track per pipeline stage, so a D-VSync run can be inspected frame by
frame — accumulation ramps, sync pacing, drop clusters — exactly like the
paper's Fig 10 timelines.
"""

from __future__ import annotations

import dataclasses

from repro.pipeline.scheduler_base import RunResult


@dataclasses.dataclass(frozen=True)
class Span:
    """A named interval on a track."""

    track: str
    name: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"span {self.name!r} ends before it starts")

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclasses.dataclass(frozen=True)
class Instant:
    """A point event on a track (drops, VSync edges, present fences)."""

    track: str
    name: str
    time: int


@dataclasses.dataclass(frozen=True)
class CounterSample:
    """One sample of a numeric counter (queue depth, FPS)."""

    track: str
    time: int
    value: float


@dataclasses.dataclass
class Trace:
    """A recorded run: spans + instants + counters, queryable by track."""

    name: str
    spans: list[Span] = dataclasses.field(default_factory=list)
    instants: list[Instant] = dataclasses.field(default_factory=list)
    counters: list[CounterSample] = dataclasses.field(default_factory=list)

    def add_span(self, track: str, name: str, start: int, end: int) -> None:
        self.spans.append(Span(track, name, start, end))

    def add_instant(self, track: str, name: str, time: int) -> None:
        self.instants.append(Instant(track, name, time))

    def add_counter(self, track: str, time: int, value: float) -> None:
        self.counters.append(CounterSample(track, time, value))

    def spans_on(self, track: str) -> list[Span]:
        """All spans of one track, in start order."""
        return sorted((s for s in self.spans if s.track == track), key=lambda s: s.start)

    def instants_on(self, track: str) -> list[Instant]:
        """All instants of one track, in time order."""
        return sorted((i for i in self.instants if i.track == track), key=lambda i: i.time)

    def tracks(self) -> list[str]:
        """Names of every track appearing in the trace."""
        names = {s.track for s in self.spans}
        names.update(i.track for i in self.instants)
        names.update(c.track for c in self.counters)
        return sorted(names)

    def time_bounds(self) -> tuple[int, int]:
        """(earliest, latest) timestamp across all events."""
        times: list[int] = []
        times += [s.start for s in self.spans] + [s.end for s in self.spans]
        times += [i.time for i in self.instants]
        times += [c.time for c in self.counters]
        if not times:
            return (0, 0)
        return (min(times), max(times))


def record_run(result: RunResult) -> Trace:
    """Build a pipeline trace from a finished run."""
    trace = Trace(name=f"{result.scenario}@{result.scheduler}")
    for frame in result.frames:
        label = f"frame-{frame.frame_id}"
        if frame.ui_start is not None and frame.ui_end is not None:
            trace.add_span("ui", label, frame.ui_start, frame.ui_end)
        if frame.render_start is not None and frame.render_end is not None:
            trace.add_span("render", label, frame.render_start, frame.render_end)
        if frame.workload.gpu_ns and frame.render_end is not None and frame.gpu_end:
            trace.add_span("gpu", label, frame.render_end, frame.gpu_end)
        if frame.queued_time is not None and frame.latch_time is not None:
            trace.add_span("queue", label, frame.queued_time, frame.latch_time)
        if frame.present_time is not None and frame.latch_time is not None:
            trace.add_span("display", label, frame.latch_time, frame.present_time)
        trace.add_instant(
            "trigger",
            "d-vsync" if frame.decoupled else "vsync-app",
            frame.trigger_time,
        )
    for drop in result.drops:
        trace.add_instant("janks", "frame-drop", drop.time)
    for present in result.presents:
        trace.add_instant("present", f"frame-{present.frame_id}", present.present_time)
        trace.add_counter("queue-depth", present.present_time, present.queue_depth_after)
    return trace
