"""Deprecated trace save/load names — use :mod:`repro.trace.schema`.

The four parallel functions this module used to define (one save/load/dict
pair per trace flavor) are consolidated behind the versioned-schema module's
:func:`~repro.trace.schema.save` / :func:`~repro.trace.schema.load` /
:func:`~repro.trace.schema.to_payload` / :func:`~repro.trace.schema.from_payload`.
Each old name still works but emits a :class:`DeprecationWarning` pointing at
its replacement.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import Mapping

from repro.trace import schema
from repro.trace.record import Trace
from repro.workloads.frametrace import FrameTrace

#: Legacy alias for the envelope version (kept for old imports).
FORMAT_VERSION = schema.SCHEMA_VERSION


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.trace.format.{old} is deprecated; use repro.trace.schema.{new}",
        DeprecationWarning,
        stacklevel=3,
    )


def trace_to_dict(trace: Trace) -> dict:
    """Deprecated: use :func:`repro.trace.schema.to_payload`."""
    _deprecated("trace_to_dict", "to_payload")
    return schema.event_trace_to_payload(trace)


def trace_from_dict(data: Mapping) -> Trace:
    """Deprecated: use :func:`repro.trace.schema.from_payload`."""
    _deprecated("trace_from_dict", "from_payload")
    return schema.event_trace_from_payload(data)


def save_trace(trace: Trace, path: str | Path) -> None:
    """Deprecated: use :func:`repro.trace.schema.save`."""
    _deprecated("save_trace", "save")
    schema.save(trace, path)


def load_trace(path: str | Path) -> Trace:
    """Deprecated: use :func:`repro.trace.schema.load`."""
    _deprecated("load_trace", "load")
    loaded = schema.load(path)
    if not isinstance(loaded, Trace):
        from repro.errors import WorkloadError

        raise WorkloadError(f"not an event trace: kind={schema.FRAME_TRACE_KIND!r}")
    return loaded


def save_frame_trace(trace: FrameTrace, path: str | Path) -> None:
    """Deprecated: use :func:`repro.trace.schema.save`."""
    _deprecated("save_frame_trace", "save")
    schema.save(trace, path)


def load_frame_trace(path: str | Path) -> FrameTrace:
    """Deprecated: use :func:`repro.trace.schema.load`."""
    _deprecated("load_frame_trace", "load")
    loaded = schema.load(path)
    if not isinstance(loaded, FrameTrace):
        from repro.errors import WorkloadError

        raise WorkloadError(f"not a frame trace: kind={schema.EVENT_TRACE_KIND!r}")
    return loaded
