"""JSON serialization for traces.

Round-trips both event traces (:class:`repro.trace.record.Trace`) and frame
workload traces (:class:`repro.workloads.frametrace.FrameTrace`), so recorded
game traces and pipeline timelines can be saved, shared, and replayed — the
simulation analogue of exporting a Perfetto capture.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import WorkloadError
from repro.trace.record import CounterSample, Instant, Span, Trace
from repro.workloads.frametrace import FrameTrace

FORMAT_VERSION = 1


def trace_to_dict(trace: Trace) -> dict:
    """Plain-dict form of an event trace."""
    return {
        "version": FORMAT_VERSION,
        "kind": "event-trace",
        "name": trace.name,
        "spans": [
            {"track": s.track, "name": s.name, "start": s.start, "end": s.end}
            for s in trace.spans
        ],
        "instants": [
            {"track": i.track, "name": i.name, "time": i.time} for i in trace.instants
        ],
        "counters": [
            {"track": c.track, "time": c.time, "value": c.value} for c in trace.counters
        ],
    }


def trace_from_dict(data: dict) -> Trace:
    """Inverse of :func:`trace_to_dict`."""
    try:
        if data.get("kind") != "event-trace":
            raise WorkloadError(f"not an event trace: kind={data.get('kind')!r}")
        trace = Trace(name=data["name"])
        trace.spans = [
            Span(s["track"], s["name"], s["start"], s["end"]) for s in data["spans"]
        ]
        trace.instants = [
            Instant(i["track"], i["name"], i["time"]) for i in data["instants"]
        ]
        trace.counters = [
            CounterSample(c["track"], c["time"], c["value"]) for c in data["counters"]
        ]
        return trace
    except (KeyError, TypeError) as exc:
        raise WorkloadError(f"malformed trace payload: {exc}") from exc


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write an event trace to a JSON file."""
    Path(path).write_text(json.dumps(trace_to_dict(trace)), encoding="utf-8")


def load_trace(path: str | Path) -> Trace:
    """Read an event trace from a JSON file."""
    return trace_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def save_frame_trace(trace: FrameTrace, path: str | Path) -> None:
    """Write a frame workload trace to a JSON file."""
    payload = {"version": FORMAT_VERSION, "kind": "frame-trace", **trace.to_dict()}
    Path(path).write_text(json.dumps(payload), encoding="utf-8")


def load_frame_trace(path: str | Path) -> FrameTrace:
    """Read a frame workload trace from a JSON file."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("kind") != "frame-trace":
        raise WorkloadError(f"not a frame trace: kind={data.get('kind')!r}")
    return FrameTrace.from_dict(data)
