"""Versioned serialization schema for traces — the one save/load seam.

Historically ``repro.trace.format`` grew four parallel names
(``save_trace``/``save_frame_trace``, ``trace_to_dict``/``trace_from_dict``);
this module consolidates them behind a single versioned envelope::

    {"version": 1, "kind": "event-trace" | "frame-trace", ...}

:func:`save` / :func:`load` and :func:`to_payload` / :func:`from_payload`
dispatch on the object (or the envelope's ``kind``), so callers no longer
pick a function per trace flavor. The old names remain importable from
``repro.trace.format`` as :class:`DeprecationWarning` shims.

``SCHEMA_VERSION`` covers the envelope itself; payloads written by the
legacy functions (version 1, same layout) load unchanged.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

from repro.errors import WorkloadError
from repro.trace.record import CounterSample, Instant, Span, Trace
from repro.workloads.frametrace import FrameTrace

#: Envelope version written by this module (and accepted on load).
SCHEMA_VERSION = 1

EVENT_TRACE_KIND = "event-trace"
FRAME_TRACE_KIND = "frame-trace"


# ------------------------------------------------------------- event traces
def event_trace_to_payload(trace: Trace) -> dict:
    """Versioned plain-dict form of an event trace."""
    return {
        "version": SCHEMA_VERSION,
        "kind": EVENT_TRACE_KIND,
        "name": trace.name,
        "spans": [
            {"track": s.track, "name": s.name, "start": s.start, "end": s.end}
            for s in trace.spans
        ],
        "instants": [
            {"track": i.track, "name": i.name, "time": i.time} for i in trace.instants
        ],
        "counters": [
            {"track": c.track, "time": c.time, "value": c.value} for c in trace.counters
        ],
    }


def event_trace_from_payload(data: Mapping) -> Trace:
    """Inverse of :func:`event_trace_to_payload`."""
    _check_kind(data, EVENT_TRACE_KIND)
    try:
        trace = Trace(name=data["name"])
        trace.spans = [
            Span(s["track"], s["name"], s["start"], s["end"]) for s in data["spans"]
        ]
        trace.instants = [
            Instant(i["track"], i["name"], i["time"]) for i in data["instants"]
        ]
        trace.counters = [
            CounterSample(c["track"], c["time"], c["value"]) for c in data["counters"]
        ]
        return trace
    except (KeyError, TypeError) as exc:
        raise WorkloadError(f"malformed trace payload: {exc}") from exc


# ------------------------------------------------------------- frame traces
def frame_trace_to_payload(trace: FrameTrace) -> dict:
    """Versioned plain-dict form of a frame workload trace."""
    return {"version": SCHEMA_VERSION, "kind": FRAME_TRACE_KIND, **trace.to_dict()}


def frame_trace_from_payload(data: Mapping) -> FrameTrace:
    """Inverse of :func:`frame_trace_to_payload`."""
    _check_kind(data, FRAME_TRACE_KIND)
    return FrameTrace.from_dict(dict(data))


# ---------------------------------------------------------------- dispatch
def _check_kind(data: Mapping, expected: str) -> None:
    kind = data.get("kind")
    if kind != expected:
        raise WorkloadError(f"not a {expected.replace('-', ' ')}: kind={kind!r}")
    version = data.get("version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise WorkloadError(
            f"unsupported trace schema version {version!r} "
            f"(this build reads version {SCHEMA_VERSION})"
        )


def to_payload(trace: Trace | FrameTrace) -> dict:
    """Versioned payload for either trace flavor."""
    if isinstance(trace, Trace):
        return event_trace_to_payload(trace)
    if isinstance(trace, FrameTrace):
        return frame_trace_to_payload(trace)
    raise WorkloadError(
        f"cannot serialize {type(trace).__name__}: expected Trace or FrameTrace"
    )


def from_payload(data: Mapping) -> Trace | FrameTrace:
    """Reconstruct either trace flavor from its envelope."""
    kind = data.get("kind")
    if kind == EVENT_TRACE_KIND:
        return event_trace_from_payload(data)
    if kind == FRAME_TRACE_KIND:
        return frame_trace_from_payload(data)
    raise WorkloadError(f"unknown trace kind {kind!r}")


def save(trace: Trace | FrameTrace, path: str | Path) -> None:
    """Write either trace flavor to a JSON file."""
    Path(path).write_text(json.dumps(to_payload(trace)), encoding="utf-8")


def load(path: str | Path) -> Trace | FrameTrace:
    """Read a trace of either flavor from a JSON file."""
    return from_payload(json.loads(Path(path).read_text(encoding="utf-8")))
