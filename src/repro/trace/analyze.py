"""Trace analysis: reconstruct run metrics from raw trace events.

The paper's measurement scripts post-process device traces rather than
instrumenting the scheduler; this module does the same against
:class:`repro.trace.record.Trace` objects, giving an independent path to the
headline numbers that the test suite cross-checks against the scheduler's own
bookkeeping.
"""

from __future__ import annotations

import dataclasses
import statistics

from repro.trace.record import Trace
from repro.units import to_ms, to_seconds


@dataclasses.dataclass(frozen=True)
class TraceAnalysis:
    """Summary reconstructed purely from trace events."""

    frames_displayed: int
    frame_drops: int
    fdps: float
    mean_queue_wait_ms: float
    mean_render_ms: float
    max_queue_depth: float
    span_seconds: float


def analyze(trace: Trace) -> TraceAnalysis:
    """Reconstruct the run summary from a pipeline trace."""
    presents = trace.instants_on("present")
    drops = trace.instants_on("janks")
    queue_spans = trace.spans_on("queue")
    render_spans = trace.spans_on("render")
    depth_samples = [c.value for c in trace.counters if c.track == "queue-depth"]

    if presents:
        span_ns = presents[-1].time - presents[0].time
        # Warmup exclusion mirrors RunResult.effective_drops: nothing before
        # the first content is on screen counts as a jank.
        effective_drops = [d for d in drops if d.time >= presents[0].time]
    else:
        span_ns = 0
        effective_drops = list(drops)
    span_s = to_seconds(span_ns) if span_ns else 0.0

    return TraceAnalysis(
        frames_displayed=len(presents),
        frame_drops=len(effective_drops),
        fdps=(len(effective_drops) / span_s) if span_s else 0.0,
        mean_queue_wait_ms=(
            statistics.fmean(to_ms(s.duration) for s in queue_spans) if queue_spans else 0.0
        ),
        mean_render_ms=(
            statistics.fmean(to_ms(s.duration) for s in render_spans) if render_spans else 0.0
        ),
        max_queue_depth=max(depth_samples, default=0.0),
        span_seconds=span_s,
    )


def decoupling_lead_ms(trace: Trace) -> list[float]:
    """Per-frame lead time of the decoupled triggers over their display.

    How far ahead of its present each frame's execution started — the
    pre-rendering window D-VSync actually achieved (Fig 10's accumulation
    depth over time).
    """
    triggers = trace.instants_on("trigger")
    presents = {i.name: i.time for i in trace.instants_on("present")}
    display_spans = trace.spans_on("display")
    frame_start = {}
    for index, instant in enumerate(triggers):
        frame_start[index] = instant.time
    leads = []
    for span in display_spans:
        # span names are "frame-<id>"; triggers are ordered by frame id.
        frame_id = int(span.name.split("-")[1])
        if frame_id in frame_start and span.name in presents:
            leads.append(to_ms(presents[span.name] - frame_start[frame_id]))
    return leads
