"""Trace recording, serialization, and analysis (perfetto-lite)."""

from repro.trace import schema
from repro.trace.analyze import TraceAnalysis, analyze, decoupling_lead_ms
from repro.trace.format import (
    load_frame_trace,
    load_trace,
    save_frame_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)
from repro.trace.record import CounterSample, Instant, Span, Trace, record_run
from repro.trace.render_ascii import render_queue_depth, render_timeline

__all__ = [
    "schema",
    "TraceAnalysis",
    "analyze",
    "decoupling_lead_ms",
    # deprecated shims (use repro.trace.schema)
    "load_frame_trace",
    "load_trace",
    "save_frame_trace",
    "save_trace",
    "trace_from_dict",
    "trace_to_dict",
    "CounterSample",
    "Instant",
    "Span",
    "Trace",
    "record_run",
    "render_queue_depth",
    "render_timeline",
]
