"""D-VSync × LTPO co-design (§5.3).

LTPO lowers the refresh rate when motion slows; D-VSync accumulates frames
rendered for a specific rate. Switching the panel while old-rate frames sit
in the queue would display X-Hz content at Y Hz — animation pacing breaks.
The co-design enforces the paper's rule: *frames produced at rate X must be
consumed by the screen's HAL before the panel switches to rate Y*. Every
buffer carries its rendering rate (``render_rate_hz``); while a switch is
pending the bridge pauses accumulation (pre-render limit clamped to 1) so
the queue drains at display speed, applies the switch on the first empty
edge, and then restores the configured pre-render window at the new rate.

Constructing the bridge with ``enforce_drain=False`` reproduces the conflict
the co-design exists to prevent (the ablation counts rate-mismatched
presents).
"""

from __future__ import annotations

from repro.core.dvsync import DVSyncScheduler
from repro.display.hal import PresentRecord
from repro.display.ltpo import LTPOController
from repro.pipeline.frame import FrameRecord
from repro.units import period_to_hz


class LTPOCoDesign:
    """Couples an :class:`LTPOController` to a running D-VSync scheduler."""

    def __init__(
        self,
        scheduler: DVSyncScheduler,
        ltpo: LTPOController,
        enforce_drain: bool = True,
    ) -> None:
        self.scheduler = scheduler
        self.ltpo = ltpo
        self.enforce_drain = enforce_drain
        self.rate_mismatched_presents = 0
        self.deferred_switches = 0
        self._configured_limit = scheduler.fpe.prerender_limit
        self._draining = False
        if enforce_drain:
            ltpo.switch_gate = self._switch_gate
        elif scheduler.verifier is not None:
            # The ablation exists to produce rate-mismatched presents; the
            # invariant checker must not report them as library bugs.
            scheduler.verifier.waive(
                "rate-bound-display", "ltpo co-design drain disabled (ablation)"
            )
        ltpo.add_rate_listener(self._on_rate_change)
        scheduler.pipeline.on_frame_queued.append(self._on_frame_queued)
        scheduler.hal.add_listener(self._on_present)
        scheduler.pipeline.render_rate_hz = ltpo.current_hz

    def _switch_gate(self, target_hz: int) -> bool:
        """The panel may switch only once old-rate buffers are consumed.

        While the switch is pending, accumulation pauses (limit 1) so the
        screen drains the queue within a few refreshes instead of waiting
        for the animation to end.
        """
        if self.scheduler.buffer_queue.queued_depth == 0:
            return True
        if not self._draining:
            self._draining = True
            self._configured_limit = self.scheduler.fpe.prerender_limit
            self.scheduler.fpe.prerender_limit = 1
        self.deferred_switches += 1
        return False

    def _on_rate_change(self, old_period: int, new_period: int) -> None:
        self.scheduler.dtv.on_rate_change(old_period, new_period)
        self.scheduler.pipeline.render_rate_hz = self.ltpo.current_hz
        if self._draining:
            # Switch applied: resume the configured pre-render window.
            self.scheduler.fpe.prerender_limit = self._configured_limit
            self._draining = False

    def _on_frame_queued(self, frame: FrameRecord) -> None:
        speed = self.scheduler.driver.animation_speed(frame.content_timestamp)
        self.ltpo.observe_speed(speed)

    def _on_present(self, record: PresentRecord) -> None:
        frame = self.scheduler._frame_by_id(record.frame_id)
        if frame is not None and frame.render_rate_hz is not None:
            panel_hz = round(period_to_hz(record.refresh_period))
            if frame.render_rate_hz != panel_hz:
                self.rate_mismatched_presents += 1
        if self.scheduler.buffer_queue.queued_depth == 0:
            self.ltpo.notify_buffers_drained()
