"""Frame Pre-Executor (FPE, §4.3).

The FPE replaces the fixed VSync trigger with explicit frame-timing control.
It receives "next frame" demand from the scenario and decides *when* each
frame's execution starts, running a two-stage policy:

- **Accumulation stage** — while the number of undisplayed frames (in-flight
  plus queued) is below the pre-rendering limit, the next frame is triggered
  as soon as the UI thread frees up, regardless of the screen's VSync. Short
  frames therefore pile up buffers in the queue.
- **Sync stage** — once the limit is reached, triggering waits for the screen
  to consume a buffer, pacing production at exactly the display rate, like
  conventional VSync but with a full queue standing between a long frame and
  a jank (Fig 10).

Frames whose category cannot be decoupled (REALTIME, §4.2) are routed back to
the traditional VSync path by the runtime controller.
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.graphics.bufferqueue import BufferQueue
from repro.pipeline.stages import RenderPipeline


class FPEStage(enum.Enum):
    """The two execution stages of decoupled pre-rendering (Fig 10)."""

    ACCUMULATION = "accumulation"
    SYNC = "sync"


class FramePreExecutor:
    """Decides when the next frame's execution is triggered.

    The FPE is wired to every event that can open a trigger opportunity:
    UI-thread completion, buffer consumption (via the compositor's tick hook),
    and the initial kick. ``try_trigger`` is idempotent per opportunity — it
    triggers at most one frame (the UI thread can only start one) and is
    simply called again on the next event.
    """

    def __init__(
        self,
        buffer_queue: BufferQueue,
        pipeline: RenderPipeline,
        prerender_limit: int,
        trigger: Callable[[], bool],
    ) -> None:
        self.buffer_queue = buffer_queue
        self.pipeline = pipeline
        self.prerender_limit = prerender_limit
        self._trigger = trigger
        self.triggers_in_accumulation = 0
        self.triggers_in_sync = 0
        self._blocked_on_occupancy = False

    @property
    def occupancy(self) -> int:
        """Pre-rendered frames standing between the screen and a jank.

        Counts queued buffers plus in-flight frames *beyond the one currently
        in production*: with a limit of three back buffers, the FPE may keep
        three completed frames queued while a fourth renders (§5.1's "at most
        3 back buffers for pre-rendering"), exactly like the production
        pipelining of the conventional architecture.
        """
        return self.buffer_queue.queued_depth + max(0, self.pipeline.frames_in_flight - 1)

    @property
    def stage(self) -> FPEStage:
        """Current pre-execution stage (Fig 10's accumulation vs sync)."""
        if self.occupancy >= self.prerender_limit:
            return FPEStage.SYNC
        return FPEStage.ACCUMULATION

    def can_trigger(self) -> bool:
        """True if a new frame may start right now."""
        return self.pipeline.ui_idle and self.occupancy < self.prerender_limit

    def try_trigger(self) -> bool:
        """Trigger the next frame if the gate is open; returns whether it did.

        A trigger counts as *sync-stage* when the gate had been closed by the
        occupancy limit since the last trigger — i.e. production was paced by
        the screen consuming a buffer — and as *accumulation-stage* when it
        ran ahead of the display freely.
        """
        if not self.can_trigger():
            if self.pipeline.ui_idle and self.occupancy >= self.prerender_limit:
                self._blocked_on_occupancy = True
            return False
        if not self._trigger():
            return False
        if self._blocked_on_occupancy:
            self.triggers_in_sync += 1
        else:
            self.triggers_in_accumulation += 1
        self._blocked_on_occupancy = False
        return True
