"""Dual-channel decoupling APIs (§4.5).

Decoupling-*oblivious* apps need nothing from this module: the scheduler
applies pre-rendering to their deterministic animations automatically.
Decoupling-*aware* apps (custom rendering engines, interactive scenarios)
receive a :class:`DecouplingAPI` exposing the four capabilities the paper
enumerates:

1. registering an Input Prediction Layer curve;
2. configuring the pre-rendering limit (performance vs. memory);
3. retrieving the frame display time for app-defined animations;
4. a runtime switch between D-VSync and VSync.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.fpe import FPEStage
from repro.core.ipl import InputPredictor
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.dvsync import DVSyncScheduler


class DecouplingAPI:
    """The aware-channel surface handed to custom-rendering apps."""

    def __init__(self, scheduler: "DVSyncScheduler") -> None:
        self._scheduler = scheduler

    # (1) Input Prediction Layer -------------------------------------------
    def register_input_predictor(self, predictor: InputPredictor) -> None:
        """Install an app-specific heuristic curve, e.g. the map app's ZDP."""
        self._scheduler.ipl.register(predictor)

    # (2) pre-rendering limit ----------------------------------------------
    def set_prerender_limit(self, limit: int) -> None:
        """Bound how many frames may be pre-rendered ahead of display.

        Higher limits hide longer frames at the cost of buffer memory (§6.4);
        the limit can never exceed the back-buffer count of the queue.
        """
        max_limit = self._scheduler.buffer_count - 1
        if not 1 <= limit <= max_limit:
            raise ConfigurationError(
                f"prerender limit must be in [1, {max_limit}] for a "
                f"{self._scheduler.buffer_count}-buffer queue, got {limit}"
            )
        self._scheduler.fpe.prerender_limit = limit

    @property
    def prerender_limit(self) -> int:
        """The currently effective pre-rendering limit."""
        return self._scheduler.fpe.prerender_limit

    # (3) frame display time ------------------------------------------------
    def get_frame_display_time(self) -> int:
        """Predicted present time of the next frame (for custom animations)."""
        return self._scheduler.dtv.preview(self._scheduler.sim.now).predicted_present

    def get_d_timestamp(self) -> int:
        """Predicted D-Timestamp of the next frame (content-time convention)."""
        return self._scheduler.dtv.preview(self._scheduler.sim.now).d_timestamp

    # (4) runtime switch ------------------------------------------------------
    def set_dvsync_enabled(self, enabled: bool) -> None:
        """Switch between D-VSync and VSync at runtime.

        The map case study enables D-VSync only while the user zooms and
        leaves browsing on the traditional path (§6.5).
        """
        self._scheduler.controller.set_enabled(enabled, now=self._scheduler.sim.now)
        if enabled:
            self._scheduler._pump()
        else:
            self._scheduler._arm_vsync_fallback()

    # introspection -----------------------------------------------------------
    @property
    def stage(self) -> FPEStage:
        """Current FPE stage (accumulation vs sync)."""
        return self._scheduler.fpe.stage

    @property
    def enabled(self) -> bool:
        """Whether the decoupled channel is currently active."""
        return self._scheduler.controller.enabled
