"""Typed simulation API and the dual-channel decoupling surface (§4.5).

Two layers live here:

* the **front-door types** — :class:`Arch` names the architecture under test
  and :class:`SimConfig` collects every per-run knob (buffers, pre-render
  limit, engine, seed, timeout) that used to be scattered across an
  ``architecture: str`` + ``config: int | DVSyncConfig`` split in
  :func:`repro.simulate`, :class:`~repro.exec.spec.RunSpec`,
  ``compare_scenario`` and the scheduler constructors. Old string/int
  spellings keep working (``Arch`` is a ``str`` enum; legacy ``config=``
  values are coerced behind a :class:`DeprecationWarning`), and
  :meth:`SimConfig.normalize` is the one place that splits a config into the
  ``(buffer_count, dvsync_config)`` pair the runner layer consumes;

* the **aware-channel surface** — decoupling-*oblivious* apps need nothing
  from this module: the scheduler applies pre-rendering to their
  deterministic animations automatically. Decoupling-*aware* apps (custom
  rendering engines, interactive scenarios) receive a :class:`DecouplingAPI`
  exposing the four capabilities the paper enumerates:

  1. registering an Input Prediction Layer curve;
  2. configuring the pre-rendering limit (performance vs. memory);
  3. retrieving the frame display time for app-defined animations;
  4. a runtime switch between D-VSync and VSync.
"""

from __future__ import annotations

import dataclasses
import enum
import warnings
from typing import TYPE_CHECKING

from repro.core.config import DVSyncConfig
from repro.core.fpe import FPEStage
from repro.core.ipl import InputPredictor
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.dvsync import DVSyncScheduler


class Arch(str, enum.Enum):
    """The rendering architecture under test.

    A ``str`` enum so members compare and hash equal to the wire spellings
    (``Arch.DVSYNC == "dvsync"``): passing either form to :func:`repro.simulate`
    or :class:`~repro.exec.spec.RunSpec` produces byte-identical specs and
    content hashes.
    """

    VSYNC = "vsync"
    DVSYNC = "dvsync"

    @classmethod
    def coerce(cls, value: "Arch | str") -> "Arch":
        """Normalize a member or wire string into an :class:`Arch` member."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            known = ", ".join(member.value for member in cls)
            raise ConfigurationError(
                f"unknown architecture {value!r}; known: {known}"
            ) from None

    def __str__(self) -> str:  # keep f-strings on the wire spelling
        return self.value


@dataclasses.dataclass(frozen=True, kw_only=True)
class SimConfig:
    """One typed bundle of per-run simulation knobs.

    All options are keyword-only and every field defaults to "defer to the
    architecture's defaults", so ``SimConfig()`` is the neutral config.

    Attributes:
        buffer_count: Buffer-queue slots. Under :attr:`Arch.VSYNC` this is
            the queue depth directly; under :attr:`Arch.DVSYNC` it seeds a
            :class:`DVSyncConfig` (mutually exclusive with ``dvsync``).
        prerender_limit: D-VSync pre-rendering window in frames
            (:attr:`Arch.DVSYNC` only; mutually exclusive with ``dvsync``).
        dvsync: A full :class:`DVSyncConfig` for knobs beyond the two above
            (ablation switches, per-frame overhead, pipeline depth).
        engine: Execution engine — ``"auto"`` (fastpath when the run is
            trace-pure, event loop otherwise), ``"event"``, or ``"fastpath"``.
            Excluded from spec content hashes: both engines are byte-exact.
        seed: Repetition index for declarative scenarios (drivers are seeded
            by scenario name + run index).
        timeout_s: Wall-clock deadline under the supervised executor.
    """

    buffer_count: int | None = None
    prerender_limit: int | None = None
    dvsync: DVSyncConfig | None = None
    engine: str = "auto"
    seed: int | None = None
    timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.buffer_count is not None and not (
            isinstance(self.buffer_count, int)
            and not isinstance(self.buffer_count, bool)
        ):
            raise ConfigurationError(
                f"buffer_count must be an int or None, got {self.buffer_count!r}"
            )
        if self.dvsync is not None and not isinstance(self.dvsync, DVSyncConfig):
            raise ConfigurationError(
                f"dvsync must be a DVSyncConfig or None, got {self.dvsync!r}"
            )
        if self.dvsync is not None and (
            self.buffer_count is not None or self.prerender_limit is not None
        ):
            raise ConfigurationError(
                "pass either a full dvsync=DVSyncConfig(...) or the "
                "buffer_count/prerender_limit shorthands, not both"
            )
        from repro.exec.spec import ENGINES  # lazy: avoids an import cycle

        engine = getattr(self.engine, "value", self.engine)
        if engine is not self.engine:
            object.__setattr__(self, "engine", engine)
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; known: {', '.join(ENGINES)}"
            )

    @classmethod
    def coerce(cls, config: "SimConfig | DVSyncConfig | int | None") -> "SimConfig":
        """Normalize legacy ``config=`` spellings into a :class:`SimConfig`.

        ``None`` and :class:`SimConfig` pass through; an int buffer count or
        a bare :class:`DVSyncConfig` still works but emits a
        :class:`DeprecationWarning` naming the typed replacement.
        """
        if config is None:
            return cls()
        if isinstance(config, cls):
            return config
        if isinstance(config, DVSyncConfig):
            warnings.warn(
                "passing a bare DVSyncConfig as config= is deprecated; "
                "wrap it as SimConfig(dvsync=...)",
                DeprecationWarning,
                stacklevel=3,
            )
            return cls(dvsync=config)
        if isinstance(config, int) and not isinstance(config, bool):
            warnings.warn(
                "passing an int buffer count as config= is deprecated; "
                "use SimConfig(buffer_count=...)",
                DeprecationWarning,
                stacklevel=3,
            )
            return cls(buffer_count=config)
        raise ConfigurationError(
            f"config must be a SimConfig, a DVSyncConfig, an int buffer "
            f"count, or None; got {config!r}"
        )

    def normalize(
        self, architecture: "Arch | str"
    ) -> tuple[int | None, DVSyncConfig | None]:
        """Split this config into ``(buffer_count, dvsync_config)``.

        This is the single successor of the ``_split_config`` helpers that
        every front door used to duplicate: under :attr:`Arch.DVSYNC` the
        buffer/pre-render shorthands become a :class:`DVSyncConfig`; under
        :attr:`Arch.VSYNC` any D-VSync-only knob is a
        :class:`~repro.errors.ConfigurationError`.
        """
        arch = Arch.coerce(architecture)
        if arch is Arch.DVSYNC:
            if self.dvsync is not None:
                return None, self.dvsync
            if self.buffer_count is None and self.prerender_limit is None:
                return None, None
            kwargs: dict = {}
            if self.buffer_count is not None:
                kwargs["buffer_count"] = self.buffer_count
            if self.prerender_limit is not None:
                kwargs["prerender_limit"] = self.prerender_limit
            return None, DVSyncConfig(**kwargs)
        if self.dvsync is not None:
            raise ConfigurationError(
                "a DVSyncConfig only applies to Arch.DVSYNC; "
                "pass buffer_count for the vsync baseline"
            )
        if self.prerender_limit is not None:
            raise ConfigurationError(
                "prerender_limit only applies to Arch.DVSYNC "
                "(the vsync baseline never pre-renders)"
            )
        return self.buffer_count, None


class DecouplingAPI:
    """The aware-channel surface handed to custom-rendering apps."""

    def __init__(self, scheduler: "DVSyncScheduler") -> None:
        self._scheduler = scheduler

    # (1) Input Prediction Layer -------------------------------------------
    def register_input_predictor(self, predictor: InputPredictor) -> None:
        """Install an app-specific heuristic curve, e.g. the map app's ZDP."""
        self._scheduler.ipl.register(predictor)

    # (2) pre-rendering limit ----------------------------------------------
    def set_prerender_limit(self, limit: int) -> None:
        """Bound how many frames may be pre-rendered ahead of display.

        Higher limits hide longer frames at the cost of buffer memory (§6.4);
        the limit can never exceed the back-buffer count of the queue.
        """
        max_limit = self._scheduler.buffer_count - 1
        if not 1 <= limit <= max_limit:
            raise ConfigurationError(
                f"prerender limit must be in [1, {max_limit}] for a "
                f"{self._scheduler.buffer_count}-buffer queue, got {limit}"
            )
        self._scheduler.fpe.prerender_limit = limit

    @property
    def prerender_limit(self) -> int:
        """The currently effective pre-rendering limit."""
        return self._scheduler.fpe.prerender_limit

    # (3) frame display time ------------------------------------------------
    def get_frame_display_time(self) -> int:
        """Predicted present time of the next frame (for custom animations)."""
        return self._scheduler.dtv.preview(self._scheduler.sim.now).predicted_present

    def get_d_timestamp(self) -> int:
        """Predicted D-Timestamp of the next frame (content-time convention)."""
        return self._scheduler.dtv.preview(self._scheduler.sim.now).d_timestamp

    # (4) runtime switch ------------------------------------------------------
    def set_dvsync_enabled(self, enabled: bool) -> None:
        """Switch between D-VSync and VSync at runtime.

        The map case study enables D-VSync only while the user zooms and
        leaves browsing on the traditional path (§6.5).
        """
        self._scheduler.controller.set_enabled(enabled, now=self._scheduler.sim.now)
        if enabled:
            self._scheduler._pump()
        else:
            self._scheduler._arm_vsync_fallback()

    # introspection -----------------------------------------------------------
    @property
    def stage(self) -> FPEStage:
        """Current FPE stage (accumulation vs sync)."""
        return self._scheduler.fpe.stage

    @property
    def enabled(self) -> bool:
        """Whether the decoupled channel is currently active."""
        return self._scheduler.controller.enabled
