"""D-VSync configuration.

Collects every knob the paper exposes: the enlarged buffer count (Fig 11
sweeps 4/5/7), the pre-rendering limit (§4.3 / §5.1: at most 3 back buffers
by default), the per-frame FPE+DTV execution overhead (§6.4: 102.6 µs), and
the ablation switches this reproduction adds for DTV and IPL.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.units import us


@dataclasses.dataclass(frozen=True, kw_only=True)
class DVSyncConfig:
    """Configuration of the D-VSync scheduler.

    All options are keyword-only (``DVSyncConfig(buffer_count=4)``) so config
    call sites stay self-describing as knobs accumulate.

    Attributes:
        buffer_count: Total buffer-queue slots (front + back). The paper's
            default deployment uses 4 (§5.1); Fig 11 also evaluates 5 and 7.
        prerender_limit: Maximum *undisplayed* frames (in-flight + queued)
            allowed when the FPE triggers a new frame — the pre-rendering
            window in VSync periods. Defaults to ``buffer_count - 1`` (all
            back buffers usable for pre-rendering).
        per_frame_overhead_ns: FPE + DTV management cost charged per triggered
            frame; runs on little cores so it is accounted separately from the
            UI/render threads (§6.4 measures 102.6 µs).
        enabled: Master switch (the runtime controller can flip this).
        dtv_enabled: Ablation switch — when False, pre-rendered frames stamp
            their content with the trigger wall-clock time instead of the
            D-Timestamp, reproducing the pacing breakage DTV exists to fix.
        ipl_enabled: Ablation switch — when False, interactive frames fall
            back to the last observed input sample.
        pipeline_depth_periods: The architecture's steady content-to-display
            distance in periods; DTV back-dates D-Timestamps by this amount so
            apps see the same content-time convention as under VSync (§4.4).
    """

    buffer_count: int = 4
    prerender_limit: int | None = None
    per_frame_overhead_ns: int = us(102.6)
    enabled: bool = True
    dtv_enabled: bool = True
    ipl_enabled: bool = True
    pipeline_depth_periods: int = 2

    def __post_init__(self) -> None:
        if self.buffer_count < 3:
            raise ConfigurationError(
                "D-VSync needs at least 3 buffers (front + render + 1 accumulated)"
            )
        limit = self.prerender_limit
        if limit is not None:
            if limit < 1:
                raise ConfigurationError("prerender_limit must be >= 1")
            if limit > self.buffer_count - 1:
                raise ConfigurationError(
                    f"prerender_limit {limit} exceeds the {self.buffer_count - 1} "
                    f"back buffers of a {self.buffer_count}-buffer queue"
                )
        if self.per_frame_overhead_ns < 0:
            raise ConfigurationError("per_frame_overhead_ns must be non-negative")
        if self.pipeline_depth_periods < 1:
            raise ConfigurationError("pipeline_depth_periods must be >= 1")

    @property
    def resolved_prerender_limit(self) -> int:
        """The effective pre-render occupancy cap."""
        if self.prerender_limit is not None:
            return self.prerender_limit
        return self.buffer_count - 1
