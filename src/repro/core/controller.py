"""Runtime controller: the D-VSync / VSync mode switch (§4.5).

The controller decides, per frame, which timing channel drives execution:

- deterministic animations → decoupled pre-rendering (oblivious channel);
- predictable interactions → decoupled *if* the IPL is available;
- real-time frames (sensor/online content) → the traditional VSync path;
- everything → VSync when D-VSync is disabled (the runtime switch exposed to
  aware apps, used by the map app to enable D-VSync for zooming only).
"""

from __future__ import annotations

import enum

from repro.pipeline.frame import FrameCategory


class TimingMode(enum.Enum):
    """Which architecture triggers a given frame."""

    DVSYNC = "dvsync"
    VSYNC = "vsync"


class RuntimeController:
    """Per-frame routing between the decoupled and traditional channels."""

    def __init__(self, enabled: bool = True, ipl_enabled: bool = True) -> None:
        self.enabled = enabled
        self.ipl_enabled = ipl_enabled
        self.switch_log: list[tuple[int, bool]] = []
        self.routed_dvsync = 0
        self.routed_vsync = 0

    def set_enabled(self, enabled: bool, now: int) -> None:
        """Flip the runtime switch (aware-channel API #4).

        ``now`` is required: switch events are logged against it, and a
        defaulted clock would silently stamp every switch at t=0, corrupting
        :attr:`switch_log` for anything that analyses switch timing.
        """
        if enabled != self.enabled:
            self.switch_log.append((now, enabled))
        self.enabled = enabled

    def mode_for(self, category: FrameCategory) -> TimingMode:
        """Choose the timing channel for a frame of *category* (pure)."""
        if not self.enabled:
            return TimingMode.VSYNC
        if not category.decouplable:
            return TimingMode.VSYNC
        if category.needs_input_prediction and not self.ipl_enabled:
            return TimingMode.VSYNC
        return TimingMode.DVSYNC

    def note_routed(self, mode: TimingMode) -> None:
        """Record that one frame was actually spawned on *mode*'s channel."""
        if mode is TimingMode.DVSYNC:
            self.routed_dvsync += 1
        else:
            self.routed_vsync += 1
