"""The D-VSync scheduler: FPE + DTV + runtime controller + IPL glued onto the
shared rendering pipeline (§4.1, Fig 8).

The only structural difference from :class:`repro.vsync.VSyncScheduler` is
*when frames start*: the Frame Pre-Executor triggers decoupled frames as soon
as resources allow (accumulation stage) or as the screen consumes buffers
(sync stage), and the Display Time Virtualizer stamps each frame with the
D-Timestamp its content must represent. Frames the runtime controller routes
to the traditional channel (REALTIME category, or D-VSync switched off) are
triggered by VSync-app ticks exactly as in the baseline.
"""

from __future__ import annotations

from repro.core.api import DecouplingAPI
from repro.core.config import DVSyncConfig
from repro.core.controller import RuntimeController, TimingMode
from repro.core.dtv import DisplayTimeVirtualizer
from repro.core.fpe import FramePreExecutor
from repro.core.ipl import InputPredictionLayer
from repro.display.device import DeviceProfile
from repro.display.vsync import VsyncOffsets
from repro.pipeline.driver import ScenarioDriver
from repro.pipeline.frame import FrameCategory, FrameRecord
from repro.pipeline.scheduler_base import RunResult, SchedulerBase
from repro.sim.engine import Simulator


class DVSyncScheduler(SchedulerBase):
    """Decoupled rendering and displaying."""

    scheduler_name = "dvsync"

    def __init__(
        self,
        driver: ScenarioDriver,
        device: DeviceProfile,
        config: "DVSyncConfig | SimConfig | None" = None,
        *,
        offsets: VsyncOffsets | None = None,
        sim: Simulator | None = None,
        telemetry=None,
        verify=None,
    ) -> None:
        if config is not None and not isinstance(config, DVSyncConfig):
            # Accept a typed SimConfig where a DVSyncConfig is expected.
            from repro.core.api import Arch, SimConfig

            if isinstance(config, SimConfig):
                _, config = config.normalize(Arch.DVSYNC)
            else:
                from repro.errors import ConfigurationError

                raise ConfigurationError(
                    f"config must be a DVSyncConfig, SimConfig, or None; "
                    f"got {config!r}"
                )
        self.config = config or DVSyncConfig()
        super().__init__(
            driver,
            device,
            buffer_count=self.config.buffer_count,
            offsets=offsets,
            sim=sim,
            telemetry=telemetry,
            verify=verify,
        )
        self.controller = RuntimeController(
            enabled=self.config.enabled, ipl_enabled=self.config.ipl_enabled
        )
        self.dtv = DisplayTimeVirtualizer(
            self.hw_vsync,
            self.buffer_queue,
            self.pipeline,
            pipeline_depth_periods=self.config.pipeline_depth_periods,
        )
        self.ipl = InputPredictionLayer()
        self.fpe = FramePreExecutor(
            self.buffer_queue,
            self.pipeline,
            self.config.resolved_prerender_limit,
            self._trigger_decoupled,
        )
        self.api = DecouplingAPI(self)
        self.watchdog = None
        self._vsync_armed = False
        self.pipeline.on_ui_complete.append(lambda frame: self._pump())
        self.pipeline.on_frame_queued.append(self._on_frame_queued)
        self.compositor.after_tick.append(lambda t, i: self._pump())
        self.hal.add_listener(self.dtv.on_present)

    # ---------------------------------------------------------------- faults
    def attach_watchdog(self, watchdog) -> None:
        """Wire a :class:`repro.faults.DegradationWatchdog` into this run.

        The watchdog observes pipeline health once per HW-VSync edge and
        drives the §4.5 runtime switch: degrade to classic VSync when the
        decoupled channel misbehaves, re-promote once it is healthy again.
        """
        self.watchdog = watchdog
        watchdog.bind(self)

    # ------------------------------------------------------------- triggering
    def _kick(self) -> None:
        self._pump()

    def _pump(self) -> None:
        """Give the FPE (or the VSync fallback) a trigger opportunity."""
        if self._driver_done or not self._started:
            return
        if self.driver.finished(self.sim.now):
            self._mark_driver_done()
            return
        category = self.driver.frame_category(self._next_frame_index())
        mode = self.controller.mode_for(category)
        if mode is TimingMode.VSYNC:
            self._arm_vsync_fallback()
        else:
            self.fpe.try_trigger()

    def _trigger_decoupled(self) -> bool:
        """FPE trigger body: stamp a D-Timestamp and start the next frame."""
        now = self.sim.now
        prediction = self.dtv.preview(now)
        content_timestamp = prediction.d_timestamp if self.config.dtv_enabled else now
        if not self.driver.wants_frame(content_timestamp, now):
            # Idle gap (or the next burst's input has not arrived): stay
            # armed; the compositor's tick hook pumps again next period.
            return False
        self.dtv.commit(prediction)
        frame = self._spawn_frame(content_timestamp=content_timestamp, decoupled=True)
        self.dtv.track(frame.frame_id, prediction)
        self.controller.note_routed(TimingMode.DVSYNC)
        self.scheduler_overhead_ns += self.config.per_frame_overhead_ns
        return True

    # ------------------------------------------------------ vsync-path frames
    def _arm_vsync_fallback(self) -> None:
        if self._vsync_armed or self._driver_done or not self._started:
            return
        self._vsync_armed = True
        self.app_channel.request_callback(self._on_vsync_app)

    def _on_vsync_app(self, timestamp: int, index: int) -> None:
        self._vsync_armed = False
        if self._driver_done:
            return
        if self.driver.finished(self.sim.now):
            self._mark_driver_done()
            return
        category = self.driver.frame_category(self._next_frame_index())
        if self.controller.mode_for(category) is TimingMode.DVSYNC:
            # The controller flipped back (runtime switch): resume decoupling.
            self._pump()
            return
        if (
            self.driver.wants_frame(timestamp, self.sim.now)
            and self.pipeline.ui_idle
            and self.pipeline.render_backlog <= 1
        ):
            # Traditional-path frames obey the same lockstep rule as the
            # baseline VSync scheduler.
            self._spawn_frame(content_timestamp=timestamp, decoupled=False)
            self.controller.note_routed(TimingMode.VSYNC)
        else:
            self._arm_vsync_fallback()

    # ----------------------------------------------------------------- hooks
    def _on_frame_queued(self, frame: FrameRecord) -> None:
        # Feed DTV the frame's pure execution critical path. The trigger-to-
        # queue span would double-count waiting behind other frames, which
        # DTV's occupancy term already models.
        self.dtv.observe_execution(frame.workload.total_ns)
        self._pump()

    def _content_value_for(self, frame: FrameRecord) -> float | None:
        if (
            frame.decoupled
            and frame.workload.category is FrameCategory.PREDICTABLE_INTERACTION
        ):
            # IPL corrects the input to its anticipated state at the frame's
            # *display* time (§4.6) — the D-Timestamp plus the architecture's
            # content-to-display convention.
            display_time = frame.content_timestamp + (
                self.config.pipeline_depth_periods * self.hw_vsync.period
            )
            samples = self._observe_input(self.sim.now)
            value = self.ipl.predict(samples, display_time)
            frame.input_predicted = value is not None
            return value
        return super()._content_value_for(frame)

    # ------------------------------------------------------------- finalize
    def _finalize_result(self, result: RunResult) -> None:
        """Attach D-VSync component statistics to a finished run.

        Called by the inherited :meth:`SchedulerBase.run` — this scheduler
        does not override ``run`` (the unified contract).
        """
        result.extra.update(
            {
                "fpe_triggers_accumulation": self.fpe.triggers_in_accumulation,
                "fpe_triggers_sync": self.fpe.triggers_in_sync,
                "prerender_limit": self.fpe.prerender_limit,
                "dtv_predictions": self.dtv.predictions_made,
                "dtv_calibrations": self.dtv.calibrations,
                "dtv_skipped_periods": self.dtv.skipped_periods,
                "dtv_mean_abs_pacing_error_ns": self.dtv.mean_abs_pacing_error_ns(),
                "ipl_predictions": self.ipl.predictions,
                "ipl_fallbacks": self.ipl.fallbacks,
                "ipl_overhead_ns": self.ipl.total_overhead_ns,
                "routed_dvsync": self.controller.routed_dvsync,
                "routed_vsync": self.controller.routed_vsync,
            }
        )
        if self.watchdog is not None:
            result.extra["watchdog"] = self.watchdog.summary(self.sim.now)
