"""D-VSync core: the paper's primary contribution.

Exports the decoupled scheduler and its components: Frame Pre-Executor,
Display Time Virtualizer, runtime controller, dual-channel APIs, Input
Prediction Layer, and the LTPO co-design bridge.
"""

from repro.core.api import Arch, DecouplingAPI, SimConfig
from repro.core.config import DVSyncConfig
from repro.core.controller import RuntimeController, TimingMode
from repro.core.dtv import DisplayPrediction, DisplayTimeVirtualizer
from repro.core.dvsync import DVSyncScheduler
from repro.core.fpe import FPEStage, FramePreExecutor
from repro.core.ipl import (
    AlphaBetaPredictor,
    InputPredictionLayer,
    InputPredictor,
    LastValuePredictor,
    LinearPredictor,
    QuadraticPredictor,
    ZoomingDistancePredictor,
)
from repro.core.ltpo_codesign import LTPOCoDesign

__all__ = [
    "Arch",
    "DecouplingAPI",
    "SimConfig",
    "DVSyncConfig",
    "RuntimeController",
    "TimingMode",
    "DisplayPrediction",
    "DisplayTimeVirtualizer",
    "DVSyncScheduler",
    "FPEStage",
    "FramePreExecutor",
    "AlphaBetaPredictor",
    "InputPredictionLayer",
    "InputPredictor",
    "LastValuePredictor",
    "LinearPredictor",
    "QuadraticPredictor",
    "ZoomingDistancePredictor",
    "LTPOCoDesign",
]
