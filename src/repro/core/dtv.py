"""Display Time Virtualizer (DTV, §4.4).

DTV answers one question for every frame the FPE triggers: *when will this
frame actually reach the screen?* It models the deterministic behaviour of
the rendering system — the HAL consumes the queue in FIFO order once per
VSync period, the queue occupancy and the period are always known — and
predicts the frame's present time. The frame then renders its content against
the **D-Timestamp**: the present prediction back-dated by the architecture's
steady pipeline depth, so apps keep the exact content-time convention they
had under VSync (a frame's content always represents "present minus two
periods"). Animations sampled at D-Timestamps therefore pace uniformly no
matter how far ahead the frame was rendered.

The model is calibrated against real present fences every frame to avoid
error accumulation, and skips VSync periods after residual frame drops
(elasticity, §5.1).
"""

from __future__ import annotations

import dataclasses

from repro.display.hal import PresentRecord
from repro.display.vsync import HWVsyncSource
from repro.graphics.bufferqueue import BufferQueue
from repro.pipeline.stages import RenderPipeline


@dataclasses.dataclass(frozen=True)
class DisplayPrediction:
    """DTV's output for one triggered frame."""

    d_timestamp: int
    predicted_present: int


class DisplayTimeVirtualizer:
    """Predicts per-frame display times and calibrates against present fences."""

    # EWMA smoothing for the execution-time estimate used to pick the first
    # reachable latch tick.
    _EWMA_ALPHA = 0.25

    def __init__(
        self,
        source: HWVsyncSource,
        buffer_queue: BufferQueue,
        pipeline: RenderPipeline,
        pipeline_depth_periods: int = 2,
    ) -> None:
        self.source = source
        self.buffer_queue = buffer_queue
        self.pipeline = pipeline
        self.pipeline_depth_periods = pipeline_depth_periods
        self._exec_estimate_ns = source.period // 2
        self._last_committed_present: int | None = None
        # Calibration may move the committed slot backward (a frame displayed
        # earlier than predicted), but issued content time must never run
        # backward — an animation that jumps back is exactly the "chaotic
        # content" failure §7 warns about. Instead of jumping, the issued
        # D-Timestamp slews: it advances by at least a quarter period per
        # frame until the model converges.
        self._last_issued_d_ts: int | None = None
        self._pending: dict[int, int] = {}  # frame_id -> predicted present
        self.pacing_errors_ns: list[int] = []
        self.calibrations = 0
        self.skipped_periods = 0
        self.predictions_made = 0
        # Observability seam: fires on every committed prediction. The
        # invariant checker registers here; the list stays empty otherwise.
        self.on_commit: list = []

    @property
    def exec_estimate_ns(self) -> int:
        """Current EWMA estimate of trigger-to-queue execution time."""
        return self._exec_estimate_ns

    def preview(self, now: int) -> DisplayPrediction:
        """Predict display timing for a frame triggered at *now* (no commit).

        The prediction walks the deterministic consumption model: the frame's
        buffer joins the FIFO behind every currently undisplayed frame, the
        HAL latches one buffer per tick, and the content becomes visible one
        period after its latch.
        """
        period = self.source.period
        next_tick = self.source.next_tick_time()
        if next_tick <= now:
            next_tick += period
        ready = now + self._exec_estimate_ns
        first_latch = next_tick
        while first_latch <= ready:
            first_latch += period
        occupancy = self.buffer_queue.queued_depth + self.pipeline.frames_in_flight
        predicted_latch = first_latch + occupancy * period
        predicted_present = predicted_latch + period
        if self._last_committed_present is not None:
            predicted_present = max(
                predicted_present, self._last_committed_present + period
            )
        d_timestamp = predicted_present - self.pipeline_depth_periods * period
        if self._last_issued_d_ts is not None:
            d_timestamp = max(d_timestamp, self._last_issued_d_ts + period // 4)
        return DisplayPrediction(d_timestamp=d_timestamp, predicted_present=predicted_present)

    @property
    def pending_frame_ids(self) -> tuple[int, ...]:
        """Frames tracked for calibration whose present fence has not landed."""
        return tuple(self._pending)

    def commit(self, prediction: DisplayPrediction) -> None:
        """Reserve the predicted slot so later frames pace behind it."""
        self._last_committed_present = prediction.predicted_present
        self._last_issued_d_ts = prediction.d_timestamp
        self.predictions_made += 1
        for hook in self.on_commit:
            hook(prediction)

    def predict(self, now: int) -> DisplayPrediction:
        """Preview and immediately commit (convenience for simple callers)."""
        prediction = self.preview(now)
        self.commit(prediction)
        return prediction

    def track(self, frame_id: int, prediction: DisplayPrediction) -> None:
        """Remember a prediction so the matching present fence calibrates it."""
        self._pending[frame_id] = prediction.predicted_present

    def on_present(self, record: PresentRecord) -> None:
        """Calibrate the model with an actual present fence.

        A positive error means the frame displayed later than predicted
        (a residual drop pushed it back); the model shifts its committed slot
        forward so future D-Timestamps skip the lost periods.
        """
        predicted = self._pending.pop(record.frame_id, None)
        if predicted is None:
            return
        error = record.present_time - predicted
        self.pacing_errors_ns.append(error)
        if error != 0:
            self.calibrations += 1
            if self._last_committed_present is not None:
                self._last_committed_present += error
            if error > 0:
                self.skipped_periods += round(error / record.refresh_period)

    def observe_execution(self, execution_ns: int) -> None:
        """Fold a completed frame's execution time into the EWMA estimate."""
        if execution_ns <= 0:
            return
        self._exec_estimate_ns = round(
            (1 - self._EWMA_ALPHA) * self._exec_estimate_ns + self._EWMA_ALPHA * execution_ns
        )

    def on_rate_change(self, old_period: int, new_period: int) -> None:
        """Re-anchor the model when LTPO switches the refresh rate.

        Committed slots are absolute times and remain valid; future
        predictions pick up the new period from the VSync source. The
        monotonic floor is reset so the first post-switch frame aligns to the
        new tick grid rather than the old ``last + old_period`` spacing.
        """
        del old_period, new_period
        self._last_committed_present = None

    def mean_abs_pacing_error_ns(self) -> float:
        """Mean |present - predicted| across calibrated frames."""
        if not self.pacing_errors_ns:
            return 0.0
        return sum(abs(e) for e in self.pacing_errors_ns) / len(self.pacing_errors_ns)
