"""Input Prediction Layer (IPL, §4.6).

When a fingertip is physically on the screen, D-VSync may render a frame
several VSync periods before it displays — but the input samples covering the
gap between rendering and displaying do not exist yet. The IPL closes that
gap by fitting a curve to the observed input stream and extrapolating to the
D-Timestamp. Apps register scenario-specific heuristics: the map case study
registers a linear fit of pinch distance (the Zooming Distance Predictor,
§6.5).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import PredictionError
from repro.units import NSEC_PER_SEC, us

InputSample = tuple[int, float]
"""(timestamp_ns, value) observed from the input stream."""


class InputPredictor(abc.ABC):
    """Extrapolates the input value to a future target time.

    ``overhead_ns`` is the per-frame execution cost the predictor adds on the
    app side; the map app's ZDP measures 151.6 µs per frame (§6.5).
    """

    name = "predictor"
    overhead_ns = 0

    @abc.abstractmethod
    def predict(self, samples: list[InputSample], target_time: int) -> float:
        """Return the anticipated input value at *target_time* (ns)."""

    def _require_samples(self, samples: list[InputSample], minimum: int) -> None:
        if len(samples) < minimum:
            raise PredictionError(
                f"{self.name} needs at least {minimum} input samples, got {len(samples)}"
            )


class LastValuePredictor(InputPredictor):
    """No prediction: hold the most recent sample (the IPL-off behaviour)."""

    name = "last-value"

    def predict(self, samples: list[InputSample], target_time: int) -> float:
        self._require_samples(samples, 1)
        return samples[-1][1]


class LinearPredictor(InputPredictor):
    """Least-squares line over a trailing window of samples.

    The paper notes that "simple heuristic curves can fit the input patterns
    with very smooth user experience" — a linear fit over the last few samples
    captures steady swipes and pinches.
    """

    name = "linear"
    overhead_ns = us(40)

    def __init__(self, window: int = 6) -> None:
        if window < 2:
            raise PredictionError("linear fitting needs a window of at least 2 samples")
        self.window = window

    def predict(self, samples: list[InputSample], target_time: int) -> float:
        self._require_samples(samples, 2)
        recent = samples[-self.window :]
        # Work in seconds relative to the window start for conditioning.
        t0 = recent[0][0]
        times = np.array([(t - t0) / NSEC_PER_SEC for t, _ in recent])
        values = np.array([v for _, v in recent])
        slope, intercept = np.polyfit(times, values, 1)
        target = (target_time - t0) / NSEC_PER_SEC
        return float(slope * target + intercept)


class QuadraticPredictor(InputPredictor):
    """Least-squares parabola, for decelerating gestures (fling tails)."""

    name = "quadratic"
    overhead_ns = us(70)

    def __init__(self, window: int = 8) -> None:
        if window < 3:
            raise PredictionError("quadratic fitting needs a window of at least 3 samples")
        self.window = window

    def predict(self, samples: list[InputSample], target_time: int) -> float:
        self._require_samples(samples, 3)
        recent = samples[-self.window :]
        t0 = recent[0][0]
        times = np.array([(t - t0) / NSEC_PER_SEC for t, _ in recent])
        values = np.array([v for _, v in recent])
        coeffs = np.polyfit(times, values, 2)
        target = (target_time - t0) / NSEC_PER_SEC
        return float(np.polyval(coeffs, target))


class AlphaBetaPredictor(InputPredictor):
    """Alpha-beta (g-h) filter: a constant-velocity Kalman special case.

    Tracks position and velocity recursively over the whole sample stream,
    then extrapolates to the target time. More robust to digitizer noise
    than a raw least-squares window, at the same O(n) cost — the kind of
    predictor the paper's related work (Outatime, VR motion prediction)
    suggests plugging into the IPL.
    """

    name = "alpha-beta"
    overhead_ns = us(55)

    def __init__(self, alpha: float = 0.85, beta: float = 0.3) -> None:
        if not 0 < alpha <= 1 or not 0 < beta <= 2:
            raise PredictionError("alpha must be in (0,1], beta in (0,2]")
        self.alpha = alpha
        self.beta = beta

    def predict(self, samples: list[InputSample], target_time: int) -> float:
        self._require_samples(samples, 2)
        position = samples[0][1]
        velocity = 0.0
        last_time = samples[0][0]
        for time, observed in samples[1:]:
            dt = (time - last_time) / NSEC_PER_SEC
            if dt <= 0:
                continue
            predicted = position + velocity * dt
            residual = observed - predicted
            position = predicted + self.alpha * residual
            velocity = velocity + self.beta * residual / dt
            last_time = time
        horizon = (target_time - last_time) / NSEC_PER_SEC
        return position + velocity * horizon


class ZoomingDistancePredictor(LinearPredictor):
    """The map case study's ZDP (§6.5): linear fit of the pinch distance.

    Identical in mechanism to :class:`LinearPredictor`; carries the measured
    per-frame overhead from the paper so the cost experiments reproduce
    Fig 16's right panel.
    """

    name = "zdp"
    overhead_ns = us(151.6)


class InputPredictionLayer:
    """Runtime host for the registered input predictor.

    Tracks how many predictions were served and the cumulative app-side
    overhead; the D-VSync scheduler consults it for every
    PREDICTABLE_INTERACTION frame when IPL is enabled.
    """

    def __init__(self, predictor: InputPredictor | None = None) -> None:
        self.predictor = predictor if predictor is not None else LinearPredictor()
        self.predictions = 0
        self.fallbacks = 0
        self.total_overhead_ns = 0

    def register(self, predictor: InputPredictor) -> None:
        """Install an app-provided heuristic curve (aware-channel API)."""
        self.predictor = predictor

    def predict(self, samples: list[InputSample], target_time: int) -> float | None:
        """Predict the input value at *target_time*; None if impossible.

        Falls back to the last observed sample when the curve cannot be
        fitted (too few samples at gesture start).
        """
        if not samples:
            return None
        try:
            value = self.predictor.predict(samples, target_time)
            self.predictions += 1
            self.total_overhead_ns += self.predictor.overhead_ns
            return value
        except PredictionError:
            self.fallbacks += 1
            return samples[-1][1]
