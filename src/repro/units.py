"""Time units and conversions used across the simulator.

All simulation timestamps and durations are **integer nanoseconds**. Integer
time keeps the discrete-event queue exactly ordered and reproducible: two
events scheduled for the same VSync edge compare equal instead of differing by
float rounding. The helpers here are the only sanctioned way to build
durations, so call sites read in the paper's own units (``ms(16.7)``,
``us(102.6)``).
"""

from __future__ import annotations

NSEC_PER_USEC = 1_000
NSEC_PER_MSEC = 1_000_000
NSEC_PER_SEC = 1_000_000_000


def ns(value: float) -> int:
    """Return *value* nanoseconds as an integer duration."""
    return round(value)


def us(value: float) -> int:
    """Return *value* microseconds as an integer nanosecond duration."""
    return round(value * NSEC_PER_USEC)


def ms(value: float) -> int:
    """Return *value* milliseconds as an integer nanosecond duration."""
    return round(value * NSEC_PER_MSEC)


def seconds(value: float) -> int:
    """Return *value* seconds as an integer nanosecond duration."""
    return round(value * NSEC_PER_SEC)


def to_us(duration_ns: int) -> float:
    """Convert a nanosecond duration to microseconds (float)."""
    return duration_ns / NSEC_PER_USEC


def to_ms(duration_ns: int) -> float:
    """Convert a nanosecond duration to milliseconds (float)."""
    return duration_ns / NSEC_PER_MSEC


def to_seconds(duration_ns: int) -> float:
    """Convert a nanosecond duration to seconds (float)."""
    return duration_ns / NSEC_PER_SEC


def hz_to_period(refresh_hz: float) -> int:
    """Return the VSync period in nanoseconds for a refresh rate in Hz.

    ``hz_to_period(60)`` is 16,666,667 ns, matching the 16.7 ms figure the
    paper quotes for a 60 Hz panel.
    """
    if refresh_hz <= 0:
        raise ValueError(f"refresh rate must be positive, got {refresh_hz}")
    return round(NSEC_PER_SEC / refresh_hz)


def period_to_hz(period_ns: int) -> float:
    """Return the refresh rate in Hz for a VSync period in nanoseconds."""
    if period_ns <= 0:
        raise ValueError(f"period must be positive, got {period_ns}")
    return NSEC_PER_SEC / period_ns
