"""Test helpers, public so downstream projects can reuse them.

Small factories for seeded drivers and one-call scheduler runs, used heavily
by this repository's own test suite.
"""

from __future__ import annotations

from repro.core.config import DVSyncConfig
from repro.core.dvsync import DVSyncScheduler
from repro.display.device import PIXEL_5, DeviceProfile
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.faults.watchdog import DegradationWatchdog, WatchdogThresholds
from repro.pipeline.scheduler_base import RunResult
from repro.units import ms
from repro.vsync.scheduler import VSyncScheduler
from repro.workloads.distributions import FrameTimeParams
from repro.workloads.drivers import AnimationDriver


def make_animation(
    params: FrameTimeParams,
    name: str = "test-anim",
    duration_ms: float = 500.0,
    bursts: int = 1,
    burst_period_ms: float | None = None,
) -> AnimationDriver:
    """Build a small seeded animation driver for scheduler tests."""
    return AnimationDriver(
        name,
        params,
        duration_ns=ms(duration_ms),
        bursts=bursts,
        burst_period_ns=ms(burst_period_ms) if burst_period_ms else None,
    )


def run_vsync(
    driver, device: DeviceProfile = PIXEL_5, buffer_count: int = 3
) -> RunResult:
    """Run a driver to completion under the baseline VSync scheduler."""
    return VSyncScheduler(driver, device, buffer_count=buffer_count).run()


def run_dvsync(
    driver,
    device: DeviceProfile = PIXEL_5,
    config: DVSyncConfig | None = None,
) -> RunResult:
    """Run a driver to completion under the D-VSync scheduler."""
    return DVSyncScheduler(driver, device, config or DVSyncConfig(buffer_count=4)).run()


def light_params(refresh_hz: int = 60) -> FrameTimeParams:
    """A workload with no key frames (never drops at full rate)."""
    return FrameTimeParams(refresh_hz=refresh_hz, key_prob=0.0)


def run_dvsync_faulted(
    driver,
    schedule: FaultSchedule,
    seed: int = 0,
    device: DeviceProfile = PIXEL_5,
    config: DVSyncConfig | None = None,
    thresholds: WatchdogThresholds | None = None,
) -> RunResult:
    """Run a driver under D-VSync with faults injected and the watchdog armed."""
    scheduler = DVSyncScheduler(driver, device, config or DVSyncConfig(buffer_count=4))
    FaultInjector(schedule, seed=seed).attach(scheduler)
    scheduler.attach_watchdog(DegradationWatchdog(thresholds))
    return scheduler.run()


def run_vsync_faulted(
    driver,
    schedule: FaultSchedule,
    seed: int = 0,
    device: DeviceProfile = PIXEL_5,
    buffer_count: int = 3,
) -> RunResult:
    """Run a driver under baseline VSync with faults injected."""
    scheduler = VSyncScheduler(driver, device, buffer_count=buffer_count)
    FaultInjector(schedule, seed=seed).attach(scheduler)
    return scheduler.run()
