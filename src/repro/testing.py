"""Test helpers, public so downstream projects can reuse them.

Small factories for seeded drivers and one-call scheduler runs, used heavily
by this repository's own test suite.
"""

from __future__ import annotations

from repro.core.config import DVSyncConfig
from repro.core.dvsync import DVSyncScheduler
from repro.display.device import PIXEL_5, DeviceProfile
from repro.pipeline.scheduler_base import RunResult
from repro.units import ms
from repro.vsync.scheduler import VSyncScheduler
from repro.workloads.distributions import FrameTimeParams
from repro.workloads.drivers import AnimationDriver


def make_animation(
    params: FrameTimeParams,
    name: str = "test-anim",
    duration_ms: float = 500.0,
    bursts: int = 1,
    burst_period_ms: float | None = None,
) -> AnimationDriver:
    """Build a small seeded animation driver for scheduler tests."""
    return AnimationDriver(
        name,
        params,
        duration_ns=ms(duration_ms),
        bursts=bursts,
        burst_period_ns=ms(burst_period_ms) if burst_period_ms else None,
    )


def run_vsync(
    driver, device: DeviceProfile = PIXEL_5, buffer_count: int = 3
) -> RunResult:
    """Run a driver to completion under the baseline VSync scheduler."""
    return VSyncScheduler(driver, device, buffer_count=buffer_count).run()


def run_dvsync(
    driver,
    device: DeviceProfile = PIXEL_5,
    config: DVSyncConfig | None = None,
) -> RunResult:
    """Run a driver to completion under the D-VSync scheduler."""
    return DVSyncScheduler(driver, device, config or DVSyncConfig(buffer_count=4)).run()


def light_params(refresh_hz: int = 60) -> FrameTimeParams:
    """A workload with no key frames (never drops at full rate)."""
    return FrameTimeParams(refresh_hz=refresh_hz, key_prob=0.0)
