"""Device profiles for the evaluation platforms (paper Table 1).

A :class:`DeviceProfile` captures everything the simulator needs to stand in
for a physical phone: panel geometry, refresh rate, graphics backend, and the
default buffer-queue capacity of its OS rendering service (triple buffering on
Android/iOS, four buffers on OpenHarmony, per §2).
"""

from __future__ import annotations

import dataclasses
import enum

from repro.errors import ConfigurationError
from repro.units import hz_to_period


class GraphicsBackend(enum.Enum):
    """GPU API backend used by the rendering service."""

    GLES = "GLES"
    VULKAN = "Vulkan"


class OperatingSystem(enum.Enum):
    """Smartphone OS families covered by the evaluation."""

    AOSP = "AOSP 13"
    OPENHARMONY = "OpenHarmony 4.0"


@dataclasses.dataclass(frozen=True)
class DeviceProfile:
    """Static configuration of an evaluation device (Table 1).

    Attributes:
        name: Marketing name, e.g. ``"Mate 60 Pro"``.
        release: Human-readable release date.
        os: Operating system family.
        backend: Graphics backend the rendering service uses.
        width / height: Panel resolution in pixels.
        refresh_hz: Panel refresh rate in Hz.
        default_buffer_count: Buffer-queue capacity of the stock (VSync)
            rendering service on this device.
        bytes_per_pixel: Frame-buffer pixel size; 4 for RGBA8888 (§6.4).
    """

    name: str
    release: str
    os: OperatingSystem
    backend: GraphicsBackend
    width: int
    height: int
    refresh_hz: int
    default_buffer_count: int = 3
    bytes_per_pixel: int = 4

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ConfigurationError(f"invalid panel geometry {self.width}x{self.height}")
        if self.refresh_hz <= 0:
            raise ConfigurationError(f"invalid refresh rate {self.refresh_hz}")
        if self.default_buffer_count < 2:
            raise ConfigurationError("a swap chain needs at least 2 buffers")

    @property
    def vsync_period(self) -> int:
        """VSync period in nanoseconds (16.7 ms at 60 Hz, 8.3 ms at 120 Hz)."""
        return hz_to_period(self.refresh_hz)

    @property
    def pixels_per_second(self) -> int:
        """Pixels the rendering service must produce per second (Fig 3 metric)."""
        return self.width * self.height * self.refresh_hz

    @property
    def framebuffer_bytes(self) -> int:
        """Size of one full-screen frame buffer in bytes (§6.4 memory model)."""
        return self.width * self.height * self.bytes_per_pixel

    def with_backend(self, backend: GraphicsBackend) -> "DeviceProfile":
        """Return a copy of this profile using a different graphics backend."""
        return dataclasses.replace(self, backend=backend)

    def at_refresh(self, refresh_hz: int) -> "DeviceProfile":
        """Return a copy of this profile running at a different refresh rate.

        Games commonly render below the panel's maximum (Fig 14 labels each
        game with its rate); LTPO experiments also rebase profiles this way.
        """
        return dataclasses.replace(self, refresh_hz=refresh_hz)


PIXEL_5 = DeviceProfile(
    name="Google Pixel 5",
    release="Oct 2020",
    os=OperatingSystem.AOSP,
    backend=GraphicsBackend.GLES,
    width=1080,
    height=2340,
    refresh_hz=60,
    default_buffer_count=3,
)

MATE_40_PRO = DeviceProfile(
    name="Mate 40 Pro",
    release="Nov 2020",
    os=OperatingSystem.OPENHARMONY,
    backend=GraphicsBackend.GLES,
    width=1344,
    height=2772,
    refresh_hz=90,
    default_buffer_count=4,
)

MATE_60_PRO = DeviceProfile(
    name="Mate 60 Pro",
    release="Aug 2023",
    os=OperatingSystem.OPENHARMONY,
    backend=GraphicsBackend.GLES,
    width=1260,
    height=2720,
    refresh_hz=120,
    default_buffer_count=4,
)

MATE_60_PRO_VULKAN = MATE_60_PRO.with_backend(GraphicsBackend.VULKAN)

ALL_DEVICES: tuple[DeviceProfile, ...] = (
    PIXEL_5,
    MATE_40_PRO,
    MATE_60_PRO,
    MATE_60_PRO_VULKAN,
)


def device_by_name(name: str) -> DeviceProfile:
    """Look up a predefined device profile by (case-insensitive) name."""
    for device in ALL_DEVICES:
        if device.name.lower() == name.lower():
            return device
    known = ", ".join(d.name for d in ALL_DEVICES)
    raise ConfigurationError(f"unknown device {name!r}; known devices: {known}")
