"""LTPO variable-refresh-rate model (§5.3).

LTPO panels lower the refresh rate when on-screen motion is slow enough that
human eyes cannot perceive the difference, saving power. State-of-the-art
policies (ProMotion, X-True, O-Sync) track the animation's velocity: a fling
may start at 120 Hz, drop to 90 Hz as the list decelerates, and settle at
60 Hz. :class:`LTPOController` implements that velocity-tiered policy on top
of :class:`repro.display.vsync.HWVsyncSource`.

The interplay with D-VSync — frames rendered at X Hz must not be displayed at
Y Hz — lives in :mod:`repro.core.ltpo_codesign`, which gates the rate switch
on the accumulated buffers draining.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.errors import ConfigurationError
from repro.display.vsync import HWVsyncSource
from repro.units import hz_to_period


@dataclasses.dataclass(frozen=True)
class RateTier:
    """One refresh-rate tier with its activation threshold.

    The tier is selected when the animation speed (panel heights per second,
    a resolution-independent velocity measure) is at least ``min_speed``.
    """

    refresh_hz: int
    min_speed: float


DEFAULT_TIERS: tuple[RateTier, ...] = (
    RateTier(refresh_hz=120, min_speed=1.0),
    RateTier(refresh_hz=90, min_speed=0.35),
    RateTier(refresh_hz=60, min_speed=0.05),
    RateTier(refresh_hz=30, min_speed=0.0),
)

RateChangeListener = Callable[[int, int], None]
"""Callback signature: (old_period_ns, new_period_ns)."""


class LTPOController:
    """Velocity-tiered refresh-rate governor for an LTPO panel.

    The controller observes the current animation speed (reported by the
    scenario driver each frame), picks the lowest tier whose threshold the
    speed still meets, and requests the corresponding period from the VSync
    source. A ``switch_gate`` hook lets the D-VSync co-design defer the actual
    hardware switch until accumulated buffers rendered at the old rate have
    been consumed.
    """

    def __init__(
        self,
        source: HWVsyncSource,
        tiers: tuple[RateTier, ...] = DEFAULT_TIERS,
        max_hz: int | None = None,
    ) -> None:
        if not tiers:
            raise ConfigurationError("LTPO needs at least one rate tier")
        ordered = sorted(tiers, key=lambda t: -t.refresh_hz)
        if max_hz is not None:
            ordered = [t for t in ordered if t.refresh_hz <= max_hz]
            if not ordered:
                raise ConfigurationError(f"no LTPO tier at or below {max_hz} Hz")
        self.source = source
        self.tiers = tuple(ordered)
        self.current_hz = self.tiers[0].refresh_hz
        self.switch_gate: Callable[[int], bool] | None = None
        self._listeners: list[RateChangeListener] = []
        self._pending_hz: int | None = None
        self.switch_log: list[tuple[int, int, int]] = []  # (time, old_hz, new_hz)

    def add_rate_listener(self, listener: RateChangeListener) -> None:
        """Register a callback invoked when the panel period changes."""
        self._listeners.append(listener)

    def select_tier(self, speed: float) -> int:
        """Return the refresh rate (Hz) the policy picks for *speed*."""
        for tier in self.tiers:
            if speed >= tier.min_speed:
                return tier.refresh_hz
        return self.tiers[-1].refresh_hz

    def observe_speed(self, speed: float) -> None:
        """Feed the current animation speed; may request a rate switch."""
        target_hz = self.select_tier(speed)
        if target_hz != self.current_hz:
            self._pending_hz = target_hz
        self._try_apply_pending()

    def notify_buffers_drained(self) -> None:
        """Re-check a deferred switch once accumulated buffers are consumed."""
        self._try_apply_pending()

    def _try_apply_pending(self) -> None:
        if self._pending_hz is None:
            return
        target_hz = self._pending_hz
        if self.switch_gate is not None and not self.switch_gate(target_hz):
            return  # co-design defers the switch until old-rate frames drain
        old_hz = self.current_hz
        old_period = hz_to_period(old_hz)
        new_period = hz_to_period(target_hz)
        self.source.request_period(new_period)
        self.current_hz = target_hz
        self._pending_hz = None
        self.switch_log.append((self.source.sim.now, old_hz, target_hz))
        for listener in list(self._listeners):
            listener(old_period, new_period)
