"""Flagship-display dataset behind Figure 3.

The paper plots the number of pixels the rendering architecture must produce
per second (height x width x refresh rate) for flagship phones from 2010 to
2024, showing an ~25x increase since Project Butter introduced the VSync
architecture. This module carries a representative dataset of the same phone
lines and reproduces the series and the headline growth factor.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class FlagshipRecord:
    """One phone model's display demand data point."""

    line: str
    model: str
    year: int
    width: int
    height: int
    refresh_hz: int

    @property
    def pixels_per_second(self) -> int:
        """Figure 3's y-axis: pixels the OS must render per second."""
        return self.width * self.height * self.refresh_hz


# Public display specifications of the phone lines shown in Figure 3's legend.
FLAGSHIP_DATASET: tuple[FlagshipRecord, ...] = (
    FlagshipRecord("iPhone", "iPhone 4", 2010, 640, 960, 60),
    FlagshipRecord("Galaxy S", "Galaxy S", 2010, 480, 800, 60),
    FlagshipRecord("Galaxy S", "Galaxy S II", 2011, 480, 800, 60),
    FlagshipRecord("iPhone", "iPhone 5", 2012, 640, 1136, 60),
    FlagshipRecord("Galaxy S", "Galaxy S III", 2012, 720, 1280, 60),
    FlagshipRecord("iPhone Plus", "iPhone 6 Plus", 2014, 1080, 1920, 60),
    FlagshipRecord("Galaxy S", "Galaxy S5", 2014, 1080, 1920, 60),
    FlagshipRecord("Galaxy S", "Galaxy S6", 2015, 1440, 2560, 60),
    FlagshipRecord("Xiaomi", "Mi 5", 2016, 1080, 1920, 60),
    FlagshipRecord("Pixel", "Pixel", 2016, 1080, 1920, 60),
    FlagshipRecord("Mate Pro", "Mate 9 Pro", 2016, 1440, 2560, 60),
    FlagshipRecord("iPhone", "iPhone X", 2017, 1125, 2436, 60),
    FlagshipRecord("Oppo Find X", "Find X", 2018, 1080, 2340, 60),
    FlagshipRecord("Mate Pro", "Mate 20 Pro", 2018, 1440, 3120, 60),
    FlagshipRecord("ROG Phone", "ROG Phone II", 2019, 1080, 2340, 120),
    FlagshipRecord("Pixel", "Pixel 4 XL", 2019, 1440, 3040, 90),
    FlagshipRecord("Galaxy S Ultra", "Galaxy S20 Ultra", 2020, 1440, 3200, 120),
    FlagshipRecord("Mate Pro", "Mate 40 Pro", 2020, 1344, 2772, 90),
    FlagshipRecord("Pixel", "Pixel 5", 2020, 1080, 2340, 60),
    FlagshipRecord("Galaxy Z Fold", "Galaxy Z Fold 2", 2020, 1768, 2208, 120),
    FlagshipRecord("Oppo Find X Pro", "Find X3 Pro", 2021, 1440, 3216, 120),
    FlagshipRecord("iPhone Pro Max", "iPhone 13 Pro Max", 2021, 1284, 2778, 120),
    FlagshipRecord("Xiaomi Pro", "Xiaomi 12 Pro", 2022, 1440, 3200, 120),
    FlagshipRecord("Oppo Find N", "Find N2", 2022, 1792, 1920, 120),
    FlagshipRecord("ROG Phone", "ROG Phone 6", 2022, 1080, 2448, 165),
    FlagshipRecord("Mate X", "Mate X3", 2023, 2224, 2496, 120),
    FlagshipRecord("Mate Pro", "Mate 60 Pro", 2023, 1260, 2720, 120),
    FlagshipRecord("Pixel Fold", "Pixel Fold", 2023, 1840, 2208, 120),
    FlagshipRecord("Galaxy S Ultra", "Galaxy S24 Ultra", 2024, 1440, 3120, 120),
    FlagshipRecord("iPhone Pro Max", "iPhone 15 Pro Max", 2024, 1290, 2796, 120),
)


def pixels_per_second_series() -> list[tuple[int, str, int]]:
    """Return (year, model, pixels/s) rows sorted by year, as Fig 3 plots."""
    rows = [(r.year, r.model, r.pixels_per_second) for r in FLAGSHIP_DATASET]
    rows.sort()
    return rows


def growth_factor() -> float:
    """Ratio of the 2023+ maximum to the 2010 baseline (paper quotes ~25x)."""
    baseline = min(r.pixels_per_second for r in FLAGSHIP_DATASET if r.year == 2010)
    peak = max(r.pixels_per_second for r in FLAGSHIP_DATASET)
    return peak / baseline
