"""Display substrate: devices, VSync signal generation, HAL, and LTPO."""

from repro.display.device import (
    ALL_DEVICES,
    MATE_40_PRO,
    MATE_60_PRO,
    MATE_60_PRO_VULKAN,
    PIXEL_5,
    DeviceProfile,
    GraphicsBackend,
    OperatingSystem,
    device_by_name,
)
from repro.display.hal import PresentRecord, ScreenHAL
from repro.display.ltpo import DEFAULT_TIERS, LTPOController, RateTier
from repro.display.trend import FLAGSHIP_DATASET, FlagshipRecord, growth_factor, pixels_per_second_series
from repro.display.vsync import HWVsyncSource, VsyncChannel, VsyncOffsets

__all__ = [
    "ALL_DEVICES",
    "MATE_40_PRO",
    "MATE_60_PRO",
    "MATE_60_PRO_VULKAN",
    "PIXEL_5",
    "DeviceProfile",
    "GraphicsBackend",
    "OperatingSystem",
    "device_by_name",
    "PresentRecord",
    "ScreenHAL",
    "DEFAULT_TIERS",
    "LTPOController",
    "RateTier",
    "FLAGSHIP_DATASET",
    "FlagshipRecord",
    "growth_factor",
    "pixels_per_second_series",
    "HWVsyncSource",
    "VsyncChannel",
    "VsyncOffsets",
]
