"""Screen hardware-abstraction layer: present fences.

The HAL is the boundary the paper's latency script measures against: a frame's
*present fence* signals when its buffer actually reached the panel (§6.3).
:class:`ScreenHAL` records every present and fans the event out to listeners
(DTV calibration, metrics collectors, LTPO rate logic).
"""

from __future__ import annotations

import dataclasses
from typing import Callable

PresentListener = Callable[["PresentRecord"], None]


@dataclasses.dataclass(frozen=True)
class PresentRecord:
    """One buffer reaching the panel.

    Attributes:
        frame_id: Producer-assigned frame identifier.
        present_time: Present-fence timestamp (ns) — the HW-VSync edge at
            which the panel latched the buffer.
        vsync_index: Index of that HW-VSync tick.
        content_timestamp: The timestamp the frame's content represents
            (VSync-app tick under VSync; D-Timestamp under D-VSync).
        queue_depth_after: Buffers still waiting in the queue after the latch.
        refresh_period: Panel period (ns) in effect at this present.
    """

    frame_id: int
    present_time: int
    vsync_index: int
    content_timestamp: int
    queue_depth_after: int
    refresh_period: int


class ScreenHAL:
    """Collects present fences and notifies interested components."""

    def __init__(self) -> None:
        self.presents: list[PresentRecord] = []
        self._listeners: list[PresentListener] = []

    def add_listener(self, listener: PresentListener) -> None:
        """Register a callback invoked on every present fence."""
        self._listeners.append(listener)

    def signal_present(self, record: PresentRecord) -> None:
        """Record a present fence and notify listeners."""
        self.presents.append(record)
        for listener in list(self._listeners):
            listener(record)

    @property
    def presented_count(self) -> int:
        """Total number of distinct buffers presented so far."""
        return len(self.presents)

    def last_present(self) -> PresentRecord | None:
        """The most recent present fence, or None before the first frame."""
        return self.presents[-1] if self.presents else None
