"""Screen hardware-abstraction layer: present fences.

The HAL is the boundary the paper's latency script measures against: a frame's
*present fence* signals when its buffer actually reached the panel (§6.3).
:class:`ScreenHAL` records every present and fans the event out to listeners
(DTV calibration, metrics collectors, LTPO rate logic).
"""

from __future__ import annotations

import dataclasses
from typing import Callable

PresentListener = Callable[["PresentRecord"], None]


@dataclasses.dataclass(frozen=True)
class PresentRecord:
    """One buffer reaching the panel.

    Attributes:
        frame_id: Producer-assigned frame identifier.
        present_time: Present-fence timestamp (ns) — the HW-VSync edge at
            which the panel latched the buffer.
        vsync_index: Index of that HW-VSync tick.
        content_timestamp: The timestamp the frame's content represents
            (VSync-app tick under VSync; D-Timestamp under D-VSync).
        queue_depth_after: Buffers still waiting in the queue after the latch.
        refresh_period: Panel period (ns) in effect at this present.
    """

    frame_id: int
    present_time: int
    vsync_index: int
    content_timestamp: int
    queue_depth_after: int
    refresh_period: int


@dataclasses.dataclass(frozen=True)
class ContainedException:
    """One listener exception caught and recorded by the HAL.

    Attributes:
        time: Present-fence timestamp (ns) of the record being dispatched.
        listener: Best-effort name of the raising listener.
        error: ``repr`` of the exception (the object itself is not retained so
            run results stay picklable/comparable).
    """

    time: int
    listener: str
    error: str


class ScreenHAL:
    """Collects present fences and notifies interested components.

    Listener dispatch is *contained*: one raising listener cannot prevent
    later listeners (DTV calibration, metrics collectors) from observing the
    present fence. Contained exceptions are never swallowed silently — each is
    recorded in :attr:`contained_errors` and fanned out to
    :attr:`on_contained` hooks, and schedulers surface the tally in
    ``RunResult.extra``.
    """

    def __init__(self) -> None:
        self.presents: list[PresentRecord] = []
        self._listeners: list[PresentListener] = []
        self.contained_errors: list[ContainedException] = []
        self.on_contained: list[Callable[[PresentRecord, Exception], None]] = []

    def add_listener(self, listener: PresentListener, prepend: bool = False) -> None:
        """Register a callback invoked on every present fence.

        ``prepend`` places the listener ahead of already-registered ones —
        used by crash-injection faults so containment of an early listener is
        actually exercised against the real consumers behind it.
        """
        if prepend:
            self._listeners.insert(0, listener)
        else:
            self._listeners.append(listener)

    def signal_present(self, record: PresentRecord) -> None:
        """Record a present fence and notify listeners (exceptions contained)."""
        self.presents.append(record)
        for listener in list(self._listeners):
            try:
                listener(record)
            except Exception as exc:
                name = getattr(listener, "__qualname__", None) or repr(listener)
                self.contained_errors.append(
                    ContainedException(
                        time=record.present_time, listener=name, error=repr(exc)
                    )
                )
                for hook in list(self.on_contained):
                    hook(record, exc)

    @property
    def presented_count(self) -> int:
        """Total number of distinct buffers presented so far."""
        return len(self.presents)

    def last_present(self) -> PresentRecord | None:
        """The most recent present fence, or None before the first frame."""
        return self.presents[-1] if self.presents else None
