"""Hardware VSync generation and software VSync channels.

The screen generates a hardware VSync (HW-VSync) before every panel refresh
(§2). The OS then derives *software* VSync signals — VSync-app for the app UI
thread, VSync-rs for the render service, VSync-sf for the compositor — at
fixed offsets from HW-VSync. Components do not receive every tick; like
Android's Choreographer they *request* the next callback when they have work,
which is what lets an idle app consume no rendering resources.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator

VsyncCallback = Callable[[int, int], None]
"""Callback signature: (timestamp_ns, vsync_index)."""


@dataclasses.dataclass(frozen=True)
class VsyncOffsets:
    """Phase offsets (ns) of the software VSync signals from HW-VSync.

    Real systems stagger the pipeline stages so each stage's output is ready
    exactly when the next stage wakes. Offsets here are *delays after* the
    HW-VSync edge, matching Android's positive phase-offset convention.
    """

    app_offset: int = 0
    rs_offset: int = 0
    sf_offset: int = 0

    def __post_init__(self) -> None:
        for label, value in (
            ("app_offset", self.app_offset),
            ("rs_offset", self.rs_offset),
            ("sf_offset", self.sf_offset),
        ):
            if value < 0:
                raise ConfigurationError(f"{label} must be non-negative, got {value}")


class HWVsyncSource:
    """Periodic hardware VSync generator bound to a simulator.

    Emits ticks every ``period`` nanoseconds once started. The period can be
    changed at runtime (LTPO variable refresh rates); a change takes effect at
    the *next* tick so that the current scanout is never torn, mirroring how
    real panels switch modes on frame boundaries.
    """

    def __init__(self, sim: Simulator, period: int) -> None:
        if period <= 0:
            raise ConfigurationError(f"vsync period must be positive, got {period}")
        self.sim = sim
        self._period = period
        self._pending_period: int | None = None
        self._listeners: list[VsyncCallback] = []
        self._index = -1
        self._running = False
        self._next_handle = None
        self.tick_times: list[int] = []
        # Fault-injection seams (repro.faults). ``tick_delay_hook`` maps the
        # nominal period to the actual delay before the next edge (oscillator
        # jitter); ``tick_drop_hook`` returns True to suppress delivery of an
        # edge entirely (the panel refreshes but the OS never sees the
        # signal). Both default to None: a clean panel.
        self.tick_delay_hook: Callable[[int], int] | None = None
        self.tick_drop_hook: Callable[[int, int], bool] | None = None
        self.dropped_ticks: list[int] = []

    @property
    def period(self) -> int:
        """Current VSync period in nanoseconds."""
        return self._period

    @property
    def index(self) -> int:
        """Index of the most recent tick (-1 before the first tick)."""
        return self._index

    @property
    def running(self) -> bool:
        """True while the source is emitting ticks."""
        return self._running

    def add_listener(self, callback: VsyncCallback) -> None:
        """Register a persistent listener invoked on every tick."""
        self._listeners.append(callback)

    def remove_listener(self, callback: VsyncCallback) -> None:
        """Unregister a persistent listener."""
        self._listeners.remove(callback)

    def start(self, first_tick_at: int | None = None) -> None:
        """Begin emitting ticks, the first at *first_tick_at* (default: now)."""
        if self._running:
            return
        self._running = True
        at = self.sim.now if first_tick_at is None else first_tick_at
        self._next_handle = self.sim.schedule_at(at, self._tick)

    def stop(self) -> None:
        """Stop emitting ticks; a pending tick is cancelled."""
        if not self._running:
            return
        self._running = False
        if self._next_handle is not None and self._next_handle.pending:
            self._next_handle.cancel()
        self._next_handle = None

    def request_period(self, period: int) -> None:
        """Request a refresh-rate change effective at the next tick (LTPO)."""
        if period <= 0:
            raise ConfigurationError(f"vsync period must be positive, got {period}")
        self._pending_period = period

    def next_tick_time(self) -> int:
        """Absolute time of the next tick (the first tick if not started)."""
        if self._next_handle is not None and self._next_handle.pending:
            return self._next_handle.time
        return self.sim.now

    def _tick(self) -> None:
        if not self._running:
            return
        self._index += 1
        now = self.sim.now
        if self._pending_period is not None:
            self._period = self._pending_period
            self._pending_period = None
        delay = self._period
        if self.tick_delay_hook is not None:
            delay = max(1, self.tick_delay_hook(self._period))
        self._next_handle = self.sim.schedule(delay, self._tick)
        if self.tick_drop_hook is not None and self.tick_drop_hook(now, self._index):
            self.dropped_ticks.append(now)
            return
        self.tick_times.append(now)
        # Iterate over a snapshot: listeners may add/remove listeners while
        # handling the tick.
        for callback in list(self._listeners):
            callback(now, self._index)


class VsyncChannel:
    """A software VSync line derived from HW-VSync at a fixed offset.

    Components *request* the next callback (one-shot), as with Android's
    ``Choreographer.postFrameCallback``. Multiple requests before the next
    tick coalesce into a single delivery per requester. A request that lands
    *before the current tick's offset window has passed* is served within
    this period — the property that lets an OpenHarmony render service pick
    up a UI record at this period's VSync-rs instead of waiting a full frame.
    """

    def __init__(self, source: HWVsyncSource, offset: int = 0, name: str = "vsync") -> None:
        if offset < 0:
            raise ConfigurationError(f"offset must be non-negative, got {offset}")
        self.source = source
        self.offset = offset
        self.name = name
        self._waiters: list[VsyncCallback] = []
        self._last_tick: tuple[int, int] | None = None  # (timestamp, index)
        source.add_listener(self._on_hw_vsync)

    @property
    def sim(self) -> Simulator:
        """The simulator this channel schedules on."""
        return self.source.sim

    def request_callback(self, callback: VsyncCallback) -> None:
        """Deliver *callback* at the next offset edge of this channel.

        Normally that is the next HW-VSync plus the offset; if this tick's
        offset edge is still in the future, the delivery happens there.
        """
        if self._last_tick is not None and self.offset > 0:
            tick_time, tick_index = self._last_tick
            edge = tick_time + self.offset
            if self.sim.now < edge:
                self.sim.schedule_at(edge, lambda: callback(tick_time, tick_index))
                return
        self._waiters.append(callback)

    @property
    def pending_requests(self) -> int:
        """Number of callbacks waiting for the next tick."""
        return len(self._waiters)

    def _on_hw_vsync(self, timestamp: int, index: int) -> None:
        self._last_tick = (timestamp, index)
        if not self._waiters:
            return
        waiters, self._waiters = self._waiters, []

        def deliver() -> None:
            for callback in waiters:
                callback(timestamp, index)

        if self.offset == 0:
            deliver()
        else:
            self.sim.schedule(self.offset, deliver)
