"""Declarative study engine: whole-matrix batching for experiments.

See :mod:`repro.study.core` for the model. Quick sketch::

    from repro.study import Study
    from repro.experiments.runner import scenario_spec

    study = Study("buffer-sweep", analyze=my_analysis)
    study.grid(
        lambda scenario, buffers, rep: scenario_spec(
            SCENARIOS[scenario], "dvsync", buffer_count=buffers, run=rep
        ),
        scenario=["genshin", "maps"],
        buffers=[3, 4, 5],
        rep=range(5),
    )
    result = study.run()          # one supervised batch for all 30 cells
"""

from repro.study.core import (
    Cell,
    CompositeStudy,
    Key,
    Study,
    StudyResult,
    StudyStats,
    cell_key,
    execute_studies,
)

__all__ = [
    "Cell",
    "CompositeStudy",
    "Key",
    "Study",
    "StudyResult",
    "StudyStats",
    "cell_key",
    "execute_studies",
]
