"""The declarative study engine: whole-matrix batching for experiments.

A :class:`Study` is a lazy grid of *cells*. Each cell is addressed by
coordinates (axis name → value: scenario × device × architecture × buffer
configuration × repetition — any axes the experiment needs) and carries
either a content-hashable :class:`~repro.exec.spec.RunSpec` (a *spec cell*,
executed through the supervised executor) or a thunk (a *live cell*, for
runs that attach in-memory objects — predictors, co-design bridges — the
spec layer cannot name; these execute in-process).

Executing a study — or a union of studies via :func:`execute_studies` —
submits **every spec cell as one supervised batch**: the whole matrix fans
out at full executor width, identical specs across cells (and across
studies) collapse by content hash and simulate exactly once, and the keyed
:class:`StudyResult` that comes back offers aggregation helpers: per-cell
selection, mean/sample-stdev over any slice, paired baseline-vs-improved
views, and per-cell failure holes under the ``keep-going`` policy.

This is the layer the ROADMAP's "as fast as the hardware allows" goal asks
of the evaluation suite: the paper's matrix (25 apps × buffer sweeps, 75 OS
cases, 15 games, Appendix A's five-run averaging) is declared once and
saturates the pool, instead of trickling out as serial two-arm mini-batches.
"""

from __future__ import annotations

import dataclasses
import itertools
import statistics
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import ConfigurationError, ExecutionError
from repro.exec.spec import RunSpec
from repro.exec.supervisor import RunFailure
from repro.telemetry import runtime as telemetry_runtime

#: A cell key: the coordinates as a sorted, hashable tuple of pairs.
Key = tuple[tuple[str, Any], ...]


def cell_key(coords: Mapping[str, Any]) -> Key:
    """Canonical hashable key for a coordinate mapping."""
    return tuple(sorted(coords.items()))


@dataclasses.dataclass
class Cell:
    """One grid point of a study: coordinates plus how to produce its value.

    Exactly one of ``spec`` (batched through the executor) and ``thunk``
    (called in-process at execution time) is set.
    """

    coords: dict[str, Any]
    spec: RunSpec | None = None
    thunk: Callable[[], Any] | None = None
    #: Load-shedding consent: a sheddable spec cell may be skipped (not
    #: executed, not a failure) when the executor runs under a shed policy.
    sheddable: bool = False

    def __post_init__(self) -> None:
        if (self.spec is None) == (self.thunk is None):
            raise ConfigurationError(
                "a cell carries exactly one of a RunSpec or a live thunk"
            )
        self.key: Key = cell_key(self.coords)

    def matches(self, coords: Mapping[str, Any]) -> bool:
        return all(self.coords.get(axis) == value for axis, value in coords.items())


@dataclasses.dataclass
class StudyStats:
    """What one execution (a single study or a union) submitted and got back."""

    studies: int = 0
    cells: int = 0
    spec_cells: int = 0
    live_cells: int = 0
    unique_specs: int = 0
    dedup_hits: int = 0
    holes: int = 0
    shed: int = 0

    def describe(self) -> str:
        line = (
            f"{self.studies} studies, {self.cells} cells "
            f"({self.spec_cells} batched, {self.live_cells} live): "
            f"{self.unique_specs} unique specs, {self.dedup_hits} collapsed "
            f"by content hash"
        )
        if self.holes:
            line += f", {self.holes} failure holes"
        if self.shed:
            line += f", {self.shed} shed"
        return line


class Study:
    """A named, lazy grid of cells with an attached analysis step.

    Args:
        name: Study label (observability, error messages).
        analyze: Optional callable mapping the executed :class:`StudyResult`
            to the experiment's artifact (usually an
            :class:`~repro.experiments.base.ExperimentResult`).
    """

    def __init__(
        self, name: str, analyze: Callable[["StudyResult"], Any] | None = None
    ) -> None:
        self.name = name
        self.analyze = analyze
        self.cells: list[Cell] = []
        self._keys: set[Key] = set()

    def __len__(self) -> int:
        return len(self.cells)

    def _add_cell(self, cell: Cell) -> None:
        if cell.key in self._keys:
            raise ConfigurationError(
                f"study {self.name!r}: duplicate cell {dict(cell.key)!r}"
            )
        self._keys.add(cell.key)
        self.cells.append(cell)

    def add(self, spec: RunSpec, *, sheddable: bool = False, **coords: Any) -> "Study":
        """Add one spec cell at the given coordinates.

        ``sheddable=True`` marks the cell as load-sheddable: when the
        executor runs under a shed policy (``Executor(shed=True)`` /
        ``repro --shed``), the cell is skipped instead of executed — its
        value stays ``None`` without counting as a failure hole. Use it for
        nice-to-have grid points (extra repetitions, wide sweeps' edges)
        that a resource-constrained run may drop.
        """
        self._add_cell(Cell(coords=coords, spec=spec, sheddable=sheddable))
        return self

    def add_live(self, thunk: Callable[[], Any], **coords: Any) -> "Study":
        """Add one live cell: *thunk* runs in-process at execution time."""
        self._add_cell(Cell(coords=coords, thunk=thunk))
        return self

    def grid(
        self,
        cell_for: Callable[..., RunSpec | Callable[[], Any] | None],
        **axes: Sequence[Any],
    ) -> "Study":
        """Expand the cartesian product of *axes* through *cell_for*.

        ``cell_for(**coords)`` returns a :class:`RunSpec` (spec cell), a
        zero-argument callable (live cell), or ``None`` to skip the point.
        Axes expand in keyword order, last axis fastest.
        """
        names = list(axes)
        for values in itertools.product(*(axes[name] for name in names)):
            coords = dict(zip(names, values))
            made = cell_for(**coords)
            if made is None:
                continue
            if isinstance(made, RunSpec):
                self.add(made, **coords)
            elif callable(made):
                self.add_live(made, **coords)
            else:
                raise ConfigurationError(
                    f"study {self.name!r}: grid cell at {coords!r} must be a "
                    f"RunSpec, a callable, or None; got {made!r}"
                )
        return self

    @property
    def specs(self) -> list[RunSpec]:
        """Every spec this study would submit (duplicates included)."""
        return [cell.spec for cell in self.cells if cell.spec is not None]

    def execute(self, executor=None) -> "StudyResult":
        """Run the whole matrix as one supervised executor batch."""
        [result], _stats = execute_studies([self], executor=executor)
        return result

    def run(self, executor=None) -> Any:
        """Execute, then hand the keyed result to the analysis step."""
        return self.execute(executor=executor).analyze()


class CompositeStudy(Study):
    """A study made of sub-studies, executed as one matrix.

    The parts' cells are flattened into the composite (each tagged with a
    ``study`` coordinate naming its part), so a union submission — and the
    executor's content-hash dedup across parts — covers all of them in a
    single batch. Analysis runs each part's own ``analyze`` over its slice
    of the results, then ``combine`` merges the per-part artifacts.
    """

    def __init__(
        self,
        name: str,
        parts: Sequence[Study],
        combine: Callable[[list[Any]], Any] | None = None,
    ) -> None:
        super().__init__(name, analyze=self._analyze_parts)
        self.parts = list(parts)
        self.combine = combine
        #: composite key -> (part index, the part's own cell)
        self._part_cells: dict[Key, tuple[int, Cell]] = {}
        for index, part in enumerate(self.parts):
            for cell in part.cells:
                coords = {**cell.coords, "study": f"{index}:{part.name}"}
                flat = Cell(
                    coords=coords,
                    spec=cell.spec,
                    thunk=cell.thunk,
                    sheddable=cell.sheddable,
                )
                self._add_cell(flat)
                self._part_cells[flat.key] = (index, cell)

    def part_results(self, result: "StudyResult") -> list["StudyResult"]:
        """Re-key the composite's executed cells into per-part results."""
        values: list[dict[Key, Any]] = [{} for _ in self.parts]
        failures: list[dict[Key, RunFailure]] = [{} for _ in self.parts]
        shed: list[set[Key]] = [set() for _ in self.parts]
        for cell in self.cells:
            index, part_cell = self._part_cells[cell.key]
            values[index][part_cell.key] = result.values.get(cell.key)
            failure = result.failures.get(cell.key)
            if failure is not None:
                failures[index][part_cell.key] = failure
            if cell.key in result.shed:
                shed[index].add(part_cell.key)
        return [
            StudyResult(
                part,
                values[index],
                failures[index],
                stats=result.stats,
                shed=shed[index],
            )
            for index, part in enumerate(self.parts)
        ]

    def _analyze_parts(self, result: "StudyResult") -> Any:
        """The composite's analysis: each part over its slice, then merge."""
        analyzed = [
            part_result.analyze()
            for part_result in self.part_results(result)
        ]
        if self.combine is None:
            return analyzed
        return self.combine(analyzed)


class StudyResult:
    """Keyed outcomes of one executed study.

    ``values[key]`` is the cell's value — a
    :class:`~repro.pipeline.scheduler_base.RunResult` for spec cells,
    whatever the thunk returned for live cells, or ``None`` for a *failure
    hole* (a spec that failed under the ``keep-going`` policy; the
    structured record is in ``failures[key]``). Cells skipped by load
    shedding also hold ``None`` but are tracked in ``shed`` — deliberately
    not executed, so never reported as failure holes.
    """

    def __init__(
        self,
        study: Study,
        values: dict[Key, Any],
        failures: dict[Key, RunFailure] | None = None,
        stats: StudyStats | None = None,
        shed: set[Key] | None = None,
    ) -> None:
        self.study = study
        self.values = values
        self.failures = failures or {}
        self.stats = stats or StudyStats()
        self.shed = shed or set()

    # ------------------------------------------------------------- selection
    def cells(self, **coords: Any) -> list[Cell]:
        """Cells matching the coordinate subset, in insertion order."""
        return [cell for cell in self.study.cells if cell.matches(coords)]

    def select(self, **coords: Any) -> list[Any]:
        """Matching cell values in insertion order (``None`` = failure hole)."""
        return [self.values.get(cell.key) for cell in self.cells(**coords)]

    def get(self, **coords: Any) -> Any:
        """The value of exactly one cell (raises unless the match is unique)."""
        matched = self.cells(**coords)
        if len(matched) != 1:
            raise ExecutionError(
                f"study {self.study.name!r}: {coords!r} matched "
                f"{len(matched)} cells, expected exactly 1"
            )
        return self.values.get(matched[0].key)

    def holes(self, **coords: Any) -> list[tuple[Cell, RunFailure | None]]:
        """Cells whose run failed, with their structured failure records.

        Shed cells are excluded: skipping was a policy decision, not a
        failure.
        """
        return [
            (cell, self.failures.get(cell.key))
            for cell in self.cells(**coords)
            if self.values.get(cell.key) is None
            and cell.spec is not None
            and cell.key not in self.shed
        ]

    # ----------------------------------------------------------- aggregation
    def mean_of(self, metric: Callable[[Any], float], **coords: Any) -> float:
        """Mean of ``metric(value)`` over the slice, skipping failure holes."""
        values = [metric(v) for v in self.select(**coords) if v is not None]
        return statistics.fmean(values) if values else 0.0

    def stats_of(
        self, metric: Callable[[Any], float], **coords: Any
    ) -> tuple[float, float]:
        """(mean, sample stdev) of ``metric(value)`` over the slice.

        The stdev is 0.0 with fewer than two surviving cells.
        """
        values = [metric(v) for v in self.select(**coords) if v is not None]
        if not values:
            return 0.0, 0.0
        mean = statistics.fmean(values)
        sd = statistics.stdev(values) if len(values) >= 2 else 0.0
        return mean, sd

    def pairs(
        self, baseline: Mapping[str, Any], improved: Mapping[str, Any], **coords: Any
    ) -> list[tuple[Any, Any]]:
        """Positionally paired (baseline, improved) values over the slice.

        Both selections are taken in insertion order within the common
        *coords* slice; a pair is dropped when **either** side is a failure
        hole, so paired aggregates (the VSync-vs-D-VSync deltas the paper
        averages) always compare identical workloads.
        """
        first = self.select(**{**coords, **baseline})
        second = self.select(**{**coords, **improved})
        if len(first) != len(second):
            raise ExecutionError(
                f"study {self.study.name!r}: paired slices differ in size "
                f"({len(first)} vs {len(second)}) for {baseline!r} vs "
                f"{improved!r} within {coords!r}"
            )
        return [
            (one, other)
            for one, other in zip(first, second)
            if one is not None and other is not None
        ]

    def analyze(self) -> Any:
        """Apply the study's analysis step to this result."""
        if self.study.analyze is None:
            raise ConfigurationError(
                f"study {self.study.name!r} has no analysis step attached"
            )
        return self.study.analyze(self)


def execute_studies(
    studies: Iterable[Study], executor=None
) -> tuple[list[StudyResult], StudyStats]:
    """Execute several studies' matrices as **one** supervised batch.

    Every spec cell of every study goes out in a single
    :meth:`~repro.exec.executor.Executor.map_outcome` submission — identical
    specs across cells and across studies (the same scenario/device/config
    appearing in several figures) collapse by content hash inside the
    executor and simulate exactly once. Live cells run in-process, study by
    study, after the batch returns. Per-spec failures follow the executor's
    policy: ``fail-fast`` raises
    :class:`~repro.errors.BatchExecutionError` after salvaging siblings;
    ``keep-going`` leaves keyed ``None`` holes with structured records.
    """
    from repro.exec.executor import get_default_executor

    studies = list(studies)
    if executor is None:
        executor = get_default_executor()

    flat_specs: list[RunSpec] = []
    owners: list[tuple[int, Cell]] = []  # aligned with flat_specs
    stats = StudyStats(studies=len(studies))
    shed_policy = bool(getattr(executor, "shed", False))
    shed_keys: list[set[Key]] = [set() for _ in studies]
    for index, study in enumerate(studies):
        for cell in study.cells:
            stats.cells += 1
            if cell.spec is not None:
                if shed_policy and cell.sheddable:
                    # Load shedding: the cell consented to being dropped
                    # under pressure — never submitted, never a failure.
                    stats.shed += 1
                    shed_keys[index].add(cell.key)
                    continue
                stats.spec_cells += 1
                flat_specs.append(cell.spec)
                owners.append((index, cell))
            else:
                stats.live_cells += 1
    if stats.shed:
        exec_stats = getattr(executor, "stats", None)
        if exec_stats is not None:
            exec_stats.shed += stats.shed
        if telemetry_runtime.enabled():
            telemetry_runtime.note_governor("shed", stats.shed)

    stats.unique_specs = len({spec.content_hash() for spec in flat_specs})
    stats.dedup_hits = len(flat_specs) - stats.unique_specs

    values: list[dict[Key, Any]] = [{} for _ in studies]
    failures: list[dict[Key, RunFailure]] = [{} for _ in studies]
    if flat_specs:
        outcome = executor.map_outcome(flat_specs)
        for position, (index, cell) in enumerate(owners):
            values[index][cell.key] = outcome.results[position]
            failure = outcome.index_failures.get(position)
            if failure is not None:
                failures[index][cell.key] = failure
                stats.holes += 1
        if outcome.failures and executor.policy == "fail-fast":
            _note_study_stats(stats)
            outcome.raise_for_failures()

    for index, study in enumerate(studies):
        for cell in study.cells:
            if cell.thunk is not None:
                values[index][cell.key] = cell.thunk()

    _note_study_stats(stats)
    return (
        [
            StudyResult(
                study,
                values[index],
                failures[index],
                stats=stats,
                shed=shed_keys[index],
            )
            for index, study in enumerate(studies)
        ],
        stats,
    )


def _note_study_stats(stats: StudyStats) -> None:
    if telemetry_runtime.enabled():
        telemetry_runtime.note_study("cells", stats.cells)
        telemetry_runtime.note_study("dedup_hits", stats.dedup_hits)
        telemetry_runtime.note_study("holes", stats.holes)
