"""``repro.simulate()``: one front door for running a workload.

The library grew three ways to run the same simulation — construct a
scheduler by hand, call :func:`repro.experiments.runner.run_driver` with a
live driver, or describe a :class:`~repro.exec.spec.RunSpec` and submit it
through the executor. :func:`simulate` folds them into a single call that
picks the right path from its arguments:

* a :class:`~repro.workloads.scenarios.Scenario` is declarative, so the run
  goes through the default executor and benefits from the result cache and
  any configured parallelism;
* a live :class:`~repro.pipeline.driver.ScenarioDriver` cannot be content-
  addressed, so it runs in-process directly.

Either way the result is the same normalized :class:`RunResult`, and
telemetry and verification obey the same tri-state contract as the scheduler
constructors:
``None`` defers to the process-wide switch, ``True``/``False`` force it, and
a :class:`~repro.telemetry.session.Telemetry` instance records into a session
the caller owns (driver path only — sessions cannot cross the spec wire).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.config import DVSyncConfig
from repro.errors import ConfigurationError
from repro.exec.spec import ARCHITECTURES
from repro.pipeline.driver import ScenarioDriver
from repro.pipeline.scheduler_base import RunResult
from repro.workloads.scenarios import Scenario

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.session import NullTelemetry, Telemetry
    from repro.verify.invariants import InvariantChecker


def _split_config(
    architecture: str, config: DVSyncConfig | int | None
) -> tuple[int | None, DVSyncConfig | None]:
    """Normalize *config* into (buffer_count, dvsync_config) for the runner."""
    if architecture not in ARCHITECTURES:
        raise ConfigurationError(
            f"unknown architecture {architecture!r}; "
            f"known: {', '.join(ARCHITECTURES)}"
        )
    if config is None:
        return None, None
    if isinstance(config, DVSyncConfig):
        if architecture != "dvsync":
            raise ConfigurationError(
                "a DVSyncConfig only applies to architecture='dvsync'; "
                "pass an int buffer count for the vsync baseline"
            )
        return None, config
    if isinstance(config, int) and not isinstance(config, bool):
        if architecture == "dvsync":
            return None, DVSyncConfig(buffer_count=config)
        return config, None
    raise ConfigurationError(
        f"config must be a DVSyncConfig, an int buffer count, or None; "
        f"got {config!r}"
    )


def simulate(
    scenario: Scenario | ScenarioDriver,
    device,
    *,
    architecture: str = "dvsync",
    config: DVSyncConfig | int | None = None,
    telemetry: "bool | Telemetry | NullTelemetry | None" = None,
    verify: "bool | InvariantChecker | None" = None,
    seed: int | None = None,
    timeout_s: float | None = None,
) -> RunResult:
    """Run *scenario* on *device* under one architecture; return the result.

    Args:
        scenario: A declarative :class:`Scenario` (runs via the default
            executor: cached, parallelizable) or a live
            :class:`ScenarioDriver` (runs in-process).
        device: The :class:`~repro.display.device.DeviceProfile` under test.
        architecture: ``"dvsync"`` (the paper's system, default) or
            ``"vsync"`` (the classic baseline).
        config: Architecture configuration — a :class:`DVSyncConfig` for
            D-VSync, a plain int buffer count for either architecture, or
            ``None`` for the defaults.
        telemetry: ``None`` defers to the process-wide switch
            (:func:`repro.telemetry.runtime.set_enabled`); ``True``/``False``
            force recording on/off for this run; an explicit session records
            into it (live-driver path only). When recorded, the snapshot is
            attached as ``result.telemetry``.
        verify: Same tri-state contract for the runtime invariant checker
            (:mod:`repro.verify`): ``None`` defers to
            :func:`repro.verify.runtime.set_enabled`, ``True`` forces a
            checker, ``False`` declines one, an
            :class:`~repro.verify.invariants.InvariantChecker` instance is
            used as-is (live-driver path only). Like ``telemetry``, the
            Scenario path records the flag on the :class:`RunSpec` as an
            opt-in: ``True`` forces a checker in whichever process executes
            the spec, while ``False`` still defers to that process's
            process-wide switch. The verdict is attached as
            ``result.extra["invariants"]``.
        seed: Repetition index for a :class:`Scenario` (its driver builder is
            seeded by name + run index). Must be ``None`` for a live driver,
            which is already constructed.
        timeout_s: Per-run wall-clock deadline enforced by the supervised
            executor (Scenario path only — a live in-process driver has no
            supervisor above it). ``None`` defers to the executor's default.

    Returns:
        The normalized :class:`RunResult` for the run.
    """
    from repro.experiments.runner import run_driver, run_spec, scenario_spec

    buffer_count, dvsync_config = _split_config(architecture, config)

    if isinstance(scenario, Scenario):
        if telemetry is not None and not isinstance(telemetry, bool):
            raise ConfigurationError(
                "a Scenario runs through the executor, whose specs only carry "
                "a telemetry on/off flag; pass telemetry=True/False/None or "
                "use a live driver with an explicit session"
            )
        if verify is not None and not isinstance(verify, bool):
            raise ConfigurationError(
                "a Scenario runs through the executor, whose specs only carry "
                "a verify on/off flag; pass verify=True/False/None or use a "
                "live driver with an explicit InvariantChecker"
            )
        return run_spec(
            scenario_spec(
                scenario,
                device,
                architecture,
                run=seed or 0,
                buffer_count=buffer_count,
                dvsync_config=dvsync_config,
                telemetry=telemetry,
                verify=verify,
                timeout_s=timeout_s,
            )
        )

    if isinstance(scenario, ScenarioDriver):
        if seed is not None:
            raise ConfigurationError(
                "seed only applies to a declarative Scenario; a live driver "
                "is already constructed (seed its builder instead)"
            )
        if timeout_s is not None:
            raise ConfigurationError(
                "timeout_s only applies to a declarative Scenario, which runs "
                "under the supervised executor; a live driver runs in-process "
                "with nothing above it to enforce a deadline"
            )
        return run_driver(
            scenario,
            device,
            architecture,
            buffer_count=buffer_count,
            dvsync_config=dvsync_config,
            telemetry=telemetry,
            verify=verify,
        )

    raise ConfigurationError(
        f"scenario must be a Scenario or a ScenarioDriver, got {scenario!r}"
    )
