"""``repro.simulate()``: one front door for running a workload.

The library grew three ways to run the same simulation — construct a
scheduler by hand, call :func:`repro.experiments.runner.run_driver` with a
live driver, or describe a :class:`~repro.exec.spec.RunSpec` and submit it
through the executor. :func:`simulate` folds them into a single call that
picks the right path from its arguments:

* a :class:`~repro.workloads.scenarios.Scenario` is declarative, so the run
  goes through the default executor and benefits from the result cache and
  any configured parallelism;
* a live :class:`~repro.pipeline.driver.ScenarioDriver` cannot be content-
  addressed, so it runs in-process directly.

Either way the result is the same normalized :class:`RunResult`, and
telemetry and verification obey the same tri-state contract as the scheduler
constructors:
``None`` defers to the process-wide switch, ``True``/``False`` force it, and
a :class:`~repro.telemetry.session.Telemetry` instance records into a session
the caller owns (driver path only — sessions cannot cross the spec wire).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.api import Arch, SimConfig
from repro.core.config import DVSyncConfig
from repro.errors import ConfigurationError
from repro.pipeline.driver import ScenarioDriver
from repro.pipeline.scheduler_base import RunResult
from repro.workloads.scenarios import Scenario

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.session import NullTelemetry, Telemetry
    from repro.verify.invariants import InvariantChecker


def _merge_knob(name: str, config_value, keyword_value):
    """Combine a SimConfig field with its legacy keyword argument."""
    if config_value is None:
        return keyword_value
    if keyword_value is not None and keyword_value != config_value:
        raise ConfigurationError(
            f"{name} was given both on the SimConfig ({config_value!r}) and "
            f"as a keyword argument ({keyword_value!r}); pass it once"
        )
    return config_value


def simulate(
    scenario: Scenario | ScenarioDriver,
    device,
    *,
    architecture: Arch | str = Arch.DVSYNC,
    config: SimConfig | DVSyncConfig | int | None = None,
    telemetry: "bool | Telemetry | NullTelemetry | None" = None,
    verify: "bool | InvariantChecker | None" = None,
    seed: int | None = None,
    timeout_s: float | None = None,
) -> RunResult:
    """Run *scenario* on *device* under one architecture; return the result.

    Args:
        scenario: A declarative :class:`Scenario` (runs via the default
            executor: cached, parallelizable) or a live
            :class:`ScenarioDriver` (runs in-process).
        device: The :class:`~repro.display.device.DeviceProfile` under test.
        architecture: :attr:`Arch.DVSYNC` (the paper's system, default) or
            :attr:`Arch.VSYNC` (the classic baseline); the wire strings
            ``"dvsync"``/``"vsync"`` are equivalent (``Arch`` is a str enum).
        config: A :class:`SimConfig` bundling buffers, pre-render limit,
            engine, seed and timeout, or ``None`` for the defaults. The
            legacy spellings — a bare :class:`DVSyncConfig` or a plain int
            buffer count — still work behind a :class:`DeprecationWarning`.
        telemetry: ``None`` defers to the process-wide switch
            (:func:`repro.telemetry.runtime.set_enabled`); ``True``/``False``
            force recording on/off for this run; an explicit session records
            into it (live-driver path only). When recorded, the snapshot is
            attached as ``result.telemetry``.
        verify: Same tri-state contract for the runtime invariant checker
            (:mod:`repro.verify`): ``None`` defers to
            :func:`repro.verify.runtime.set_enabled`, ``True`` forces a
            checker, ``False`` declines one, an
            :class:`~repro.verify.invariants.InvariantChecker` instance is
            used as-is (live-driver path only). Like ``telemetry``, the
            Scenario path records the flag on the :class:`RunSpec` as an
            opt-in: ``True`` forces a checker in whichever process executes
            the spec, while ``False`` still defers to that process's
            process-wide switch. The verdict is attached as
            ``result.extra["invariants"]``.
        seed: Repetition index for a :class:`Scenario` (its driver builder is
            seeded by name + run index). Must be ``None`` for a live driver,
            which is already constructed.
        timeout_s: Per-run wall-clock deadline enforced by the supervised
            executor (Scenario path only — a live in-process driver has no
            supervisor above it). ``None`` defers to the executor's default.

    Returns:
        The normalized :class:`RunResult` for the run.
    """
    from repro.experiments.runner import run_driver, run_spec, scenario_spec

    arch = Arch.coerce(architecture)
    cfg = SimConfig.coerce(config)
    buffer_count, dvsync_config = cfg.normalize(arch)
    seed = _merge_knob("seed", cfg.seed, seed)
    timeout_s = _merge_knob("timeout_s", cfg.timeout_s, timeout_s)

    if isinstance(scenario, Scenario):
        if telemetry is not None and not isinstance(telemetry, bool):
            raise ConfigurationError(
                "a Scenario runs through the executor, whose specs only carry "
                "a telemetry on/off flag; pass telemetry=True/False/None or "
                "use a live driver with an explicit session"
            )
        if verify is not None and not isinstance(verify, bool):
            raise ConfigurationError(
                "a Scenario runs through the executor, whose specs only carry "
                "a verify on/off flag; pass verify=True/False/None or use a "
                "live driver with an explicit InvariantChecker"
            )
        return run_spec(
            scenario_spec(
                scenario,
                device,
                arch.value,
                run=seed or 0,
                buffer_count=buffer_count,
                dvsync_config=dvsync_config,
                telemetry=telemetry,
                verify=verify,
                timeout_s=timeout_s,
                engine=cfg.engine,
            )
        )

    if isinstance(scenario, ScenarioDriver):
        if seed is not None:
            raise ConfigurationError(
                "seed only applies to a declarative Scenario; a live driver "
                "is already constructed (seed its builder instead)"
            )
        if timeout_s is not None:
            raise ConfigurationError(
                "timeout_s only applies to a declarative Scenario, which runs "
                "under the supervised executor; a live driver runs in-process "
                "with nothing above it to enforce a deadline"
            )
        return run_driver(
            scenario,
            device,
            arch.value,
            buffer_count=buffer_count,
            dvsync_config=dvsync_config,
            telemetry=telemetry,
            verify=verify,
            engine=cfg.engine,
        )

    raise ConfigurationError(
        f"scenario must be a Scenario or a ScenarioDriver, got {scenario!r}"
    )
