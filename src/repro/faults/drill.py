"""The fault drill: VSync vs D-VSync under a fault schedule.

One call runs a scenario twice — classic VSync and D-VSync with the
degradation watchdog attached — under the same declarative fault schedule,
and reports jank (FDPS), latency, injections, containment, and watchdog
activity side by side. This is the executable answer to "does decoupling
still win when the world misbehaves?", and the engine behind the CLI's
``--faults`` knob and the chaos benchmark suite.
"""

from __future__ import annotations

from repro.core.config import DVSyncConfig
from repro.core.dvsync import DVSyncScheduler
from repro.display.device import PIXEL_5, DeviceProfile
from repro.errors import ExecutionError, WorkloadError
from repro.exec.executor import get_default_executor
from repro.exec.spec import DriverSpec, RunSpec
from repro.experiments.base import ExperimentResult
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.faults.watchdog import DegradationWatchdog, WatchdogThresholds
from repro.metrics.fdps import fdps
from repro.metrics.latency import latency_summary
from repro.pipeline.driver import ScenarioDriver
from repro.pipeline.scheduler_base import RunResult
from repro.units import ms
from repro.vsync.scheduler import VSyncScheduler
from repro.workloads.composite import CompositeDriver
from repro.workloads.distributions import params_for_target_fdps
from repro.workloads.drivers import AnimationDriver, InteractionDriver
from repro.workloads.touch import PinchGesture

#: Scenario names the drill can build (see :func:`drill_driver`).
DRILL_SCENARIOS = ("composite", "animation", "interaction")


def _animation_segment(name: str, target_fdps: float, duration_ms: float) -> AnimationDriver:
    params = params_for_target_fdps(target_fdps, 60)
    return AnimationDriver(name, params, duration_ns=ms(duration_ms))


def _interaction_segment(name: str, duration_ms: float) -> InteractionDriver:
    params = params_for_target_fdps(2.0, 60)

    def factory(start: int, _d=ms(duration_ms), _n=name):
        return PinchGesture(start, _d, name=_n)

    return InteractionDriver(name, params, factory)


def drill_driver(scenario: str = "composite", run: int = 0) -> ScenarioDriver:
    """Build a fresh, seeded driver for one drill scenario.

    ``composite`` chains an app-open animation, a pinch interaction (IPL
    territory), and a feed-scroll animation on one timeline — the scenario
    the acceptance drill exercises. ``animation`` and ``interaction`` expose
    the individual segment families for focused regimes.
    """
    suffix = "" if run == 0 else f"#run{run}"
    if scenario == "composite":
        return CompositeDriver(
            f"fault-composite{suffix}",
            [
                _animation_segment(f"fc-open{suffix}", 3.0, 400),
                _interaction_segment(f"fc-pinch{suffix}", 400),
                _animation_segment(f"fc-scroll{suffix}", 2.0, 400),
            ],
            gap_ns=ms(150),
        )
    if scenario == "animation":
        return _animation_segment(f"fault-anim{suffix}", 3.0, 600)
    if scenario == "interaction":
        return _interaction_segment(f"fault-touch{suffix}", 600)
    raise WorkloadError(
        f"unknown drill scenario {scenario!r}; known: {', '.join(DRILL_SCENARIOS)}"
    )


def run_drill_pair(
    schedule: FaultSchedule,
    scenario: str = "composite",
    seed: int = 0,
    device: DeviceProfile = PIXEL_5,
    thresholds: WatchdogThresholds | None = None,
    timeout_s: float | None = None,
) -> tuple[RunResult, RunResult]:
    """Run *scenario* under *schedule* on both architectures.

    Returns ``(vsync_result, dvsync_result)``. Each run gets its own driver,
    injector, and (for D-VSync) watchdog; the two runs draw from independent
    fault rngs, so this compares architectures, not one shared fault trace.

    The pair is described as RunSpecs and submitted as one executor batch
    (parallel under ``--jobs``, individually cached, supervised under
    *timeout_s* when given). Custom watchdog *thresholds* are live objects
    the spec layer does not name, so that case runs inline.

    Raises :class:`~repro.errors.ExecutionError` if either arm produced no
    result under a keep-going executor — the drill's side-by-side comparison
    is meaningless with one arm missing.
    """
    if thresholds is not None:
        baseline = VSyncScheduler(drill_driver(scenario), device, buffer_count=3)
        FaultInjector(schedule, seed=seed).attach(baseline)
        vsync_result = baseline.run()

        improved = DVSyncScheduler(
            drill_driver(scenario), device, DVSyncConfig(buffer_count=4)
        )
        FaultInjector(schedule, seed=seed).attach(improved)
        improved.attach_watchdog(DegradationWatchdog(thresholds))
        return vsync_result, improved.run()

    driver = DriverSpec.of("repro.faults.drill:drill_driver", scenario=scenario)
    faults = schedule.describe()
    vsync_result, dvsync_result = get_default_executor().map(
        [
            RunSpec(
                driver=driver,
                device=device,
                architecture="vsync",
                buffer_count=3,
                faults=faults,
                fault_seed=seed,
                timeout_s=timeout_s,
            ),
            RunSpec(
                driver=driver,
                device=device,
                architecture="dvsync",
                dvsync=DVSyncConfig(buffer_count=4),
                faults=faults,
                fault_seed=seed,
                watchdog=True,
                timeout_s=timeout_s,
            ),
        ]
    )
    if vsync_result is None or dvsync_result is None:
        missing = "vsync" if vsync_result is None else "dvsync"
        raise ExecutionError(
            f"fault drill lost its {missing} arm (run failed under the "
            "keep-going policy); the side-by-side comparison needs both"
        )
    return vsync_result, dvsync_result


def run_fault_drill(
    faults: str | FaultSchedule,
    scenario: str = "composite",
    seed: int = 0,
    device: DeviceProfile = PIXEL_5,
    timeout_s: float | None = None,
) -> ExperimentResult:
    """Execute the drill and package the comparison as a printable report."""
    schedule = (
        faults if isinstance(faults, FaultSchedule) else FaultSchedule.parse(faults)
    )
    vsync_result, dvsync_result = run_drill_pair(
        schedule, scenario=scenario, seed=seed, device=device, timeout_s=timeout_s
    )

    rows = []
    for result in (vsync_result, dvsync_result):
        latency = latency_summary(result)
        fault_info = result.extra.get("faults", {})
        watchdog_info = result.extra.get("watchdog", {})
        rows.append(
            [
                result.scheduler,
                f"{fdps(result):.2f}",
                f"{latency.mean_ms:.2f}",
                f"{latency.p95_ms:.2f}",
                fault_info.get("injected_total", 0),
                fault_info.get("sim_contained", 0) + fault_info.get("hal_contained", 0),
                watchdog_info.get("degradations", "-"),
                watchdog_info.get("repromotions", "-"),
                round(watchdog_info.get("time_in_degraded_ns", 0) / 1e6)
                if watchdog_info
                else "-",
            ]
        )

    comparisons = [
        ("fdps vsync", "-", f"{fdps(vsync_result):.2f}"),
        ("fdps dvsync", "-", f"{fdps(dvsync_result):.2f}"),
        (
            "faults injected",
            "-",
            dvsync_result.extra.get("faults", {}).get("injected_total", 0),
        ),
    ]
    return ExperimentResult(
        experiment_id="faults",
        title=f"fault drill: {scenario} under [{schedule.describe()}] (seed {seed})",
        headers=[
            "scheduler",
            "fdps",
            "lat mean ms",
            "lat p95 ms",
            "injected",
            "contained",
            "degrades",
            "repromotes",
            "degraded ms",
        ],
        rows=rows,
        comparisons=comparisons,
        notes=(
            "Both architectures ran the same scenario under independent seeded "
            "instances of the same fault schedule; the D-VSync run carries the "
            "degradation watchdog."
        ),
    )
