"""Graceful-degradation watchdog for the D-VSync runtime switch (§4.5).

The paper exposes a runtime switch so aware apps can fall back to classic
VSync; the watchdog automates that switch for *system health*. Once per
HW-VSync edge it inspects three signals of the decoupled channel:

- **DTV pacing** — mean absolute present-prediction error over a trailing
  window. Persistent error means the D-Timestamp convention is broken and
  content pacing is visibly wrong (the §7 "chaotic content" failure).
- **IPL starvation** — consecutive predictor fallbacks with no successful
  prediction in between: the input stream is too damaged to pre-render
  interactions.
- **Pipeline stall** — no present fence for longer than the stall threshold
  while frames are committed: the pipeline is wedged, not just slow.

Any signal unhealthy for ``trip_after`` consecutive checks demotes the run to
classic VSync via :meth:`RuntimeController.set_enabled`; ``recover_after``
consecutive healthy checks re-promote it (hysteresis, so a borderline run
does not flap every edge). Health while degraded is judged on *new* evidence
only — stale pacing errors from before the demotion cannot pin the run in
VSync forever.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.units import ms

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.dvsync import DVSyncScheduler


@dataclasses.dataclass(frozen=True)
class WatchdogThresholds:
    """Tunable limits for the degradation decision.

    Attributes:
        pacing_error_ns: Demote when the trailing-window mean absolute DTV
            pacing error exceeds this (default 4 ms — a quarter 60 Hz period).
        pacing_window: Number of trailing pacing errors in the window.
        max_consecutive_ipl_fallbacks: Demote after this many IPL fallbacks
            with no successful prediction in between.
        stall_ns: Demote when no present fence lands for this long while
            frames are committed to the pipeline.
        trip_after: Consecutive unhealthy checks (one per VSync edge) before
            demoting — absorbs single-edge glitches.
        recover_after: Consecutive healthy checks before re-promoting —
            the hysteresis that prevents mode flapping.
    """

    pacing_error_ns: int = ms(4)
    pacing_window: int = 6
    max_consecutive_ipl_fallbacks: int = 4
    stall_ns: int = ms(60)
    trip_after: int = 2
    recover_after: int = 8

    def __post_init__(self) -> None:
        if self.pacing_error_ns <= 0 or self.stall_ns <= 0:
            raise ConfigurationError("watchdog thresholds must be positive durations")
        if self.pacing_window < 1:
            raise ConfigurationError("pacing_window must be >= 1")
        if self.max_consecutive_ipl_fallbacks < 1:
            raise ConfigurationError("max_consecutive_ipl_fallbacks must be >= 1")
        if self.trip_after < 1 or self.recover_after < 1:
            raise ConfigurationError("trip_after and recover_after must be >= 1")


@dataclasses.dataclass(frozen=True)
class DegradationEvent:
    """One watchdog-driven mode change."""

    time: int
    action: str  # "degrade" or "repromote"
    reason: str


class DegradationWatchdog:
    """Monitors a D-VSync run and drives the runtime switch on ill health."""

    def __init__(self, thresholds: WatchdogThresholds | None = None) -> None:
        self.thresholds = thresholds or WatchdogThresholds()
        self.events: list[DegradationEvent] = []
        self.degradations = 0
        self.repromotions = 0
        self.checks = 0
        self.time_in_degraded_ns = 0
        self._scheduler: "DVSyncScheduler | None" = None
        self._degraded_since: int | None = None
        self._unhealthy_streak = 0
        self._healthy_streak = 0
        self._seen_pacing = 0
        self._seen_predictions = 0
        self._seen_fallbacks = 0
        self._consecutive_fallbacks = 0
        self._last_present_count = 0
        self._last_progress_time = 0

    @property
    def degraded(self) -> bool:
        """True while the watchdog has the run demoted to classic VSync."""
        return self._degraded_since is not None

    def bind(self, scheduler: "DVSyncScheduler") -> None:
        """Attach to *scheduler*: one health check per HW-VSync edge."""
        if self._scheduler is not None:
            raise ConfigurationError("a DegradationWatchdog serves exactly one run")
        self._scheduler = scheduler
        self._last_progress_time = scheduler.sim.now
        scheduler.compositor.after_tick.append(self._on_tick)

    # ------------------------------------------------------------- health
    def _unhealthy_reason(self, now: int) -> str | None:
        """New-evidence health verdict; None when everything looks fine."""
        scheduler = self._scheduler
        assert scheduler is not None
        thresholds = self.thresholds

        # DTV pacing: only judged when fresh errors arrived since last check.
        errors = scheduler.dtv.pacing_errors_ns
        if len(errors) > self._seen_pacing:
            self._seen_pacing = len(errors)
            window = errors[-thresholds.pacing_window :]
            mean_abs = sum(abs(e) for e in window) / len(window)
            if mean_abs > thresholds.pacing_error_ns:
                return f"dtv-pacing mean |error| {round(mean_abs)} ns over window"

        # IPL starvation: fallbacks with no successful prediction in between.
        predictions = scheduler.ipl.predictions
        fallbacks = scheduler.ipl.fallbacks
        if predictions > self._seen_predictions:
            self._consecutive_fallbacks = 0
        if fallbacks > self._seen_fallbacks:
            self._consecutive_fallbacks += fallbacks - self._seen_fallbacks
        self._seen_predictions = predictions
        self._seen_fallbacks = fallbacks
        if self._consecutive_fallbacks >= thresholds.max_consecutive_ipl_fallbacks:
            return f"ipl-starvation: {self._consecutive_fallbacks} consecutive fallbacks"

        # Pipeline stall: committed frames but no present for too long.
        presented = scheduler.hal.presented_count
        work_pending = (
            scheduler.pipeline.frames_in_flight > 0
            or scheduler.buffer_queue.queued_depth > 0
        )
        if presented != self._last_present_count or not work_pending:
            self._last_present_count = presented
            self._last_progress_time = now
        elif now - self._last_progress_time > thresholds.stall_ns:
            return f"fpe-stall: no present for {now - self._last_progress_time} ns"

        return None

    # ------------------------------------------------------------- decision
    def _on_tick(self, timestamp: int, index: int) -> None:
        scheduler = self._scheduler
        assert scheduler is not None
        self.checks += 1
        reason = self._unhealthy_reason(timestamp)
        if reason is None:
            self._healthy_streak += 1
            self._unhealthy_streak = 0
        else:
            self._unhealthy_streak += 1
            self._healthy_streak = 0

        if not self.degraded:
            # Respect an app-driven switch-off: only demote a channel we own.
            if (
                reason is not None
                and self._unhealthy_streak >= self.thresholds.trip_after
                and scheduler.controller.enabled
            ):
                self._degrade(timestamp, reason)
        else:
            if self._healthy_streak >= self.thresholds.recover_after:
                self._repromote(timestamp)

    def _degrade(self, now: int, reason: str) -> None:
        scheduler = self._scheduler
        assert scheduler is not None
        scheduler.controller.set_enabled(False, now)
        self._degraded_since = now
        self.degradations += 1
        self.events.append(DegradationEvent(time=now, action="degrade", reason=reason))
        self._healthy_streak = 0
        # Frames must keep flowing on the traditional path immediately.
        scheduler._pump()

    def _repromote(self, now: int) -> None:
        scheduler = self._scheduler
        assert scheduler is not None
        scheduler.controller.set_enabled(True, now)
        if self._degraded_since is not None:
            self.time_in_degraded_ns += now - self._degraded_since
        self._degraded_since = None
        self.repromotions += 1
        self.events.append(
            DegradationEvent(time=now, action="repromote", reason="healthy again")
        )
        self._unhealthy_streak = 0
        self._consecutive_fallbacks = 0
        scheduler._pump()

    # -------------------------------------------------------------- summary
    def summary(self, now: int) -> dict:
        """Watchdog statistics for ``RunResult.extra`` (run-end time *now*)."""
        time_degraded = self.time_in_degraded_ns
        if self._degraded_since is not None:
            time_degraded += now - self._degraded_since
        return {
            "checks": self.checks,
            "degradations": self.degradations,
            "repromotions": self.repromotions,
            "time_in_degraded_ns": time_degraded,
            "degraded_at_end": self.degraded,
            "events": [(e.time, e.action, e.reason) for e in self.events],
        }
