"""Composable fault models.

Each model perturbs exactly one seam of the pipeline through the hooks the
core layers expose — no model reaches into scheduler internals beyond its
documented attachment point:

- :class:`VsyncJitterFault` — HW-VSync oscillator jitter and edge dropout
  (``HWVsyncSource.tick_delay_hook`` / ``tick_drop_hook``);
- :class:`ThermalThrottleFault` — CPU/GPU thermal throttling scaling
  :class:`~repro.pipeline.frame.FrameWorkload` stage durations over a window
  (``SchedulerBase.workload_filters``);
- :class:`BufferPressureFault` — gralloc allocation failure forcing
  ``dequeueBuffer`` retries (``BufferQueue.dequeue_gate``);
- :class:`InputLossFault` — input-sample loss and delivery staleness starving
  the IPL (``SchedulerBase.input_filters``);
- :class:`CallbackCrashFault` — exceptions thrown from a present-fence
  listener, exercising HAL containment (``ScreenHAL.add_listener``).

All randomness flows through the seeded rng the injector hands each model, so
fault sequences are exactly reproducible.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigurationError, InjectedFaultError
from repro.faults.schedule import FaultSpec
from repro.sim.rng import SeededRng, seed_from_name
from repro.units import ms, us

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipeline.scheduler_base import SchedulerBase

RecordFn = Callable[[int, str, str], None]
"""(time_ns, fault_name, detail) -> None; the injector's event log."""


class FaultModel:
    """Base class: an activity window, a seeded rng, and an injection count."""

    name = "fault"

    def __init__(self, spec: FaultSpec, rng: SeededRng, record: RecordFn) -> None:
        self.spec = spec
        self.rng = rng
        self.record = record
        self.injections = 0
        start_ms = spec.param("start_ms", -1.0)
        end_ms = spec.param("end_ms", -1.0)
        self.start_ns = ms(start_ms) if start_ms >= 0 else None
        self.end_ns = ms(end_ms) if end_ms >= 0 else None
        if self.start_ns is not None and self.end_ns is not None:
            if self.end_ns <= self.start_ns:
                raise ConfigurationError(
                    f"{self.name}: end_ms must be after start_ms, got {spec.describe()}"
                )
        self._scheduler: "SchedulerBase | None" = None

    def attach(self, scheduler: "SchedulerBase") -> None:
        """Install this model's hooks on *scheduler*'s components."""
        self._scheduler = scheduler
        self._install(scheduler)

    def _install(self, scheduler: "SchedulerBase") -> None:
        raise NotImplementedError

    def active(self, now: int) -> bool:
        """True while the fault's window covers *now* (always, if unwindowed)."""
        start = 0
        if self._scheduler is not None:
            start = getattr(self._scheduler.driver, "start_time", 0)
        rel = now - start
        if self.start_ns is not None and rel < self.start_ns:
            return False
        if self.end_ns is not None and rel >= self.end_ns:
            return False
        return True

    def _inject(self, now: int, detail: str) -> None:
        self.injections += 1
        self.record(now, self.name, detail)


class VsyncJitterFault(FaultModel):
    """Perturbs HW-VSync edges: grid-anchored gaussian jitter plus dropout.

    Jitter is applied against the nominal tick grid (each edge's offset is an
    independent draw), so error does not random-walk away from the panel's
    true cadence. ``drop_prob`` suppresses delivery of an edge entirely — the
    OS misses the signal and the compositor never runs that period.

    Parameters: ``sigma_us`` (default 300), ``drop_prob`` (default 0,
    capped at 0.5 so a run always terminates), ``start_ms``/``end_ms``.
    """

    name = "vsync-jitter"

    def __init__(self, spec: FaultSpec, rng: SeededRng, record: RecordFn) -> None:
        super().__init__(spec, rng, record)
        self.sigma_ns = us(spec.param("sigma_us", 300.0))
        self.drop_prob = spec.param("drop_prob", 0.0)
        if self.sigma_ns < 0:
            raise ConfigurationError("vsync-jitter: sigma_us must be non-negative")
        if not 0.0 <= self.drop_prob <= 0.5:
            raise ConfigurationError(
                "vsync-jitter: drop_prob must be in [0, 0.5] so edges keep arriving"
            )
        self._offset_ns = 0

    def _install(self, scheduler: "SchedulerBase") -> None:
        source = scheduler.hw_vsync
        sim = scheduler.sim

        def delay_hook(period: int) -> int:
            if not self.active(sim.now) or self.sigma_ns == 0:
                # Slew any residual offset back out so the grid re-anchors.
                delay = period - self._offset_ns
                self._offset_ns = 0
                return delay
            jitter = int(self.rng.normal(0.0, self.sigma_ns))
            bound = period // 4
            jitter = max(-bound, min(bound, jitter))
            delay = period - self._offset_ns + jitter
            self._offset_ns = jitter
            self.injections += 1
            return delay

        source.tick_delay_hook = delay_hook
        if self.drop_prob > 0:

            def drop_hook(timestamp: int, index: int) -> bool:
                if self.active(timestamp) and self.rng.chance(self.drop_prob):
                    self._inject(timestamp, f"edge {index} dropped")
                    return True
                return False

            source.tick_drop_hook = drop_hook


class ThermalThrottleFault(FaultModel):
    """Scales frame stage durations inside a thermal-throttling window.

    Models sustained-load DVFS capping: every frame triggered while the
    window is open costs ``factor``× on the UI thread, render thread, and
    GPU. Parameters: ``factor`` (default 2.0), ``start_ms``/``end_ms``.
    """

    name = "thermal"

    def __init__(self, spec: FaultSpec, rng: SeededRng, record: RecordFn) -> None:
        super().__init__(spec, rng, record)
        self.factor = spec.param("factor", 2.0)
        if self.factor < 1.0:
            raise ConfigurationError("thermal: factor must be >= 1.0 (a slowdown)")

    def _install(self, scheduler: "SchedulerBase") -> None:
        def throttle(workload, now: int):
            if not self.active(now):
                return workload
            self.injections += 1
            return dataclasses.replace(
                workload,
                ui_ns=round(workload.ui_ns * self.factor),
                render_ns=round(workload.render_ns * self.factor),
                gpu_ns=round(workload.gpu_ns * self.factor),
            )

        scheduler.workload_filters.append(throttle)


class BufferPressureFault(FaultModel):
    """Forces ``dequeueBuffer`` failures under graphics-memory pressure.

    Each producer dequeue is denied with ``deny_prob`` while active; a denied
    producer parks in the pipeline's buffer-wait state and is woken for a
    retry ``retry_us`` later, exactly like a gralloc allocation retry loop.
    Parameters: ``deny_prob`` (default 0.25, capped at 0.9 so retries
    eventually succeed), ``retry_us`` (default 500), ``start_ms``/``end_ms``.
    """

    name = "buffer-pressure"

    def __init__(self, spec: FaultSpec, rng: SeededRng, record: RecordFn) -> None:
        super().__init__(spec, rng, record)
        self.deny_prob = spec.param("deny_prob", 0.25)
        self.retry_ns = us(spec.param("retry_us", 500.0))
        if not 0.0 <= self.deny_prob <= 0.9:
            raise ConfigurationError(
                "buffer-pressure: deny_prob must be in [0, 0.9] so retries can succeed"
            )
        if self.retry_ns <= 0:
            raise ConfigurationError("buffer-pressure: retry_us must be positive")

    def _install(self, scheduler: "SchedulerBase") -> None:
        queue = scheduler.buffer_queue
        sim = scheduler.sim

        def gate() -> bool:
            if self.active(sim.now) and self.rng.chance(self.deny_prob):
                self._inject(sim.now, "dequeue denied")
                sim.schedule(self.retry_ns, queue.poke_producers)
                return False
            return True

        queue.dequeue_gate = gate


class InputLossFault(FaultModel):
    """Drops and delays input samples before the scheduler (and IPL) see them.

    Sample loss is decided per sample *timestamp* with a seeded hash, so the
    same sample is consistently present or absent across the repeated
    ``observe_input`` calls of one run — a dropped digitizer report never
    flickers back. ``staleness_us`` holds back samples newer than
    ``now - staleness_us`` (delivery latency). Parameters: ``drop_prob``
    (default 0.01), ``staleness_us`` (default 0), ``start_ms``/``end_ms``.
    """

    name = "input-loss"

    def __init__(self, spec: FaultSpec, rng: SeededRng, record: RecordFn) -> None:
        super().__init__(spec, rng, record)
        self.drop_prob = spec.param("drop_prob", 0.01)
        self.staleness_ns = us(spec.param("staleness_us", 0.0))
        if not 0.0 <= self.drop_prob <= 1.0:
            raise ConfigurationError("input-loss: drop_prob must be in [0, 1]")
        if self.staleness_ns < 0:
            raise ConfigurationError("input-loss: staleness_us must be non-negative")
        self._drop_salt = f"input-loss|{rng.seed}"
        self._dropped: set[int] = set()

    def _drops_sample(self, timestamp: int) -> bool:
        draw = seed_from_name(str(timestamp), salt=self._drop_salt) % 1_000_000
        return draw < self.drop_prob * 1_000_000

    def _install(self, scheduler: "SchedulerBase") -> None:
        def filter_samples(samples, up_to: int):
            if not self.active(up_to):
                return samples
            kept = []
            cutoff = up_to - self.staleness_ns
            for timestamp, value in samples:
                if self.staleness_ns and timestamp > cutoff:
                    continue  # not yet delivered, may still arrive later
                if self.drop_prob and self._drops_sample(timestamp):
                    if timestamp not in self._dropped:
                        self._dropped.add(timestamp)
                        self._inject(up_to, f"sample at {timestamp} lost")
                    continue
                kept.append((timestamp, value))
            return kept

        scheduler.input_filters.append(filter_samples)


class CallbackCrashFault(FaultModel):
    """Raises from a present-fence listener to exercise containment.

    The crashing listener is *prepended* so real consumers (DTV calibration,
    metrics) sit behind it — proving one raising listener cannot starve the
    rest. Parameters: ``prob`` (default 0.02), ``start_ms``/``end_ms``.
    """

    name = "callback-crash"

    def __init__(self, spec: FaultSpec, rng: SeededRng, record: RecordFn) -> None:
        super().__init__(spec, rng, record)
        self.prob = spec.param("prob", 0.02)
        if not 0.0 <= self.prob <= 1.0:
            raise ConfigurationError("callback-crash: prob must be in [0, 1]")

    def _install(self, scheduler: "SchedulerBase") -> None:
        def crashing_listener(record) -> None:
            if self.active(record.present_time) and self.rng.chance(self.prob):
                self._inject(record.present_time, f"crash at frame {record.frame_id}")
                raise InjectedFaultError(
                    f"injected listener crash at present of frame {record.frame_id}"
                )

        scheduler.hal.add_listener(crashing_listener, prepend=True)


#: Fault kind -> model class, the injector's construction table.
MODEL_REGISTRY: dict[str, type[FaultModel]] = {
    VsyncJitterFault.name: VsyncJitterFault,
    ThermalThrottleFault.name: ThermalThrottleFault,
    BufferPressureFault.name: BufferPressureFault,
    InputLossFault.name: InputLossFault,
    CallbackCrashFault.name: CallbackCrashFault,
}
