"""The seeded fault injector.

``FaultInjector`` turns a declarative :class:`~repro.faults.schedule.FaultSchedule`
into live fault models attached to one scheduler run, and owns the two
run-survival mechanisms the fault layer depends on:

- the simulator-level exception handler, which contains
  :class:`~repro.errors.InjectedFaultError` raised from arbitrary callbacks so
  one misbehaving callback cannot abort the run;
- the containment budget, which converts *persistent* failure into a loud
  :class:`~repro.errors.FaultContainmentError` instead of limping forever.

Each model receives an independent child rng spawned from the injector's
seed, so adding or removing one fault never perturbs another fault's draw
sequence — schedules compose without entangling their randomness.
"""

from __future__ import annotations

import dataclasses

from repro.errors import FaultContainmentError, InjectedFaultError
from repro.faults.models import MODEL_REGISTRY, FaultModel
from repro.faults.schedule import FaultSchedule
from repro.pipeline.scheduler_base import RunResult, SchedulerBase
from repro.sim.rng import SeededRng

#: Hard cap on recorded fault events, so a pathological schedule cannot grow
#: an unbounded log inside a long run. Counters keep counting past the cap.
_MAX_EVENTS = 10_000


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One discrete injected fault occurrence."""

    time: int
    fault: str
    detail: str


class FaultInjector:
    """Instantiates a fault schedule against one scheduler run.

    Usage::

        injector = FaultInjector(FaultSchedule.standard(), seed=7)
        scheduler = DVSyncScheduler(driver, PIXEL_5)
        injector.attach(scheduler)
        result = scheduler.run()
        result.extra["faults"]   # injection + containment summary

    One injector serves one run: models keep per-run state (jitter offsets,
    dropped-sample sets), so build a fresh injector per scheduler.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        seed: int = 0,
        containment_budget: int = 5_000,
    ) -> None:
        self.schedule = schedule
        self.seed = seed
        self.containment_budget = containment_budget
        self.events: list[FaultEvent] = []
        self.contained: list[tuple[int, str]] = []
        self._attached: SchedulerBase | None = None
        root = SeededRng.for_scenario(f"faults|{schedule.describe()}", salt=str(seed))
        self.models: list[FaultModel] = [
            MODEL_REGISTRY[spec.kind](
                spec, root.spawn(f"{index}|{spec.kind}"), self._record
            )
            for index, spec in enumerate(schedule.specs)
        ]

    # ------------------------------------------------------------- recording
    def _record(self, time: int, fault: str, detail: str) -> None:
        if len(self.events) < _MAX_EVENTS:
            self.events.append(FaultEvent(time=time, fault=fault, detail=detail))

    @property
    def injected_total(self) -> int:
        """Total injections across all models (including unlogged ones)."""
        return sum(model.injections for model in self.models)

    # ------------------------------------------------------------ attachment
    def attach(self, scheduler: SchedulerBase) -> None:
        """Install every model's hooks plus run-survival containment."""
        if self._attached is not None:
            raise FaultContainmentError(
                "a FaultInjector serves exactly one run; build a fresh one"
            )
        self._attached = scheduler
        for model in self.models:
            model.attach(scheduler)
        scheduler.sim.exception_handler = self._contain
        scheduler.result_hooks.append(self._annotate)
        if scheduler.verifier is not None and self.models:
            # Injected faults legitimately break runtime invariants (off-grid
            # presents under VSync jitter, say); the checker keeps recording
            # them as evidence but must not treat them as library bugs. An
            # empty schedule injects nothing and must not perturb the run.
            scheduler.verifier.relax(f"faults injected: {self.schedule.describe()}")

    def _contain(self, now: int, exc: Exception) -> bool:
        """Simulator exception handler: contain injected faults only.

        Genuine library or programming errors still propagate — containment
        must never mask a real bug behind a fault run.
        """
        if not isinstance(exc, InjectedFaultError):
            return False
        self.contained.append((now, repr(exc)))
        if len(self.contained) > self.containment_budget:
            raise FaultContainmentError(
                f"containment budget exceeded: {len(self.contained)} contained "
                "exceptions — the pipeline is failing persistently, not degrading"
            )
        return True

    # --------------------------------------------------------------- summary
    def summary(self) -> dict:
        """Everything a run result needs to know about this injector."""
        hal_contained = 0
        if self._attached is not None:
            hal_contained = len(self._attached.hal.contained_errors)
        return {
            "schedule": self.schedule.describe(),
            "seed": self.seed,
            "injections": {model.name: model.injections for model in self.models},
            "injected_total": self.injected_total,
            "events_logged": len(self.events),
            "sim_contained": len(self.contained),
            "hal_contained": hal_contained,
        }

    def _annotate(self, result: RunResult) -> None:
        result.extra["faults"] = self.summary()
