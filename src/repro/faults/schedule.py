"""Declarative fault schedules.

A :class:`FaultSchedule` describes *which* faults perturb a run, with what
parameters, over which time windows — independent of any particular scenario
or scheduler, so any workload in :mod:`repro.workloads` can run under any
fault mix. Schedules are pure data: the seeded randomness lives in the
:class:`repro.faults.injector.FaultInjector` that instantiates them.

The text syntax (the CLI's ``--faults`` knob) is a semicolon-separated list of
``kind(key=value, ...)`` clauses::

    vsync-jitter(sigma_us=300);thermal(factor=2.2,start_ms=400,end_ms=700);input-loss(drop_prob=0.01)

``standard`` names the canonical robustness mix used by the acceptance drill:
HW-VSync jitter, one thermal-throttling window, and 1 % input-sample loss.
"""

from __future__ import annotations

import dataclasses
import re

from repro.errors import ConfigurationError

#: Fault kinds understood by :mod:`repro.faults.models`.
FAULT_KINDS = (
    "vsync-jitter",
    "thermal",
    "buffer-pressure",
    "input-loss",
    "callback-crash",
)

_CLAUSE_RE = re.compile(r"^\s*(?P<kind>[a-z-]+)\s*(?:\((?P<params>[^)]*)\))?\s*$")


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One fault clause: a kind plus its keyword parameters.

    Parameters are interpreted by the matching fault model; common ones are
    ``start_ms``/``end_ms`` (activity window — omitted means always active)
    and per-kind magnitudes such as ``sigma_us`` or ``factor``.
    """

    kind: str
    params: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; known: {', '.join(FAULT_KINDS)}"
            )

    def param(self, name: str, default: float) -> float:
        """Look up one parameter with a default."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    def describe(self) -> str:
        """Canonical text form of this clause."""
        if not self.params:
            return self.kind
        inner = ",".join(f"{k}={v:g}" for k, v in self.params)
        return f"{self.kind}({inner})"


def spec(kind: str, **params: float) -> FaultSpec:
    """Build a :class:`FaultSpec` from keyword arguments (test convenience)."""
    return FaultSpec(kind=kind, params=tuple(sorted(params.items())))


@dataclasses.dataclass(frozen=True)
class FaultSchedule:
    """An ordered set of fault clauses applied to one run."""

    specs: tuple[FaultSpec, ...] = ()

    @classmethod
    def none(cls) -> "FaultSchedule":
        """The empty schedule: attach-able, injects nothing."""
        return cls(specs=())

    @classmethod
    def standard(cls) -> "FaultSchedule":
        """The canonical robustness mix (acceptance drill).

        HW-VSync jitter at 300 µs sigma, one 2.2× thermal window from 400 ms
        to 700 ms, and 1 % input-sample loss.
        """
        return cls(
            specs=(
                spec("vsync-jitter", sigma_us=300),
                spec("thermal", factor=2.2, start_ms=400, end_ms=700),
                spec("input-loss", drop_prob=0.01),
            )
        )

    @classmethod
    def parse(cls, text: str) -> "FaultSchedule":
        """Parse the ``--faults`` clause syntax (or the name ``standard``)."""
        text = text.strip()
        if not text or text == "none":
            return cls.none()
        if text == "standard":
            return cls.standard()
        specs = []
        for clause in text.split(";"):
            if not clause.strip():
                continue
            match = _CLAUSE_RE.match(clause)
            if match is None:
                raise ConfigurationError(
                    f"malformed fault clause {clause!r}; expected kind(key=value,...)"
                )
            params = []
            raw = match.group("params") or ""
            for pair in raw.split(","):
                if not pair.strip():
                    continue
                if "=" not in pair:
                    raise ConfigurationError(
                        f"malformed fault parameter {pair!r} in clause {clause!r}"
                    )
                key, value = pair.split("=", 1)
                try:
                    params.append((key.strip(), float(value)))
                except ValueError:
                    raise ConfigurationError(
                        f"fault parameter {key.strip()!r} must be numeric, got {value!r}"
                    ) from None
            specs.append(FaultSpec(kind=match.group("kind"), params=tuple(params)))
        return cls(specs=tuple(specs))

    @property
    def empty(self) -> bool:
        """True if the schedule injects nothing."""
        return not self.specs

    def describe(self) -> str:
        """Canonical text form, parseable back via :meth:`parse`."""
        if not self.specs:
            return "none"
        return ";".join(s.describe() for s in self.specs)
