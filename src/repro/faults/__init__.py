"""Fault injection and graceful degradation for the D-VSync pipeline.

The paper evaluates D-VSync on real phones where HW-VSync jitter, thermal
throttling, dropped input events, and buffer-allocation pressure are facts of
life. This package reproduces those regimes deterministically:

- :class:`FaultSchedule` / :class:`FaultSpec` — declarative fault mixes
  (``FaultSchedule.parse("vsync-jitter(sigma_us=300);thermal(factor=2.2)")``);
- :class:`FaultInjector` — seeded instantiation of a schedule against one
  scheduler run, plus simulator-level exception containment;
- the fault models in :mod:`repro.faults.models`, one per pipeline seam;
- :class:`DegradationWatchdog` — monitors DTV pacing, IPL starvation, and
  pipeline stalls, and drives the §4.5 runtime switch back to classic VSync
  (with hysteresis and re-promotion once healthy);
- :func:`run_fault_drill` — the VSync-vs-D-VSync comparison harness behind
  ``python -m repro --faults``.
"""

from repro.faults.drill import (
    DRILL_SCENARIOS,
    drill_driver,
    run_drill_pair,
    run_fault_drill,
)
from repro.faults.injector import FaultEvent, FaultInjector
from repro.faults.models import (
    MODEL_REGISTRY,
    BufferPressureFault,
    CallbackCrashFault,
    FaultModel,
    InputLossFault,
    ThermalThrottleFault,
    VsyncJitterFault,
)
from repro.faults.schedule import FAULT_KINDS, FaultSchedule, FaultSpec, spec
from repro.faults.watchdog import (
    DegradationEvent,
    DegradationWatchdog,
    WatchdogThresholds,
)

__all__ = [
    "DRILL_SCENARIOS",
    "drill_driver",
    "run_drill_pair",
    "run_fault_drill",
    "FaultEvent",
    "FaultInjector",
    "MODEL_REGISTRY",
    "BufferPressureFault",
    "CallbackCrashFault",
    "FaultModel",
    "InputLossFault",
    "ThermalThrottleFault",
    "VsyncJitterFault",
    "FAULT_KINDS",
    "FaultSchedule",
    "FaultSpec",
    "spec",
    "DegradationEvent",
    "DegradationWatchdog",
    "WatchdogThresholds",
]
