"""Engine selection: which specs the fastpath replay may execute.

The replay engine is byte-exact only for *trace-pure* runs: the driver's
demand is a deterministic function of time and nothing observes or perturbs
the run from outside the scheduling rules. :func:`spec_ineligibility`
encodes those rules; :func:`fastpath_attempt` is what the executor calls.

The process-wide default engine (consulted by ``engine="auto"`` specs) comes
from ``--engine`` on the CLI or the ``REPRO_ENGINE`` environment variable —
the latter so process-pool workers inherit the parent's choice.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.exec.spec import ENGINES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.spec import RunSpec
    from repro.pipeline.driver import ScenarioDriver
    from repro.pipeline.scheduler_base import RunResult

_ENV_VAR = "REPRO_ENGINE"
_default_engine: str | None = None


def _validate(engine: str, source: str) -> str:
    if engine not in ENGINES:
        raise ConfigurationError(
            f"{source}: unknown engine {engine!r}; known: {', '.join(ENGINES)}"
        )
    return engine


def get_default_engine() -> str:
    """The engine ``engine="auto"`` specs resolve to in this process."""
    global _default_engine
    if _default_engine is None:
        _default_engine = _validate(
            os.environ.get(_ENV_VAR, "auto"), f"{_ENV_VAR} environment variable"
        )
    return _default_engine


def set_default_engine(engine: str) -> None:
    """Set the process default (the CLI's ``--engine``)."""
    global _default_engine
    _default_engine = _validate(engine, "set_default_engine")


def reset_default_engine() -> None:
    """Re-read the default from the environment on next use (tests)."""
    global _default_engine
    _default_engine = None


def resolve_engine(engine: "str | None") -> str:
    """Resolve an engine request string against the process default."""
    requested = getattr(engine, "value", engine) or "auto"
    requested = _validate(requested, "engine")
    if requested == "auto":
        requested = get_default_engine()
    return requested


def resolve_requested_engine(spec: "RunSpec") -> str:
    """Resolve a spec's engine request against the process default.

    Returns ``"event"``, ``"fastpath"``, or ``"auto"`` (meaning: fastpath
    when eligible, event otherwise).
    """
    return resolve_engine(getattr(spec, "engine", "auto"))


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        return False
    return True


def spec_ineligibility(spec: "RunSpec") -> str | None:
    """Why *spec* cannot be replayed, or ``None`` if it is trace-pure.

    The driver's own purity (``replay_profile()``) is checked separately by
    :func:`fastpath_attempt`, because answering it requires building the
    driver.
    """
    if spec.faults:
        return "fault injection perturbs the run from outside the scheduling rules"
    if spec.watchdog:
        return "the degradation watchdog observes live fault telemetry"
    if spec.telemetry:
        return "the run records a telemetry session over event-loop probes"
    if spec.verify:
        return "the run attaches an event-loop invariant checker"
    from repro.telemetry import runtime as telemetry_runtime

    if telemetry_runtime.enabled():
        return "the process-wide telemetry switch is on (event-loop probes)"
    from repro.verify import runtime as verify_runtime

    if verify_runtime.enabled():
        return "the process-wide verification switch is on (event-loop checker)"
    if spec.architecture == "dvsync":
        config = spec.dvsync
        if config is not None and not config.enabled:
            return "DVSyncConfig(enabled=False) routes frames through live fallback"
    if spec.start_time < 0:
        return "negative start_time (the event engine rejects it at schedule time)"
    if not _numpy_available():
        return "numpy is unavailable"
    return None


def driver_run_ineligibility(
    architecture: str,
    dvsync_config,
    telemetry,
    verify,
) -> str | None:
    """Why a live-driver run cannot be replayed, or ``None`` if it can.

    Mirrors :func:`spec_ineligibility` for the in-process ``run_driver``
    path, where telemetry/verify may be live session objects rather than
    wire flags: anything other than an explicit ``False`` (or a ``None``
    deferring to an *off* process switch) observes the event loop.
    """
    if architecture not in ("vsync", "dvsync"):
        # fall through to the event path, which raises the canonical error
        return f"unknown architecture {architecture!r}"
    if telemetry is None:
        from repro.telemetry import runtime as telemetry_runtime

        if telemetry_runtime.enabled():
            return "the process-wide telemetry switch is on (event-loop probes)"
    elif telemetry is not False:
        return "the run records a telemetry session over event-loop probes"
    if verify is None:
        from repro.verify import runtime as verify_runtime

        if verify_runtime.enabled():
            return "the process-wide verification switch is on (event-loop checker)"
    elif verify is not False:
        return "the run attaches an event-loop invariant checker"
    if architecture == "dvsync":
        if dvsync_config is not None and not dvsync_config.enabled:
            return "DVSyncConfig(enabled=False) routes frames through live fallback"
    if not _numpy_available():
        return "numpy is unavailable"
    return None


def fastpath_driver_attempt(
    driver: "ScenarioDriver",
    device,
    architecture: str,
    buffer_count: int | None,
    dvsync_config,
    telemetry,
    verify,
) -> tuple["RunResult | None", str | None]:
    """Try to replay a live driver in-process.

    Returns ``(result, None)`` on success, ``(None, reason)`` when the run
    must fall back to the event engine. The driver's profile is compiled on
    the spot (no cache: a live driver has no content identity to key on).
    """
    reason = driver_run_ineligibility(architecture, dvsync_config, telemetry, verify)
    if reason is not None:
        return None, reason
    profile = driver.replay_profile()
    if profile is None:
        return None, "the driver is not trace-pure (no replay profile)"
    from repro.fastpath.profile import compile_profile

    compiled = compile_profile(profile)
    if compiled.frame_times.shape[0] == 0:
        return None, "the driver's replay profile has no frame times"
    import types

    from repro.fastpath.replay import replay_spec

    pseudo_spec = types.SimpleNamespace(
        device=device,
        architecture=architecture,
        buffer_count=buffer_count,
        dvsync=dvsync_config,
        start_time=0,
        horizon=None,
    )
    return replay_spec(pseudo_spec, driver, compiled), None


def fastpath_attempt(
    spec: "RunSpec",
) -> tuple["RunResult | None", "ScenarioDriver | None", str | None]:
    """Try to replay *spec*.

    Returns ``(result, None, None)`` on success. On ineligibility returns
    ``(None, driver, reason)`` where ``driver`` is a freshly built driver the
    event engine should reuse (``None`` when the driver was never built).
    """
    reason = spec_ineligibility(spec)
    if reason is not None:
        return None, None, reason
    from repro.fastpath.profile import load_compiled

    driver, compiled = load_compiled(spec.driver)
    if compiled is None:
        return None, driver, "the driver is not trace-pure (no replay profile)"
    if compiled.frame_times.shape[0] == 0:
        return None, None, "the driver's replay profile has no frame times"
    from repro.fastpath.replay import replay_spec

    return replay_spec(spec, driver, compiled), None, None
