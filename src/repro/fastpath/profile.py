"""Compiled replay profiles: numpy frame-time arrays + a keyed build cache.

``load_compiled`` is the exec layer's entry point: given a ``DriverSpec`` it
builds the driver once, asks it for a :class:`~repro.pipeline.driver.
ReplayProfile`, and compiles the profile's tuples into numpy arrays for the
replay kernel. Driver + compiled profile are cached together, keyed by the
spec's content identity (builder name + canonical params): a study batch
that replays the same scenario across devices and buffer counts pays the
driver's workload pre-generation exactly once. This, plus skipping the event
loop, is where the fastpath speedup comes from.

Cached drivers are used *only* by the replay engine, which calls their pure
policy methods (``wants_frame`` / ``finished`` / ``make_workload`` /
``true_value``) and re-anchors them with ``begin(start_time)`` per run; the
event engine always gets a freshly built driver.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING

import numpy as np

from repro.pipeline.driver import ReplayProfile, ScenarioDriver

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.spec import DriverSpec

# Compiled entries are immutable arrays plus one live driver per scenario;
# the cap only guards against unbounded sweeps over distinct scenarios.
_CACHE_CAP = 128

_cache: OrderedDict[tuple[str, str], tuple[ScenarioDriver, "CompiledProfile"]]
_cache = OrderedDict()
_cache_lock = threading.Lock()


@dataclasses.dataclass(frozen=True)
class CompiledProfile:
    """A :class:`ReplayProfile` lowered to numpy arrays for the replay kernel.

    Attributes:
        arrival_offsets: ascending int64 array of gating-input offsets (ns)
            from the run's start time.
        frame_times: ``(n, 3)`` int64 array of per-frame
            ``(ui_ns, render_ns, gpu_ns)`` stage durations.
        total_span_ns: offset from start at which the driver finishes.
        loop: wrap frame indexes around ``frame_times`` instead of clamping.
        workloads: pre-normalized per-frame ``FrameWorkload`` objects aligned
            with ``frame_times`` (``None`` → kernel calls ``make_workload``).
        burst_duration_ns: analytic ``wants_frame`` demand window per input
            arrival (``None`` → kernel calls the driver's ``wants_frame``).
    """

    arrival_offsets: np.ndarray
    frame_times: np.ndarray
    total_span_ns: int
    loop: bool
    workloads: tuple | None
    burst_duration_ns: int | None

    def stage_ns(self, frame_index: int) -> tuple[int, int, int]:
        """Stage durations for *frame_index* as plain Python ints.

        Mirrors ``make_workload``'s index convention: wrap when looping,
        clamp to the last entry otherwise. Plain ints keep numpy scalars out
        of ``FrameRecord`` fields (``np.int64`` is not JSON-serialisable).
        """
        n = self.frame_times.shape[0]
        if self.loop:
            frame_index %= n
        elif frame_index >= n:
            frame_index = n - 1
        row = self.frame_times[frame_index]
        return int(row[0]), int(row[1]), int(row[2])


def compile_profile(profile: ReplayProfile) -> CompiledProfile:
    """Lower a driver-declared profile into the kernel's array form."""
    arrivals = np.asarray(profile.input_arrival_offsets, dtype=np.int64)
    frame_times = np.asarray(profile.frame_times, dtype=np.int64)
    if frame_times.ndim != 2 or frame_times.shape[1] != 3:
        raise ValueError("frame_times must be a sequence of (ui, render, gpu) triples")
    workloads = profile.workloads
    if workloads is not None and len(workloads) != frame_times.shape[0]:
        raise ValueError("workloads must align one-to-one with frame_times")
    return CompiledProfile(
        arrival_offsets=arrivals,
        frame_times=frame_times,
        total_span_ns=profile.total_span_ns,
        loop=profile.loop,
        workloads=workloads,
        burst_duration_ns=profile.burst_duration_ns,
    )


def load_compiled(
    driver_spec: "DriverSpec",
) -> tuple[ScenarioDriver, CompiledProfile | None]:
    """Resolve *driver_spec* to a (driver, compiled profile) pair.

    Returns ``(driver, None)`` — with the freshly built driver handed back so
    the event engine can reuse it instead of building twice — when the driver
    is not trace-pure. Eligible drivers are cached alongside their compiled
    arrays and shared across replays of the same scenario.
    """
    key = _cache_key(driver_spec)
    with _cache_lock:
        cached = _cache.get(key)
        if cached is not None:
            _cache.move_to_end(key)
            return cached
    driver = driver_spec.build()
    profile = driver.replay_profile()
    if profile is None:
        return driver, None
    compiled = compile_profile(profile)
    with _cache_lock:
        _cache[key] = (driver, compiled)
        _cache.move_to_end(key)
        while len(_cache) > _CACHE_CAP:
            _cache.popitem(last=False)
    return driver, compiled


def _cache_key(driver_spec: "DriverSpec") -> tuple[str, str]:
    return driver_spec.builder, driver_spec.params_json


def clear_profile_cache() -> None:
    """Drop every cached driver/profile (tests and benchmark cold starts)."""
    with _cache_lock:
        _cache.clear()
