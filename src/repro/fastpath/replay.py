"""The fastpath replay kernel: exact results without the event-loop machinery.

The kernel re-derives, from the scheduling rules themselves, the handful of
event kinds a trace-pure run can produce — HW-VSync ticks, UI completions,
render completions, GPU completions — and replays them over a minimal tuple
heap with the *same ordering guarantees* as :class:`repro.sim.Simulator`
(time, then scheduling sequence). Every state transition below mirrors a
specific line of the live components (compositor latch/drop, BufferQueue
FIFO + slot pool, SimThread busy-until arithmetic, FPE two-stage gate, DTV
preview/commit/calibrate, VSync-app waiter coalescing), which is what makes
the replay byte-identical on the wire; the dual-engine parity suite and the
golden-trace corpus enforce that equivalence.

What makes it fast:

- no per-event closure allocation and no component/hook indirection — an
  event is a 5-tuple dispatched by integer kind inside one loop whose state
  lives in local/cell variables, not attribute lookups;
- the driver's per-frame policy calls are compiled away where the
  :class:`~repro.pipeline.driver.ReplayProfile` declares them: ``finished``
  is a clock comparison against the profile span, ``wants_frame`` is the
  profile's analytic burst window, ``make_workload`` is a tuple index into
  the profile's pre-normalized workloads, and ``true_value`` goes through the
  driver's ``replay_values`` fast closure when it provides one;
- recorder-only events (``ui_started`` / ``render_started``) are elided and
  their single field write applied analytically at submit time;
- idle spans between animation bursts are fast-forwarded in O(1): when the
  pipeline is completely drained and only the periodic tick remains, the
  next interesting time (next gating input, or the scenario end) is computed
  from the profile's numpy arrival array and the pending tick is relocated
  there — the skipped ticks are provably no-ops;
- the driver (with its pre-generated workload trace) is cached per scenario
  by :mod:`repro.fastpath.profile` and shared across the whole study batch.
"""

from __future__ import annotations

import dataclasses
from heapq import heappop, heappush
from typing import TYPE_CHECKING

import numpy as np

from repro.core.config import DVSyncConfig
from repro.core.dtv import DisplayTimeVirtualizer
from repro.display.hal import PresentRecord
from repro.errors import ConfigurationError, SimulationError
from repro.exec.governor import guard_for_spec
from repro.sim.engine import max_events_diagnostic
from repro.pipeline.compositor import DropEvent
from repro.pipeline.frame import FrameRecord
from repro.pipeline.scheduler_base import RunResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.spec import RunSpec
    from repro.fastpath.profile import CompiledProfile
    from repro.pipeline.driver import ScenarioDriver

# Mirrors repro.pipeline.scheduler_base._MAX_EVENTS (scheduling-loop valve).
_MAX_EVENTS = 20_000_000

# Event kinds. An event is (time, seq, kind, frame_id, slot); seq preserves
# the simulator's tie-break (scheduling order) at equal times.
_TICK = 0
_UI_END = 1
_RENDER_END = 2
_GPU_END = 3

# Buffer slots are tracked as a free bitmask (bit set ⇔ slot FREE): the only
# state distinction the replay ever *reads* is free vs. not-free — dequeued,
# queued and acquired slots differ only through the FIFO/front bookkeeping.

# Sentinel horizon: far beyond any representable run (ns ≈ 146 years).
_NO_HORIZON = 1 << 62

# FrameRecord is constructed ~once per microsecond of replay; when its layout
# is the one this kernel was written against (a plain dataclass, no slots, no
# __post_init__), the kernel builds instances by assigning __dict__ directly —
# byte-identical state, a fraction of the dataclass __init__ cost. Any drift
# in the dataclass falls back to the normal constructor.
_EXPECTED_FRAME_FIELDS = (
    "frame_id",
    "workload",
    "trigger_time",
    "content_timestamp",
    "decoupled",
    "ui_start",
    "ui_end",
    "render_start",
    "render_end",
    "gpu_end",
    "queued_time",
    "latch_time",
    "present_time",
    "buffer_slot",
    "render_rate_hz",
    "buffer_wait_ns",
    "content_value",
    "input_predicted",
)
_FAST_FRAME = (
    tuple(f.name for f in dataclasses.fields(FrameRecord)) == _EXPECTED_FRAME_FIELDS
    and not hasattr(FrameRecord, "__slots__")
    and not hasattr(FrameRecord, "__post_init__")
)

# Same trick for PresentRecord (one per displayed frame); frozen dataclasses
# keep a normal instance __dict__, so direct assignment is exact state.
_EXPECTED_PRESENT_FIELDS = (
    "frame_id",
    "present_time",
    "vsync_index",
    "content_timestamp",
    "queue_depth_after",
    "refresh_period",
)
_FAST_PRESENT = (
    tuple(f.name for f in dataclasses.fields(PresentRecord))
    == _EXPECTED_PRESENT_FIELDS
    and not hasattr(PresentRecord, "__slots__")
    and not hasattr(PresentRecord, "__post_init__")
)


def replay_spec(
    spec: "RunSpec", driver: "ScenarioDriver", compiled: "CompiledProfile"
) -> RunResult:
    """Replay a trace-pure *spec* and return its exact :class:`RunResult`."""
    return _Replay(spec, driver, compiled).run()


class _Replay:
    """One replay run; state names follow the live components they mirror."""

    def __init__(
        self, spec: "RunSpec", driver: "ScenarioDriver", compiled: "CompiledProfile"
    ) -> None:
        self.spec = spec
        self.driver = driver
        self.compiled = compiled
        device = spec.device
        self.dvsync = spec.architecture == "dvsync"
        if self.dvsync:
            config = spec.dvsync or DVSyncConfig(buffer_count=spec.buffer_count or 4)
            capacity = config.buffer_count
        else:
            config = None
            capacity = spec.buffer_count or device.default_buffer_count
        if capacity < 2:
            raise ConfigurationError("buffer_count must be at least 2")
        self.config = config
        self.capacity = capacity
        self.period = device.vsync_period
        self.refresh_hz = device.refresh_hz

    # -------------------------------------------------------------- run loop
    def run(self) -> RunResult:  # noqa: C901 - deliberately monolithic hot loop
        spec = self.spec
        driver = self.driver
        compiled = self.compiled
        dvsync = self.dvsync
        config = self.config
        capacity = self.capacity
        period = self.period
        refresh_hz = self.refresh_hz
        start_time = spec.start_time
        horizon = spec.horizon
        hz = horizon if horizon is not None else _NO_HORIZON

        span = compiled.total_span_ns
        finish_at = start_time + span
        arrivals = compiled.arrival_offsets + np.int64(start_time)
        driver.begin(start_time)

        # Resource governance. The guard (a budget, or the module counting
        # probe) must observe the *live engine's* event stream, so the replay
        # accounts the recorder-only events it elides: every seq below is
        # drawn exactly as the simulator would (ui/render stages consume two
        # seqs — start recorder + completion — GPU completions one, ticks
        # one), and elided (time, seq) pairs sit in the `rec` min-heap until
        # the main loop reaches their position in (time, seq) order.
        guard = guard_for_spec(spec)
        rec: list[tuple[int, int]] = []

        # Per-frame policy, compiled away where the profile declares it.
        value_of = driver.replay_values() or driver.true_value
        wls = compiled.workloads
        if wls is not None:
            n_wl = len(wls)
            wl_last = n_wl - 1
        loop_wl = compiled.loop
        make_workload = driver.make_workload

        burst_dur = compiled.burst_duration_ns
        burst_stride = None
        if burst_dur is not None:
            offsets = compiled.arrival_offsets
            n_arr = offsets.shape[0]
            if n_arr == 1:
                burst_stride = 0
            else:
                stride = int(offsets[1] - offsets[0])
                if (
                    stride > 0
                    and burst_dur <= stride
                    and bool(np.all(np.diff(offsets) == stride))
                ):
                    burst_stride = stride
        if burst_stride is None:
            wants = driver.wants_frame
        elif burst_stride == 0:
            # Single gating input at start: demand spans [start, start+window).
            def wants(ts: int, now: int) -> bool:
                rel = ts - start_time
                return 0 <= rel < span and rel < burst_dur and now >= start_time

        else:
            bmax = n_arr - 1

            def wants(ts: int, now: int) -> bool:
                rel = ts - start_time
                if rel < 0 or rel >= span:
                    return False
                k = rel // burst_stride
                if k > bmax:
                    k = bmax
                return (
                    rel - k * burst_stride < burst_dur
                    and now >= start_time + k * burst_stride
                )

        # D-VSync component constants.
        if config is not None:
            prerender_limit = config.resolved_prerender_limit
            depth_offset = config.pipeline_depth_periods * period
            quarter_period = period // 4
            per_frame_overhead = config.per_frame_overhead_ns
            dtv_enabled = config.dtv_enabled
            alpha = DisplayTimeVirtualizer._EWMA_ALPHA
            one_minus_alpha = 1 - alpha
        else:
            prerender_limit = 0
            depth_offset = quarter_period = per_frame_overhead = 0
            dtv_enabled = False
            alpha = one_minus_alpha = 0.0

        # Simulator clock + queue.
        now = 0
        seq = 0
        heap: list[tuple[int, int, int, int, int]] = []
        cancelled: set[int] = set()
        heappush_ = heappush
        heappop_ = heappop
        # HW-VSync source.
        tick_index = -1
        hw_running = True
        pending_tick_seq = -1
        next_tick_time = start_time
        # BufferQueue: slot pool + display FIFO (+ front buffer). The
        # per-slot fields below are written at queue time and read at latch
        # time; a dequeued slot's stale fields are never observed.
        free_mask = (1 << capacity) - 1
        slot_frame: list[int | None] = [None] * capacity
        slot_content: list[int | None] = [None] * capacity
        slot_queued_at: list[int | None] = [None] * capacity
        fifo: list[int] = []
        front: int | None = None
        # RenderPipeline + SimThreads (busy-until arithmetic).
        backlog: list[FrameRecord] = []
        render_active = False
        waiting_for_buffer = False
        waiting_since: int | None = None
        in_flight = 0
        ui_busy = 0
        render_busy = 0
        gpu_busy = 0
        ui_total = 0
        render_total = 0
        gpu_total = 0
        # Scheduler state.
        frames: list[FrameRecord] = []
        drops: list[DropEvent] = []
        presents: list[PresentRecord] = []
        frame_counter = 0
        driver_done = False
        vsync_waiter = False
        overhead = 0
        # FPE + DTV.
        dtv_est = period // 2
        dtv_last_committed: int | None = None
        dtv_last_issued: int | None = None
        dtv_pending: dict[int, int] = {}
        dtv_errors: list[int] = []
        dtv_calibrations = 0
        dtv_skipped = 0
        dtv_predictions = 0
        fpe_accum = 0
        fpe_sync = 0
        fpe_blocked = False
        routed_dvsync = 0

        frame_record = FrameRecord
        drop_event = DropEvent
        present_record = PresentRecord
        fast_frame = _FAST_FRAME
        new_frame = FrameRecord.__new__
        fast_present = _FAST_PRESENT
        new_present = PresentRecord.__new__

        def spawn(ts: int, decoupled: bool, at: int) -> FrameRecord:
            # Scheduler._spawn_frame + RenderPipeline.start_frame +
            # SimThread.submit(ui): the start recorder event is elided, its
            # field applied analytically.
            nonlocal frame_counter, in_flight, ui_busy, ui_total, seq
            index = frame_counter
            frame_counter = index + 1
            if wls is not None:
                if loop_wl:
                    workload = wls[index % n_wl]
                else:
                    workload = wls[index] if index < n_wl else wls[wl_last]
            else:
                workload = make_workload(index, ts)
            in_flight += 1
            ui_ns = workload.ui_ns
            start = ui_busy if ui_busy > at else at
            end = start + ui_ns
            ui_busy = end
            ui_total += ui_ns
            if fast_frame:
                frame = new_frame(frame_record)
                frame.__dict__ = {
                    "frame_id": index,
                    "workload": workload,
                    "trigger_time": at,
                    "content_timestamp": ts,
                    "decoupled": decoupled,
                    "ui_start": start if start <= hz else None,
                    "ui_end": None,
                    "render_start": None,
                    "render_end": None,
                    "gpu_end": None,
                    "queued_time": None,
                    "latch_time": None,
                    "present_time": None,
                    "buffer_slot": None,
                    "render_rate_hz": None,
                    "buffer_wait_ns": 0,
                    "content_value": value_of(ts),
                    "input_predicted": False,
                }
            else:
                frame = frame_record(
                    frame_id=index,
                    workload=workload,
                    trigger_time=at,
                    content_timestamp=ts,
                    decoupled=decoupled,
                )
                frame.content_value = value_of(ts)
                if start <= hz:
                    frame.ui_start = start
            frames.append(frame)
            # SimThread.submit schedules the start recorder first: the elided
            # ui_started event owns seq, ui_finished owns seq + 1.
            heappush_(heap, (end, seq + 1, _UI_END, index, 0))
            if guard is not None:
                heappush_(rec, (start, seq))
            seq += 2
            return frame

        def pump(at: int) -> None:
            # FramePreExecutor.try_trigger + DTV.preview/commit +
            # DVSyncScheduler._trigger_decoupled. Callers have already
            # applied DVSyncScheduler._pump's gates (not driver_done, not
            # finished, UI idle). Profiled drivers are all-DETERMINISTIC, so
            # the controller always routes decoupled and the VSync fallback
            # never arms.
            nonlocal fpe_blocked, fpe_accum, fpe_sync
            nonlocal dtv_last_committed, dtv_last_issued, dtv_predictions
            nonlocal routed_dvsync, overhead
            occupancy = len(fifo) + (in_flight - 1 if in_flight > 1 else 0)
            if occupancy >= prerender_limit:
                fpe_blocked = True
                return
            nt = next_tick_time
            if nt <= at:
                nt += period
            ready = at + dtv_est
            first_latch = nt
            while first_latch <= ready:
                first_latch += period
            predicted = first_latch + (len(fifo) + in_flight) * period + period
            lc = dtv_last_committed
            if lc is not None and predicted < lc + period:
                predicted = lc + period
            d_timestamp = predicted - depth_offset
            li = dtv_last_issued
            if li is not None and d_timestamp < li + quarter_period:
                d_timestamp = li + quarter_period
            content = d_timestamp if dtv_enabled else at
            if not wants(content, at):
                return
            dtv_last_committed = predicted
            dtv_last_issued = d_timestamp
            dtv_predictions += 1
            frame = spawn(content, True, at)
            dtv_pending[frame.frame_id] = predicted
            routed_dvsync += 1
            overhead += per_frame_overhead
            if fpe_blocked:
                fpe_sync += 1
            else:
                fpe_accum += 1
            fpe_blocked = False

        def pump_render(at: int) -> None:
            # RenderPipeline._pump_render + BufferQueue.try_dequeue. The two
            # hot call sites (UI_END, RENDER_END) inline this body verbatim;
            # this closure serves the rare latch un-stall path and documents
            # the canonical logic.
            nonlocal render_active, waiting_for_buffer, waiting_since
            nonlocal render_busy, render_total, seq, free_mask
            if render_active or not backlog:
                return
            mask = free_mask
            if mask == 0:
                waiting_for_buffer = True
                if waiting_since is None:
                    waiting_since = at
                return
            # try_dequeue scans for the lowest FREE slot index.
            slot = (mask & -mask).bit_length() - 1
            free_mask = mask & (mask - 1)
            frame = backlog[0]
            del backlog[0]
            if waiting_since is not None:
                frame.buffer_wait_ns = at - waiting_since
                waiting_since = None
            render_active = True
            frame.buffer_slot = slot
            render_ns = frame.workload.render_ns
            start = render_busy if render_busy > at else at
            end = start + render_ns
            render_busy = end
            render_total += render_ns
            if start <= hz:
                frame.render_start = start
            heappush_(heap, (end, seq + 1, _RENDER_END, frame.frame_id, slot))
            if guard is not None:
                heappush_(rec, (start, seq))
            seq += 2

        def finish_frame(frame: FrameRecord, slot: int, at: int) -> None:
            # BufferQueue.queue_buffer + on_frame_queued (DTV EWMA fold, then
            # another pump opportunity).
            nonlocal in_flight, dtv_est, driver_done
            workload = frame.workload
            gpu_ns = workload.gpu_ns
            frame.gpu_end = at if gpu_ns > 0 else None
            frame.queued_time = at
            frame.render_rate_hz = refresh_hz
            slot_frame[slot] = frame.frame_id
            slot_content[slot] = frame.content_timestamp
            slot_queued_at[slot] = at
            fifo.append(slot)
            in_flight -= 1
            if dvsync:
                execution_ns = workload.ui_ns + workload.render_ns + gpu_ns
                if execution_ns > 0:
                    dtv_est = round(
                        one_minus_alpha * dtv_est + alpha * execution_ns
                    )
                if not driver_done:
                    if at >= finish_at:
                        driver_done = True
                    elif ui_busy <= at:
                        pump(at)

        # hw_vsync.start(start_time) then the scheduler's _kick() — both run
        # at sim time 0, before the first tick event fires.
        heap.append((start_time, 0, _TICK, 0, 0))
        seq = 1
        pending_tick_seq = 0
        if dvsync:
            # DVSyncScheduler._kick → _pump gates at sim time 0.
            if 0 >= finish_at:
                driver_done = True
            elif ui_busy <= 0:
                pump(0)
        else:
            vsync_waiter = True

        executed = 0
        while heap:
            t, eseq, kind, efid, eslot = heappop_(heap)
            if cancelled and eseq in cancelled:
                cancelled.discard(eseq)
                continue
            if guard is not None:
                # Account elided recorder events the live engine would have
                # executed before this one, then this event itself — in the
                # simulator's exact (time, seq) order. Elided events past the
                # horizon never execute live, so they are never accounted.
                while rec and rec[0] < (t, eseq):
                    rt, rs = heappop_(rec)
                    if rt <= hz:
                        guard.on_event(rt, rs)
                if t > hz:
                    break
                guard.on_event(t, eseq)
            elif t > hz:
                break
            now = t
            if kind == _TICK:
                tick_index += 1
                # The source schedules its next tick before listeners run, so
                # at any shared timestamp the tick's seq is lower than
                # listener-spawned work.
                next_tick_time = t + period
                pending_tick_seq = seq
                heappush_(heap, (next_tick_time, seq, _TICK, 0, 0))
                seq += 1
                # Compositor: latch the oldest buffer queued strictly before
                # the edge, else record a jank if the producer side owed this
                # edge content.
                if fifo:
                    head = fifo[0]
                    if slot_queued_at[head] < t:
                        # BufferQueue.acquire(): FIFO pop, front swap,
                        # previous slot freed — which may un-stall the render
                        # stage *before* the present signal.
                        del fifo[0]
                        previous = front
                        front = head
                        if previous is not None:
                            free_mask |= 1 << previous
                            if waiting_for_buffer:
                                waiting_for_buffer = False
                                pump_render(t)
                        fid = slot_frame[head]
                        frame = frames[fid]
                        present_time = t + period
                        frame.latch_time = t
                        frame.present_time = present_time
                        if fast_present:
                            # (frozen __setattr__ forbids rebinding __dict__
                            # itself; updating it in place is unguarded)
                            record = new_present(present_record)
                            record.__dict__.update(
                                frame_id=fid,
                                present_time=present_time,
                                vsync_index=tick_index,
                                content_timestamp=slot_content[head] or 0,
                                queue_depth_after=len(fifo),
                                refresh_period=period,
                            )
                        else:
                            record = present_record(
                                frame_id=fid,
                                present_time=present_time,
                                vsync_index=tick_index,
                                content_timestamp=slot_content[head] or 0,
                                queue_depth_after=len(fifo),
                                refresh_period=period,
                            )
                        presents.append(record)
                        if dvsync:
                            # DTV.on_present: calibrate against the committed
                            # prediction for this frame.
                            predicted = dtv_pending.pop(fid, None)
                            if predicted is not None:
                                error = present_time - predicted
                                dtv_errors.append(error)
                                if error != 0:
                                    dtv_calibrations += 1
                                    if dtv_last_committed is not None:
                                        dtv_last_committed += error
                                    if error > 0:
                                        dtv_skipped += round(error / period)
                    else:
                        drops.append(
                            drop_event(
                                time=t,
                                vsync_index=tick_index,
                                queued_depth=len(fifo),
                                frames_in_flight=in_flight if in_flight > 0 else 0,
                            )
                        )
                elif in_flight > 0:
                    drops.append(
                        drop_event(
                            time=t,
                            vsync_index=tick_index,
                            queued_depth=0,
                            frames_in_flight=in_flight,
                        )
                    )
                # compositor.after_tick: the base stop-check, then the pump.
                if driver_done and in_flight == 0 and not fifo:
                    hw_running = False
                    cancelled.add(pending_tick_seq)
                if dvsync and not driver_done:
                    if t >= finish_at:
                        driver_done = True
                    elif ui_busy <= t:
                        pump(t)
                # app-channel delivery (VSync-app waiters swap out, then
                # fire) — VSyncScheduler._on_vsync_app, one opportunity per
                # tick, re-arming unless the driver finished.
                if vsync_waiter:
                    vsync_waiter = False
                    if not driver_done:
                        if t >= finish_at:
                            driver_done = True
                        else:
                            if wants(t, t):
                                render_backlog = len(backlog) + (
                                    1 if render_active else 0
                                )
                                if ui_busy <= t and render_backlog <= 1:
                                    spawn(t, False, t)
                            vsync_waiter = True
                # Fast-forward: relocate the pending tick past a fully
                # drained idle gap. Sound only when every skipped tick is a
                # no-op: nothing queued or in flight (so no latch, no drop,
                # no stop), and the driver neither wants a frame (the next
                # gating input has not arrived) nor finishes (the scenario
                # end is not reached) strictly before the target time.
                if (
                    not driver_done
                    and hw_running
                    and in_flight == 0
                    and not fifo
                    and len(heap) == 1
                ):
                    head_entry = heap[0]
                    if head_entry[2] == _TICK and head_entry[1] not in cancelled:
                        # With DTV on, the pump's demand query runs in
                        # *content* time: a drained tick t' asks
                        # wants(c(t'), t') with c(t') = max(t' + lead, floor),
                        # where lead and floor are constant across the gap
                        # (no commits, frozen EWMA). The next gating input
                        # must therefore be located on the content timeline
                        # and translated back into now-space through `lead`.
                        # For the default pipeline depth the two timelines
                        # coincide (lead == 0).
                        if dvsync and dtv_enabled:
                            bumps = dtv_est // period + 1
                            lead = (bumps + 1) * period - depth_offset
                            content_now = t + lead
                            lc = dtv_last_committed
                            if lc is not None:
                                floor_c = lc + period - depth_offset
                                if floor_c > content_now:
                                    content_now = floor_c
                            li = dtv_last_issued
                            if li is not None:
                                floor_c = li + quarter_period
                                if floor_c > content_now:
                                    content_now = floor_c
                        else:
                            lead = 0
                            content_now = t
                        # A D-Timestamp running *ahead* of the clock means a
                        # demand window's now-gate can open mid-gap; skipping
                        # is not provably a no-op, so step tick by tick.
                        if content_now <= t:
                            target = finish_at
                            pos = int(
                                np.searchsorted(arrivals, content_now, side="right")
                            )
                            if pos < arrivals.shape[0]:
                                nxt = int(arrivals[pos]) - lead
                                if nxt < target:
                                    target = nxt
                            pending = head_entry[0]
                            skipped = (target - pending + period - 1) // period
                            if skipped > 0:
                                # The live engine executes every skipped tick
                                # (each scheduling its successor, consuming
                                # one seq), so the guard accounts the whole
                                # run in O(1) and the relocated tick takes the
                                # seq the last skipped tick would have drawn.
                                if guard is not None:
                                    guard.on_tick_run(
                                        pending, period, skipped,
                                        head_entry[1], seq,
                                    )
                                relocated = pending + skipped * period
                                pending_tick_seq = seq + skipped - 1
                                heap[0] = (
                                    relocated, pending_tick_seq, _TICK, 0, 0
                                )
                                seq += skipped
                                tick_index += skipped
                                next_tick_time = relocated
            elif kind == _UI_END:
                frame = frames[efid]
                frame.ui_end = t
                # on_ui_complete pumps before submit_render.
                if dvsync and not driver_done:
                    if t >= finish_at:
                        driver_done = True
                    elif ui_busy <= t:
                        pump(t)
                backlog.append(frame)
                if not render_active:
                    # pump_render, inlined (hot; see the closure for the
                    # mirrored component logic). backlog[0] honours FIFO
                    # order when older frames were stalled on buffers.
                    mask = free_mask
                    if mask == 0:
                        waiting_for_buffer = True
                        if waiting_since is None:
                            waiting_since = t
                    else:
                        slot = (mask & -mask).bit_length() - 1
                        free_mask = mask & (mask - 1)
                        rframe = backlog[0]
                        del backlog[0]
                        if waiting_since is not None:
                            rframe.buffer_wait_ns = t - waiting_since
                            waiting_since = None
                        render_active = True
                        rframe.buffer_slot = slot
                        render_ns = rframe.workload.render_ns
                        start = render_busy if render_busy > t else t
                        end = start + render_ns
                        render_busy = end
                        render_total += render_ns
                        if start <= hz:
                            rframe.render_start = start
                        heappush_(
                            heap, (end, seq + 1, _RENDER_END, rframe.frame_id, slot)
                        )
                        if guard is not None:
                            heappush_(rec, (start, seq))
                        seq += 2
            elif kind == _RENDER_END:
                frame = frames[efid]
                frame.render_end = t
                gpu_ns = frame.workload.gpu_ns
                if gpu_ns > 0:
                    start = gpu_busy if gpu_busy > t else t
                    end = start + gpu_ns
                    gpu_busy = end
                    gpu_total += gpu_ns
                    heappush_(heap, (end, seq, _GPU_END, efid, eslot))
                    seq += 1
                else:
                    finish_frame(frame, eslot, t)
                # Render thread frees for the next frame while the GPU
                # finishes — pump_render, inlined again.
                render_active = False
                if backlog:
                    mask = free_mask
                    if mask == 0:
                        waiting_for_buffer = True
                        if waiting_since is None:
                            waiting_since = t
                    else:
                        slot = (mask & -mask).bit_length() - 1
                        free_mask = mask & (mask - 1)
                        rframe = backlog[0]
                        del backlog[0]
                        if waiting_since is not None:
                            rframe.buffer_wait_ns = t - waiting_since
                            waiting_since = None
                        render_active = True
                        rframe.buffer_slot = slot
                        render_ns = rframe.workload.render_ns
                        start = render_busy if render_busy > t else t
                        end = start + render_ns
                        render_busy = end
                        render_total += render_ns
                        if start <= hz:
                            rframe.render_start = start
                        heappush_(
                            heap, (end, seq + 1, _RENDER_END, rframe.frame_id, slot)
                        )
                        if guard is not None:
                            heappush_(rec, (start, seq))
                        seq += 2
            else:
                finish_frame(frames[efid], eslot, t)
            executed += 1
            if executed >= _MAX_EVENTS:
                raise SimulationError(
                    "run() "
                    + max_events_diagnostic(_MAX_EVENTS, t, eseq)
                    + "; likely a scheduling feedback loop"
                )
        if horizon is not None and now < horizon:
            now = horizon

        result = RunResult(
            scheduler="dvsync" if dvsync else "vsync",
            scenario=driver.name,
            device=spec.device,
            buffer_count=capacity,
            frames=frames,
            drops=drops,
            presents=presents,
            start_time=start_time,
            end_time=now,
            ui_busy_ns=ui_total,
            render_busy_ns=render_total,
            gpu_busy_ns=gpu_total,
            scheduler_overhead_ns=overhead,
        )
        if dvsync:
            errors = dtv_errors
            result.extra.update(
                {
                    "fpe_triggers_accumulation": fpe_accum,
                    "fpe_triggers_sync": fpe_sync,
                    "prerender_limit": prerender_limit,
                    "dtv_predictions": dtv_predictions,
                    "dtv_calibrations": dtv_calibrations,
                    "dtv_skipped_periods": dtv_skipped,
                    "dtv_mean_abs_pacing_error_ns": (
                        sum(abs(e) for e in errors) / len(errors) if errors else 0.0
                    ),
                    "ipl_predictions": 0,
                    "ipl_fallbacks": 0,
                    "ipl_overhead_ns": 0,
                    "routed_dvsync": routed_dvsync,
                    "routed_vsync": 0,
                }
            )
        return result
