"""The fastpath replay engine: trace-pure specs without the event loop.

``repro.fastpath`` executes a :class:`~repro.exec.spec.RunSpec` by *replaying*
the scheduling rules directly over the driver's precomputed frame-time array
(:class:`~repro.pipeline.driver.ReplayProfile`), instead of stepping
:mod:`repro.sim`'s general discrete-event kernel with its component graph,
hook lists, and per-event closure allocation. The replay is exact — byte
identical results on the wire — for every *trace-pure* spec: no fault
injection, no watchdog, no telemetry or verification session, and a driver
whose demand is a deterministic function of time (see
:func:`repro.fastpath.engine.spec_ineligibility`).

Engine selection is part of the exec layer: ``RunSpec.engine`` is ``"auto"``
(pick fastpath when eligible), ``"event"`` (always the full simulator), or
``"fastpath"`` (replay or raise). ``engine`` rides the spec wire but is
excluded from ``content_hash`` — both engines compute the same result, so a
cached result is shared across them.
"""

from repro.fastpath.engine import (
    ENGINES,
    driver_run_ineligibility,
    fastpath_attempt,
    fastpath_driver_attempt,
    get_default_engine,
    resolve_engine,
    resolve_requested_engine,
    set_default_engine,
    spec_ineligibility,
)
from repro.fastpath.profile import CompiledProfile, clear_profile_cache, load_compiled

__all__ = [
    "ENGINES",
    "CompiledProfile",
    "clear_profile_cache",
    "driver_run_ineligibility",
    "fastpath_attempt",
    "fastpath_driver_attempt",
    "get_default_engine",
    "load_compiled",
    "resolve_engine",
    "resolve_requested_engine",
    "set_default_engine",
    "spec_ineligibility",
]
