"""Coverage-guided differential fuzzing of the simulation spec space.

The repository carries two engines that must agree byte-for-byte
(:mod:`repro.sim` event loop vs :mod:`repro.fastpath` replay), a dozen
runtime invariants, and a supervised executor — all exercised, before this
package, only on hand-picked scenarios. :mod:`repro.fuzz` searches the full
:class:`~repro.exec.spec.RunSpec` knob space instead:

* :class:`~repro.fuzz.generator.SpecGenerator` — seeded, deterministic
  sampling of the spec space (driver family × device × architecture ×
  buffer/D-VSync config × fault schedule × observer toggles × engine) with
  coverage feedback biasing draws toward unvisited cells;
* :mod:`~repro.fuzz.relations` — the metamorphic-relation catalog used as
  oracles: properties that must hold between *related* runs (engine parity,
  determinism, observer neutrality, spelling/hash stability, cache
  round-trips, and the paper's differential drops/ordering claims);
* :class:`~repro.fuzz.shrinker.Shrinker` — greedy per-knob minimization of a
  violating spec, so findings land as small, readable repros;
* :class:`~repro.fuzz.campaign.FuzzCampaign` — one supervised
  :meth:`~repro.exec.executor.Executor.map_outcome` batch per campaign, so a
  crashing or hanging worker becomes a structured finding instead of killing
  the run;
* :mod:`~repro.fuzz.corpus` — the JSON repro format under
  ``tests/fuzz/corpus/``; every minimized finding replays forever as a
  regression test.

Front doors: ``python -m repro fuzz --budget N --seed S`` and
``scripts/check_fuzz.py`` (CI gate: deterministic, zero surviving
violations).
"""

from repro.fuzz.campaign import FuzzCampaign, FuzzReport, run_campaign
from repro.fuzz.corpus import CorpusEntry, load_corpus, replay_entry
from repro.fuzz.generator import SpecGenerator
from repro.fuzz.relations import RELATIONS, Relation, relations_by_name
from repro.fuzz.shrinker import Shrinker

__all__ = [
    "CorpusEntry",
    "FuzzCampaign",
    "FuzzReport",
    "RELATIONS",
    "Relation",
    "Shrinker",
    "SpecGenerator",
    "load_corpus",
    "relations_by_name",
    "run_campaign",
]
