"""Supervised fuzz campaigns: generate → one batch → judge → shrink → emit.

A campaign is four deterministic phases:

1. **Generate** — :class:`~repro.fuzz.generator.SpecGenerator` draws
   ``budget`` specs from the knob space (coverage-biased, seed-replayable).
2. **Execute** — every probe every applicable relation needs is collected
   into ONE supervised :meth:`~repro.exec.executor.Executor.map_outcome`
   batch: the executor deduplicates identical probes by content hash across
   the whole campaign, and a crashing or hanging worker surfaces as a
   structured :class:`~repro.exec.supervisor.RunFailure` — recorded here as
   an ``execution`` finding — instead of killing the campaign.
3. **Judge** — each ``(spec, relation)`` pair whose probes all produced
   results runs the relation's ``check``; derived runs the batch cannot
   carry (forced engines, repeat executions) happen in-process. A crash
   *inside* a check is itself a finding (``evaluation-crash``).
4. **Shrink & emit** — violations are greedily minimized along every knob
   axis and written into the corpus as replayable JSON repros; findings
   deduplicate by (relation, minimized content hash).

Everything observable — the findings list, the report wire form, the
rendered summary — is free of wall-clock measurements, so two campaigns
with the same seed and budget produce byte-identical findings files.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
from typing import Sequence

from repro.errors import ConfigurationError
from repro.exec.executor import Executor, execute_spec
from repro.exec.serialize import normalize_result
from repro.exec.spec import RunSpec, canonical_json
from repro.fuzz.corpus import entry_from_finding, save_entry
from repro.fuzz.generator import SpecGenerator
from repro.fuzz.relations import Relation, relations_by_name
from repro.fuzz.shrinker import Shrinker, knob_delta, spec_delta_summary
from repro.pipeline.scheduler_base import RunResult

#: Bump when the findings-file layout changes.
FINDINGS_SCHEMA_VERSION = 1

#: Default findings artifact the CLI writes.
DEFAULT_FINDINGS_PATH = "FUZZ_findings.json"

#: Environment default for ``--budget`` (CI knob).
BUDGET_ENV_VAR = "REPRO_FUZZ_BUDGET"


def validate_budget(budget: object, source: str = "budget") -> int:
    """Check a campaign budget: positive int, else ConfigurationError."""
    if isinstance(budget, bool) or not isinstance(budget, int):
        raise ConfigurationError(
            f"{source} must be an integer number of specs, got {budget!r}"
        )
    if budget < 1:
        raise ConfigurationError(f"{source} must be >= 1, got {budget}")
    return budget


def validate_seed(seed: object, source: str = "seed") -> int:
    """Check a campaign seed: non-negative int, else ConfigurationError."""
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise ConfigurationError(f"{source} must be an integer, got {seed!r}")
    if seed < 0:
        raise ConfigurationError(f"{source} must be >= 0, got {seed}")
    return seed


def budget_from_env(default: int = 100) -> int:
    """Resolve the default budget from ``REPRO_FUZZ_BUDGET``."""
    text = os.environ.get(BUDGET_ENV_VAR, "")
    if not text:
        return default
    try:
        value = int(text)
    except ValueError:
        raise ConfigurationError(
            f"{BUDGET_ENV_VAR} must be an integer number of specs, got {text!r}"
        ) from None
    return validate_budget(value, source=BUDGET_ENV_VAR)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One campaign discovery: a violated relation or a harness failure.

    ``kind`` is ``"violation"`` for a relation the check failed,
    ``"evaluation-crash"`` for an exception inside a check, or an executor
    failure-taxonomy kind (``crash``/``timeout``/``config``/``cache-corrupt``)
    for a probe the supervised batch could not execute.
    """

    relation: str
    kind: str
    detail: str
    spec_wire: dict
    spec_hash: str
    shrunk_wire: dict | None = None
    shrunk_hash: str | None = None
    knob_delta: int | None = None
    shrink_summary: str | None = None
    corpus_path: str | None = None

    def to_wire(self) -> dict:
        return {
            "relation": self.relation,
            "kind": self.kind,
            "detail": self.detail,
            "spec": self.spec_wire,
            "spec_hash": self.spec_hash,
            "shrunk_spec": self.shrunk_wire,
            "shrunk_hash": self.shrunk_hash,
            "knob_delta": self.knob_delta,
            "shrink_summary": self.shrink_summary,
            "corpus_path": self.corpus_path,
        }

    def describe(self) -> str:
        head = f"[{self.kind}] {self.relation}: {self.detail}"
        if self.shrunk_hash is not None:
            head += f" (shrunk to {self.shrunk_hash[:12]}, delta {self.knob_delta})"
        return head


@dataclasses.dataclass
class FuzzReport:
    """Everything one campaign produced, wire-stable and wall-clock-free."""

    seed: int
    budget: int
    relations: list[str]
    specs_generated: int
    cells_visited: int
    probes_submitted: int
    probes_unique: int
    pairs_checked: int
    findings: list[Finding]

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_wire(self) -> dict:
        return {
            "schema": FINDINGS_SCHEMA_VERSION,
            "seed": self.seed,
            "budget": self.budget,
            "relations": self.relations,
            "specs_generated": self.specs_generated,
            "cells_visited": self.cells_visited,
            "probes_submitted": self.probes_submitted,
            "probes_unique": self.probes_unique,
            "pairs_checked": self.pairs_checked,
            "findings": [finding.to_wire() for finding in self.findings],
        }

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write the canonical findings JSON (byte-stable across reruns)."""
        target = pathlib.Path(path)
        target.write_text(canonical_json(self.to_wire()) + "\n")
        return target

    def render(self) -> str:
        lines = [
            f"fuzz campaign: seed={self.seed} budget={self.budget} "
            f"relations={','.join(self.relations)}",
            f"  generated {self.specs_generated} specs over "
            f"{self.cells_visited} coverage cells; "
            f"{self.probes_submitted} probes ({self.probes_unique} unique) "
            f"in one supervised batch; {self.pairs_checked} relation checks",
        ]
        if self.ok:
            lines.append("  => no violations")
        else:
            for finding in self.findings:
                lines.append(f"  FAIL {finding.describe()}")
            lines.append(f"  => {len(self.findings)} finding(s)")
        return "\n".join(lines)


class FuzzCampaign:
    """One configured campaign; :meth:`run` executes the four phases.

    Args:
        budget: Specs to generate (positive int; the probe batch is larger).
        seed: Generator seed (non-negative int).
        relations: ``--relation`` selections, or ``None`` for the catalog.
        executor: Supervised executor for the batch phase; defaults to a
            hermetic in-process executor with no cache (determinism: cache
            hits must never change what the findings file records).
        corpus_dir: Where shrunk violations are emitted as repros;
            ``None`` disables emission.
        shrink: Disable to record raw violating specs (debugging aid).
        generator: Override the spec source (tests inject fixed specs).
    """

    def __init__(
        self,
        budget: int,
        seed: int = 0,
        relations: Sequence[str] | None = None,
        executor: Executor | None = None,
        corpus_dir: str | pathlib.Path | None = None,
        shrink: bool = True,
        generator: SpecGenerator | None = None,
    ) -> None:
        self.budget = validate_budget(budget)
        self.seed = validate_seed(seed)
        self.relations = relations_by_name(relations)
        self.executor = executor
        self.corpus_dir = corpus_dir
        self.shrink = shrink
        self.generator = (
            generator if generator is not None else SpecGenerator(self.seed)
        )

    # ------------------------------------------------------------- execution
    @staticmethod
    def _execute(spec: RunSpec) -> RunResult:
        """In-process probe execution, normalized like batch results."""
        return normalize_result(execute_spec(spec))

    @property
    def source(self) -> str:
        return f"fuzz seed={self.seed} budget={self.budget}"

    # ------------------------------------------------------------------ main
    def run(self) -> FuzzReport:
        specs = list(self.generator.take(self.budget))

        # Phase 2: collect every relation's probes into one batch.
        batch: list[RunSpec] = []
        plans: list[tuple[RunSpec, Relation, list[int]]] = []
        for spec in specs:
            for relation in self.relations:
                if not relation.applies(spec):
                    continue
                positions = []
                for probe in relation.probes(spec):
                    positions.append(len(batch))
                    batch.append(probe)
                plans.append((spec, relation, positions))

        executor = self.executor if self.executor is not None else Executor()
        stats_before = executor.stats.snapshot()
        outcome = executor.map_outcome(batch)
        delta = executor.stats.since(stats_before)

        findings: list[Finding] = []
        seen: set[tuple[str, str, str]] = set()

        def emit(finding: Finding) -> None:
            key = (
                finding.relation,
                finding.kind,
                finding.shrunk_hash or finding.spec_hash,
            )
            if key in seen:
                return
            seen.add(key)
            findings.append(finding)

        # Supervised-batch failures are findings in their own right.
        for index in sorted(outcome.index_failures):
            failure = outcome.index_failures[index]
            probe = batch[index]
            emit(
                Finding(
                    relation="execution",
                    kind=failure.kind,
                    detail=failure.message,
                    spec_wire=probe.to_wire(),
                    spec_hash=failure.spec_hash,
                )
            )

        # Phase 3/4: judge every fully-resolved pair; shrink violations.
        pairs_checked = 0
        for spec, relation, positions in plans:
            results = [outcome.results[position] for position in positions]
            if any(result is None for result in results):
                continue  # probe failed; already recorded above
            pairs_checked += 1
            try:
                detail = relation.check(spec, results, self._execute)
            except Exception as exc:
                emit(
                    Finding(
                        relation=relation.name,
                        kind="evaluation-crash",
                        detail=f"{type(exc).__name__}: {exc}",
                        spec_wire=spec.to_wire(),
                        spec_hash=spec.content_hash(),
                    )
                )
                continue
            if detail is None:
                continue
            emit(self._violation_finding(spec, relation, detail))

        return FuzzReport(
            seed=self.seed,
            budget=self.budget,
            relations=[relation.name for relation in self.relations],
            specs_generated=len(specs),
            cells_visited=self.generator.cells_visited,
            probes_submitted=len(batch),
            probes_unique=len(batch) - delta.deduplicated,
            pairs_checked=pairs_checked,
            findings=findings,
        )

    def _violation_finding(
        self, spec: RunSpec, relation: Relation, detail: str
    ) -> Finding:
        shrunk = shrunk_detail = None
        delta = summary = corpus_path = None
        if self.shrink:
            shrinker = Shrinker(relation, self._execute)
            shrunk, shrunk_detail, delta = shrinker.shrink(spec, detail)
            summary = spec_delta_summary(spec, shrunk)
        else:
            shrunk, shrunk_detail, delta = spec, detail, knob_delta(spec)
        if self.corpus_dir is not None:
            entry = entry_from_finding(
                relation.name, shrunk, shrunk_detail, self.source, delta
            )
            corpus_path = str(save_entry(entry, self.corpus_dir))
        return Finding(
            relation=relation.name,
            kind="violation",
            detail=detail,
            spec_wire=spec.to_wire(),
            spec_hash=spec.content_hash(),
            shrunk_wire=json.loads(canonical_json(shrunk.to_wire())),
            shrunk_hash=shrunk.content_hash(),
            knob_delta=delta,
            shrink_summary=summary,
            corpus_path=corpus_path,
        )


def run_campaign(
    budget: int,
    seed: int = 0,
    relations: Sequence[str] | None = None,
    executor: Executor | None = None,
    corpus_dir: str | pathlib.Path | None = None,
    shrink: bool = True,
) -> FuzzReport:
    """Convenience front door: configure and run one campaign."""
    return FuzzCampaign(
        budget=budget,
        seed=seed,
        relations=relations,
        executor=executor,
        corpus_dir=corpus_dir,
        shrink=shrink,
    ).run()
