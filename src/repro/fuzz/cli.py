"""The ``repro fuzz`` subcommand.

Dispatched from ``python -m repro fuzz ...``. Runs one campaign, prints the
report, writes the canonical findings JSON, and exits non-zero when any
finding survived — which makes it directly usable as a CI gate
(:mod:`scripts.check_fuzz` adds the determinism double-run on top).

Budget and seed are validated at the boundary: non-positive or non-integer
values (from the flags or from ``REPRO_FUZZ_BUDGET``) are rejected with a
:class:`~repro.errors.ConfigurationError` before any spec is generated.
"""

from __future__ import annotations

import argparse

from repro.errors import ConfigurationError
from repro.exec.executor import Executor
from repro.fuzz.campaign import (
    DEFAULT_FINDINGS_PATH,
    FuzzCampaign,
    budget_from_env,
    validate_budget,
    validate_seed,
)
from repro.fuzz.corpus import DEFAULT_CORPUS_DIR
from repro.fuzz.relations import RELATIONS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro fuzz",
        description=(
            "Differential spec fuzzer: sample the RunSpec knob space, check "
            "metamorphic relations, shrink violations to replayable repros."
        ),
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="N",
        help=(
            "specs to generate (default: REPRO_FUZZ_BUDGET or 100); the "
            "supervised probe batch is larger"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="generator seed; identical seeds replay identical campaigns",
    )
    parser.add_argument(
        "--relation",
        action="append",
        default=None,
        metavar="NAME",
        help="restrict to one relation (repeatable); default: full catalog",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="parallel batch workers (default: 1, in-process)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-probe wall-clock deadline in the supervised batch; an "
            "overdue probe becomes a structured timeout finding"
        ),
    )
    parser.add_argument(
        "--out",
        default=DEFAULT_FINDINGS_PATH,
        metavar="PATH",
        help="findings JSON artifact (default: %(default)s)",
    )
    parser.add_argument(
        "--corpus",
        default=str(DEFAULT_CORPUS_DIR),
        metavar="DIR",
        help=(
            "directory shrunk violations are emitted into as replayable "
            "repros (default: %(default)s); 'none' disables emission"
        ),
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="record raw violating specs without minimizing them",
    )
    parser.add_argument(
        "--list-relations",
        action="store_true",
        help="print the metamorphic-relation catalog and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_relations:
        width = max(len(relation.name) for relation in RELATIONS)
        for relation in RELATIONS:
            print(f"{relation.name:<{width}}  {relation.description}")
        return 0
    try:
        budget = (
            budget_from_env()
            if args.budget is None
            else validate_budget(args.budget, source="--budget")
        )
        seed = validate_seed(args.seed, source="--seed")
        executor = Executor(
            jobs=args.jobs if args.jobs is not None else 1,
            cache=False,  # cache hits must never change the findings file
            timeout_s=args.timeout,
        )
        campaign = FuzzCampaign(
            budget=budget,
            seed=seed,
            relations=args.relation,
            executor=executor,
            corpus_dir=None if args.corpus == "none" else args.corpus,
            shrink=not args.no_shrink,
        )
    except ConfigurationError as exc:
        parser.error(str(exc))  # exits 2 with a one-line message
    try:
        report = campaign.run()
    finally:
        executor.close()
    path = report.save(args.out)
    try:
        print(report.render())
        print(f"findings: {path}")
    except BrokenPipeError:  # piping into `head` etc. is fine
        pass
    return 0 if report.ok else 1
