"""Seeded, coverage-guided sampling of the :class:`RunSpec` knob space.

The generator is a pure function of its seed: the same ``(seed, budget)``
always yields the same spec sequence, which is what makes a whole campaign
(and its findings file) byte-reproducible. Coverage feedback is the one
adaptive ingredient — each spec maps to a coarse *cell* (driver family ×
architecture × engine × fault-kind set × device), and every draw rejects
already-visited cells a few times before settling, spreading the budget
across the space instead of hammering the likeliest corner.

All sampled specs are *valid by construction*: the generator never emits a
combination :class:`~repro.exec.spec.RunSpec` would reject (watchdog on the
baseline, out-of-range pre-render limits), because a configuration error in
a generated spec would be a finding about the generator, not the library.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.config import DVSyncConfig
from repro.display.device import ALL_DEVICES, DeviceProfile
from repro.errors import ConfigurationError
from repro.exec.spec import DriverSpec, RunSpec
from repro.units import ms

#: How many redraws a sample spends looking for an unvisited coverage cell.
COVERAGE_RETRIES = 4

#: Motion curves and tail profiles the scenario family samples from.
_CURVES = ("linear", "ease-in-out", "decelerate", "spring")
_PROFILES = ("scattered", "moderate", "skewed")

#: Fault clause templates: (kind, {param: candidate values}).
_FAULT_TEMPLATES = (
    ("vsync-jitter", {"sigma_us": (150.0, 400.0, 900.0)}),
    ("thermal", {"factor": (1.6, 2.4), "start_ms": (50.0,), "end_ms": (250.0,)}),
    ("buffer-pressure", {"deny_prob": (0.1, 0.3), "retry_us": (400.0,)}),
    ("input-loss", {"drop_prob": (0.01, 0.05)}),
    ("callback-crash", {"prob": (0.01, 0.03)}),
)


def coverage_cell(spec: RunSpec) -> tuple:
    """The coarse coverage coordinate of one spec.

    Deliberately low-cardinality — (driver family, architecture, engine,
    fault-kind set, device) — so a few hundred draws can plausibly visit
    every cell and the feedback loop has something to steer by.
    """
    fault_kinds: tuple[str, ...] = ()
    if spec.faults:
        fault_kinds = tuple(
            sorted({clause.split("(")[0].strip() for clause in spec.faults.split(";")})
        )
    return (
        spec.driver.builder.rsplit(":", 1)[-1],
        spec.architecture,
        spec.engine,
        fault_kinds,
        spec.device.name,
    )


class SpecGenerator:
    """Deterministic spec sampler with coverage-biased draws.

    Args:
        seed: Root of the sampling stream; identical seeds replay
            identical spec sequences.
        devices: Device pool to draw from (defaults to every profile the
            evaluation registers).
        max_duration_ms: Cap on one burst's animation length — fuzz
            workloads stay short so hundreds of them fit in a CI budget.
    """

    def __init__(
        self,
        seed: int,
        devices: tuple[DeviceProfile, ...] = ALL_DEVICES,
        max_duration_ms: float = 260.0,
    ) -> None:
        if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
            raise ConfigurationError(
                f"fuzz seed must be a non-negative integer, got {seed!r}"
            )
        if not devices:
            raise ConfigurationError("the generator needs at least one device")
        self.seed = seed
        self.devices = tuple(devices)
        self.max_duration_ms = max_duration_ms
        self.rng = random.Random(f"repro-fuzz:{seed}")
        self.visited: dict[tuple, int] = {}
        self._index = 0

    # ----------------------------------------------------------- driver space
    def _burst_driver(self, rng: random.Random, index: int) -> DriverSpec:
        duration = rng.choice((60.0, 120.0, 180.0, self.max_duration_ms))
        bursts = rng.choice((1, 1, 2))
        return DriverSpec.of(
            "repro.exec.builders:burst_animation",
            name=f"fuzz-{self.seed}-{index}",
            target_fdps=rng.choice((0.5, 2.0, 4.0, 7.0)),
            refresh_hz=rng.choice((60, 90, 120)),
            duration_ms=duration,
            bursts=bursts,
            burst_period_ms=(
                rng.choice((None, 400.0)) if bursts == 1 else rng.choice((350.0, 500.0))
            ),
        )

    def _scenario_driver(self, rng: random.Random, index: int) -> DriverSpec:
        interactive = rng.random() < 0.35
        fields: dict = {
            "name": f"fuzz-scn-{self.seed}-{index}",
            "description": "fuzz-generated scenario",
            "refresh_hz": rng.choice((60, 90, 120)),
            "target_vsync_fdps": rng.choice((1.0, 3.0, 6.0)),
            "profile": rng.choice(_PROFILES),
            "duration_ms": rng.choice((80.0, 150.0, self.max_duration_ms)),
            "bursts": rng.choice((1, 2)),
            "burst_period_ms": rng.choice((None, 300.0, 450.0)),
            "curve": rng.choice(_CURVES),
            "interactive": interactive,
            "base_fraction": rng.choice((0.3, 0.42, 0.55)),
        }
        if interactive:
            fields["gesture"] = rng.choice(("swipe", "pinch"))
        else:
            fields["gpu_fraction"] = rng.choice((0.0, 0.0, 0.25))
            if rng.random() < 0.3:
                fields["key_zone_period_ms"] = rng.choice((100.0, 200.0))
        return DriverSpec.of("repro.exec.builders:scenario_driver", run=0, **fields)

    # ------------------------------------------------------------ fault space
    def _fault_clause(self, rng: random.Random) -> str:
        kind, params = rng.choice(_FAULT_TEMPLATES)
        chosen = ",".join(
            f"{key}={rng.choice(values):g}" for key, values in sorted(params.items())
        )
        return f"{kind}({chosen})" if chosen else kind

    def _faults(self, rng: random.Random) -> str | None:
        roll = rng.random()
        if roll < 0.55:
            return None
        clauses = [self._fault_clause(rng)]
        if roll > 0.85:
            second = self._fault_clause(rng)
            if second.split("(")[0] != clauses[0].split("(")[0]:
                clauses.append(second)
        return ";".join(clauses)

    # -------------------------------------------------------------- one draw
    def _draw(self, rng: random.Random, index: int) -> RunSpec:
        device = rng.choice(self.devices)
        if rng.random() < 0.5:
            driver = self._burst_driver(rng, index)
        else:
            driver = self._scenario_driver(rng, index)
        architecture = rng.choice(("vsync", "dvsync"))
        buffer_count = None
        dvsync = None
        watchdog = False
        faults = self._faults(rng)
        if architecture == "dvsync":
            if rng.random() < 0.6:
                buffers = rng.choice((3, 4, 5, 7))
                limit = rng.choice((None, None, 1, 2, buffers - 1))
                if limit is not None:
                    limit = min(limit, buffers - 1)
                dvsync = DVSyncConfig(
                    buffer_count=buffers,
                    prerender_limit=limit,
                    dtv_enabled=rng.random() > 0.15,
                    ipl_enabled=rng.random() > 0.15,
                    pipeline_depth_periods=rng.choice((1, 2, 2, 3)),
                    enabled=rng.random() > 0.1,
                )
            else:
                buffer_count = rng.choice((None, 4, 5))
            watchdog = bool(faults) and rng.random() < 0.5
        else:
            buffer_count = rng.choice((None, 2, 3, 4))
        return RunSpec(
            driver=driver,
            device=device,
            architecture=architecture,
            buffer_count=buffer_count,
            dvsync=dvsync,
            faults=faults,
            fault_seed=rng.choice((0, 1, 7)) if faults else 0,
            watchdog=watchdog,
            start_time=rng.choice((0, 0, 3_000_000, int(ms(11.0)))),
            horizon=rng.choice((None, None, None, int(ms(140.0)))),
            telemetry=rng.random() < 0.15,
            verify=rng.random() < 0.2,
            engine=rng.choice(("auto", "auto", "event")),
        )

    def sample(self) -> RunSpec:
        """Draw the next spec, preferring unvisited coverage cells."""
        spec = None
        for _ in range(COVERAGE_RETRIES + 1):
            self._index += 1
            spec = self._draw(self.rng, self._index)
            if coverage_cell(spec) not in self.visited:
                break
        cell = coverage_cell(spec)
        self.visited[cell] = self.visited.get(cell, 0) + 1
        return spec

    def take(self, budget: int) -> Iterator[RunSpec]:
        """Yield *budget* specs (the campaign's generation phase)."""
        if not isinstance(budget, int) or isinstance(budget, bool) or budget < 1:
            raise ConfigurationError(
                f"fuzz budget must be a positive integer, got {budget!r}"
            )
        for _ in range(budget):
            yield self.sample()

    @property
    def cells_visited(self) -> int:
        """Distinct coverage cells seen so far (campaign observability)."""
        return len(self.visited)
