"""The replayable finding corpus: minimized specs as permanent regressions.

Every violation the fuzzer shrinks is emitted as one JSON file under
``tests/fuzz/corpus/`` pairing a relation name with a minimized
:class:`~repro.exec.spec.RunSpec` wire form. ``tests/fuzz/
test_corpus_replay.py`` re-runs every entry through its recorded relation on
each tier-1 pass, so a bug found once can never silently return. The corpus
is also seeded with hand-crafted edge specs sitting on boundaries the
hand-written suites historically missed.

Filenames are content-derived (``<relation>-<hash12>.json``) so re-finding
the same minimized spec overwrites, never duplicates.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any, Iterator, Mapping

from repro.errors import ConfigurationError
from repro.exec.spec import RunSpec, canonical_json
from repro.fuzz.relations import ExecuteFn, relations_by_name

#: Bump when the corpus entry layout changes.
CORPUS_SCHEMA_VERSION = 1

#: The tree-relative corpus directory the CLI and replay suite share.
DEFAULT_CORPUS_DIR = pathlib.Path("tests") / "fuzz" / "corpus"


@dataclasses.dataclass(frozen=True)
class CorpusEntry:
    """One replayable finding (or hand-seeded edge case).

    Attributes:
        relation: Name of the relation to re-check on replay.
        spec_wire: Wire form of the (minimized) spec.
        detail: The violation message at discovery time, or the reason a
            hand-crafted entry exists. Documentation only — replay asserts
            the relation *holds*, whatever the historical message said.
        source: Provenance: ``"hand-crafted"`` or ``"fuzz seed=S budget=N"``.
        knob_delta: Shrinker's distance-from-default count, if shrunk.
    """

    relation: str
    spec_wire: dict
    detail: str
    source: str = "hand-crafted"
    knob_delta: int | None = None

    def spec(self) -> RunSpec:
        return RunSpec.from_wire(self.spec_wire)

    def to_wire(self) -> dict:
        return {
            "schema": CORPUS_SCHEMA_VERSION,
            "relation": self.relation,
            "spec": self.spec_wire,
            "detail": self.detail,
            "source": self.source,
            "knob_delta": self.knob_delta,
        }

    @classmethod
    def from_wire(cls, wire: Mapping[str, Any]) -> "CorpusEntry":
        schema = wire.get("schema")
        if schema != CORPUS_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported corpus entry schema {schema!r} "
                f"(expected {CORPUS_SCHEMA_VERSION})"
            )
        return cls(
            relation=wire["relation"],
            spec_wire=dict(wire["spec"]),
            detail=wire.get("detail", ""),
            source=wire.get("source", "hand-crafted"),
            knob_delta=wire.get("knob_delta"),
        )

    def filename(self) -> str:
        return f"{self.relation}-{self.spec().content_hash()[:12]}.json"


def save_entry(entry: CorpusEntry, corpus_dir: str | pathlib.Path) -> pathlib.Path:
    """Write *entry* into *corpus_dir* (created if missing); returns the path."""
    root = pathlib.Path(corpus_dir)
    root.mkdir(parents=True, exist_ok=True)
    path = root / entry.filename()
    path.write_text(json.dumps(entry.to_wire(), indent=2, sort_keys=True) + "\n")
    return path


def load_corpus(
    corpus_dir: str | pathlib.Path = DEFAULT_CORPUS_DIR,
) -> list[tuple[pathlib.Path, CorpusEntry]]:
    """Load every entry under *corpus_dir*, sorted by filename.

    A malformed file raises :class:`~repro.errors.ConfigurationError` naming
    it — a corrupt regression corpus should fail the suite, not skip.
    """
    root = pathlib.Path(corpus_dir)
    entries: list[tuple[pathlib.Path, CorpusEntry]] = []
    if not root.is_dir():
        return entries
    for path in sorted(root.glob("*.json")):
        try:
            entries.append((path, CorpusEntry.from_wire(json.loads(path.read_text()))))
        except (ValueError, KeyError, TypeError) as exc:
            raise ConfigurationError(f"corrupt corpus entry {path}: {exc}") from None
    return entries


def iter_corpus_specs(
    corpus_dir: str | pathlib.Path = DEFAULT_CORPUS_DIR,
) -> Iterator[tuple[str, RunSpec]]:
    """Yield ``(relation, spec)`` pairs for every corpus entry."""
    for _, entry in load_corpus(corpus_dir):
        yield entry.relation, entry.spec()


def replay_entry(entry: CorpusEntry, execute: ExecuteFn) -> str | None:
    """Re-run one corpus entry through its recorded relation.

    Returns the violation detail if the relation fails *today* (a
    regression), or ``None`` when it holds. A relation that no longer
    applies to the stored spec passes vacuously — shifting eligibility
    rules must not break historical repros.
    """
    (relation,) = relations_by_name([entry.relation])
    spec = entry.spec()
    if not relation.applies(spec):
        return None
    results = [execute(probe) for probe in relation.probes(spec)]
    return relation.check(spec, results, execute)


def entry_from_finding(
    relation: str,
    spec: RunSpec,
    detail: str,
    source: str,
    knob_delta: int | None,
) -> CorpusEntry:
    """Build the corpus entry for one shrunk campaign finding."""
    return CorpusEntry(
        relation=relation,
        spec_wire=json.loads(canonical_json(spec.to_wire())),
        detail=detail,
        source=source,
        knob_delta=knob_delta,
    )
