"""Metamorphic relations: the fuzzer's oracle catalog.

A fuzzer without an expected output needs *relations between runs* instead
of golden values. Each :class:`Relation` declares which specs it applies to,
which sibling specs it needs executed (``probes`` — these ride the
campaign's one supervised executor batch), and a ``check`` that judges the
results, optionally re-executing derived specs in-process (forced engines,
repeat runs) through the ``execute`` callable it is handed.

The catalog:

==================== =====================================================
``engine-parity``    event loop and fastpath replay are byte-identical on
                     eligible specs; ``auto`` falls back consistently.
``seed-determinism`` re-executing the same spec reproduces the same
                     behavioral bytes (cross-backend determinism).
``observer-neutral`` telemetry sessions and invariant checkers observe the
                     run without changing its behavior.
``spelling-neutral`` typed (:class:`~repro.core.api.Arch` /
                     :class:`~repro.core.api.SimConfig`) and legacy wire
                     spellings, and a wire round-trip, hash identically.
``cache-round-trip`` a result survives serialize → cache → deserialize
                     byte-identically.
``drops-not-worse``  D-VSync never drops more effective frames than the
                     VSync baseline on identical content (§6.2).
``content-order``    presents follow frame generation order — decoupling
                     reorders time, never content (§4.4, §7).
``budget-parity``    an event budget below the spec's natural event count
                     trips both engines at the identical event with
                     byte-identical failure messages.
==================== =====================================================

Checks never embed wall-clock times in their violation details, so a
campaign's findings file is byte-stable across reruns.
"""

from __future__ import annotations

import dataclasses
import json
import tempfile
from typing import Callable, Sequence

from repro.errors import ConfigurationError
from repro.exec.spec import RunSpec, canonical_json
from repro.pipeline.scheduler_base import RunResult

#: Signature of the in-process execution hook ``check`` receives: spec in,
#: normalized (wire round-tripped) result out. Exceptions propagate; the
#: campaign converts them into ``evaluation-crash`` findings.
ExecuteFn = Callable[[RunSpec], RunResult]


def behavioral_wire(result: RunResult) -> dict:
    """The wire form reduced to *behavior*: what the run did, not who watched.

    Strips the telemetry snapshot (its profile blocks carry wall-clock
    durations) and the invariant checker's verdict (present exactly when a
    checker rode along). Everything left must be identical across observer
    toggles, engines, backends, and re-runs.
    """
    from repro.exec.serialize import result_to_wire

    wire = result_to_wire(result)
    wire.pop("telemetry", None)
    extra = dict(wire.get("extra") or {})
    extra.pop("invariants", None)
    wire["extra"] = extra
    return wire


def behavioral_text(result: RunResult) -> str:
    """Canonical JSON of :func:`behavioral_wire` — the comparison currency."""
    return canonical_json(behavioral_wire(result))


def _first_difference(a: str, b: str, context: int = 40) -> str:
    """Locate the first differing byte of two canonical JSON texts."""
    limit = min(len(a), len(b))
    for index in range(limit):
        if a[index] != b[index]:
            break
    else:
        index = limit
    lo = max(0, index - context)
    return (
        f"first difference at byte {index}: "
        f"...{a[lo:index + context]!r} vs ...{b[lo:index + context]!r}"
    )


class Relation:
    """One metamorphic relation. Subclasses override the three hooks."""

    #: Stable identifier (CLI ``--relation``, corpus entries, findings).
    name: str = "relation"
    #: One-line description for ``--list-relations`` and DESIGN.md.
    description: str = ""

    def applies(self, spec: RunSpec) -> bool:
        """Whether this relation is meaningful for *spec*."""
        return True

    def probes(self, spec: RunSpec) -> list[RunSpec]:
        """Specs the campaign must execute (they join the one batch)."""
        return [spec]

    def check(
        self,
        spec: RunSpec,
        results: Sequence[RunResult],
        execute: ExecuteFn,
    ) -> str | None:
        """Judge the probe *results*; return a violation detail or ``None``.

        ``results`` aligns with :meth:`probes`; *execute* runs derived specs
        in-process when the relation needs runs that cannot share the batch
        (forced engines collapse to one batch entry because ``engine`` is
        excluded from the content hash; repeat runs deduplicate likewise).
        """
        raise NotImplementedError


class EngineParity(Relation):
    """Both engines produce byte-identical behavior on eligible specs."""

    name = "engine-parity"
    description = (
        "event-loop and fastpath results are byte-identical on trace-pure "
        "specs; auto falls back to the event engine consistently"
    )

    def applies(self, spec: RunSpec) -> bool:
        from repro.fastpath.engine import spec_ineligibility

        return spec_ineligibility(spec) is None

    def check(self, spec, results, execute) -> str | None:
        event = execute(dataclasses.replace(spec, engine="event"))
        try:
            fast = execute(dataclasses.replace(spec, engine="fastpath"))
        except ConfigurationError:
            # The driver declared no replay profile: forced fastpath refuses
            # (correct), and the contract under test becomes auto-fallback.
            fast = execute(dataclasses.replace(spec, engine="auto"))
        event_text = behavioral_text(event)
        fast_text = behavioral_text(fast)
        if event_text != fast_text:
            return f"engines diverge: {_first_difference(event_text, fast_text)}"
        batch_text = behavioral_text(results[0])
        if batch_text != event_text:
            return (
                "batch result diverges from a fresh in-process run: "
                f"{_first_difference(batch_text, event_text)}"
            )
        return None


class SeedDeterminism(Relation):
    """Re-executing a spec reproduces the same behavioral bytes."""

    name = "seed-determinism"
    description = (
        "a second execution of the same spec (fresh drivers, fresh rngs "
        "re-seeded from the spec) is byte-identical to the batch result"
    )

    def check(self, spec, results, execute) -> str | None:
        first = behavioral_text(results[0])
        again = behavioral_text(execute(spec))
        if first != again:
            return f"rerun diverged: {_first_difference(first, again)}"
        return None


class ObserverNeutrality(Relation):
    """Telemetry and verification observe without perturbing."""

    name = "observer-neutral"
    description = (
        "attaching a telemetry session or an invariant checker leaves the "
        "run's behavioral bytes unchanged"
    )

    def probes(self, spec: RunSpec) -> list[RunSpec]:
        base = dataclasses.replace(spec, telemetry=False, verify=False)
        return [
            base,
            dataclasses.replace(base, telemetry=True),
            dataclasses.replace(base, verify=True),
        ]

    def check(self, spec, results, execute) -> str | None:
        base, with_telemetry, with_verify = (behavioral_text(r) for r in results)
        if with_telemetry != base:
            return (
                "telemetry perturbed the run: "
                f"{_first_difference(base, with_telemetry)}"
            )
        if with_verify != base:
            return (
                "the invariant checker perturbed the run: "
                f"{_first_difference(base, with_verify)}"
            )
        return None


class SpellingNeutrality(Relation):
    """Typed, legacy, and wire spellings of one spec hash identically."""

    name = "spelling-neutral"
    description = (
        "Arch/SimConfig spellings, raw-string spellings, and a to_wire/"
        "from_wire round-trip all produce the same content hash"
    )

    def probes(self, spec: RunSpec) -> list[RunSpec]:
        return []  # pure spec algebra; nothing to execute

    def check(self, spec, results, execute) -> str | None:
        from repro.core.api import Arch, SimConfig

        reference = spec.content_hash()
        round_tripped = RunSpec.from_wire(
            json.loads(canonical_json(spec.to_wire()))
        )
        if round_tripped.content_hash() != reference:
            return "to_wire/from_wire round-trip changed the content hash"
        typed_arch = dataclasses.replace(
            spec, architecture=Arch.coerce(spec.architecture)
        )
        if typed_arch.content_hash() != reference:
            return "spelling the architecture as an Arch member changed the hash"
        if spec.architecture == "dvsync" and spec.dvsync is None:
            # The SimConfig shorthand must build the same spec the direct
            # buffer_count spelling describes.
            buffers, dvsync = SimConfig(
                buffer_count=spec.buffer_count
            ).normalize(spec.architecture)
            via_config = dataclasses.replace(
                spec, buffer_count=buffers, dvsync=dvsync
            )
            if spec.buffer_count is None:
                if via_config.content_hash() != reference:
                    return "SimConfig.normalize changed an all-default dvsync hash"
        return None


class CacheRoundTrip(Relation):
    """Results survive the serializer and the on-disk cache byte-exactly."""

    name = "cache-round-trip"
    description = (
        "result → wire JSON → result and result → ResultCache → result are "
        "both byte-identity round-trips"
    )

    def check(self, spec, results, execute) -> str | None:
        from repro.exec.cache import ResultCache
        from repro.exec.serialize import result_from_wire, result_to_wire

        result = results[0]
        reference = canonical_json(result_to_wire(result))
        rebuilt = result_from_wire(json.loads(reference))
        if canonical_json(result_to_wire(rebuilt)) != reference:
            return "serialize round-trip is not byte-identity"
        with tempfile.TemporaryDirectory(prefix="repro-fuzz-cache-") as root:
            cache = ResultCache(root, salt="fuzz")
            cache.put(spec, result)
            cached = cache.get(spec)
            if cached is None:
                return "cache.put followed by cache.get missed"
            if canonical_json(result_to_wire(cached)) != reference:
                return "cache round-trip is not byte-identity"
        return None


class DropsNotWorse(Relation):
    """D-VSync never drops more effective frames than the VSync baseline."""

    name = "drops-not-worse"
    description = (
        "on identical clean content with at least the baseline's buffers, "
        "dvsync's effective drops never exceed vsync's (§6.2)"
    )

    def applies(self, spec: RunSpec) -> bool:
        if spec.architecture != "dvsync" or spec.faults or spec.watchdog:
            return False
        config = spec.dvsync
        if config is not None:
            if not (config.enabled and config.dtv_enabled and config.ipl_enabled):
                return False  # ablations deliberately forfeit the claim
            if config.resolved_prerender_limit < 2:
                return False  # no pre-render window left to absorb misses
            dvsync_buffers = config.buffer_count
        else:
            dvsync_buffers = spec.buffer_count or 4
        baseline_buffers = spec.buffer_count or spec.device.default_buffer_count
        # The paper's claim compares *enlarged* D-VSync queues against the
        # stock baseline; starving D-VSync below the baseline is out of scope.
        return dvsync_buffers >= baseline_buffers

    def probes(self, spec: RunSpec) -> list[RunSpec]:
        baseline = dataclasses.replace(
            spec, architecture="vsync", dvsync=None, watchdog=False
        )
        return [spec, baseline]

    def check(self, spec, results, execute) -> str | None:
        dvsync, vsync = results
        dvsync_drops = len(dvsync.effective_drops)
        vsync_drops = len(vsync.effective_drops)
        if dvsync_drops > vsync_drops:
            return (
                f"dvsync dropped {dvsync_drops} effective frames vs the "
                f"baseline's {vsync_drops}"
            )
        return None


class ContentOrder(Relation):
    """Presents follow frame generation order on clean runs."""

    name = "content-order"
    description = (
        "present fences report strictly increasing frame ids and "
        "non-decreasing content timestamps (§4.4, §7)"
    )

    def applies(self, spec: RunSpec) -> bool:
        return not spec.faults  # injected faults may legitimately skip frames

    def check(self, spec, results, execute) -> str | None:
        result = results[0]
        last_frame = -1
        last_content = None
        for index, present in enumerate(result.presents):
            if present.frame_id <= last_frame:
                return (
                    f"present {index} shows frame {present.frame_id} after "
                    f"frame {last_frame}"
                )
            last_frame = present.frame_id
            if last_content is not None and present.content_timestamp < last_content:
                return (
                    f"present {index} rewinds content time "
                    f"({present.content_timestamp} < {last_content})"
                )
            last_content = present.content_timestamp
        return None


class BudgetParity(Relation):
    """Resource-budget trips are deterministic and engine-agnostic."""

    name = "budget-parity"
    description = (
        "an event budget below the spec's natural event count trips both "
        "engines with byte-identical failure messages"
    )

    def applies(self, spec: RunSpec) -> bool:
        from repro.fastpath.engine import spec_ineligibility

        return spec.budget is None and spec_ineligibility(spec) is None

    def probes(self, spec: RunSpec) -> list[RunSpec]:
        return []  # derived budgeted runs cannot share the batch

    def check(self, spec, results, execute) -> str | None:
        from repro.errors import BudgetExceededError
        from repro.exec.governor import ResourceBudget, measure_run_events

        natural = measure_run_events(spec)
        if natural < 2:
            return None  # too short to squeeze a budget under
        budget = ResourceBudget(max_events=natural // 2)
        budgeted = dataclasses.replace(spec, budget=budget)
        messages = {}
        for engine in ("event", "fastpath"):
            try:
                execute(dataclasses.replace(budgeted, engine=engine))
            except BudgetExceededError as exc:
                messages[engine] = str(exc)
                continue
            except ConfigurationError:
                # The driver declared no replay profile: forced fastpath
                # refuses (correct), leaving no second engine to compare.
                return None
            return (
                f"the {engine} engine completed under "
                f"max_events={budget.max_events} despite a natural event "
                f"count of {natural}"
            )
        if messages["event"] != messages["fastpath"]:
            return (
                "budget trips diverge across engines: "
                f"{_first_difference(messages['event'], messages['fastpath'])}"
            )
        return None


#: The registered catalog, in evaluation (and report) order.
RELATIONS: tuple[Relation, ...] = (
    EngineParity(),
    SeedDeterminism(),
    ObserverNeutrality(),
    SpellingNeutrality(),
    CacheRoundTrip(),
    DropsNotWorse(),
    ContentOrder(),
    BudgetParity(),
)


def relations_by_name(names: Sequence[str] | None = None) -> tuple[Relation, ...]:
    """Resolve ``--relation`` selections against the catalog (order kept)."""
    if not names:
        return RELATIONS
    catalog = {relation.name: relation for relation in RELATIONS}
    selected = []
    for name in names:
        if name not in catalog:
            raise ConfigurationError(
                f"unknown relation {name!r}; known: {', '.join(catalog)}"
            )
        if catalog[name] not in selected:
            selected.append(catalog[name])
    return tuple(selected)
