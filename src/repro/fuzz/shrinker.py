"""Greedy per-knob minimization of a violating spec.

A raw fuzz finding carries every knob the generator happened to sample;
most are irrelevant to the bug. The shrinker walks a fixed list of
simplification passes — each resets one axis of the spec (or removes one
driver parameter) toward its default — keeping a candidate only when the
relation *still* judges it violating. The result is the smallest spec, in
knob-delta terms, that reproduces the finding, which is what lands in the
corpus as a permanent regression test.

Shrinking is greedy and deterministic: passes run in a fixed order, every
accepted candidate restarts the sweep from the simpler spec, and the loop
ends when a full sweep accepts nothing. Each accepted step strictly lowers
:func:`knob_delta`, so ``max_rounds`` only needs to exceed the largest
plausible delta to never truncate a shrink.
"""

from __future__ import annotations

import dataclasses
import json

from repro.exec.spec import DriverSpec, RunSpec
from repro.fuzz.relations import ExecuteFn, Relation

#: Spec axes with their "fully default" values; each is one shrink pass and
#: one unit of :func:`knob_delta`.
_SPEC_DEFAULTS: tuple[tuple[str, object], ...] = (
    ("faults", None),
    ("watchdog", False),
    ("telemetry", False),
    ("verify", False),
    ("horizon", None),
    ("start_time", 0),
    ("fault_seed", 0),
    ("engine", "auto"),
    ("timeout_s", None),
    ("budget", None),
    ("dvsync", None),
    ("buffer_count", None),
    ("architecture", "vsync"),
)

#: Parameters a builder cannot run without — never removed, never counted.
_REQUIRED_PARAMS: dict[str, frozenset[str]] = {
    "repro.exec.builders:burst_animation": frozenset({"name", "target_fdps"}),
    "repro.exec.builders:scenario_driver": frozenset(
        {"name", "description", "refresh_hz", "target_vsync_fdps"}
    ),
}


def _required_params(builder: str) -> frozenset[str]:
    return _REQUIRED_PARAMS.get(builder, frozenset({"name"}))


def knob_delta(spec: RunSpec) -> int:
    """How far *spec* sits from the all-defaults spec, in shrinkable knobs.

    One unit per spec axis off its default plus one per removable driver
    parameter still present. The mutation-smoke test asserts the shrinker
    drives genuine findings down to a small delta.
    """
    delta = sum(
        1 for name, default in _SPEC_DEFAULTS if getattr(spec, name) != default
    )
    required = _required_params(spec.driver.builder)
    delta += sum(1 for key in spec.driver.params if key not in required)
    return delta


def _without_param(driver: DriverSpec, key: str) -> DriverSpec:
    params = driver.params
    params.pop(key, None)
    return DriverSpec.of(driver.builder, **params)


class Shrinker:
    """Minimize a violating spec while a relation keeps failing it.

    Args:
        relation: The violated relation; candidates must stay in its
            ``applies`` domain and keep failing its ``check``.
        execute: In-process execution hook for the relation's probes.
        max_rounds: Greedy steps before giving up on a fixpoint; each step
            removes at least one knob, so the default never truncates.
    """

    def __init__(
        self, relation: Relation, execute: ExecuteFn, max_rounds: int = 32
    ) -> None:
        self.relation = relation
        self.execute = execute
        self.max_rounds = max_rounds
        self.evaluations = 0

    # ------------------------------------------------------------ evaluation
    def violation(self, spec: RunSpec) -> str | None:
        """Re-judge *spec*: the violation detail, or ``None`` if it passes.

        Any exception during evaluation disqualifies the candidate (the
        shrinker must never trade a clean violation for a crash).
        """
        self.evaluations += 1
        if not self.relation.applies(spec):
            return None
        results = [self.execute(probe) for probe in self.relation.probes(spec)]
        return self.relation.check(spec, results, self.execute)

    def _try(self, candidate: RunSpec) -> str | None:
        try:
            return self.violation(candidate)
        except Exception:
            return None

    # ---------------------------------------------------------------- passes
    def _candidates(self, spec: RunSpec) -> list[RunSpec]:
        candidates: list[RunSpec] = []

        def propose(**changes) -> None:
            try:
                candidate = dataclasses.replace(spec, **changes)
            except Exception:
                return  # invalid combination (e.g. watchdog off-architecture)
            if candidate != spec:
                candidates.append(candidate)

        for name, default in _SPEC_DEFAULTS:
            if getattr(spec, name) != default:
                if name == "architecture":
                    # Flipping to the baseline must shed D-VSync-only knobs.
                    propose(architecture="vsync", dvsync=None, watchdog=False)
                else:
                    propose(**{name: default})
        required = _required_params(spec.driver.builder)
        for key in sorted(spec.driver.params):
            if key in required:
                continue
            try:
                slimmer = _without_param(spec.driver, key)
            except Exception:
                continue
            propose(driver=slimmer)
        return candidates

    # ------------------------------------------------------------------ main
    def shrink(self, spec: RunSpec, detail: str) -> tuple[RunSpec, str, int]:
        """Greedily minimize *spec*; returns ``(spec, detail, knob_delta)``.

        *detail* is the original violation message; the returned detail is
        the (possibly different) message the minimized spec fails with.
        """
        current, current_detail = spec, detail
        for _ in range(self.max_rounds):
            improved = False
            for candidate in self._candidates(current):
                verdict = self._try(candidate)
                if verdict is not None:
                    current, current_detail = candidate, verdict
                    improved = True
                    break  # restart passes from the simpler spec
            if not improved:
                break
        return current, current_detail, knob_delta(current)


def spec_delta_summary(original: RunSpec, shrunk: RunSpec) -> str:
    """One-line description of what shrinking removed (for reports)."""
    kept = [
        name
        for name, default in _SPEC_DEFAULTS
        if getattr(shrunk, name) != default
    ]
    removed = json.dumps(
        sorted(set(original.driver.params) - set(shrunk.driver.params))
    )
    return (
        f"knob delta {knob_delta(original)} -> {knob_delta(shrunk)}; "
        f"non-default axes: {', '.join(kept) if kept else 'none'}; "
        f"dropped driver params: {removed}"
    )
