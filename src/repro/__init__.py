"""D-VSync reproduction: decoupled rendering and displaying for smartphone
graphics (Wu et al., ASPLOS 2025).

Quick start::

    from repro import (
        DVSyncConfig, DVSyncScheduler, VSyncScheduler, PIXEL_5,
        AnimationDriver, params_for_target_fdps, fdps,
    )
    from repro.units import ms

    params = params_for_target_fdps(target_fdps=2.0, refresh_hz=60)
    driver = AnimationDriver("demo", params, duration_ns=ms(3000))
    baseline = VSyncScheduler(driver, PIXEL_5).run()

    driver = AnimationDriver("demo", params, duration_ns=ms(3000))
    improved = DVSyncScheduler(driver, PIXEL_5, DVSyncConfig(buffer_count=4)).run()

    print(fdps(baseline), "->", fdps(improved))
"""

from repro.core import (
    AlphaBetaPredictor,
    DecouplingAPI,
    DVSyncConfig,
    DVSyncScheduler,
    FPEStage,
    InputPredictor,
    LastValuePredictor,
    LinearPredictor,
    LTPOCoDesign,
    QuadraticPredictor,
    ZoomingDistancePredictor,
)
from repro.exec import (
    DriverSpec,
    Executor,
    ResultCache,
    RunSpec,
    execute_spec,
    get_default_executor,
    set_default_executor,
    using_executor,
)
from repro.display import (
    ALL_DEVICES,
    MATE_40_PRO,
    MATE_60_PRO,
    MATE_60_PRO_VULKAN,
    PIXEL_5,
    DeviceProfile,
    HWVsyncSource,
    LTPOController,
)
from repro.faults import (
    DegradationWatchdog,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    WatchdogThresholds,
    run_fault_drill,
)
from repro.metrics import (
    count_perceived_stutters,
    fdps,
    frame_distribution,
    latency_summary,
    reduction_percent,
)
from repro.pipeline import FrameCategory, FrameWorkload, RunResult, ScenarioDriver
from repro.sim import SeededRng, Simulator
from repro.vsync import VSyncScheduler
from repro.workloads import (
    AnimationDriver,
    FrameTimeParams,
    FrameTrace,
    InteractionDriver,
    PowerLawFrameModel,
    Scenario,
    TraceDriver,
    params_for_target_fdps,
)

__version__ = "1.0.0"

__all__ = [
    "AlphaBetaPredictor",
    "DecouplingAPI",
    "DVSyncConfig",
    "DVSyncScheduler",
    "FPEStage",
    "InputPredictor",
    "LastValuePredictor",
    "LinearPredictor",
    "LTPOCoDesign",
    "QuadraticPredictor",
    "ZoomingDistancePredictor",
    "ALL_DEVICES",
    "MATE_40_PRO",
    "MATE_60_PRO",
    "MATE_60_PRO_VULKAN",
    "PIXEL_5",
    "DeviceProfile",
    "HWVsyncSource",
    "LTPOController",
    "DriverSpec",
    "Executor",
    "ResultCache",
    "RunSpec",
    "execute_spec",
    "get_default_executor",
    "set_default_executor",
    "using_executor",
    "DegradationWatchdog",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "WatchdogThresholds",
    "run_fault_drill",
    "count_perceived_stutters",
    "fdps",
    "frame_distribution",
    "latency_summary",
    "reduction_percent",
    "FrameCategory",
    "FrameWorkload",
    "RunResult",
    "ScenarioDriver",
    "SeededRng",
    "Simulator",
    "VSyncScheduler",
    "AnimationDriver",
    "FrameTimeParams",
    "FrameTrace",
    "InteractionDriver",
    "PowerLawFrameModel",
    "Scenario",
    "TraceDriver",
    "params_for_target_fdps",
    "__version__",
]
