"""D-VSync reproduction: decoupled rendering and displaying for smartphone
graphics (Wu et al., ASPLOS 2025).

Quick start::

    from repro import PIXEL_5, Scenario, fdps, simulate

    scenario = Scenario(
        name="demo", description="drop-prone animation",
        refresh_hz=60, target_vsync_fdps=2.0,
    )
    baseline = simulate(scenario, PIXEL_5, architecture="vsync")
    improved = simulate(scenario, PIXEL_5)  # architecture="dvsync"

    print(fdps(baseline), "->", fdps(improved))

Pass ``telemetry=True`` (or flip the process-wide switch with
``repro.telemetry.runtime.set_enabled``) to get a
:class:`~repro.telemetry.session.TelemetrySnapshot` on
``result.telemetry`` — spans, counters and profiling blocks exportable to
Chrome trace JSON via :mod:`repro.telemetry.chrome`.

Pass ``verify=True`` (or flip :mod:`repro.verify.runtime`) to ride a runtime
:class:`~repro.verify.invariants.InvariantChecker` along any run;
``python -m repro --verify`` runs the differential VSync/D-VSync oracle and
the golden-trace comparator over the registered scenarios.
"""

from repro.core import (
    AlphaBetaPredictor,
    Arch,
    DecouplingAPI,
    DVSyncConfig,
    SimConfig,
    DVSyncScheduler,
    FPEStage,
    InputPredictor,
    LastValuePredictor,
    LinearPredictor,
    LTPOCoDesign,
    QuadraticPredictor,
    ZoomingDistancePredictor,
)
from repro.exec import (
    DriverSpec,
    Executor,
    ResultCache,
    RunSpec,
    execute_spec,
    get_default_executor,
    set_default_executor,
    using_executor,
)
from repro.display import (
    ALL_DEVICES,
    MATE_40_PRO,
    MATE_60_PRO,
    MATE_60_PRO_VULKAN,
    PIXEL_5,
    DeviceProfile,
    HWVsyncSource,
    LTPOController,
)
from repro.faults import (
    DegradationWatchdog,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    WatchdogThresholds,
    run_fault_drill,
)
from repro.metrics import (
    count_perceived_stutters,
    fdps,
    frame_distribution,
    latency_summary,
    reduction_percent,
)
from repro.facade import simulate
from repro.pipeline import FrameCategory, FrameWorkload, RunResult, ScenarioDriver
from repro.verify import (
    InvariantChecker,
    check_goldens,
    run_differential_oracle,
)
from repro.sim import SeededRng, Simulator
from repro.study import Study, StudyResult, execute_studies
from repro.vsync import VSyncScheduler
from repro.workloads import (
    AnimationDriver,
    FrameTimeParams,
    FrameTrace,
    InteractionDriver,
    PowerLawFrameModel,
    Scenario,
    TraceDriver,
    params_for_target_fdps,
)

__version__ = "1.0.0"

__all__ = [
    "AlphaBetaPredictor",
    "Arch",
    "DecouplingAPI",
    "DVSyncConfig",
    "SimConfig",
    "DVSyncScheduler",
    "FPEStage",
    "InputPredictor",
    "LastValuePredictor",
    "LinearPredictor",
    "LTPOCoDesign",
    "QuadraticPredictor",
    "ZoomingDistancePredictor",
    "ALL_DEVICES",
    "MATE_40_PRO",
    "MATE_60_PRO",
    "MATE_60_PRO_VULKAN",
    "PIXEL_5",
    "DeviceProfile",
    "HWVsyncSource",
    "LTPOController",
    "DriverSpec",
    "Executor",
    "ResultCache",
    "RunSpec",
    "execute_spec",
    "get_default_executor",
    "set_default_executor",
    "using_executor",
    "DegradationWatchdog",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "WatchdogThresholds",
    "run_fault_drill",
    "count_perceived_stutters",
    "fdps",
    "frame_distribution",
    "latency_summary",
    "reduction_percent",
    "FrameCategory",
    "FrameWorkload",
    "RunResult",
    "ScenarioDriver",
    "SeededRng",
    "Simulator",
    "Study",
    "StudyResult",
    "execute_studies",
    "VSyncScheduler",
    "AnimationDriver",
    "FrameTimeParams",
    "FrameTrace",
    "InteractionDriver",
    "PowerLawFrameModel",
    "Scenario",
    "TraceDriver",
    "params_for_target_fdps",
    "simulate",
    "InvariantChecker",
    "check_goldens",
    "run_differential_oracle",
    "__version__",
]
