"""Process-wide verification switch.

Mirrors :mod:`repro.telemetry.runtime`: a scheduler built with ``verify=None``
(the default) consults this switch, so an environment — the test suite, a CI
job, a debugging session — can arm the invariant checker for every run in the
process without threading a parameter through call sites. ``REPRO_VERIFY=1``
arms it from the environment; ``REPRO_VERIFY_STRICT=1`` additionally makes
violations raise :class:`~repro.errors.InvariantViolationError` at run end
(the mode ``tests/conftest.py`` uses for the whole tier-1 suite).
"""

from __future__ import annotations

import os


def _env_enabled() -> bool:
    return os.environ.get("REPRO_VERIFY", "") == "1"


def _env_strict() -> bool:
    return os.environ.get("REPRO_VERIFY_STRICT", "") == "1"


_enabled = _env_enabled()
_strict = _env_strict()


def enabled() -> bool:
    """True when schedulers should attach an invariant checker by default."""
    return _enabled


def strict() -> bool:
    """True when default-attached checkers raise on violations."""
    return _strict


def set_enabled(value: bool, strict: bool | None = None) -> None:
    """Flip the process-wide switch (optionally also the strictness)."""
    global _enabled, _strict
    _enabled = bool(value)
    if strict is not None:
        _strict = bool(strict)


def reset() -> None:
    """Restore the switch to its environment-derived defaults."""
    global _enabled, _strict
    _enabled = _env_enabled()
    _strict = _env_strict()
