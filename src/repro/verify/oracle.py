"""The differential VSync / D-VSync oracle.

Single-run invariants (:mod:`repro.verify.invariants`) cannot check the
paper's *relational* claims — that decoupling helps, and what it is allowed
to cost. The oracle runs the same seeded workload under both architectures
through the executor (one batch, so ``--jobs`` parallelizes and the cache
applies) and asserts, per scenario:

- **invariants-clean** — both runs finish with zero invariant violations
  (the specs carry ``verify=True``, so the checker rode along);
- **drops-not-worse** — D-VSync never drops more effective frames than the
  VSync baseline on identical content (§6.2: pre-rendered frames absorb the
  deadline misses VSync turns into janks);
- **content-order** — both architectures present frames in generation
  order: decoupling reorders *time*, never *content* (§4.4, §7);
- **latency-elastic** — D-VSync's mean rendering latency stays within the
  DTV elasticity bound of the baseline's: the pre-render window may trade at
  most ``pipeline_depth`` periods of latency for its jank wins (§4.3, §6.3).

Every claim failure is a real finding: either a scheduler regression or an
invariant miscalibration. The oracle is wired into ``python -m repro
--verify`` and the CI ``verify`` job.
"""

from __future__ import annotations

import dataclasses

from repro.core.config import DVSyncConfig
from repro.display.device import MATE_40_PRO, MATE_60_PRO, PIXEL_5, DeviceProfile
from repro.errors import ConfigurationError
from repro.exec.executor import Executor, get_default_executor
from repro.exec.spec import DriverSpec, RunSpec
from repro.metrics.latency import latency_summary
from repro.pipeline.scheduler_base import RunResult

#: Periods of extra mean latency D-VSync may pay over the VSync baseline
#: before the oracle calls it a regression. Matches the DTV content-time
#: convention: predictions are back-dated by at most the pipeline depth
#: (§4.4), so accumulation can age content by that much and no more.
ELASTICITY_PERIODS = 2


@dataclasses.dataclass(frozen=True)
class OracleScenario:
    """One seeded workload the oracle runs under both architectures."""

    name: str
    description: str
    driver: DriverSpec
    device: DeviceProfile
    buffer_count: int = 3
    dvsync_buffers: int = 4

    def spec_pair(self) -> tuple[RunSpec, RunSpec]:
        """The (vsync, dvsync) spec pair, with the invariant checker riding."""
        return (
            RunSpec(
                driver=self.driver,
                device=self.device,
                architecture="vsync",
                buffer_count=self.buffer_count,
                verify=True,
            ),
            RunSpec(
                driver=self.driver,
                device=self.device,
                architecture="dvsync",
                dvsync=DVSyncConfig(buffer_count=self.dvsync_buffers),
                verify=True,
            ),
        )


def _burst(name: str, target_fdps: float, refresh_hz: int, **kwargs) -> DriverSpec:
    return DriverSpec.of(
        "repro.exec.builders:burst_animation",
        name=name,
        target_fdps=target_fdps,
        refresh_hz=refresh_hz,
        **kwargs,
    )


#: The registered differential scenarios, spanning the regimes the paper
#: evaluates: light and drop-heavy animation, high-refresh panels, the
#: composite acceptance workload, and interaction (IPL territory).
ORACLE_SCENARIOS = {
    scenario.name: scenario
    for scenario in (
        OracleScenario(
            name="steady-60",
            description="light 60 Hz animation, occasional key frames",
            driver=_burst("oracle-steady", 2.0, 60, duration_ms=800, burst_period_ms=None),
            device=PIXEL_5,
        ),
        OracleScenario(
            name="droppy-60",
            description="drop-heavy 60 Hz animation (jank regime, §6.2)",
            driver=_burst("oracle-droppy", 5.0, 60, duration_ms=800, burst_period_ms=None),
            device=PIXEL_5,
        ),
        OracleScenario(
            name="bursty-90",
            description="two-burst animation on the 90 Hz panel",
            driver=_burst(
                "oracle-bursty", 3.0, 90, duration_ms=500, bursts=2
            ),
            device=MATE_40_PRO,
        ),
        OracleScenario(
            name="heavy-120",
            description="loaded animation on the 120 Hz LTPO panel",
            driver=_burst("oracle-heavy", 4.0, 120, duration_ms=500, burst_period_ms=None),
            device=MATE_60_PRO,
        ),
        OracleScenario(
            name="composite",
            description="open + pinch + scroll acceptance composite",
            driver=DriverSpec.of(
                "repro.faults.drill:drill_driver", scenario="composite"
            ),
            device=PIXEL_5,
        ),
    )
}


@dataclasses.dataclass(frozen=True)
class ClaimOutcome:
    """One relational claim, evaluated for one scenario."""

    scenario: str
    claim: str
    passed: bool
    detail: str


@dataclasses.dataclass
class DifferentialReport:
    """Everything one oracle sweep observed."""

    outcomes: list[ClaimOutcome]

    @property
    def failures(self) -> list[ClaimOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.passed]

    @property
    def passed(self) -> bool:
        return not self.failures

    def render(self) -> str:
        """Multi-line human-readable verdict table."""
        lines = ["differential oracle (vsync vs dvsync):"]
        for outcome in self.outcomes:
            mark = "ok  " if outcome.passed else "FAIL"
            lines.append(
                f"  {mark} {outcome.scenario:<12} {outcome.claim:<18} "
                f"{outcome.detail}"
            )
        verdict = (
            "all claims hold"
            if self.passed
            else f"{len(self.failures)} claim(s) FAILED"
        )
        lines.append(f"  => {verdict}")
        return "\n".join(lines)


def _violation_count(result: RunResult) -> int:
    return result.extra.get("invariants", {}).get("violation_count", 0)


def _presents_in_generation_order(result: RunResult) -> int | None:
    """Index of the first out-of-order present, or None when ordered."""
    last = -1
    for index, present in enumerate(result.presents):
        if present.frame_id <= last:
            return index
        last = present.frame_id
    return None


def _evaluate(
    scenario: OracleScenario, vsync: RunResult, dvsync: RunResult
) -> list[ClaimOutcome]:
    outcomes = []

    checked = sum(
        r.extra.get("invariants", {}).get("checked", 0) for r in (vsync, dvsync)
    )
    violations = _violation_count(vsync) + _violation_count(dvsync)
    outcomes.append(
        ClaimOutcome(
            scenario=scenario.name,
            claim="invariants-clean",
            passed=violations == 0 and checked > 0,
            detail=f"{checked} checks, {violations} violations",
        )
    )

    vsync_drops = len(vsync.effective_drops)
    dvsync_drops = len(dvsync.effective_drops)
    outcomes.append(
        ClaimOutcome(
            scenario=scenario.name,
            claim="drops-not-worse",
            passed=dvsync_drops <= vsync_drops,
            detail=f"dvsync {dvsync_drops} <= vsync {vsync_drops}",
        )
    )

    order_faults = [
        f"{result.scheduler}@{index}"
        for result in (vsync, dvsync)
        if (index := _presents_in_generation_order(result)) is not None
    ]
    outcomes.append(
        ClaimOutcome(
            scenario=scenario.name,
            claim="content-order",
            passed=not order_faults,
            detail=(
                "presents follow generation order"
                if not order_faults
                else f"out of order at {', '.join(order_faults)}"
            ),
        )
    )

    vsync_mean = latency_summary(vsync).mean_ms
    dvsync_mean = latency_summary(dvsync).mean_ms
    slack_ms = ELASTICITY_PERIODS * scenario.device.vsync_period / 1e6
    outcomes.append(
        ClaimOutcome(
            scenario=scenario.name,
            claim="latency-elastic",
            passed=dvsync_mean <= vsync_mean + slack_ms,
            detail=(
                f"dvsync {dvsync_mean:.2f} ms <= vsync {vsync_mean:.2f} "
                f"+ {slack_ms:.2f} ms"
            ),
        )
    )
    return outcomes


def run_differential_oracle(
    names: list[str] | None = None, executor: Executor | None = None
) -> DifferentialReport:
    """Run the registered scenarios under both architectures and judge them.

    All runs go out as one executor batch, so a parallel executor overlaps
    the architecture pairs and the cache short-circuits repeats.
    """
    if names is None:
        names = list(ORACLE_SCENARIOS)
    scenarios = []
    for name in names:
        if name not in ORACLE_SCENARIOS:
            raise ConfigurationError(
                f"unknown oracle scenario {name!r}; "
                f"known: {', '.join(ORACLE_SCENARIOS)}"
            )
        scenarios.append(ORACLE_SCENARIOS[name])

    specs: list[RunSpec] = []
    for scenario in scenarios:
        specs.extend(scenario.spec_pair())
    runner = executor if executor is not None else get_default_executor()
    results = runner.map(specs)

    outcomes: list[ClaimOutcome] = []
    for index, scenario in enumerate(scenarios):
        vsync, dvsync = results[2 * index], results[2 * index + 1]
        outcomes.extend(_evaluate(scenario, vsync, dvsync))
    return DifferentialReport(outcomes=outcomes)
