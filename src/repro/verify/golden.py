"""Golden-trace regression corpus.

Every golden pins one :class:`RunSpec` to the SHA-256 digest of its result's
wire form (floats rounded, so libm noise across platforms cannot flip a
digest). The corpus lives in ``tests/golden/`` and is refreshed by
``scripts/update_goldens.py``; :func:`check_goldens` re-runs every registered
spec and reports drift as a structured diff — which *summary* dimension moved
(frame counts, drops, violations, run length) before falling back to
"frame-level drift" when only the fine-grained digest changed.

A digest mismatch is the point, not a nuisance: any change to scheduler
timing, workload seeding, or serialization shows up here first, and the
review question becomes "is this drift intended?" — answered by regenerating
the corpus in the same commit.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib

from repro.core.config import DVSyncConfig
from repro.display.device import MATE_40_PRO, PIXEL_5
from repro.exec.executor import Executor, get_default_executor
from repro.exec.serialize import result_to_wire
from repro.exec.spec import DriverSpec, RunSpec, canonical_json
from repro.pipeline.scheduler_base import RunResult

#: Bump when the golden payload layout changes (forces regeneration).
GOLDEN_SCHEMA_VERSION = 1

#: Decimal places floats are rounded to before digesting. Timings in this
#: codebase are integers from seeded generators; the only floats are content
#: values, where 6 decimals is far above libm cross-platform variance.
_FLOAT_DECIMALS = 6


def _rounded(value):
    """Recursively round floats so digests survive platform libm drift."""
    if isinstance(value, float):
        return round(value, _FLOAT_DECIMALS)
    if isinstance(value, list):
        return [_rounded(item) for item in value]
    if isinstance(value, dict):
        return {key: _rounded(item) for key, item in value.items()}
    return value


def run_digest(result: RunResult) -> str:
    """SHA-256 digest of a result's behavioural surface (hex).

    Digests the full wire form — frames, drops, presents, busy counters,
    extra (including the invariant verdict) — with floats rounded. Telemetry
    is excluded: it carries wall-clock measurements that differ per host.
    """
    wire = result_to_wire(result)
    wire.pop("telemetry", None)
    return hashlib.sha256(
        canonical_json(_rounded(wire)).encode("utf-8")
    ).hexdigest()


def run_summary(result: RunResult) -> dict:
    """Coarse behavioural summary stored next to the digest for diffing."""
    return {
        "frames": len(result.frames),
        "presents": len(result.presents),
        "drops": len(result.drops),
        "effective_drops": len(result.effective_drops),
        "end_time": result.end_time,
        "violations": result.extra.get("invariants", {}).get(
            "violation_count", None
        ),
    }


def golden_specs() -> dict[str, RunSpec]:
    """The registered corpus: name -> spec (all with the checker riding)."""

    def burst(name: str, target_fdps: float, refresh_hz: int, **kwargs):
        return DriverSpec.of(
            "repro.exec.builders:burst_animation",
            name=name,
            target_fdps=target_fdps,
            refresh_hz=refresh_hz,
            **kwargs,
        )

    steady = burst("golden-steady", 2.0, 60, duration_ms=600, burst_period_ms=None)
    droppy = burst("golden-droppy", 5.0, 60, duration_ms=600, burst_period_ms=None)
    composite = DriverSpec.of(
        "repro.faults.drill:drill_driver", scenario="composite"
    )
    return {
        "vsync-steady-60": RunSpec(
            driver=steady, device=PIXEL_5, architecture="vsync",
            buffer_count=3, verify=True,
        ),
        "dvsync-steady-60": RunSpec(
            driver=steady, device=PIXEL_5, architecture="dvsync",
            dvsync=DVSyncConfig(buffer_count=4), verify=True,
        ),
        "vsync-droppy-60": RunSpec(
            driver=droppy, device=PIXEL_5, architecture="vsync",
            buffer_count=3, verify=True,
        ),
        "dvsync-droppy-60": RunSpec(
            driver=droppy, device=PIXEL_5, architecture="dvsync",
            dvsync=DVSyncConfig(buffer_count=4), verify=True,
        ),
        "dvsync-bursty-90": RunSpec(
            driver=burst("golden-bursty", 3.0, 90, duration_ms=500, bursts=2),
            device=MATE_40_PRO, architecture="dvsync",
            dvsync=DVSyncConfig(buffer_count=4), verify=True,
        ),
        "dvsync-faulted-watchdog": RunSpec(
            driver=composite, device=PIXEL_5, architecture="dvsync",
            dvsync=DVSyncConfig(buffer_count=4), faults="standard",
            fault_seed=7, watchdog=True, verify=True,
        ),
    }


def default_golden_dir() -> pathlib.Path:
    """``tests/golden/`` resolved from the repository checkout."""
    root = pathlib.Path(__file__).resolve().parents[3]
    if (root / "tests").is_dir():
        return root / "tests" / "golden"
    return pathlib.Path.cwd() / "tests" / "golden"


def golden_payload(name: str, spec: RunSpec, result: RunResult) -> dict:
    """The JSON document one golden file stores."""
    return {
        "golden_schema": GOLDEN_SCHEMA_VERSION,
        "name": name,
        "spec": spec.to_wire(),
        "spec_hash": spec.content_hash(),
        "digest": run_digest(result),
        "summary": run_summary(result),
    }


def write_goldens(
    directory: pathlib.Path | str | None = None,
    executor: Executor | None = None,
) -> list[pathlib.Path]:
    """(Re)generate every registered golden file; returns the paths."""
    target = pathlib.Path(directory) if directory else default_golden_dir()
    target.mkdir(parents=True, exist_ok=True)
    specs = golden_specs()
    runner = executor if executor is not None else get_default_executor()
    results = runner.map(list(specs.values()))
    paths = []
    for (name, spec), result in zip(specs.items(), results):
        path = target / f"{name}.json"
        payload = golden_payload(name, spec, result)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        paths.append(path)
    return paths


@dataclasses.dataclass(frozen=True)
class GoldenEntry:
    """Verdict for one registered golden."""

    name: str
    status: str  # "ok" | "missing" | "stale-spec" | "drift"
    detail: str


@dataclasses.dataclass
class GoldenCheckReport:
    """Outcome of comparing the corpus against fresh runs."""

    entries: list[GoldenEntry]

    @property
    def failures(self) -> list[GoldenEntry]:
        return [entry for entry in self.entries if entry.status != "ok"]

    @property
    def passed(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = ["golden-trace corpus:"]
        for entry in self.entries:
            mark = "ok  " if entry.status == "ok" else "FAIL"
            lines.append(
                f"  {mark} {entry.name:<26} {entry.status:<10} {entry.detail}"
            )
        verdict = (
            "corpus matches"
            if self.passed
            else f"{len(self.failures)} golden(s) FAILED "
            "(scripts/update_goldens.py regenerates if the drift is intended)"
        )
        lines.append(f"  => {verdict}")
        return "\n".join(lines)


def _diff_summaries(expected: dict, actual: dict) -> list[str]:
    deltas = []
    for key in sorted(set(expected) | set(actual)):
        if expected.get(key) != actual.get(key):
            deltas.append(f"{key}: {expected.get(key)} -> {actual.get(key)}")
    return deltas


def check_goldens(
    directory: pathlib.Path | str | None = None,
    executor: Executor | None = None,
) -> GoldenCheckReport:
    """Re-run every registered spec and compare against the stored corpus."""
    target = pathlib.Path(directory) if directory else default_golden_dir()
    specs = golden_specs()
    runner = executor if executor is not None else get_default_executor()
    results = runner.map(list(specs.values()))

    entries = []
    for (name, spec), result in zip(specs.items(), results):
        path = target / f"{name}.json"
        if not path.is_file():
            entries.append(
                GoldenEntry(
                    name=name,
                    status="missing",
                    detail=f"{path} absent — run scripts/update_goldens.py",
                )
            )
            continue
        stored = json.loads(path.read_text())
        if stored.get("golden_schema") != GOLDEN_SCHEMA_VERSION or stored.get(
            "spec_hash"
        ) != spec.content_hash():
            entries.append(
                GoldenEntry(
                    name=name,
                    status="stale-spec",
                    detail=(
                        "stored spec/schema no longer matches the registry — "
                        "regenerate the corpus"
                    ),
                )
            )
            continue
        digest = run_digest(result)
        if digest == stored["digest"]:
            entries.append(
                GoldenEntry(
                    name=name, status="ok", detail=f"digest {digest[:12]}…"
                )
            )
            continue
        deltas = _diff_summaries(stored.get("summary", {}), run_summary(result))
        detail = (
            "; ".join(deltas)
            if deltas
            else "frame-level drift (summary unchanged, digest differs)"
        )
        entries.append(GoldenEntry(name=name, status="drift", detail=detail))
    return GoldenCheckReport(entries=entries)
