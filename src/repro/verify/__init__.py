"""Correctness verification: runtime invariants, differential oracle, goldens.

Three layers, each usable on its own:

- :mod:`repro.verify.invariants` — an :class:`InvariantChecker` that rides
  the schedulers' existing hook surfaces and enforces the paper's structural
  claims (buffer conservation, D-Timestamp monotonicity, accumulation limits,
  rate-bound display) while a run executes. Enable per run with
  ``verify=True``, per spec with ``RunSpec(verify=True)``, or process-wide
  via :mod:`repro.verify.runtime`.
- :mod:`repro.verify.oracle` — a differential oracle that runs the same
  seeded workload under VSync and D-VSync and asserts the *relational*
  claims no single run can check (decoupling never drops more, never
  reorders content, pays bounded latency for its wins).
- :mod:`repro.verify.golden` — a golden-trace corpus under ``tests/golden/``
  pinning run digests against behavioural drift, refreshed by
  ``scripts/update_goldens.py``.

``python -m repro --verify`` runs the oracle and the golden comparator.
"""

from repro.verify.golden import (
    GoldenCheckReport,
    check_goldens,
    default_golden_dir,
    golden_specs,
    run_digest,
    write_goldens,
)
from repro.verify.invariants import (
    INVARIANTS,
    InvariantChecker,
    Violation,
    resolve_checker,
)
from repro.verify.oracle import (
    ORACLE_SCENARIOS,
    DifferentialReport,
    run_differential_oracle,
)

__all__ = [
    "INVARIANTS",
    "InvariantChecker",
    "Violation",
    "resolve_checker",
    "ORACLE_SCENARIOS",
    "DifferentialReport",
    "run_differential_oracle",
    "GoldenCheckReport",
    "check_goldens",
    "default_golden_dir",
    "golden_specs",
    "run_digest",
    "write_goldens",
]
