"""Runtime invariant checker for scheduler runs.

The paper's correctness claims are structural, not statistical: buffers are
conserved through the queue (§2), the compositor consumes it FIFO (§4.4),
D-Timestamps are monotone and bounded by the content-time convention (§4.4,
§7), the FPE never accumulates past the pre-render limit (§4.3, §5.1), and
LTPO rate-bound buffers never let a frame rendered at X Hz display at Y Hz
(§5.3). :class:`InvariantChecker` enforces those properties *while a run
executes*, riding the same hook surfaces telemetry uses — a scheduler built
without a checker registers zero verification hooks, so the disabled path
costs one resolve branch at construction and nothing per frame.

Violations are structured :class:`Violation` records attached to
``RunResult.extra["invariants"]``; a *strict* checker additionally raises
:class:`~repro.errors.InvariantViolationError` at the end of ``run()``.
Components that intentionally break an invariant declare it: the fault
injector :meth:`relax`\\ es the checker (violations are expected evidence, not
bugs), and the LTPO co-design ablation :meth:`waive`\\ s the rate-bound check
it exists to violate.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError, InvariantViolationError
from repro.units import period_to_hz

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.display.hal import PresentRecord
    from repro.graphics.buffer import FrameBuffer
    from repro.pipeline.frame import FrameRecord
    from repro.pipeline.scheduler_base import RunResult, SchedulerBase

#: Every invariant the checker can enforce, with its paper anchor. The ids are
#: stable — they appear in violation records, waiver maps, and golden traces.
INVARIANTS = {
    "buffer-conservation": (
        "Queue bookkeeping conserves buffers: slot states partition the pool "
        "and total_queued == total_acquired + queued_depth (§2)."
    ),
    "queue-fifo": (
        "The compositor latches buffers in exactly the order they were "
        "queued (§4.4's FIFO consumption model)."
    ),
    "present-monotone": (
        "Present-fence times strictly increase — the panel never latches two "
        "buffers on one edge (§2)."
    ),
    "present-once": "No frame reaches the panel twice.",
    "content-monotone": (
        "Displayed content timestamps never run backward within a trigger "
        "channel — the §7 'chaotic content' failure."
    ),
    "dts-monotone": (
        "Committed D-Timestamps strictly increase; the DTV slew floor "
        "guarantees forward-only content time (§4.4)."
    ),
    "dts-future-slot": (
        "Every committed display prediction targets a future present slot, "
        "back-dated by at most the pipeline depth (§4.4's content-time "
        "convention)."
    ),
    "accumulation-limit": (
        "The FPE never holds more undisplayed frames than the pre-render "
        "limit when it triggers (§4.3, §5.1)."
    ),
    "rate-bound-display": (
        "A frame rendered for X Hz never presents on a Y Hz panel — the "
        "LTPO co-design drain rule (§5.3)."
    ),
    "dtv-grid-calibration": (
        "With a constant refresh rate, DTV pacing errors are whole VSync "
        "periods: calibration never drifts off the display grid (§4.4)."
    ),
    "drop-accounting": (
        "Every recorded drop was owed content: a queued-late buffer or "
        "frames still in flight (§3.2)."
    ),
    "dtv-tracking": (
        "At run end every still-pending DTV prediction belongs to a frame "
        "that never presented — calibration consumed every present fence "
        "(§4.4)."
    ),
}

#: Cap on *recorded* violations per run; the count keeps counting past it.
_MAX_RECORDED = 200


@dataclasses.dataclass(frozen=True)
class Violation:
    """One observed breach of a runtime invariant."""

    invariant: str
    time: int
    message: str

    def to_wire(self) -> list:
        return [self.invariant, self.time, self.message]


def resolve_checker(verify) -> "InvariantChecker | None":
    """Resolve a scheduler's ``verify`` argument to a checker (or None).

    ``None`` defers to the process-wide switch (:mod:`repro.verify.runtime`),
    ``False`` disables, ``True`` attaches a fresh non-strict checker, and an
    :class:`InvariantChecker` instance is used as given.
    """
    # Imported here, not at module top: the package __init__ re-exports this
    # module, so a top-level ``from repro.verify import runtime`` would cycle.
    from repro.verify import runtime

    if verify is False:
        return None
    if verify is None:
        if not runtime.enabled():
            return None
        return InvariantChecker(strict=runtime.strict())
    if verify is True:
        return InvariantChecker()
    if isinstance(verify, InvariantChecker):
        return verify
    raise ConfigurationError(
        f"verify must be a bool, None, or an InvariantChecker, got {verify!r}"
    )


class InvariantChecker:
    """Enforces the paper-derived runtime invariants over one scheduler run.

    Lifecycle: :meth:`attach` binds the checker to a scheduler at
    construction time (registering only the result annotation); :meth:`arm`
    — called once at the top of ``SchedulerBase.run`` — installs the
    per-event hooks, after every component and listener exists, so the
    checker always observes component state *after* the component updated it.
    """

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self.violations: list[Violation] = []
        self.violation_count = 0
        self.checks = 0
        self.waived: dict[str, str] = {}
        self.relaxed: str | None = None
        self._scheduler: "SchedulerBase | None" = None
        self._armed = False
        # Streaming state.
        self._expected_latch: list[int] = []
        self._last_present_time: int | None = None
        self._presented: set[int] = set()
        self._last_content: dict[bool, int] = {}
        self._last_committed_d_ts: int | None = None
        self._drops_seen = 0
        self._pacing_seen = 0
        self._periods_seen: set[int] = set()

    # ------------------------------------------------------------ exemptions
    def waive(self, invariant: str, reason: str) -> None:
        """Skip one invariant for this run (intentional-breakage ablations)."""
        if invariant not in INVARIANTS:
            raise ConfigurationError(f"unknown invariant {invariant!r}")
        self.waived[invariant] = reason

    def relax(self, reason: str) -> None:
        """Keep recording violations but never raise (fault-injection runs).

        Injected faults legitimately break invariants — off-grid presents
        under VSync jitter, for instance. Those violations are *evidence*
        the fault landed, so they stay in the record; they are just not
        treated as library bugs.
        """
        self.relaxed = reason

    # ------------------------------------------------------------ attachment
    def attach(self, scheduler: "SchedulerBase") -> None:
        """Bind to *scheduler*; per-event hooks install later via :meth:`arm`."""
        if self._scheduler is not None:
            raise ConfigurationError(
                "an InvariantChecker serves exactly one run; build a fresh one"
            )
        self._scheduler = scheduler
        scheduler.result_hooks.append(self._annotate)

    def arm(self) -> None:
        """Install the per-event hooks (idempotent; called at run start)."""
        if self._armed:
            return
        scheduler = self._scheduler
        if scheduler is None:
            raise ConfigurationError("arm() before attach()")
        self._armed = True
        scheduler.buffer_queue.on_buffer_queued.append(self._on_buffer_queued)
        scheduler.compositor.after_tick.append(self._on_tick)
        scheduler.hal.add_listener(self._on_present)
        scheduler.on_frame_spawned.append(self._on_frame_spawned)
        dtv = getattr(scheduler, "dtv", None)
        if dtv is not None:
            dtv.on_commit.append(self._on_dtv_commit)

    # -------------------------------------------------------------- recording
    def _record(self, invariant: str, time: int, message: str) -> None:
        self.violation_count += 1
        if len(self.violations) < _MAX_RECORDED:
            self.violations.append(
                Violation(invariant=invariant, time=time, message=message)
            )

    # ------------------------------------------------------------------ hooks
    def _on_buffer_queued(self, buffer: "FrameBuffer") -> None:
        if buffer.frame_id is not None:
            self._expected_latch.append(buffer.frame_id)

    def _on_tick(self, timestamp: int, index: int) -> None:
        scheduler = self._scheduler
        assert scheduler is not None
        self._periods_seen.add(scheduler.hw_vsync.period)
        self._check_conservation(timestamp)
        self._check_new_drops()
        self._check_new_pacing_errors(timestamp)

    def _check_conservation(self, now: int) -> None:
        from repro.graphics.buffer import BufferState

        if "buffer-conservation" in self.waived:
            return
        scheduler = self._scheduler
        assert scheduler is not None
        queue = scheduler.buffer_queue
        self.checks += 1
        queued_slots = sum(
            1 for b in queue.slots if b.state is BufferState.QUEUED
        )
        acquired_slots = sum(
            1 for b in queue.slots if b.state is BufferState.ACQUIRED
        )
        if queued_slots != queue.queued_depth:
            self._record(
                "buffer-conservation",
                now,
                f"{queued_slots} QUEUED slots but FIFO depth {queue.queued_depth}",
            )
        expected_front = 1 if queue.front is not None else 0
        if acquired_slots != expected_front:
            self._record(
                "buffer-conservation",
                now,
                f"{acquired_slots} ACQUIRED slots with front={queue.front!r}",
            )
        if queue.total_queued != queue.total_acquired + queue.queued_depth:
            self._record(
                "buffer-conservation",
                now,
                f"queued {queue.total_queued} != acquired {queue.total_acquired} "
                f"+ depth {queue.queued_depth}",
            )

    def _check_new_drops(self) -> None:
        scheduler = self._scheduler
        assert scheduler is not None
        drops = scheduler.compositor.drops
        while self._drops_seen < len(drops):
            drop = drops[self._drops_seen]
            self._drops_seen += 1
            if "drop-accounting" in self.waived:
                continue
            self.checks += 1
            if drop.queued_depth == 0 and drop.frames_in_flight == 0:
                self._record(
                    "drop-accounting",
                    drop.time,
                    "drop recorded with nothing queued and nothing in flight",
                )

    def _check_new_pacing_errors(self, now: int) -> None:
        scheduler = self._scheduler
        dtv = getattr(scheduler, "dtv", None)
        if dtv is None:
            return
        errors = dtv.pacing_errors_ns
        new_errors = errors[self._pacing_seen :]
        self._pacing_seen = len(errors)
        if "dtv-grid-calibration" in self.waived or len(self._periods_seen) != 1:
            # A rate switch re-anchors the grid; the modular check only holds
            # while one period has been in effect for the whole run so far.
            return
        (period,) = self._periods_seen
        for error in new_errors:
            self.checks += 1
            if error % period != 0:
                self._record(
                    "dtv-grid-calibration",
                    now,
                    f"pacing error {error} ns is not a multiple of the "
                    f"{period} ns period",
                )

    def _on_present(self, record: "PresentRecord") -> None:
        scheduler = self._scheduler
        assert scheduler is not None
        time = record.present_time
        if "present-monotone" not in self.waived:
            self.checks += 1
            if (
                self._last_present_time is not None
                and time <= self._last_present_time
            ):
                self._record(
                    "present-monotone",
                    time,
                    f"present at {time} after present at {self._last_present_time}",
                )
        self._last_present_time = time
        if "queue-fifo" not in self.waived:
            self.checks += 1
            if not self._expected_latch:
                self._record(
                    "queue-fifo", time, f"frame {record.frame_id} presented "
                    "but nothing was queued"
                )
            else:
                expected = self._expected_latch.pop(0)
                if record.frame_id != expected:
                    self._record(
                        "queue-fifo",
                        time,
                        f"frame {record.frame_id} latched before frame {expected}",
                    )
        if "present-once" not in self.waived:
            self.checks += 1
            if record.frame_id in self._presented:
                self._record(
                    "present-once", time, f"frame {record.frame_id} presented twice"
                )
            self._presented.add(record.frame_id)
        frame = scheduler._frame_by_id(record.frame_id)
        if frame is None:
            return
        if "rate-bound-display" not in self.waived and frame.render_rate_hz:
            self.checks += 1
            panel_hz = round(period_to_hz(record.refresh_period))
            if frame.render_rate_hz != panel_hz:
                self._record(
                    "rate-bound-display",
                    time,
                    f"frame {frame.frame_id} rendered at {frame.render_rate_hz} Hz "
                    f"displayed on a {panel_hz} Hz panel",
                )
        if "content-monotone" not in self.waived:
            self.checks += 1
            last = self._last_content.get(frame.decoupled)
            if last is not None and frame.content_timestamp < last:
                channel = "decoupled" if frame.decoupled else "vsync"
                self._record(
                    "content-monotone",
                    time,
                    f"{channel} content time ran backward: "
                    f"{frame.content_timestamp} after {last}",
                )
            self._last_content[frame.decoupled] = frame.content_timestamp

    def _on_frame_spawned(self, frame: "FrameRecord") -> None:
        if not frame.decoupled:
            return
        scheduler = self._scheduler
        assert scheduler is not None
        fpe = getattr(scheduler, "fpe", None)
        if fpe is None or "accumulation-limit" in self.waived:
            return
        self.checks += 1
        if fpe.occupancy > fpe.prerender_limit:
            self._record(
                "accumulation-limit",
                frame.trigger_time,
                f"frame {frame.frame_id} triggered at occupancy {fpe.occupancy} "
                f"> pre-render limit {fpe.prerender_limit}",
            )

    def _on_dtv_commit(self, prediction) -> None:
        scheduler = self._scheduler
        assert scheduler is not None
        now = scheduler.sim.now
        dtv = scheduler.dtv
        period = scheduler.hw_vsync.period
        if "dts-future-slot" not in self.waived:
            self.checks += 1
            if prediction.predicted_present <= now:
                self._record(
                    "dts-future-slot",
                    now,
                    f"committed present {prediction.predicted_present} is not "
                    f"ahead of commit time {now}",
                )
            floor = (
                prediction.predicted_present
                - dtv.pipeline_depth_periods * period
            )
            if prediction.d_timestamp < floor:
                self._record(
                    "dts-future-slot",
                    now,
                    f"D-Timestamp {prediction.d_timestamp} back-dated past the "
                    f"{dtv.pipeline_depth_periods}-period convention floor {floor}",
                )
        if "dts-monotone" not in self.waived:
            self.checks += 1
            if (
                self._last_committed_d_ts is not None
                and prediction.d_timestamp <= self._last_committed_d_ts
            ):
                self._record(
                    "dts-monotone",
                    now,
                    f"D-Timestamp {prediction.d_timestamp} does not advance past "
                    f"{self._last_committed_d_ts}",
                )
        self._last_committed_d_ts = prediction.d_timestamp

    # ------------------------------------------------------------ run finish
    def _check_dtv_tracking(self, result: "RunResult") -> None:
        scheduler = self._scheduler
        dtv = getattr(scheduler, "dtv", None)
        if dtv is None or "dtv-tracking" in self.waived:
            return
        for frame_id in dtv.pending_frame_ids:
            self.checks += 1
            frame = scheduler._frame_by_id(frame_id)
            if frame is not None and frame.present_time is not None:
                self._record(
                    "dtv-tracking",
                    result.end_time,
                    f"frame {frame_id} presented at {frame.present_time} but its "
                    "prediction was never calibrated",
                )

    def _annotate(self, result: "RunResult") -> None:
        """Result hook: final checks plus the structured summary in extra."""
        self._check_conservation(result.end_time)
        self._check_new_drops()
        self._check_dtv_tracking(result)
        result.extra["invariants"] = {
            "checked": self.checks,
            "violation_count": self.violation_count,
            "violations": [v.to_wire() for v in self.violations],
            "waived": dict(self.waived),
            "relaxed": self.relaxed,
        }

    def enforce(self, result: "RunResult") -> None:
        """Raise on violations when strict (called at the end of ``run()``)."""
        if not self.strict or self.relaxed is not None:
            return
        if self.violation_count == 0:
            return
        preview = "; ".join(
            f"{v.invariant}@{v.time}: {v.message}" for v in self.violations[:5]
        )
        raise InvariantViolationError(
            f"{self.violation_count} invariant violation(s) in "
            f"{result.scheduler}@{result.scenario} — {preview}"
        )
