"""Command-line entry point: ``python -m repro``.

Thin wrapper over the experiment registry so the paper's artifacts can be
regenerated without writing any code:

    python -m repro --list
    python -m repro fig11 fig15
    python -m repro --all --quick

and over the fault drill, for robustness questions:

    python -m repro --faults standard
    python -m repro --faults "vsync-jitter(sigma_us=500);thermal(factor=2.5,start_ms=300,end_ms=800)" --scenario interaction

and over the telemetry subsystem, for observability questions:

    python -m repro fig05 --trace out.json --profile
    python -m repro --all --quick --trace all.json --profile

and over the verification subsystem, for correctness questions:

    python -m repro --verify
    python -m repro --verify --jobs 4

and over the differential spec fuzzer, for everything nobody hand-wrote:

    python -m repro fuzz --budget 200 --seed 0
    python -m repro fuzz --budget 50 --relation engine-parity

and over the resource governor, for runs that must stay bounded:

    python -m repro --all --max-events 2000000 --memory-mb 2048 --keep-going
    python -m repro cache stats
    python -m repro cache gc --quota-mb 256
    python -m repro cache scrub
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys

from repro.errors import ConfigurationError
from repro.exec.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.exec.executor import Executor, set_default_executor
from repro.exec.governor import ResourceBudget, budget_from_env
from repro.experiments import registry
from repro.experiments.registry import EXPERIMENTS, run_all, run_experiment
from repro.experiments.runner import DEFAULT_RUNS
from repro.faults.drill import DRILL_SCENARIOS, run_fault_drill
from repro.telemetry import runtime as telemetry_runtime
from repro.telemetry.chrome import save_chrome_trace
from repro.telemetry.profiler import render_profile, write_bench_telemetry

#: Perf-trajectory artifact ``--all`` writes when telemetry is recording.
BENCH_TELEMETRY_PATH = "BENCH_telemetry.json"


def _cache_main(argv: list[str]) -> int:
    """``python -m repro cache stats|gc|scrub`` — result-cache maintenance."""
    parser = argparse.ArgumentParser(
        prog="python -m repro cache",
        description="Inspect and maintain the on-disk result cache.",
    )
    parser.add_argument(
        "action",
        choices=("stats", "gc", "scrub"),
        help=(
            "stats prints quota/usage/eviction counters; gc LRU-evicts "
            "entries until the store fits its disk quota; scrub eagerly "
            "removes entries that no longer deserialize"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache directory (default: REPRO_CACHE_DIR or .repro-cache/)",
    )
    parser.add_argument(
        "--quota-mb",
        type=float,
        default=None,
        metavar="MB",
        help="disk quota for gc (default: REPRO_CACHE_QUOTA_MB)",
    )
    args = parser.parse_args(argv)
    if args.quota_mb is not None and not args.quota_mb > 0:
        parser.error("--quota-mb must be > 0")
    cache_dir = args.cache_dir or os.environ.get(
        "REPRO_CACHE_DIR", DEFAULT_CACHE_DIR
    )
    try:
        budget = budget_from_env()
    except ConfigurationError as exc:
        parser.error(str(exc))
    quota_bytes = None
    if args.quota_mb is not None:
        quota_bytes = int(args.quota_mb * 1024 * 1024)
    elif budget is not None:
        quota_bytes = budget.cache_quota_bytes
    cache = ResultCache(cache_dir, quota_bytes=quota_bytes)
    if args.action == "gc":
        if quota_bytes is None:
            parser.error(
                "gc needs a quota: pass --quota-mb or set REPRO_CACHE_QUOTA_MB"
            )
        print(f"gc: evicted {cache.gc()} entries")
    elif args.action == "scrub":
        print(f"scrub: removed {cache.scrub()} corrupt entries")
    print(cache.describe())
    return 0


def main(argv: list[str] | None = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "fuzz":
        from repro.fuzz.cli import main as fuzz_main

        return fuzz_main(arguments[1:])
    if arguments and arguments[0] == "cache":
        return _cache_main(arguments[1:])
    argv = arguments
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate D-VSync paper artifacts (figures/tables).",
    )
    parser.add_argument("ids", nargs="*", help="experiment ids, e.g. fig11 tab02")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="subset/fast mode: experiments trim scenarios and cap repetitions",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=DEFAULT_RUNS,
        help=(
            "repetitions per scenario (default: %(default)s; --quick may cap "
            "this further per experiment)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "parallel simulation workers (default: all CPUs); 1 runs "
            "in-process"
        ),
    )
    parser.add_argument(
        "--engine",
        choices=("auto", "event", "fastpath"),
        default=None,
        help=(
            "simulation engine for engine='auto' specs: 'auto' (default) "
            "replays trace-pure runs through the vectorized fastpath and "
            "falls back to the event loop, 'event' forces the full "
            "discrete-event simulator, 'fastpath' forces replay (errors on "
            "specs that cannot be replayed)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed result cache (.repro-cache/)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-run wall-clock deadline; an overdue run fails with a "
            "structured timeout record instead of hanging the batch"
        ),
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "extra attempts for crashed or timed-out runs (default: 1), "
            "with seeded-deterministic backoff; 0 disables retrying"
        ),
    )
    policy_group = parser.add_mutually_exclusive_group()
    policy_group.add_argument(
        "--fail-fast",
        dest="policy",
        action="store_const",
        const="fail-fast",
        help=(
            "abort on the first failed run after salvaging its batch "
            "siblings (default)"
        ),
    )
    policy_group.add_argument(
        "--keep-going",
        dest="policy",
        action="store_const",
        const="keep-going",
        help=(
            "run everything runnable; failed runs are dropped from "
            "aggregates and reported as structured failure records"
        ),
    )
    parser.set_defaults(policy="fail-fast")
    parser.add_argument(
        "--max-events",
        type=int,
        default=None,
        metavar="N",
        help=(
            "per-run simulator event budget; a run trips at exactly this "
            "many events with a deterministic, replayable 'budget' failure"
        ),
    )
    parser.add_argument(
        "--memory-mb",
        type=int,
        default=None,
        metavar="MB",
        help=(
            "per-run worker address-space cap (RLIMIT_AS, process backend); "
            "a blown cap fails the run with kind 'oom' instead of invoking "
            "the OS OOM-killer on the pool"
        ),
    )
    parser.add_argument(
        "--cache-quota-mb",
        type=float,
        default=None,
        metavar="MB",
        help=(
            "result-cache disk quota; every store LRU-evicts back under it "
            "(see also: python -m repro cache gc)"
        ),
    )
    parser.add_argument(
        "--shed",
        action="store_true",
        help=(
            "load-shedding: skip study cells marked sheddable (extra "
            "repetitions, sweep edges) instead of executing them"
        ),
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help=(
            "print result-cache contents; combined with experiment ids or "
            "--all, runs them first and also reports how many specs the "
            "batch collapsed by content hash (deduped)"
        ),
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        help=(
            "run the fault drill under SPEC: 'standard', 'none', or "
            "'kind(key=value,...);...' clauses (see repro.faults)"
        ),
    )
    parser.add_argument(
        "--scenario",
        default="composite",
        choices=DRILL_SCENARIOS,
        help="scenario for the fault drill (default: composite)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=0, help="seed for the fault drill rngs"
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help=(
            "run the correctness suite: the differential VSync/D-VSync "
            "oracle over every registered scenario, then the golden-trace "
            "comparator (exit 1 on any failed claim or drifted golden)"
        ),
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help=(
            "record telemetry and write a Chrome trace JSON of every "
            "instrumented run (load in Perfetto or chrome://tracing)"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "record telemetry and print the wall-clock profile (per-stage "
            "self time, sim event-loop time, executor/cache activity)"
        ),
    )
    args = parser.parse_args(argv)

    recording = args.trace is not None or args.profile
    if recording:
        telemetry_runtime.reset()
        telemetry_runtime.set_enabled(True)

    cache_dir = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
    if args.cache_stats and not (args.all or args.ids):
        print(ResultCache(cache_dir).describe())
        return 0
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.timeout is not None and not args.timeout > 0:
        parser.error("--timeout must be > 0 seconds")
    if args.retries is not None and args.retries < 0:
        parser.error("--retries must be >= 0")
    if args.max_events is not None and args.max_events < 1:
        parser.error("--max-events must be >= 1")
    if args.memory_mb is not None and args.memory_mb < 1:
        parser.error("--memory-mb must be >= 1")
    if args.cache_quota_mb is not None and not args.cache_quota_mb > 0:
        parser.error("--cache-quota-mb must be > 0")
    try:
        budget = budget_from_env()
    except ConfigurationError as exc:
        parser.error(str(exc))
    overrides = {
        name: value
        for name, value in (
            ("max_events", args.max_events),
            ("memory_mb", args.memory_mb),
            ("cache_quota_mb", args.cache_quota_mb),
        )
        if value is not None
    }
    if overrides:
        budget = dataclasses.replace(budget or ResourceBudget(), **overrides)
    if args.engine is not None:
        from repro.fastpath.engine import set_default_engine

        # The env var makes process-pool workers inherit the choice; the
        # setter covers this process, whose default may already be cached.
        os.environ["REPRO_ENGINE"] = args.engine
        set_default_engine(args.engine)
    executor = Executor(
        jobs=args.jobs,
        cache=not args.no_cache,
        cache_dir=cache_dir,
        timeout_s=args.timeout,
        retries=args.retries,
        policy=args.policy,
        budget=budget,
        shed=args.shed,
    )
    set_default_executor(executor)

    if args.verify:
        from repro.verify.golden import check_goldens
        from repro.verify.oracle import run_differential_oracle

        oracle_report = run_differential_oracle(executor=executor)
        golden_report = check_goldens(executor=executor)
        try:
            print(oracle_report.render())
            print()
            print(golden_report.render())
            print(f"executor: {executor.stats.describe()}")
        except BrokenPipeError:  # piping into `head` etc. is fine
            pass
        executor.close()
        return 0 if oracle_report.passed and golden_report.passed else 1
    if args.faults is not None:
        try:
            drill = run_fault_drill(
                args.faults,
                scenario=args.scenario,
                seed=args.fault_seed,
                timeout_s=args.timeout,
            )
        except ConfigurationError as exc:
            parser.error(str(exc))  # exits 2 with a one-line message
        try:
            print(drill.render())
        except BrokenPipeError:  # piping into `head` etc. is fine
            pass
        return 0
    if args.list:
        try:
            for experiment_id in EXPERIMENTS:
                print(experiment_id)
        except BrokenPipeError:  # piping into `head` etc. is fine
            pass
        return 0
    if args.all:
        results = run_all(runs=args.runs, quick=args.quick)
    elif args.ids:
        results = [
            run_experiment(experiment_id, runs=args.runs, quick=args.quick)
            for experiment_id in args.ids
        ]
    else:
        parser.print_help()
        return 2
    try:
        for result in results:
            print(result.render())
            print()
        print(f"executor: {executor.stats.describe()}")
        if args.all and registry.last_union_stats is not None:
            print(f"study: {registry.last_union_stats.describe()}")
        if args.cache_stats:
            print(
                f"dedup: {executor.stats.deduped} specs collapsed by "
                f"content hash within batches"
            )
        if executor.cache is not None:
            print(executor.cache.describe())
        if recording:
            collector = telemetry_runtime.collector()
            if args.trace is not None:
                document = save_chrome_trace(args.trace, collector.snapshots)
                print(
                    f"trace: {args.trace} ({len(collector.snapshots)} runs, "
                    f"{len(document['traceEvents'])} events)"
                )
            if args.profile or args.all:
                print()
                print(render_profile(collector))
            if args.all:
                write_bench_telemetry(BENCH_TELEMETRY_PATH, collector)
                print(f"perf trajectory: {BENCH_TELEMETRY_PATH}")
    except BrokenPipeError:  # piping into `head` etc. is fine
        pass
    executor.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
