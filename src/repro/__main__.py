"""Command-line entry point: ``python -m repro``.

Thin wrapper over the experiment registry so the paper's artifacts can be
regenerated without writing any code:

    python -m repro --list
    python -m repro fig11 fig15
    python -m repro --all --quick
"""

from __future__ import annotations

import argparse

from repro.experiments.registry import EXPERIMENTS, run_all, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate D-VSync paper artifacts (figures/tables).",
    )
    parser.add_argument("ids", nargs="*", help="experiment ids, e.g. fig11 tab02")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--quick", action="store_true", help="subset/fast mode")
    parser.add_argument("--runs", type=int, default=3, help="repetitions per scenario")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in EXPERIMENTS:
            print(experiment_id)
        return 0
    if args.all:
        results = run_all(runs=args.runs, quick=args.quick)
    elif args.ids:
        results = [
            run_experiment(experiment_id, runs=args.runs, quick=args.quick)
            for experiment_id in args.ids
        ]
    else:
        parser.print_help()
        return 2
    try:
        for result in results:
            print(result.render())
            print()
    except BrokenPipeError:  # piping into `head` etc. is fine
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
