"""Graphics substrate: frame buffers, the BufferQueue, and fences."""

from repro.graphics.buffer import BufferState, FrameBuffer
from repro.graphics.bufferqueue import BufferQueue
from repro.graphics.fence import Fence

__all__ = ["BufferState", "FrameBuffer", "BufferQueue", "Fence"]
