"""Synchronization fences.

A :class:`Fence` is a one-shot completion signal, the simulation counterpart
of Android's ``SyncFence``: GPU work signals it, and waiters registered before
the signal run exactly once when it fires. Used for GPU-completion ordering in
the game traces (CPU and GPU stages overlap) and for present fences.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import PipelineError


class Fence:
    """One-shot signalled/unsignalled synchronization primitive."""

    def __init__(self, name: str = "fence") -> None:
        self.name = name
        self._signalled_at: int | None = None
        self._waiters: list[Callable[[int], None]] = []

    @property
    def signalled(self) -> bool:
        """True once :meth:`signal` has been called."""
        return self._signalled_at is not None

    @property
    def signal_time(self) -> int:
        """Time the fence fired; raises if it has not fired yet."""
        if self._signalled_at is None:
            raise PipelineError(f"fence {self.name!r} has not been signalled")
        return self._signalled_at

    def signal(self, now: int) -> None:
        """Fire the fence at time *now*, running all registered waiters."""
        if self._signalled_at is not None:
            raise PipelineError(f"fence {self.name!r} signalled twice")
        self._signalled_at = now
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(now)

    def on_signal(self, callback: Callable[[int], None]) -> None:
        """Run *callback* when the fence fires (immediately if already fired)."""
        if self._signalled_at is not None:
            callback(self._signalled_at)
        else:
            self._waiters.append(callback)
