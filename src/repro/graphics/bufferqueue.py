"""The producer–consumer BufferQueue (§2).

The buffer queue is the contract between the rendering service (producer) and
the screen (consumer): a FIFO of rendered buffers plus a pool of free slots.
Capacity is the knob both architectures turn —

- VSync triple buffering: 3 slots (1 front + 2 back) on Android/iOS;
- OpenHarmony default: 4 slots;
- D-VSync: up to 5 or 7 slots so short frames can accumulate (§4.3, Fig 11).

The queue itself is policy-free: *when* buffers are dequeued and queued is
decided by the schedulers in :mod:`repro.vsync` and :mod:`repro.core`.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import BufferQueueError
from repro.graphics.buffer import BufferState, FrameBuffer


class BufferQueue:
    """FIFO frame-buffer queue with a fixed slot pool.

    Listener hooks let schedulers react to state changes without polling:
    ``on_buffer_queued`` fires when a rendered frame becomes available to the
    consumer, ``on_slot_freed`` when a slot returns to the pool (the event the
    FPE's sync stage waits on).
    """

    def __init__(self, capacity: int, buffer_bytes: int) -> None:
        if capacity < 2:
            raise BufferQueueError(f"capacity must be >= 2 (front + back), got {capacity}")
        if buffer_bytes <= 0:
            raise BufferQueueError(f"buffer_bytes must be positive, got {buffer_bytes}")
        self.capacity = capacity
        self.buffer_bytes = buffer_bytes
        self._slots = [FrameBuffer(slot=i, size_bytes=buffer_bytes) for i in range(capacity)]
        self._queued_fifo: list[FrameBuffer] = []
        self._front: FrameBuffer | None = None
        self.on_buffer_queued: list[Callable[[FrameBuffer], None]] = []
        self.on_slot_freed: list[Callable[[], None]] = []
        self.max_queued_depth = 0
        self.total_queued = 0
        self.total_acquired = 0
        # Fault-injection seam (repro.faults): when set, ``try_dequeue``
        # consults the gate first and reports allocation failure (returns
        # None) whenever it answers False — gralloc/ion allocation pressure.
        # Whoever denies the dequeue is responsible for scheduling a retry
        # via :meth:`poke_producers`.
        self.dequeue_gate: Callable[[], bool] | None = None
        self.denied_dequeues = 0

    # ------------------------------------------------------------------ state
    @property
    def slots(self) -> tuple[FrameBuffer, ...]:
        """All buffer slots (for inspection and memory accounting)."""
        return tuple(self._slots)

    @property
    def queued_depth(self) -> int:
        """Number of rendered buffers waiting for display."""
        return len(self._queued_fifo)

    @property
    def front(self) -> FrameBuffer | None:
        """The buffer currently on screen, if any."""
        return self._front

    @property
    def free_count(self) -> int:
        """Number of FREE slots available to producers."""
        return sum(1 for b in self._slots if b.state is BufferState.FREE)

    @property
    def dequeued_count(self) -> int:
        """Number of slots currently being rendered into."""
        return sum(1 for b in self._slots if b.state is BufferState.DEQUEUED)

    @property
    def memory_bytes(self) -> int:
        """Total graphics memory pinned by this queue (§6.4)."""
        return self.capacity * self.buffer_bytes

    def peek_queued(self) -> FrameBuffer | None:
        """The oldest queued buffer (next to be latched), without removing it."""
        return self._queued_fifo[0] if self._queued_fifo else None

    # --------------------------------------------------------------- producer
    def try_dequeue(self) -> FrameBuffer | None:
        """Hand a FREE slot to the producer, or None if the pool is empty.

        A configured :attr:`dequeue_gate` may also deny the allocation even
        while free slots exist (injected buffer pressure); denials are counted
        in :attr:`denied_dequeues`.
        """
        if self.dequeue_gate is not None and not self.dequeue_gate():
            self.denied_dequeues += 1
            return None
        for buffer in self._slots:
            if buffer.state is BufferState.FREE:
                buffer.mark_dequeued()
                return buffer
        return None

    def poke_producers(self) -> None:
        """Fire the slot-freed hooks so stalled producers retry a dequeue.

        Used by fault models after a denied allocation: the pipeline parks in
        its dequeue-wait state and only wakes on this notification.
        """
        self._notify_freed()

    def queue(
        self,
        buffer: FrameBuffer,
        frame_id: int,
        content_timestamp: int,
        render_rate_hz: int,
        now: int,
    ) -> None:
        """Publish a rendered buffer to the display FIFO."""
        if buffer not in self._slots:
            raise BufferQueueError(f"buffer slot {buffer.slot} does not belong to this queue")
        buffer.mark_queued(frame_id, content_timestamp, render_rate_hz, now)
        self._queued_fifo.append(buffer)
        self.total_queued += 1
        self.max_queued_depth = max(self.max_queued_depth, len(self._queued_fifo))
        for hook in list(self.on_buffer_queued):
            hook(buffer)

    def cancel(self, buffer: FrameBuffer) -> None:
        """Return a DEQUEUED buffer to the pool without queueing it."""
        if buffer.state is not BufferState.DEQUEUED:
            raise BufferQueueError(
                f"only dequeued buffers can be cancelled, slot {buffer.slot} is "
                f"{buffer.state.value}"
            )
        buffer.mark_free()
        self._notify_freed()

    # --------------------------------------------------------------- consumer
    def acquire(self) -> FrameBuffer:
        """Latch the oldest queued buffer as the new front buffer.

        The previous front buffer (if any) is released back to the pool, which
        is exactly the swap that happens on a HW-VSync edge (§2). Raises if
        nothing is queued — the consumer must check :attr:`queued_depth` (that
        situation is a jank, handled by the compositor, not the queue).
        """
        if not self._queued_fifo:
            raise BufferQueueError("acquire() with an empty queue: this VSync is a jank")
        buffer = self._queued_fifo.pop(0)
        buffer.mark_acquired()
        previous = self._front
        self._front = buffer
        self.total_acquired += 1
        if previous is not None:
            previous.mark_free()
            self._notify_freed()
        return buffer

    def _notify_freed(self) -> None:
        for hook in list(self.on_slot_freed):
            hook()
