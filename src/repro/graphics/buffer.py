"""Frame buffers and their state machine.

A :class:`FrameBuffer` models one slot of graphics memory cycling through the
classic BufferQueue states:

``FREE`` → (producer dequeues) → ``DEQUEUED`` → (producer queues rendered
content) → ``QUEUED`` → (compositor latches at VSync) → ``ACQUIRED`` →
(next latch replaces it) → ``FREE``.

Buffers carry the metadata D-VSync needs: the content timestamp the frame was
rendered for, and — for the LTPO co-design (§5.3) — the rendering rate bound
to the buffer, which controls how long the frame stays on screen and when the
panel may switch refresh rates.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.errors import BufferQueueError


class BufferState(enum.Enum):
    """Lifecycle states of a frame buffer in the queue."""

    FREE = "free"
    DEQUEUED = "dequeued"
    QUEUED = "queued"
    ACQUIRED = "acquired"


@dataclasses.dataclass
class FrameBuffer:
    """One slot of frame-buffer memory plus its per-frame metadata.

    Attributes:
        slot: Stable identity of the buffer within its queue.
        size_bytes: Graphics-memory footprint (full-screen RGBA8888 is ~10 MB
            on Pixel 5 and ~15 MB on the Mate phones, §6.4).
        state: Current lifecycle state.
        frame_id: Id of the frame currently stored, or None when FREE.
        content_timestamp: Timestamp (ns) the stored content represents.
        render_rate_hz: Refresh rate the frame was produced for (LTPO).
        queued_at: Simulation time the buffer entered QUEUED state.
    """

    slot: int
    size_bytes: int
    state: BufferState = BufferState.FREE
    frame_id: int | None = None
    content_timestamp: int | None = None
    render_rate_hz: int | None = None
    queued_at: int | None = None

    def _transition(self, expected: BufferState, target: BufferState) -> None:
        if self.state is not expected:
            raise BufferQueueError(
                f"buffer slot {self.slot}: illegal transition {self.state.value} -> "
                f"{target.value} (expected to be {expected.value})"
            )
        self.state = target

    def mark_dequeued(self) -> None:
        """FREE → DEQUEUED: a producer starts rendering into this buffer."""
        self._transition(BufferState.FREE, BufferState.DEQUEUED)
        self.frame_id = None
        self.content_timestamp = None
        self.render_rate_hz = None
        self.queued_at = None

    def mark_queued(
        self, frame_id: int, content_timestamp: int, render_rate_hz: int, now: int
    ) -> None:
        """DEQUEUED → QUEUED: rendered content is ready for display."""
        self._transition(BufferState.DEQUEUED, BufferState.QUEUED)
        self.frame_id = frame_id
        self.content_timestamp = content_timestamp
        self.render_rate_hz = render_rate_hz
        self.queued_at = now

    def mark_acquired(self) -> None:
        """QUEUED → ACQUIRED: the compositor latched this buffer for scanout."""
        self._transition(BufferState.QUEUED, BufferState.ACQUIRED)

    def mark_free(self) -> None:
        """ACQUIRED or DEQUEUED → FREE: the buffer returns to the pool.

        DEQUEUED → FREE happens when a producer cancels an in-flight frame
        (e.g. the runtime controller switches architectures mid-animation).
        """
        if self.state not in (BufferState.ACQUIRED, BufferState.DEQUEUED):
            raise BufferQueueError(
                f"buffer slot {self.slot}: cannot free from state {self.state.value}"
            )
        self.state = BufferState.FREE
        self.frame_id = None
        self.content_timestamp = None
        self.render_rate_hz = None
        self.queued_at = None
