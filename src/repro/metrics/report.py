"""Plain-text report tables for the experiment harness.

Every experiment prints the same rows/series its paper figure or table
reports; these helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        line = "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def paper_vs_measured(
    title: str,
    rows: Sequence[tuple[str, object, object]],
    measured_label: str = "measured",
) -> str:
    """Standard paper-vs-measured block used in EXPERIMENTS.md and stdout."""
    table = format_table(
        ["metric", "paper", measured_label],
        [(name, paper, measured) for name, paper, measured in rows],
    )
    return f"== {title} ==\n{table}"
