"""Power and CPU-instruction accounting (§6.4, §6.7).

The paper measures end-to-end device power with a hardware tester and CPU
instructions with perf counters; this module reproduces the same accounting
analytically from the run's busy-time ledger:

- UI/render threads run on middle/big cores (high power while busy);
- the VSync/D-VSync scheduler threads run on little cores (§6.4), so the
  102.6 µs/frame FPE+DTV overhead is charged at little-core power;
- the GPU has its own rail;
- the panel + SoC baseline dominates total power, which is why D-VSync's
  extra work (rendering frames VSync would have dropped, plus the module
  overhead) lands at a fraction of a percent end-to-end.
"""

from __future__ import annotations

import dataclasses

from repro.metrics.coerce import as_result
from repro.units import to_seconds

# Representative mobile-SoC power levels (watts).
BIG_CORE_ACTIVE_W = 1.6
LITTLE_CORE_ACTIVE_W = 0.25
GPU_ACTIVE_W = 2.2
DEVICE_BASELINE_W = 4.0  # panel, DDR, rails: what the power tester sees active

# Render-service instruction throughput while busy (instructions per ns).
# 10.79 M instructions over ~4 ms of render work per frame (§6.7) ≈ 2.7/ns
# on the middle/big cores; the VSync/D-VSync threads run on little cores
# (§6.4) retiring far fewer instructions per wall nanosecond.
INSTRUCTIONS_PER_BUSY_NS = 2.7
LITTLE_INSTRUCTIONS_PER_BUSY_NS = 0.55


@dataclasses.dataclass(frozen=True)
class PowerBreakdown:
    """Energy ledger of one run (millijoules)."""

    cpu_mj: float
    scheduler_mj: float
    gpu_mj: float
    baseline_mj: float

    @property
    def total_mj(self) -> float:
        return self.cpu_mj + self.scheduler_mj + self.gpu_mj + self.baseline_mj


def power_breakdown(result, extra_overhead_ns: int = 0) -> PowerBreakdown:
    """Compute the energy ledger for one run.

    ``extra_overhead_ns`` adds app-side costs (e.g. the IPL curve fitting the
    map app runs per frame, §6.5) at big-core power.
    """
    result = as_result(result)
    duration_s = to_seconds(max(result.end_time - result.start_time, 1))
    cpu_busy_s = to_seconds(result.ui_busy_ns + result.render_busy_ns + extra_overhead_ns)
    scheduler_s = to_seconds(result.scheduler_overhead_ns)
    gpu_s = to_seconds(result.gpu_busy_ns)
    return PowerBreakdown(
        cpu_mj=cpu_busy_s * BIG_CORE_ACTIVE_W * 1000,
        scheduler_mj=scheduler_s * LITTLE_CORE_ACTIVE_W * 1000,
        gpu_mj=gpu_s * GPU_ACTIVE_W * 1000,
        baseline_mj=duration_s * DEVICE_BASELINE_W * 1000,
    )


def power_increase_percent(
    baseline,
    improved,
    baseline_extra_ns: int = 0,
    improved_extra_ns: int = 0,
) -> float:
    """End-to-end power increase of *improved* over *baseline* (%).

    Normalizes by average power (energy / duration) so runs of slightly
    different lengths compare fairly, exactly like a fixed-window power-tester
    reading.
    """
    baseline = as_result(baseline)
    improved = as_result(improved)
    base = power_breakdown(baseline, baseline_extra_ns)
    new = power_breakdown(improved, improved_extra_ns)
    base_duration = to_seconds(max(baseline.end_time - baseline.start_time, 1))
    new_duration = to_seconds(max(improved.end_time - improved.start_time, 1))
    base_watts = base.total_mj / 1000 / base_duration
    new_watts = new.total_mj / 1000 / new_duration
    if base_watts <= 0:
        return 0.0
    return (new_watts - base_watts) / base_watts * 100.0


def instructions_per_frame(result) -> float:
    """Render-service instructions per frame (§6.7's 10.8 M figure).

    Counts render-thread work at big-core throughput plus the little-core
    scheduler-module overhead, divided by the number of frames executed.
    """
    result = as_result(result)
    frames = max(1, len(result.frames))
    instructions = (
        result.render_busy_ns * INSTRUCTIONS_PER_BUSY_NS
        + result.scheduler_overhead_ns * LITTLE_INSTRUCTIONS_PER_BUSY_NS
    )
    return instructions / frames


def scheduler_overhead_per_frame_us(result) -> float:
    """Average FPE+DTV execution time per frame in microseconds (§6.4)."""
    result = as_result(result)
    frames = max(1, len(result.frames))
    return result.scheduler_overhead_ns / frames / 1000
