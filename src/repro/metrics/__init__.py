"""Metrics: everything the paper's evaluation section reports."""

from repro.metrics.fdps import drop_fraction, effective_fps, fdps, reduction_percent
from repro.metrics.frames import (
    FrameDistribution,
    FrameOutcome,
    classify_frame,
    frame_distribution,
)
from repro.metrics.latency import (
    LatencySummary,
    content_staleness_ms,
    frame_latencies_ms,
    latency_summary,
    queue_wait_ms,
    touch_lag_pixels,
)
from repro.metrics.memory import MemoryFootprint, extra_memory_mb, queue_footprint
from repro.metrics.power import (
    PowerBreakdown,
    instructions_per_frame,
    power_breakdown,
    power_increase_percent,
    scheduler_overhead_per_frame_us,
)
from repro.metrics.report import format_table, paper_vs_measured
from repro.metrics.stutter import (
    DropEpisode,
    count_perceived_stutters,
    drop_episodes,
    longest_freeze_ms,
)

__all__ = [
    "drop_fraction",
    "effective_fps",
    "fdps",
    "reduction_percent",
    "FrameDistribution",
    "FrameOutcome",
    "classify_frame",
    "frame_distribution",
    "LatencySummary",
    "content_staleness_ms",
    "frame_latencies_ms",
    "latency_summary",
    "queue_wait_ms",
    "touch_lag_pixels",
    "MemoryFootprint",
    "extra_memory_mb",
    "queue_footprint",
    "PowerBreakdown",
    "instructions_per_frame",
    "power_breakdown",
    "power_increase_percent",
    "scheduler_overhead_per_frame_us",
    "format_table",
    "paper_vs_measured",
    "DropEpisode",
    "count_perceived_stutters",
    "drop_episodes",
    "longest_freeze_ms",
]
