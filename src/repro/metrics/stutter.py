"""Perceptual stutter model (§6.2, Table 2).

The paper's subjective data comes from trained UX evaluators whose reports
are confirmed with a high-speed camera: a perceived stutter is a repeated
frame during visible motion. This module encodes that as a deterministic
perceptual rule applied to the drop log:

- consecutive janks are merged into one *drop episode* (the eye perceives the
  freeze, not each missed refresh);
- an episode is *perceived* when the screen stalls long enough to notice:
  two or more consecutive missed refreshes, or a single miss while the
  content moves faster than a perceptual speed threshold (slow-motion single
  drops hide below the human JND, which is also what lets LTPO lower rates).
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.metrics.coerce import as_result
from repro.pipeline.compositor import DropEvent

# Motion faster than this (panel heights per second) makes even a single
# missed refresh visible to a trained evaluator.
DEFAULT_SPEED_JND = 0.8


@dataclasses.dataclass(frozen=True)
class DropEpisode:
    """A maximal run of consecutive janks."""

    start_time: int
    vsync_start: int
    length: int

    @property
    def perceivable_length(self) -> int:
        """Consecutive missed refreshes (the camera-visible freeze length)."""
        return self.length


def drop_episodes(drops: list[DropEvent]) -> list[DropEpisode]:
    """Merge consecutive-VSync drops into episodes."""
    episodes: list[DropEpisode] = []
    run_start: DropEvent | None = None
    run_length = 0
    previous_index = None
    for drop in drops:
        if previous_index is not None and drop.vsync_index == previous_index + 1:
            run_length += 1
        else:
            if run_start is not None:
                episodes.append(
                    DropEpisode(run_start.time, run_start.vsync_index, run_length)
                )
            run_start = drop
            run_length = 1
        previous_index = drop.vsync_index
    if run_start is not None:
        episodes.append(DropEpisode(run_start.time, run_start.vsync_index, run_length))
    return episodes


def count_perceived_stutters(
    result,
    speed_at: Callable[[int], float] | None = None,
    speed_jnd: float = DEFAULT_SPEED_JND,
) -> int:
    """Number of stutters a trained evaluator would report for one run.

    Args:
        result: The run to evaluate.
        speed_at: Motion speed (panel heights/s) at an absolute time; usually
            the driver's ``animation_speed``. When omitted, single-frame
            episodes are assumed visible (fast motion).
        speed_jnd: Speed above which a single missed refresh is noticeable.
    """
    stutters = 0
    for episode in drop_episodes(as_result(result).effective_drops):
        if episode.length >= 2:
            stutters += 1
        elif speed_at is None or speed_at(episode.start_time) >= speed_jnd:
            stutters += 1
    return stutters


def longest_freeze_ms(result) -> float:
    """Longest consecutive freeze in milliseconds (QoE tail indicator)."""
    result = as_result(result)
    episodes = drop_episodes(result.effective_drops)
    if not episodes:
        return 0.0
    period_ms = result.device.vsync_period / 1e6
    return max(e.length for e in episodes) * period_ms
