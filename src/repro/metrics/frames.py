"""Per-frame outcome classification (Fig 6).

Every display slot in a run ends one of three ways:

- **direct composition** — the frame's buffer was latched at the first VSync
  edge after it was queued (no waiting);
- **buffer stuffing** — the buffer sat in the queue for one or more extra
  periods behind older buffers (the latency tax of §3.3);
- **frame drop** — the edge had no new buffer and the previous frame was
  shown again.

Under D-VSync, stuffing is *intentional* accumulation and its wait is hidden
by the D-Timestamp; the classification still reports it so experiments can
show where the queue time went.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.metrics.coerce import as_result
from repro.pipeline.frame import FrameRecord


class FrameOutcome(enum.Enum):
    """How a display slot was filled."""

    DIRECT = "direct"
    STUFFED = "stuffed"
    DROP = "drop"


@dataclasses.dataclass(frozen=True)
class FrameDistribution:
    """Fig 6's per-app frame distribution, as fractions of display slots."""

    direct: int
    stuffed: int
    drops: int

    @property
    def total(self) -> int:
        return self.direct + self.stuffed + self.drops

    def fraction(self, outcome: FrameOutcome) -> float:
        """Share of display slots with the given outcome."""
        if self.total == 0:
            return 0.0
        counts = {
            FrameOutcome.DIRECT: self.direct,
            FrameOutcome.STUFFED: self.stuffed,
            FrameOutcome.DROP: self.drops,
        }
        return counts[outcome] / self.total


def classify_frame(frame: FrameRecord, period_ns: int) -> FrameOutcome | None:
    """Classify one presented frame; None if it never displayed."""
    if not frame.presented or frame.latch_time is None or frame.queued_time is None:
        return None
    if frame.queue_wait_ns < period_ns:
        return FrameOutcome.DIRECT
    return FrameOutcome.STUFFED


def frame_distribution(result) -> FrameDistribution:
    """Compute the Fig 6 distribution for one run."""
    result = as_result(result)
    period = result.device.vsync_period
    direct = stuffed = 0
    for frame in result.presented_frames:
        outcome = classify_frame(frame, period)
        if outcome is FrameOutcome.DIRECT:
            direct += 1
        elif outcome is FrameOutcome.STUFFED:
            stuffed += 1
    return FrameDistribution(direct=direct, stuffed=stuffed, drops=len(result.effective_drops))
