"""Frame drops per second (FDPS) — the industrial headline metric (§3.2).

FDPS divides the janks observed during active display time by that time's
length. The paper's testing framework reports it per use case; Figures 11–14
are FDPS bar charts.
"""

from __future__ import annotations

from repro.metrics.coerce import as_result
from repro.units import to_seconds


def fdps(result) -> float:
    """Frame drops per second of active display time for one run."""
    result = as_result(result)
    span = result.display_span_ns
    if span <= 0:
        return 0.0
    return len(result.effective_drops) / to_seconds(span)


def drop_fraction(result) -> float:
    """Janks as a fraction of total display slots (Fig 5's FD %)."""
    result = as_result(result)
    drops = len(result.effective_drops)
    slots = drops + len(result.presents)
    if slots == 0:
        return 0.0
    return drops / slots


def effective_fps(result) -> float:
    """Distinct frames actually shown per second (the 95–105 FPS of §3.2)."""
    result = as_result(result)
    span = result.display_span_ns
    if span <= 0:
        return 0.0
    return len(result.presents) / to_seconds(span)


def reduction_percent(baseline: float, improved: float) -> float:
    """Percentage reduction from *baseline* to *improved* (0 when baseline=0)."""
    if baseline <= 0:
        return 0.0
    return (baseline - improved) / baseline * 100.0
