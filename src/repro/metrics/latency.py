"""Rendering-latency metrics (§3.3, §6.3, Fig 15).

The paper's measurement script computes, for every displayed frame, the
duration from the frame's execution anchor — the VSync-app tick under VSync,
the D-Timestamp under D-VSync — to its present fence, across buffer-stuffing
frames, direct-composition frames, and post-drop frames alike. This module
reproduces that script over :class:`RunResult` records and adds the
content-staleness view (how old the displayed content is), which quantifies
what the user's finger perceives (Fig 7).
"""

from __future__ import annotations

import dataclasses
import statistics

from repro.metrics.coerce import as_result
from repro.units import to_ms


@dataclasses.dataclass(frozen=True)
class LatencySummary:
    """Distribution summary of per-frame rendering latency (ms)."""

    mean_ms: float
    median_ms: float
    p95_ms: float
    max_ms: float
    samples: int

    @staticmethod
    def from_values(values_ms: list[float]) -> "LatencySummary":
        if not values_ms:
            return LatencySummary(0.0, 0.0, 0.0, 0.0, 0)
        ordered = sorted(values_ms)
        n = len(ordered)
        return LatencySummary(
            mean_ms=statistics.fmean(ordered),
            median_ms=ordered[n // 2],
            p95_ms=ordered[min(n - 1, round(0.95 * n))],
            max_ms=ordered[-1],
            samples=n,
        )


def frame_latencies_ms(result) -> list[float]:
    """Per-frame §6.3 rendering latency, in milliseconds."""
    return [to_ms(f.latency_ns) for f in as_result(result).presented_frames]


def latency_summary(result) -> LatencySummary:
    """Summary of the §6.3 rendering latency for one run."""
    return LatencySummary.from_values(frame_latencies_ms(result))


def content_staleness_ms(result) -> list[float]:
    """Age of the displayed content at each present (ms).

    ``present − content_timestamp``: how far behind "now" the pixels are.
    Under D-VSync this stays at the pipeline depth regardless of queue
    residence, because DTV future-dates the content.
    """
    values = []
    for frame in as_result(result).presented_frames:
        assert frame.present_time is not None
        values.append(to_ms(frame.present_time - frame.content_timestamp))
    return values


def queue_wait_ms(result) -> list[float]:
    """Per-frame buffer-queue residence time (the stuffing wait), ms."""
    return [to_ms(f.queue_wait_ns) for f in as_result(result).presented_frames]


def touch_lag_pixels(
    result, true_value_at, panel_height_px: int
) -> list[float]:
    """Fig 7's ball-behind-finger lag, in pixels.

    For each presented frame, the lag is the distance between where the
    content *was drawn* (the frame's recorded content value, in panel
    heights) and where the ground truth — ``true_value_at(present_time)``,
    usually the driver's ``true_value`` — sits when the frame is actually on
    screen.
    """
    lags = []
    for frame in as_result(result).presented_frames:
        if frame.content_value is None or frame.present_time is None:
            continue
        actual = true_value_at(frame.present_time)
        lags.append(abs(actual - frame.content_value) * panel_height_px)
    return lags
