"""Uniform result coercion for metric entry points.

Metrics are computed from many sources: a live scheduler run, a fastpath
replay, an executor cache hit, a study cell pulled from disk, or a raw
wire-form dict parsed out of an exported JSON report. :func:`as_result`
lets every metric entry point accept all of them uniformly — a
:class:`~repro.pipeline.scheduler_base.RunResult` passes through, and a
mapping carrying the serializer's ``"schema"`` key is rebuilt through
:func:`repro.exec.serialize.result_from_wire` (the same lossless round-trip
the executor itself normalizes results through).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.pipeline.scheduler_base import RunResult


def as_result(result: "RunResult | Mapping[str, Any]") -> RunResult:
    """Coerce *result* into a :class:`RunResult`.

    Accepts a :class:`RunResult` (from either engine — the fastpath replay
    produces the same normalized type) or its wire-form dict as produced by
    :func:`repro.exec.serialize.result_to_wire`.
    """
    if isinstance(result, RunResult):
        return result
    if isinstance(result, Mapping):
        if "schema" not in result:
            raise TypeError(
                "mapping is not a RunResult wire form (missing 'schema' key); "
                "produce one with repro.exec.serialize.result_to_wire"
            )
        from repro.exec.serialize import result_from_wire  # lazy: avoids a cycle

        return result_from_wire(dict(result))
    raise TypeError(
        f"expected a RunResult or its wire-form mapping, got {type(result).__name__}"
    )
