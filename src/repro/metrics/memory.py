"""Graphics-memory accounting (§6.4).

D-VSync's only material memory cost is the enlarged buffer queue: a
full-screen RGBA8888 buffer is ~10 MB on Pixel 5 and ~15 MB on the Mate
phones, so a 4-buffer D-VSync queue costs one extra buffer per app over
Android's triple buffering — and nothing over OpenHarmony's 4-buffer default.
The FPE/DTV/API bookkeeping itself is under 10 KB.
"""

from __future__ import annotations

import dataclasses

from repro.display.device import DeviceProfile

# The scheduler module's own state (§6.4: "less than 10 KB").
MODULE_STATE_BYTES = 8 * 1024


@dataclasses.dataclass(frozen=True)
class MemoryFootprint:
    """Graphics-memory cost of one rendering configuration."""

    device: str
    buffer_count: int
    buffer_bytes: int

    @property
    def queue_bytes(self) -> int:
        return self.buffer_count * self.buffer_bytes

    @property
    def queue_mb(self) -> float:
        return self.queue_bytes / (1024 * 1024)


def queue_footprint(device: DeviceProfile, buffer_count: int) -> MemoryFootprint:
    """Memory pinned by a buffer queue of *buffer_count* slots on *device*."""
    return MemoryFootprint(
        device=device.name,
        buffer_count=buffer_count,
        buffer_bytes=device.framebuffer_bytes,
    )


def extra_memory_mb(device: DeviceProfile, dvsync_buffers: int) -> float:
    """Per-app memory D-VSync adds over the device's stock queue (§6.4).

    Positive on Android (stock triple buffering); zero on the Mate phones
    when D-VSync uses the render service's existing 4 buffers.
    """
    stock = queue_footprint(device, device.default_buffer_count)
    dvsync = queue_footprint(device, dvsync_buffers)
    extra_buffers_mb = max(0.0, dvsync.queue_mb - stock.queue_mb)
    return extra_buffers_mb + MODULE_STATE_BYTES / (1024 * 1024)
