"""Setup shim: metadata lives in pyproject.toml.

Kept so environments without the `wheel` package (no PEP 660 editable
builds) can still do `pip install -e .` / `python setup.py develop`.
"""
from setuptools import setup

setup()
