#!/usr/bin/env python
"""CI gate: the fastpath replay engine must be exact and must pay.

Two claims, checked against the live quick matrix (the union of every
registered experiment's study cells — the same specs ``--all --quick``
submits):

1. **Parity.** Every fastpath-eligible spec produces a byte-identical
   wire-form result under ``engine="fastpath"`` and ``engine="event"``.
2. **Speedup.** Replaying those specs is at least ``MIN_SPEEDUP`` times
   faster per spec than stepping the discrete-event simulator, measured as
   (total event time / total fastpath time) over the deduplicated eligible
   specs. The comparison is written to BENCH_fastpath.json.

The fastpath pass starts from a cold profile cache, so its total includes
every driver build the replay layer pays; the event pass builds each spec's
driver itself, exactly as a worker process would.

Usage: PYTHONPATH=src python scripts/check_fastpath.py
Environment: REPRO_FASTPATH_MIN_SPEEDUP overrides the gate (default 5).
"""

from __future__ import annotations

import dataclasses
import json
import os
import sys
import time

BENCH_PATH = "BENCH_fastpath.json"
MIN_SPEEDUP = float(os.environ.get("REPRO_FASTPATH_MIN_SPEEDUP", "5"))


def _quick_matrix_specs():
    """The deduplicated spec cells of every registered quick study."""
    from repro.experiments import registry

    specs, seen = [], set()
    for build in registry.STUDIES.values():
        for cell in build(quick=True).cells:
            if cell.spec is None:
                continue
            key = cell.spec.content_hash()
            if key in seen:
                continue
            seen.add(key)
            specs.append(cell.spec)
    return specs


def main() -> int:
    from repro.exec.executor import execute_spec
    from repro.exec.serialize import result_to_wire
    from repro.exec.spec import canonical_json
    from repro.fastpath.engine import spec_ineligibility
    from repro.fastpath.profile import clear_profile_cache, load_compiled

    specs = _quick_matrix_specs()

    eligible, reasons = [], {}
    for spec in specs:
        reason = spec_ineligibility(spec)
        if reason is None:
            _, compiled = load_compiled(spec.driver)
            if compiled is None:
                reason = "driver not trace-pure (no replay profile)"
        if reason is None:
            eligible.append(spec)
        else:
            reasons[reason] = reasons.get(reason, 0) + 1

    if not eligible:
        print("FAIL: no fastpath-eligible specs in the quick matrix", file=sys.stderr)
        return 1

    # ---- event pass: the full discrete-event simulator, per spec ---------
    event_wires, event_s = [], 0.0
    for spec in eligible:
        case = dataclasses.replace(spec, engine="event")
        started = time.perf_counter()
        result = execute_spec(case)
        event_s += time.perf_counter() - started
        event_wires.append(canonical_json(result_to_wire(result)))

    # ---- fastpath pass: cold cache, so driver builds are paid here too ---
    clear_profile_cache()
    fast_wires, fast_s = [], 0.0
    for spec in eligible:
        case = dataclasses.replace(spec, engine="fastpath")
        started = time.perf_counter()
        result = execute_spec(case)
        fast_s += time.perf_counter() - started
        fast_wires.append(canonical_json(result_to_wire(result)))

    mismatches = sum(1 for a, b in zip(event_wires, fast_wires) if a != b)
    speedup = event_s / fast_s if fast_s > 0 else float("inf")
    bench = {
        "quick": True,
        "specs_total": len(specs),
        "specs_eligible": len(eligible),
        "ineligible_reasons": reasons,
        "event_s": round(event_s, 3),
        "fastpath_s": round(fast_s, 3),
        "event_per_spec_ms": round(event_s / len(eligible) * 1000, 3),
        "fastpath_per_spec_ms": round(fast_s / len(eligible) * 1000, 3),
        "mean_per_spec_speedup": round(speedup, 2),
        "min_speedup_gate": MIN_SPEEDUP,
        "parity_mismatches": mismatches,
    }
    with open(BENCH_PATH, "w") as handle:
        json.dump(bench, handle, indent=2)
        handle.write("\n")
    print(json.dumps(bench, indent=2))
    print(f"bench written: {BENCH_PATH}")

    failed = False
    if mismatches:
        print(
            f"FAIL: {mismatches}/{len(eligible)} specs differ between "
            f"engines (parity is a hard gate everywhere)",
            file=sys.stderr,
        )
        failed = True
    if speedup < MIN_SPEEDUP:
        message = (
            f"fastpath speedup {speedup:.2f}x below the {MIN_SPEEDUP:.0f}x "
            f"gate (event {event_s:.2f}s vs fastpath {fast_s:.2f}s over "
            f"{len(eligible)} specs)"
        )
        cores = os.cpu_count() or 1
        if cores >= 2:
            print(f"FAIL: {message}", file=sys.stderr)
            failed = True
        else:
            # Wall clock on one-core (often oversubscribed) hosts is noisy;
            # the bench is still recorded, but the gate is advisory there.
            print(f"NOTE ({cores} core): {message}")
    if failed:
        return 1
    print(
        f"OK: {len(eligible)}/{len(specs)} specs replayed byte-identically, "
        f"{speedup:.2f}x mean per-spec speedup"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
