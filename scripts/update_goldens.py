#!/usr/bin/env python
"""Refresh (or check) the golden-trace regression corpus in tests/golden/.

Default mode re-runs every spec registered in
:func:`repro.verify.golden.golden_specs` and rewrites the corpus files —
do this in the same commit as an intentional behavioural change, so the
diff review answers "is this drift intended?". ``--check`` compares instead
of writing and exits non-zero on any drift, missing file, or stale spec
(this is what the CI ``verify`` job runs).

Usage:
    PYTHONPATH=src python scripts/update_goldens.py [--check] [--dir DIR] [--jobs N]
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the stored corpus instead of rewriting it",
    )
    parser.add_argument(
        "--dir",
        default=None,
        metavar="DIR",
        help="corpus directory (default: tests/golden/ in the checkout)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parallel simulation workers (default: 1, in-process)",
    )
    args = parser.parse_args(argv)

    from repro.exec.executor import Executor
    from repro.verify.golden import check_goldens, write_goldens

    with Executor(jobs=args.jobs, cache=False) as executor:
        if args.check:
            report = check_goldens(directory=args.dir, executor=executor)
            print(report.render())
            return 0 if report.passed else 1
        paths = write_goldens(directory=args.dir, executor=executor)
        for path in paths:
            print(f"wrote {path}")
        print(f"{len(paths)} golden(s) regenerated")
        return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
