#!/usr/bin/env python
"""CI gate: the differential spec fuzzer must be clean *and* deterministic.

Runs the same fuzz campaign twice (identical budget and seed) and asserts:

1. **Zero findings** — no metamorphic relation is violated anywhere in the
   sampled knob space, and no probe crashed, timed out, or misconfigured in
   the supervised batch.
2. **Byte-identical findings files** — the two passes write exactly the same
   canonical JSON, proving the campaign is free of wall-clock, ordering, or
   cache nondeterminism (a findings file that cannot be reproduced is not a
   repro).

The first pass's findings file is left at ``--out`` as the CI artifact, so a
red run uploads the violating (shrunk) specs for local replay. Corpus
emission is disabled: CI must never mutate the checked-in regression corpus.

Usage::

    PYTHONPATH=src python scripts/check_fuzz.py --budget 150 --seed 0
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import tempfile


def _run_campaign(budget: int, seed: int, out: pathlib.Path) -> "FuzzReport":
    from repro.exec.executor import Executor
    from repro.fuzz.campaign import FuzzCampaign

    executor = Executor(jobs=1, cache=False)
    try:
        report = FuzzCampaign(
            budget=budget, seed=seed, executor=executor, corpus_dir=None
        ).run()
    finally:
        executor.close()
    report.save(out)
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budget", type=int, default=150, metavar="N")
    parser.add_argument("--seed", type=int, default=0, metavar="S")
    parser.add_argument(
        "--out",
        default="FUZZ_findings.json",
        metavar="PATH",
        help="findings artifact from the first pass (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    from repro.errors import ConfigurationError
    from repro.fuzz.campaign import validate_budget, validate_seed

    try:
        budget = validate_budget(args.budget, source="--budget")
        seed = validate_seed(args.seed, source="--seed")
    except ConfigurationError as exc:
        parser.error(str(exc))

    out = pathlib.Path(args.out)
    first = _run_campaign(budget, seed, out)
    print(first.render())
    print(f"findings: {out}")

    with tempfile.TemporaryDirectory(prefix="repro-fuzz-ci-") as scratch:
        rerun_path = pathlib.Path(scratch) / "findings-rerun.json"
        second = _run_campaign(budget, seed, rerun_path)
        first_bytes = out.read_bytes()
        second_bytes = rerun_path.read_bytes()

    failed = False
    if not first.ok:
        print(
            f"FAIL: campaign produced {len(first.findings)} finding(s); "
            f"see {out} for the shrunk repro specs",
            file=sys.stderr,
        )
        failed = True
    if first_bytes != second_bytes:
        print(
            "FAIL: findings file is not reproducible — two campaigns with "
            f"budget={budget} seed={seed} wrote different bytes "
            f"({len(first.findings)} vs {len(second.findings)} findings)",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print(f"OK: two passes (budget={budget} seed={seed}) clean and byte-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
