#!/usr/bin/env python
"""CI gate: the study layer must batch whole matrices, and the batch must pay.

Three claims, checked against a live run:

1. ``run_all(quick=True)`` — the CLI's ``--all --quick`` — submits exactly
   **one** executor batch for the union of every experiment's matrix.
2. Each experiment on its own submits at most one batch (zero for the pure,
   spec-free artifacts; never the serial mini-batch trickle the study layer
   replaced).
3. The unioned batch beats the old serial per-cell path on wall clock at
   ``REPRO_JOBS >= 2``, and the comparison is written to BENCH_study.json.

The serial path is reproduced faithfully: the same spec cells, submitted one
spec per batch in declaration order against an identically-configured
executor (so it still enjoys the result cache, as the pre-study code did —
within a single cold pass that means no savings either way).

Usage: PYTHONPATH=src python scripts/check_study_batching.py
Environment: REPRO_JOBS (worker count, default 2), REPRO_EXEC_BACKEND.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time

BENCH_PATH = "BENCH_study.json"


def _executor(jobs: int, cache_dir: str):
    from repro.exec.executor import Executor

    backend = os.environ.get("REPRO_EXEC_BACKEND") or None
    return Executor(jobs=jobs, backend=backend, cache=True, cache_dir=cache_dir)


def main() -> int:
    from repro.exec.executor import set_default_executor
    from repro.experiments import registry

    jobs = int(os.environ.get("REPRO_JOBS", "2"))
    quick = True

    # ---- serial baseline: the same cells, one spec per submission --------
    studies = [build(quick=quick) for build in registry.STUDIES.values()]
    flat_specs = [
        cell.spec for study in studies for cell in study.cells if cell.spec is not None
    ]
    with tempfile.TemporaryDirectory(prefix="repro-study-serial-") as cache_dir:
        executor = _executor(jobs, cache_dir)
        started = time.perf_counter()
        for spec in flat_specs:
            executor.map([spec])
        serial_s = time.perf_counter() - started
        serial_batches = executor.stats.batches
        executor.close()

    # ---- batched path: the same specs as one submission ------------------
    with tempfile.TemporaryDirectory(prefix="repro-study-batched-") as cache_dir:
        executor = _executor(jobs, cache_dir)
        started = time.perf_counter()
        executor.map_outcome(flat_specs)
        batched_s = time.perf_counter() - started

        # ---- the real --all global submission, against the warm cache ----
        # (timed phases above isolate executor shape; this phase checks the
        # CLI path's batching and runs the live cells + analyses.)
        set_default_executor(executor)
        before_batches = executor.stats.batches
        results = registry.run_all(quick=quick)
        union_batches = executor.stats.batches - before_batches
        union_stats = registry.last_union_stats

        # ---- per-experiment batching, same warm cache ---------------------
        per_experiment = {}
        for key, build in registry.STUDIES.items():
            before = executor.stats.batches
            build(quick=quick).run(executor=executor)
            per_experiment[key] = executor.stats.batches - before
        set_default_executor(None)
        executor.close()

    speedup = serial_s / batched_s if batched_s > 0 else float("inf")
    bench = {
        "jobs": jobs,
        "quick": quick,
        "serial_s": round(serial_s, 3),
        "batched_s": round(batched_s, 3),
        "speedup": round(speedup, 2),
        "serial_batches": serial_batches,
        "union_batches": union_batches,
        "experiments": len(results),
        "cells": union_stats.cells,
        "spec_cells": union_stats.spec_cells,
        "live_cells": union_stats.live_cells,
        "unique_specs": union_stats.unique_specs,
        "dedup_hits": union_stats.dedup_hits,
        "per_experiment_batches": per_experiment,
    }
    with open(BENCH_PATH, "w") as handle:
        json.dump(bench, handle, indent=2)
        handle.write("\n")
    print(json.dumps(bench, indent=2))
    print(f"bench written: {BENCH_PATH}")

    failed = False
    if union_batches != 1:
        print(
            f"FAIL: --all submitted {union_batches} batches, expected 1",
            file=sys.stderr,
        )
        failed = True
    offenders = {key: n for key, n in per_experiment.items() if n > 1}
    if offenders:
        print(
            f"FAIL: experiments submitting more than one batch: {offenders}",
            file=sys.stderr,
        )
        failed = True
    if serial_batches != len(flat_specs):
        print(
            f"FAIL: serial baseline submitted {serial_batches} batches for "
            f"{len(flat_specs)} specs (harness bug)",
            file=sys.stderr,
        )
        failed = True
    cores = os.cpu_count() or 1
    if jobs >= 2 and batched_s >= serial_s:
        message = (
            f"batched path ({batched_s:.2f}s) not faster than the serial "
            f"per-cell path ({serial_s:.2f}s) at {jobs} jobs"
        )
        if cores >= 2:
            print(f"FAIL: {message}", file=sys.stderr)
            failed = True
        else:
            # One-core machines cannot demonstrate the parallel win; the
            # bench is still recorded, but wall clock is advisory there.
            print(f"NOTE ({cores} core): {message}")
    if failed:
        return 1
    print(
        f"OK: one global batch ({union_stats.describe()}), "
        f"{speedup:.2f}x over serial at {jobs} jobs"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
