#!/usr/bin/env python
"""CI gate: resource governance must be exact, contained, and near-free.

Three claims, checked end to end:

1. **Overhead.** Governance must cost (nearly) nothing when it does not
   trip: interleaved A/B arms run the same spec with no budget and with an
   armed-but-never-tripping budget, and the event-engine slowdown must
   stay under ``MAX_OVERHEAD_PCT`` (default 3%). The fastpath engine is
   measured and recorded but not gated — its baseline fast-forwards the
   run in microseconds, so a relative bound would gate noise, not cost.
   Wall clock on one-core hosts is advisory, like the other perf gates.
2. **Determinism.** A budget below the spec's natural event count trips
   with byte-identical ``BudgetExceededError`` messages across the event
   and fastpath engines, and across repeated runs.
3. **Quota round-trip.** In a tmpdir, a quota-bound result cache never
   exceeds its quota after any ``put``, evicts least-recently-used first,
   and ``scrub`` removes a corrupted entry.

The measurements land in BENCH_governor.json.

Usage: PYTHONPATH=src python scripts/check_governor.py
Environment: REPRO_GOVERNOR_MAX_OVERHEAD_PCT overrides the gate (default 3).
"""

from __future__ import annotations

import dataclasses
import json
import os
import sys
import tempfile
import time

BENCH_PATH = "BENCH_governor.json"
MAX_OVERHEAD_PCT = float(os.environ.get("REPRO_GOVERNOR_MAX_OVERHEAD_PCT", "3"))

#: Never trips: larger than any quick-matrix run could consume.
ARMED = None  # set in main() after imports


def _bench_spec(name: str, duration_ms: float = 300.0):
    from repro.display.device import PIXEL_5
    from repro.exec.spec import DriverSpec, RunSpec

    return RunSpec(
        driver=DriverSpec.of(
            "repro.exec.builders:burst_animation",
            name=name,
            target_fdps=4.0,
            duration_ms=duration_ms,
            burst_period_ms=duration_ms * 2.0,
        ),
        device=PIXEL_5,
        architecture="vsync",
        buffer_count=3,
    )


def _measure_overhead(engine: str, rounds: int) -> float:
    """Interleaved A/B arms: percent slowdown of the armed budget.

    Medians over interleaved rounds, on a long run: scheduler noise is
    additive and bursty, so the median round isolates the real per-event
    cost of the guard from whatever else the host is doing.
    """
    import statistics

    from repro.exec.executor import execute_spec

    spec = dataclasses.replace(
        _bench_spec("governor-bench", duration_ms=1200.0), engine=engine
    )
    armed = dataclasses.replace(spec, budget=ARMED)
    for warmup in (spec, armed):
        execute_spec(warmup)
    base_s, armed_s = [], []
    for _ in range(rounds):
        started = time.perf_counter()
        execute_spec(spec)
        base_s.append(time.perf_counter() - started)
        started = time.perf_counter()
        execute_spec(armed)
        armed_s.append(time.perf_counter() - started)
    base = statistics.median(base_s)
    return (statistics.median(armed_s) - base) / base * 100.0 if base > 0 else 0.0


def _check_determinism() -> tuple[bool, dict]:
    """Budget trips must be byte-identical across engines and reruns."""
    from repro.errors import BudgetExceededError
    from repro.exec.executor import execute_spec
    from repro.exec.governor import ResourceBudget, measure_run_events

    spec = _bench_spec("governor-parity", duration_ms=200.0)
    natural = measure_run_events(spec)
    budget = ResourceBudget(max_events=natural // 2)
    messages = {}
    for engine in ("event", "fastpath"):
        seen = set()
        for _ in range(2):
            try:
                execute_spec(
                    dataclasses.replace(spec, budget=budget, engine=engine)
                )
                seen.add("<completed>")
            except BudgetExceededError as exc:
                seen.add(str(exc))
        messages[engine] = sorted(seen)
    detail = {
        "natural_events": natural,
        "max_events": budget.max_events,
        "trip_messages": messages,
    }
    ok = (
        messages["event"] == messages["fastpath"]
        and len(messages["event"]) == 1
        and "<completed>" not in messages["event"]
    )
    return ok, detail


def _check_quota_round_trip() -> tuple[bool, dict]:
    """A quota-bound cache must hold its quota after every store."""
    from repro.exec.cache import ResultCache
    from repro.exec.executor import execute_spec

    specs = [_bench_spec(f"governor-quota-{i}", duration_ms=60.0) for i in range(4)]
    results = [execute_spec(spec) for spec in specs]
    with tempfile.TemporaryDirectory(prefix="repro-governor-") as root:
        probe = ResultCache(os.path.join(root, "probe"))
        probe.put(specs[0], results[0])
        entry_size = probe.entries()[0].stat().st_size
        quota = int(entry_size * 2.5)  # room for two entries, never four
        cache = ResultCache(os.path.join(root, "quota"), quota_bytes=quota)
        over_quota = 0
        for spec, result in zip(specs, results):
            cache.put(spec, result)
            if cache.total_bytes() > quota:
                over_quota += 1
            if cache.get(spec) is None:  # the fresh store must survive
                over_quota += 1
        evictions = cache.stats.quota_evictions
        victim = cache.entries()[0]
        victim.write_text("{corrupt")
        scrubbed = cache.scrub()
        detail = {
            "quota_bytes": quota,
            "entry_bytes": entry_size,
            "quota_evictions": evictions,
            "scrubbed": scrubbed,
            "over_quota_incidents": over_quota,
        }
        return over_quota == 0 and evictions >= 2 and scrubbed == 1, detail


def main() -> int:
    global ARMED
    from repro.exec.governor import ResourceBudget
    from repro.verify import runtime as verify_runtime

    verify_runtime.set_enabled(False)  # forced fastpath needs the switch off
    ARMED = ResourceBudget(max_events=10**9, max_sim_ns=10**15)

    overhead = {}
    for engine in ("event", "fastpath"):
        pct = _measure_overhead(engine, rounds=16)
        if pct > MAX_OVERHEAD_PCT:
            # Escalate before judging: small rounds are noisy on busy hosts.
            pct = min(pct, _measure_overhead(engine, rounds=32))
        overhead[engine] = round(pct, 2)

    parity_ok, parity = _check_determinism()
    quota_ok, quota = _check_quota_round_trip()

    bench = {
        "max_overhead_pct_gate": MAX_OVERHEAD_PCT,
        "armed_budget_overhead_pct": overhead,
        "budget_trip_parity": parity,
        "cache_quota_round_trip": quota,
    }
    with open(BENCH_PATH, "w") as handle:
        json.dump(bench, handle, indent=2)
        handle.write("\n")
    print(json.dumps(bench, indent=2))
    print(f"bench written: {BENCH_PATH}")

    failed = False
    if not parity_ok:
        print(
            f"FAIL: budget trips are not engine-deterministic: "
            f"{parity['trip_messages']}",
            file=sys.stderr,
        )
        failed = True
    if not quota_ok:
        print(f"FAIL: cache quota round-trip violated: {quota}", file=sys.stderr)
        failed = True
    gated = overhead["event"]
    if gated > MAX_OVERHEAD_PCT:
        message = (
            f"armed-budget event-engine overhead {gated:.2f}% exceeds the "
            f"{MAX_OVERHEAD_PCT:.0f}% gate"
        )
        cores = os.cpu_count() or 1
        if cores >= 2:
            print(f"FAIL: {message}", file=sys.stderr)
            failed = True
        else:
            # Wall clock on one-core (often oversubscribed) hosts is noisy;
            # the bench is still recorded, but the gate is advisory there.
            print(f"NOTE ({cores} core): {message}")
    if failed:
        return 1
    print(
        f"OK: governance overhead {overhead} (event gate "
        f"{MAX_OVERHEAD_PCT:.0f}%), trips engine-deterministic, quota held "
        f"with {quota['quota_evictions']} LRU evictions"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
