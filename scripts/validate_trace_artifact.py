#!/usr/bin/env python
"""CI gate: the --trace artifact must be a valid Chrome trace.

Loads a trace-event JSON file written by ``python -m repro <exp> --trace``
and checks it against the Chrome Trace Event Format contract enforced by
``repro.telemetry.chrome.validate_chrome_trace`` (every event carries
``ph``/``ts``/``pid``/``tid``/``name``), plus a few artifact-level sanity
floors: the file is non-empty, contains duration spans, and names at least
one process via metadata events. Exits non-zero with a diagnostic on any
violation.

Usage: PYTHONPATH=src python scripts/validate_trace_artifact.py out.json
"""

from __future__ import annotations

import json
import sys
from collections import Counter


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: validate_trace_artifact.py <trace.json>", file=sys.stderr)
        return 2
    path = argv[0]

    from repro.telemetry.chrome import validate_chrome_trace

    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)

    try:
        validate_chrome_trace(payload)
    except Exception as error:  # noqa: BLE001 - CI diagnostic
        print(f"FAIL: {path} is not a valid Chrome trace: {error}", file=sys.stderr)
        return 1

    events = payload["traceEvents"] if isinstance(payload, dict) else payload
    phases = Counter(event["ph"] for event in events)
    pids = {event["pid"] for event in events}
    print(
        f"{path}: {len(events)} events, {len(pids)} process(es), "
        f"phases={dict(sorted(phases.items()))}"
    )

    if not events:
        print("FAIL: trace contains no events", file=sys.stderr)
        return 1
    if phases.get("X", 0) == 0:
        print("FAIL: trace contains no duration spans (ph=X)", file=sys.stderr)
        return 1
    if not any(
        event["ph"] == "M" and event["name"] == "process_name" for event in events
    ):
        print("FAIL: trace names no process (ph=M metadata)", file=sys.stderr)
        return 1
    print("OK: trace artifact is valid")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
