#!/usr/bin/env python
"""CI gate: the result cache must actually serve repeat work.

Runs a small experiment subset twice against a fresh cache directory and
asserts that (1) the second pass is served almost entirely (>= 90 %) from
cache with zero scheduler invocations for cached specs, and (2) both passes
render identical tables (observability lines aside). Exits non-zero with a
diagnostic when either claim fails.

Usage: PYTHONPATH=src python scripts/check_cache_effectiveness.py [ids...]
"""

from __future__ import annotations

import sys
import tempfile

DEFAULT_IDS = ["fig10", "fig15", "tab02"]


def _render_pass(ids: list[str], cache_dir: str):
    from repro.exec.executor import Executor, set_default_executor
    from repro.experiments.registry import run_experiment

    executor = Executor(jobs=1, cache=True, cache_dir=cache_dir)
    set_default_executor(executor)
    tables = []
    for experiment_id in ids:
        result = run_experiment(experiment_id, quick=True)
        tables.append(
            "\n".join(
                line
                for line in result.render().splitlines()
                if not line.startswith("exec:")
            )
        )
    stats = executor.stats
    set_default_executor(None)
    executor.close()
    return tables, stats


def main(argv: list[str]) -> int:
    ids = argv or DEFAULT_IDS
    with tempfile.TemporaryDirectory(prefix="repro-cache-ci-") as cache_dir:
        cold_tables, cold = _render_pass(ids, cache_dir)
        warm_tables, warm = _render_pass(ids, cache_dir)

    print(f"cold pass: {cold.describe()}")
    print(f"warm pass: {warm.describe()}")

    if cold.total_requests == 0:
        print("FAIL: the subset issued no executor requests", file=sys.stderr)
        return 1
    hit_rate = warm.cache_hits / warm.total_requests if warm.total_requests else 0.0
    print(f"warm-pass cache hit rate: {hit_rate:.1%}")
    if hit_rate < 0.90:
        print(
            f"FAIL: warm-pass hit rate {hit_rate:.1%} below the 90% floor",
            file=sys.stderr,
        )
        return 1
    if warm.runs_executed != 0:
        print(
            f"FAIL: warm pass still simulated {warm.runs_executed} runs",
            file=sys.stderr,
        )
        return 1
    if cold_tables != warm_tables:
        print("FAIL: warm-pass tables differ from cold-pass tables", file=sys.stderr)
        return 1
    print("OK: cache effectiveness holds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
