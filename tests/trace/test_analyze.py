"""Tests for trace analysis cross-checks."""

import dataclasses

import pytest

from repro.metrics.fdps import fdps
from repro.metrics.latency import queue_wait_ms
from repro.testing import light_params, make_animation, run_dvsync, run_vsync
from repro.trace.analyze import analyze, decoupling_lead_ms
from repro.trace.record import record_run


def test_analysis_matches_scheduler_bookkeeping():
    result = run_vsync(make_animation(light_params(), "ana-clean", duration_ms=800))
    analysis = analyze(record_run(result))
    assert analysis.frames_displayed == len(result.presents)
    assert analysis.frame_drops == len(result.effective_drops)
    assert analysis.fdps == pytest.approx(fdps(result), rel=0.05)


def test_analysis_counts_injected_drops():
    driver = make_animation(light_params(), "ana-drop", duration_ms=800)
    workload = driver._workloads[10]
    driver._workloads[10] = dataclasses.replace(workload, render_ns=int(2.5 * 16_666_667))
    result = run_vsync(driver)
    analysis = analyze(record_run(result))
    assert analysis.frame_drops == len(result.effective_drops) >= 1


def test_queue_wait_means_agree():
    result = run_dvsync(make_animation(light_params(), "ana-wait"))
    analysis = analyze(record_run(result))
    expected = sum(queue_wait_ms(result)) / len(queue_wait_ms(result))
    assert analysis.mean_queue_wait_ms == pytest.approx(expected, rel=0.05)


def test_decoupling_lead_visible_under_dvsync():
    vsync_result = run_vsync(make_animation(light_params(), "ana-lead"))
    dvsync_result = run_dvsync(make_animation(light_params(), "ana-lead"))
    vsync_leads = decoupling_lead_ms(record_run(vsync_result))
    dvsync_leads = decoupling_lead_ms(record_run(dvsync_result))
    assert max(dvsync_leads) > max(vsync_leads)


def test_empty_trace_analysis():
    from repro.trace.record import Trace

    analysis = analyze(Trace("empty"))
    assert analysis.frames_displayed == 0
    assert analysis.fdps == 0.0
