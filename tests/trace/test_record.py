"""Tests for trace recording."""

import pytest

from repro.testing import light_params, make_animation, run_dvsync, run_vsync
from repro.trace.record import Span, Trace, record_run


def test_span_validation():
    with pytest.raises(ValueError):
        Span("t", "bad", start=10, end=5)


def test_span_duration():
    assert Span("t", "ok", 10, 25).duration == 15


def test_record_run_has_stage_tracks():
    result = run_vsync(make_animation(light_params(), "trace-run"))
    trace = record_run(result)
    assert {"ui", "render", "queue", "display", "trigger", "present"} <= set(trace.tracks())


def test_one_ui_span_per_frame():
    result = run_vsync(make_animation(light_params(), "trace-count"))
    trace = record_run(result)
    assert len(trace.spans_on("ui")) == len(result.frames)


def test_trigger_instants_labelled_by_architecture():
    vsync_trace = record_run(run_vsync(make_animation(light_params(), "trace-vs")))
    dvsync_trace = record_run(run_dvsync(make_animation(light_params(), "trace-dv")))
    assert all(i.name == "vsync-app" for i in vsync_trace.instants_on("trigger"))
    assert any(i.name == "d-vsync" for i in dvsync_trace.instants_on("trigger"))


def test_queue_depth_counter_sampled():
    result = run_dvsync(make_animation(light_params(), "trace-depth"))
    trace = record_run(result)
    depths = [c.value for c in trace.counters if c.track == "queue-depth"]
    assert depths
    assert max(depths) >= 2  # accumulation visible in the counter


def test_spans_on_sorted():
    result = run_vsync(make_animation(light_params(), "trace-sort"))
    trace = record_run(result)
    starts = [s.start for s in trace.spans_on("render")]
    assert starts == sorted(starts)


def test_time_bounds_cover_run():
    result = run_vsync(make_animation(light_params(), "trace-bounds"))
    trace = record_run(result)
    low, high = trace.time_bounds()
    assert low == 0
    assert high >= result.presents[-1].present_time


def test_empty_trace_bounds():
    assert Trace("empty").time_bounds() == (0, 0)
