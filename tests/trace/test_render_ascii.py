"""Tests for the ASCII timeline renderer."""

from repro.testing import light_params, make_animation, run_dvsync, run_vsync
from repro.trace.record import Trace, record_run
from repro.trace.render_ascii import render_queue_depth, render_timeline


def test_timeline_has_stage_rows():
    trace = record_run(run_vsync(make_animation(light_params(), "ascii-run")))
    art = render_timeline(trace, width=60)
    for track in ("ui", "render", "queue", "display", "janks", "present"):
        assert track in art


def test_timeline_width_respected():
    trace = record_run(run_vsync(make_animation(light_params(), "ascii-width")))
    art = render_timeline(trace, width=40)
    body_lines = [line for line in art.splitlines()[1:]]
    for line in body_lines:
        assert len(line) <= 9 + 40  # label + row


def test_presents_render_as_bars():
    trace = record_run(run_vsync(make_animation(light_params(), "ascii-present")))
    art = render_timeline(trace, width=80)
    present_line = next(l for l in art.splitlines() if l.strip().startswith("present"))
    assert present_line.count("|") >= 10


def test_janks_render_as_bangs():
    import dataclasses

    driver = make_animation(light_params(), "ascii-jank", duration_ms=600)
    workload = driver._workloads[10]
    driver._workloads[10] = dataclasses.replace(workload, render_ns=int(3 * 16_666_667))
    trace = record_run(run_vsync(driver))
    art = render_timeline(trace, width=80)
    jank_line = next(l for l in art.splitlines() if l.strip().startswith("janks"))
    assert "!" in jank_line


def test_empty_trace_handled():
    assert render_timeline(Trace("empty")) == "(empty trace)"
    assert render_queue_depth(Trace("empty")) == "(no queue-depth samples)"


def test_queue_depth_strip_shows_accumulation():
    trace = record_run(run_dvsync(make_animation(light_params(), "ascii-depth")))
    strip = render_queue_depth(trace, width=60)
    assert len(strip) == 60
    assert max(int(c) for c in strip) >= 2


def test_window_clipping():
    trace = record_run(run_vsync(make_animation(light_params(), "ascii-window")))
    full = render_timeline(trace, width=50)
    clipped = render_timeline(trace, width=50, start=0, end=100_000_000)
    assert full != clipped
