"""Tests for trace serialization."""

import pytest

from repro.errors import WorkloadError
from repro.pipeline.frame import FrameWorkload
from repro.testing import light_params, make_animation, run_vsync
from repro.trace.format import (
    load_frame_trace,
    load_trace,
    save_frame_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)
from repro.trace.record import record_run
from repro.workloads.frametrace import FrameTrace


def test_event_trace_roundtrip(tmp_path):
    result = run_vsync(make_animation(light_params(), "fmt-run"))
    trace = record_run(result)
    path = tmp_path / "trace.json"
    save_trace(trace, path)
    clone = load_trace(path)
    assert clone.name == trace.name
    assert clone.spans == trace.spans
    assert clone.instants == trace.instants
    assert clone.counters == trace.counters


def test_dict_roundtrip_without_files():
    result = run_vsync(make_animation(light_params(), "fmt-dict"))
    trace = record_run(result)
    clone = trace_from_dict(trace_to_dict(trace))
    assert clone.spans == trace.spans


def test_frame_trace_roundtrip(tmp_path):
    trace = FrameTrace(
        name="game", refresh_hz=30,
        workloads=[FrameWorkload(ui_ns=1000, render_ns=2000, gpu_ns=500)],
    )
    path = tmp_path / "frames.json"
    save_frame_trace(trace, path)
    clone = load_frame_trace(path)
    assert clone.workloads == trace.workloads
    assert clone.refresh_hz == 30


def test_kind_mismatch_rejected(tmp_path):
    trace = FrameTrace(
        name="game", refresh_hz=30, workloads=[FrameWorkload(1, 2)]
    )
    path = tmp_path / "frames.json"
    save_frame_trace(trace, path)
    with pytest.raises(WorkloadError):
        load_trace(path)


def test_malformed_event_payload_rejected():
    with pytest.raises(WorkloadError):
        trace_from_dict({"kind": "event-trace", "name": "x"})
