"""Tests for trace serialization: the schema module and its legacy shims."""

import pytest

from repro.errors import WorkloadError
from repro.pipeline.frame import FrameWorkload
from repro.testing import light_params, make_animation, run_vsync
from repro.trace import schema
from repro.trace.record import record_run
from repro.workloads.frametrace import FrameTrace


def test_event_trace_roundtrip(tmp_path):
    result = run_vsync(make_animation(light_params(), "fmt-run"))
    trace = record_run(result)
    path = tmp_path / "trace.json"
    schema.save(trace, path)
    clone = schema.load(path)
    assert clone.name == trace.name
    assert clone.spans == trace.spans
    assert clone.instants == trace.instants
    assert clone.counters == trace.counters


def test_dict_roundtrip_without_files():
    result = run_vsync(make_animation(light_params(), "fmt-dict"))
    trace = record_run(result)
    clone = schema.from_payload(schema.to_payload(trace))
    assert clone.spans == trace.spans


def test_frame_trace_roundtrip(tmp_path):
    trace = FrameTrace(
        name="game", refresh_hz=30,
        workloads=[FrameWorkload(ui_ns=1000, render_ns=2000, gpu_ns=500)],
    )
    path = tmp_path / "frames.json"
    schema.save(trace, path)
    clone = schema.load(path)
    assert clone.workloads == trace.workloads
    assert clone.refresh_hz == 30


def test_load_dispatches_by_kind(tmp_path):
    """schema.load returns the right type for either payload kind."""
    frame_trace = FrameTrace(
        name="game", refresh_hz=30, workloads=[FrameWorkload(1, 2)]
    )
    path = tmp_path / "frames.json"
    schema.save(frame_trace, path)
    assert isinstance(schema.load(path), FrameTrace)


def test_malformed_event_payload_rejected():
    with pytest.raises(WorkloadError):
        schema.event_trace_from_payload({"kind": "event-trace", "name": "x"})


def test_unknown_kind_rejected():
    with pytest.raises(WorkloadError):
        schema.from_payload({"kind": "mystery", "version": 1})


def test_version_mismatch_rejected():
    with pytest.raises(WorkloadError):
        schema.from_payload(
            {"kind": schema.EVENT_TRACE_KIND, "version": 999, "name": "x"}
        )


# ------------------------------------------------------------- legacy shims
def test_deprecated_names_warn_and_delegate(tmp_path):
    """Every legacy repro.trace.format name warns and still works."""
    from repro.trace import format as legacy

    result = run_vsync(make_animation(light_params(), "fmt-shim"))
    trace = record_run(result)

    with pytest.warns(DeprecationWarning, match="trace_to_dict is deprecated"):
        payload = legacy.trace_to_dict(trace)
    with pytest.warns(DeprecationWarning, match="trace_from_dict is deprecated"):
        clone = legacy.trace_from_dict(payload)
    assert clone.spans == trace.spans

    path = tmp_path / "trace.json"
    with pytest.warns(DeprecationWarning, match="save_trace is deprecated"):
        legacy.save_trace(trace, path)
    with pytest.warns(DeprecationWarning, match="load_trace is deprecated"):
        assert legacy.load_trace(path).spans == trace.spans

    frames = FrameTrace(
        name="game", refresh_hz=30, workloads=[FrameWorkload(1, 2)]
    )
    frames_path = tmp_path / "frames.json"
    with pytest.warns(DeprecationWarning, match="save_frame_trace is deprecated"):
        legacy.save_frame_trace(frames, frames_path)
    with pytest.warns(DeprecationWarning, match="load_frame_trace is deprecated"):
        assert legacy.load_frame_trace(frames_path).workloads == frames.workloads


def test_deprecated_loader_still_checks_kind(tmp_path):
    """The shimmed loaders keep the kind check the old API promised."""
    from repro.trace import format as legacy

    frames = FrameTrace(
        name="game", refresh_hz=30, workloads=[FrameWorkload(1, 2)]
    )
    path = tmp_path / "frames.json"
    schema.save(frames, path)
    with pytest.warns(DeprecationWarning):
        with pytest.raises(WorkloadError):
            legacy.load_trace(path)
