"""Tests for profile aggregation, rendering, and the perf trajectory."""

import json

from repro.telemetry.profiler import (
    perf_trajectory,
    profile_rows,
    render_profile,
    summarize_snapshots,
    write_bench_telemetry,
)
from repro.telemetry.runtime import Collector
from repro.telemetry.session import Telemetry


def make_snapshot(name="run", seconds=0.5):
    session = Telemetry(name)
    session.add_profile("scheduler.run", seconds)
    session.add_profile("sim.loop", seconds / 2)
    session.metrics.counter("sim.events").inc(1000)
    return session.snapshot(name)


def test_summarize_folds_blocks_and_metrics():
    summary = summarize_snapshots([make_snapshot("a"), make_snapshot("b")])
    assert summary.runs == 2
    assert summary.block_seconds("scheduler.run") == 1.0
    assert summary.block_seconds("sim.loop") == 0.5
    assert summary.blocks["scheduler.run"]["count"] == 2
    assert summary.metric("sim.events") == 2000
    assert summary.metric("missing") == 0.0


def test_render_profile_empty_capture():
    assert "nothing recorded" in render_profile(Collector())


def test_render_profile_full_capture():
    collector = Collector()
    collector.add_snapshot(make_snapshot())
    collector.note_batch(0.25)
    collector.note_experiment("fig05", wall_seconds=1.5, runs_executed=3)
    report = render_profile(collector)
    assert "fig05" in report
    assert "instrumented runs: 1" in report
    assert "scheduler.run" in report
    assert "sim.events" in report
    assert "executor batches: 1" in report


def test_perf_trajectory_payload():
    collector = Collector()
    collector.add_snapshot(make_snapshot())
    collector.note_experiment(
        "fig05", wall_seconds=1.5, runs_executed=3, cache_hits=2
    )
    payload = perf_trajectory(collector)
    assert payload["version"] == 1
    assert payload["kind"] == "telemetry-trajectory"
    assert payload["experiments"][0]["experiment_id"] == "fig05"
    totals = payload["totals"]
    assert totals["wall_seconds"] == 1.5
    assert totals["runs_executed"] == 3
    assert totals["cache_hits"] == 2
    assert totals["instrumented_runs"] == 1
    assert totals["scheduler_run_seconds"] == 0.5
    assert totals["sim_events"] == 1000


def test_write_bench_telemetry_is_json(tmp_path):
    collector = Collector()
    collector.add_snapshot(make_snapshot())
    path = tmp_path / "BENCH_telemetry.json"
    written = write_bench_telemetry(path, collector)
    assert json.loads(path.read_text()) == written


def test_profile_rows():
    rows = profile_rows([make_snapshot("vsync@x", seconds=1.0)])
    assert rows == [["vsync@x", "1000.00", "500.00"]]
