"""End-to-end telemetry through schedulers, the wire, and the executor."""

import pytest

from repro.core.config import DVSyncConfig
from repro.display.device import PIXEL_5
from repro.core.dvsync import DVSyncScheduler
from repro.exec.executor import Executor, execute_spec
from repro.exec.serialize import result_from_wire, result_to_wire
from repro.exec.spec import RunSpec
from repro.experiments.runner import scenario_spec
from repro.telemetry import runtime
from repro.telemetry.session import NullTelemetry, Telemetry
from repro.testing import light_params, make_animation
from repro.vsync.scheduler import VSyncScheduler
from repro.workloads.os_cases import scenario_for_case, use_case


def make_scenario():
    return scenario_for_case(
        use_case("cls notif ctr"), refresh_hz=60, target_fdps=1.0
    )


def test_disabled_run_registers_zero_hooks(pixel5):
    driver = make_animation(light_params(), "tel-off")
    scheduler = VSyncScheduler(driver, pixel5)
    assert isinstance(scheduler.telemetry, NullTelemetry)
    assert scheduler.on_frame_spawned == []
    assert scheduler.pipeline.on_ui_complete == []
    assert scheduler.pipeline.on_frame_queued == []
    assert scheduler.sim.telemetry is None
    result = scheduler.run()
    assert result.telemetry is None


def test_enabled_run_attaches_snapshot(pixel5):
    driver = make_animation(light_params(), "tel-on")
    scheduler = VSyncScheduler(driver, pixel5, telemetry=True)
    assert isinstance(scheduler.telemetry, Telemetry)
    result = scheduler.run()
    snapshot = result.telemetry
    assert snapshot is not None
    assert snapshot.name == "vsync@tel-on"
    assert snapshot.trace.spans  # UI/render spans
    registry = snapshot.metrics_registry()
    assert registry.value("trigger.frames") == len(result.frames)
    assert registry.value("display.presents") == len(result.presents)
    assert registry.value("run.frames") == len(result.frames)
    assert snapshot.profile_seconds("scheduler.run") > 0
    assert snapshot.profile_seconds("sim.loop") > 0


def test_dvsync_run_records_decoupled_triggers(pixel5):
    driver = make_animation(light_params(), "tel-dv")
    scheduler = DVSyncScheduler(
        driver, pixel5, DVSyncConfig(buffer_count=4), telemetry=True
    )
    result = scheduler.run()
    snapshot = result.telemetry
    assert snapshot is not None
    triggers = [i for i in snapshot.trace.instants if i.track == "trigger"]
    assert any(i.name == "d-vsync" for i in triggers)
    # _finalize_result still annotates extra under the unified run().
    assert "fpe_triggers_accumulation" in result.extra


def test_caller_owned_session_is_used(pixel5):
    session = Telemetry("mine")
    driver = make_animation(light_params(), "tel-own")
    scheduler = VSyncScheduler(driver, pixel5, telemetry=session)
    assert scheduler.telemetry is session
    scheduler.run()
    assert session.trace.spans


def test_result_wire_roundtrip_preserves_snapshot(pixel5):
    driver = make_animation(light_params(), "tel-wire")
    result = VSyncScheduler(driver, pixel5, telemetry=True).run()
    clone = result_from_wire(result_to_wire(result))
    assert clone.telemetry is not None
    assert clone.telemetry.name == result.telemetry.name
    assert clone.telemetry.trace.spans == result.telemetry.trace.spans
    assert clone.telemetry.metrics == result.telemetry.metrics
    assert clone.telemetry.profile == result.telemetry.profile


def test_uninstrumented_result_wire_roundtrip(pixel5):
    driver = make_animation(light_params(), "tel-wire-off")
    result = VSyncScheduler(driver, pixel5).run()
    assert result_from_wire(result_to_wire(result)).telemetry is None


def test_spec_telemetry_flag_forces_session_in_worker():
    spec = scenario_spec(make_scenario(), PIXEL_5, "vsync")
    assert spec.telemetry is False
    instrumented = RunSpec(
        driver=spec.driver,
        device=spec.device,
        architecture="vsync",
        telemetry=True,
    )
    # The flag is part of the content hash (instrumented results must not be
    # served to uninstrumented requests) and survives the spec wire.
    assert instrumented.content_hash() != spec.content_hash()
    assert RunSpec.from_wire(instrumented.to_wire()).telemetry is True
    result = execute_spec(instrumented)
    assert result.telemetry is not None


def test_scenario_spec_reads_process_switch():
    runtime.set_enabled(True)
    try:
        assert scenario_spec(make_scenario(), PIXEL_5, "vsync").telemetry is True
        assert (
            scenario_spec(
                make_scenario(), PIXEL_5, "vsync", telemetry=False
            ).telemetry
            is False
        )
    finally:
        runtime.set_enabled(False)
    assert scenario_spec(make_scenario(), PIXEL_5, "vsync").telemetry is False


def test_executor_collects_snapshots_across_backends(tmp_path):
    device = PIXEL_5
    runtime.reset()
    runtime.set_enabled(True)
    try:
        spec = scenario_spec(make_scenario(), device, "vsync")
        assert spec.telemetry is True
        with Executor(jobs=1, cache=True, cache_dir=tmp_path) as executor:
            executor.map([spec, spec])  # second is deduplicated
            collected = len(runtime.collector().snapshots)
            assert collected == 1  # one per unique simulated spec
            executor.map([spec])  # cache hit also publishes
            assert len(runtime.collector().snapshots) == 2
        assert runtime.collector().batches == 1
    finally:
        runtime.reset()


def test_pool_worker_round_trips_telemetry(tmp_path):
    """A process-pool worker records because the spec carries the flag."""
    device = PIXEL_5
    specs = [
        scenario_spec(make_scenario(), device, arch, telemetry=True)
        for arch in ("vsync", "dvsync")
    ]
    with Executor(jobs=2, backend="process") as executor:
        results = executor.map(specs)
    for result in results:
        assert result.telemetry is not None
        assert result.telemetry.trace.spans


def test_telemetry_rejects_bad_argument(pixel5):
    driver = make_animation(light_params(), "tel-bad")
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        VSyncScheduler(driver, pixel5, telemetry="yes")
