"""Tests for telemetry sessions, probes, and the process-wide runtime."""

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import runtime
from repro.telemetry.session import (
    NULL_PROBE,
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    TelemetrySnapshot,
    resolve_telemetry,
)


def test_probe_emits_into_session_stores():
    session = Telemetry("run")
    probe = session.probe("ui")
    probe.span("frame-0", 100, 200)
    probe.instant("wakeup", 150)
    probe.counter(150, 3, name="queue-depth")
    probe.count("frames")
    probe.gauge("depth", 2)
    probe.observe("self_ns", 100)
    assert len(session.trace.spans) == 1
    assert session.trace.spans[0].track == "ui"
    assert len(session.trace.instants) == 1
    assert len(session.trace.counters) == 1
    assert session.metrics.value("ui.frames") == 1
    assert session.metrics.value("ui.depth") == 2
    assert session.metrics.value("ui.self_ns") == 100


def test_null_probe_is_shared_and_inert():
    assert NULL_TELEMETRY.probe("anything") is NULL_PROBE
    NULL_PROBE.span("x", 0, 1)
    NULL_PROBE.instant("x", 0)
    NULL_PROBE.counter(0, 1)
    NULL_PROBE.count("x")
    NULL_PROBE.gauge("x", 1)
    NULL_PROBE.observe("x", 1)
    assert not NULL_PROBE.enabled
    assert NULL_TELEMETRY.snapshot() is None


def test_profile_blocks_accumulate():
    session = Telemetry()
    session.add_profile("sim.loop", 0.25)
    session.add_profile("sim.loop", 0.75, count=2)
    assert session.profile_seconds("sim.loop") == pytest.approx(1.0)
    with session.profile_block("other"):
        pass
    assert session.profile_seconds("other") >= 0.0
    snapshot = session.snapshot("s")
    assert snapshot.profile["sim.loop"] == {"seconds": 1.0, "count": 3}


def test_snapshot_wire_roundtrip():
    session = Telemetry("run")
    session.probe("ui").span("frame-0", 100, 200)
    session.metrics.counter("ui.frames").inc(3)
    session.add_profile("scheduler.run", 0.5)
    snapshot = session.snapshot("vsync@demo")
    clone = TelemetrySnapshot.from_dict(snapshot.to_dict())
    assert clone.name == "vsync@demo"
    assert clone.trace.spans == snapshot.trace.spans
    assert clone.metrics_registry().value("ui.frames") == 3
    assert clone.profile_seconds("scheduler.run") == pytest.approx(0.5)


def test_snapshot_version_checked():
    with pytest.raises(ConfigurationError):
        TelemetrySnapshot.from_dict({"version": 99, "name": "x"})


def test_resolve_telemetry_tristate():
    assert isinstance(resolve_telemetry(True, "n"), Telemetry)
    assert resolve_telemetry(False) is NULL_TELEMETRY
    session = Telemetry("mine")
    assert resolve_telemetry(session) is session
    assert resolve_telemetry(NULL_TELEMETRY) is NULL_TELEMETRY
    with pytest.raises(ConfigurationError):
        resolve_telemetry("yes")


def test_resolve_none_defers_to_runtime_switch():
    assert resolve_telemetry(None) is NULL_TELEMETRY
    runtime.set_enabled(True)
    try:
        resolved = resolve_telemetry(None, "auto")
        assert isinstance(resolved, Telemetry)
        assert resolved.name == "auto"
    finally:
        runtime.set_enabled(False)


def test_runtime_switch_and_collector():
    assert runtime.enabled() is False
    previous = runtime.set_enabled(True)
    assert previous is False
    assert runtime.enabled() is True
    snapshot = Telemetry("x").snapshot()
    runtime.collect(snapshot)
    runtime.collect(None)  # ignored
    runtime.collector().note_batch(0.5)
    runtime.collector().note_experiment("fig05", wall_seconds=1.0, runs_executed=2)
    assert runtime.collector().snapshots == [snapshot]
    assert runtime.collector().batches == 1
    assert runtime.collector().experiments[0].experiment_id == "fig05"
    runtime.reset()
    assert runtime.enabled() is False
    assert runtime.collector().snapshots == []
    assert runtime.collector().experiments == []


def test_null_telemetry_is_reusable_across_runs():
    assert isinstance(NULL_TELEMETRY, NullTelemetry)
    with NULL_TELEMETRY.profile_block("x"):
        pass
    assert NULL_TELEMETRY.profile_seconds("x") == 0.0
    assert NULL_TELEMETRY.name == "telemetry-off"
