"""Tests for the Chrome trace-event JSON exporter."""

import json

import pytest

from repro.telemetry.chrome import (
    REQUIRED_EVENT_KEYS,
    chrome_trace,
    chrome_trace_from_results,
    save_chrome_trace,
    validate_chrome_trace,
)
from repro.telemetry.session import Telemetry
from repro.testing import light_params, make_animation, run_vsync
from repro.trace.record import Trace
from repro.vsync.scheduler import VSyncScheduler


def make_snapshot(name="run"):
    session = Telemetry(name)
    probe = session.probe("ui")
    probe.span("frame-0", 1_000_000, 2_000_000)
    probe.instant("wake", 1_500_000)
    probe.counter(2_000_000, 3, name="queue-depth")
    return session.snapshot(name)


def test_every_event_has_required_keys():
    document = chrome_trace([make_snapshot()])
    assert document["traceEvents"]
    for event in document["traceEvents"]:
        for key in REQUIRED_EVENT_KEYS:
            assert key in event, f"missing {key} in {event}"
    assert validate_chrome_trace(document) == len(document["traceEvents"])


def test_event_kinds_and_microsecond_timestamps():
    document = chrome_trace([make_snapshot()])
    by_kind = {}
    for event in document["traceEvents"]:
        by_kind.setdefault(event["ph"], []).append(event)
    span = by_kind["X"][0]
    assert span["ts"] == pytest.approx(1_000.0)  # ns -> µs
    assert span["dur"] == pytest.approx(1_000.0)
    instant = by_kind["i"][0]
    assert instant["s"] == "t"
    counter = by_kind["C"][0]
    assert counter["args"]["value"] == 3
    # Process and thread metadata name the run and its tracks.
    names = [e["args"]["name"] for e in by_kind["M"]]
    assert "run" in names and "ui" in names


def test_multiple_snapshots_get_distinct_pids():
    document = chrome_trace([make_snapshot("a"), make_snapshot("b")])
    pids = {event["pid"] for event in document["traceEvents"]}
    assert pids == {1, 2}


def test_results_without_snapshots_fall_back_to_record_run():
    result = run_vsync(make_animation(light_params(), "chrome-fallback"))
    assert result.telemetry is None
    document = chrome_trace_from_results([result])
    assert validate_chrome_trace(document) > 0


def test_instrumented_result_exports_its_snapshot(pixel5):
    driver = make_animation(light_params(), "chrome-live")
    result = VSyncScheduler(driver, pixel5, telemetry=True).run()
    document = chrome_trace_from_results([result])
    assert validate_chrome_trace(document) > 0
    names = {
        e["args"]["name"] for e in document["traceEvents"] if e["ph"] == "M"
    }
    assert "vsync@chrome-live" in names


def test_save_writes_loadable_json(tmp_path):
    path = tmp_path / "trace.json"
    written = save_chrome_trace(path, [make_snapshot()])
    loaded = json.loads(path.read_text())
    assert loaded == written
    assert validate_chrome_trace(loaded) == len(written["traceEvents"])


def test_validate_rejects_missing_keys():
    with pytest.raises(ValueError, match="traceEvents"):
        validate_chrome_trace({})
    with pytest.raises(ValueError, match="missing required keys"):
        validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "ts": 0}]}
        )


def test_plain_trace_accepted():
    trace = Trace(name="bare")
    trace.add_span("ui", "frame-0", 0, 100)
    document = chrome_trace([trace])
    assert validate_chrome_trace(document) > 0
