"""Tests for counters, gauges, histograms, and the registry."""

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.metrics import MetricsRegistry


def test_counter_accumulates():
    registry = MetricsRegistry()
    registry.counter("frames").inc()
    registry.counter("frames").inc(4)
    assert registry.value("frames") == 5


def test_counter_rejects_decrease():
    registry = MetricsRegistry()
    with pytest.raises(ConfigurationError):
        registry.counter("frames").inc(-1)


def test_gauge_keeps_last_value():
    registry = MetricsRegistry()
    registry.gauge("depth").set(3)
    registry.gauge("depth").set(1)
    assert registry.value("depth") == 1


def test_histogram_summary():
    registry = MetricsRegistry()
    histogram = registry.histogram("wait_ns")
    for value in (10, 20, 60):
        histogram.observe(value)
    assert histogram.count == 3
    assert histogram.min == 10
    assert histogram.max == 60
    assert registry.value("wait_ns") == pytest.approx(30.0)


def test_kind_conflict_rejected():
    registry = MetricsRegistry()
    registry.counter("frames")
    with pytest.raises(ConfigurationError):
        registry.gauge("frames")


def test_unknown_metric_value_is_none():
    assert MetricsRegistry().value("nope") is None


def test_wire_roundtrip():
    registry = MetricsRegistry()
    registry.counter("frames").inc(7)
    registry.gauge("depth").set(2)
    registry.histogram("wait").observe(5.0)
    clone = MetricsRegistry.from_dict(registry.to_dict())
    assert clone.value("frames") == 7
    assert clone.value("depth") == 2
    assert clone.histogram("wait").count == 1
    assert clone.to_dict() == registry.to_dict()


def test_empty_histogram_roundtrip():
    registry = MetricsRegistry()
    registry.histogram("never")
    clone = MetricsRegistry.from_dict(registry.to_dict())
    assert clone.histogram("never").count == 0
    assert clone.value("never") == 0.0


def test_unknown_kind_rejected():
    with pytest.raises(ConfigurationError):
        MetricsRegistry.from_dict({"x": {"kind": "mystery"}})


def test_merge_semantics():
    left = MetricsRegistry()
    left.counter("frames").inc(2)
    left.gauge("depth").set(1)
    left.histogram("wait").observe(10)
    right = MetricsRegistry()
    right.counter("frames").inc(3)
    right.gauge("depth").set(5)
    right.histogram("wait").observe(30)
    left.merge(right)
    assert left.value("frames") == 5  # counters add
    assert left.value("depth") == 5  # gauges take the newer value
    merged = left.histogram("wait")
    assert merged.count == 2 and merged.min == 10 and merged.max == 30
