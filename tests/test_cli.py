"""Tests for the ``python -m repro`` CLI."""

from repro.__main__ import main


def test_list_prints_ids(capsys):
    assert main(["--list"]) == 0
    printed = capsys.readouterr().out.split()
    assert "fig11" in printed
    assert "headline" in printed


def test_single_experiment(capsys):
    assert main(["tab01"]) == 0
    out = capsys.readouterr().out
    assert "Platform configuration" in out
    assert "Mate 60 Pro" in out


def test_quick_flag(capsys):
    assert main(["fig01", "--quick"]) == 0
    assert "CDF" in capsys.readouterr().out


def test_no_arguments_shows_help(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().out.lower()


def test_faults_flag_runs_the_drill(capsys):
    assert main(["--faults", "none", "--scenario", "animation"]) == 0
    out = capsys.readouterr().out
    assert "fault drill" in out
    assert "vsync" in out and "dvsync" in out


def test_faults_flag_accepts_clause_syntax(capsys):
    clauses = "thermal(factor=2.0,start_ms=50,end_ms=150)"
    assert main(["--faults", clauses, "--scenario", "animation"]) == 0
    out = capsys.readouterr().out
    assert "thermal" in out
    assert "injected" in out


def test_trace_flag_writes_valid_chrome_trace(tmp_path, capsys, monkeypatch):
    import json

    from repro.telemetry.chrome import validate_chrome_trace

    monkeypatch.chdir(tmp_path)
    path = tmp_path / "out.json"
    assert main(["fig05", "--quick", "--trace", str(path), "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "trace:" in out
    document = json.loads(path.read_text())
    assert validate_chrome_trace(document) > 0


def test_profile_flag_prints_summary(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["fig05", "--quick", "--profile", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "=== profile ===" in out
    assert "instrumented runs:" in out
    assert "scheduler.run" in out
    assert "sim.loop" in out


def test_no_telemetry_flags_record_nothing(tmp_path, capsys, monkeypatch):
    from repro.telemetry import runtime

    monkeypatch.chdir(tmp_path)
    assert main(["fig05", "--quick", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "=== profile ===" not in out
    assert runtime.enabled() is False
    assert runtime.collector().snapshots == []


def test_cache_subcommand_stats_gc_scrub(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE_QUOTA_MB", raising=False)
    assert main(["cache", "stats"]) == 0
    assert "0 entries" in capsys.readouterr().out
    assert main(["cache", "scrub"]) == 0
    assert "scrub: removed 0" in capsys.readouterr().out
    assert main(["cache", "gc", "--quota-mb", "1"]) == 0
    out = capsys.readouterr().out
    assert "gc: evicted 0 entries" in out
    assert "quota" in out


def test_cache_gc_requires_a_quota(tmp_path, capsys, monkeypatch):
    import pytest

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE_QUOTA_MB", raising=False)
    with pytest.raises(SystemExit):
        main(["cache", "gc"])
    assert "needs a quota" in capsys.readouterr().err


def test_governance_flags_validate(capsys):
    import pytest

    for flags in (
        ["fig05", "--max-events", "0"],
        ["fig05", "--memory-mb", "-1"],
        ["fig05", "--cache-quota-mb", "0"],
    ):
        with pytest.raises(SystemExit):
            main(flags)


def test_governance_flags_reach_the_executor(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert (
        main(
            [
                "fig05",
                "--quick",
                "--no-cache",
                "--max-events",
                "5000000",
                "--memory-mb",
                "8192",
                "--shed",
            ]
        )
        == 0
    )
    assert "executor:" in capsys.readouterr().out
