"""Tests for the ``python -m repro`` CLI."""

from repro.__main__ import main


def test_list_prints_ids(capsys):
    assert main(["--list"]) == 0
    printed = capsys.readouterr().out.split()
    assert "fig11" in printed
    assert "headline" in printed


def test_single_experiment(capsys):
    assert main(["tab01"]) == 0
    out = capsys.readouterr().out
    assert "Platform configuration" in out
    assert "Mate 60 Pro" in out


def test_quick_flag(capsys):
    assert main(["fig01", "--quick"]) == 0
    assert "CDF" in capsys.readouterr().out


def test_no_arguments_shows_help(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().out.lower()


def test_faults_flag_runs_the_drill(capsys):
    assert main(["--faults", "none", "--scenario", "animation"]) == 0
    out = capsys.readouterr().out
    assert "fault drill" in out
    assert "vsync" in out and "dvsync" in out


def test_faults_flag_accepts_clause_syntax(capsys):
    clauses = "thermal(factor=2.0,start_ms=50,end_ms=150)"
    assert main(["--faults", clauses, "--scenario", "animation"]) == 0
    out = capsys.readouterr().out
    assert "thermal" in out
    assert "injected" in out
