"""Tests for the Chromium compositor case study (§6.6)."""

import pytest

from repro.apps.chromium import PAGES, ChromiumFlingDriver, WebPage
from repro.core.config import DVSyncConfig
from repro.core.dvsync import DVSyncScheduler
from repro.display.device import MATE_60_PRO
from repro.metrics.fdps import fdps
from repro.units import ms
from repro.vsync.scheduler import VSyncScheduler


def test_three_pages_defined():
    assert [p.name for p in PAGES] == ["Sina", "Weather", "AI Life"]


def test_raster_demand_tracks_scroll():
    driver = ChromiumFlingDriver(PAGES[0], 120, 0)
    driver.begin(0)
    early = driver.make_workload(0, ms(50))
    assert driver._rasterized_rows >= driver.INITIAL_ROWS
    # Sweeping deep into the page triggers raster work.
    late = driver.make_workload(1, ms(600))
    assert late.render_ns > early.render_ns or driver.raster_events >= 1


def test_rows_rasterized_once():
    driver = ChromiumFlingDriver(PAGES[0], 120, 0)
    driver.begin(0)
    driver.make_workload(0, ms(600))
    first_events = driver.raster_events
    driver.make_workload(1, ms(600))
    assert driver.raster_events == first_events


def test_fling_window_and_finish():
    driver = ChromiumFlingDriver(PAGES[1], 120, 0)
    driver.begin(0)
    assert driver.wants_frame(ms(100), now=ms(100))
    assert not driver.wants_frame(ms(1300), now=ms(1300))
    assert driver.finished(ms(1200))


def test_vsync_flings_drop():
    results = [
        fdps(VSyncScheduler(ChromiumFlingDriver(page, 120, 0), MATE_60_PRO, buffer_count=4).run())
        for page in PAGES
    ]
    assert sum(results) / len(results) > 0.5  # paper baseline: 1.47


def test_dvsync_nearly_eliminates_drops():
    results = [
        fdps(
            DVSyncScheduler(
                ChromiumFlingDriver(page, 120, 0), MATE_60_PRO, DVSyncConfig(buffer_count=5)
            ).run()
        )
        for page in PAGES
    ]
    assert sum(results) / len(results) < 0.3  # paper: 0.08


def test_scroll_value_decelerates():
    driver = ChromiumFlingDriver(PAGES[2], 120, 0)
    driver.begin(0)
    early_speed = driver.animation_speed(ms(100))
    late_speed = driver.animation_speed(ms(1000))
    assert early_speed > late_speed


def test_custom_page_model():
    page = WebPage("Custom", scroll_rows=5, raster_ms_per_row=9.0, compose_ms=2.0)
    driver = ChromiumFlingDriver(page, 120, 0)
    driver.begin(0)
    driver.make_workload(0, ms(1199))
    assert driver._rasterized_rows <= page.scroll_rows
