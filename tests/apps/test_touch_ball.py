"""Tests for the Fig 7 touch-follow ball app."""

import statistics

from repro.apps.touch_ball import TouchBallApp
from repro.core.config import DVSyncConfig
from repro.core.dvsync import DVSyncScheduler
from repro.display.device import PIXEL_5
from repro.vsync.scheduler import VSyncScheduler


def run_arm(architecture, run_index=0):
    app = TouchBallApp(PIXEL_5)
    driver = app.build_driver(run_index)
    if architecture == "vsync":
        result = VSyncScheduler(driver, PIXEL_5, buffer_count=3).run()
    else:
        result = DVSyncScheduler(driver, PIXEL_5, DVSyncConfig(buffer_count=4)).run()
    return app.lag_result(result, driver)


def test_vsync_ball_trails_hundreds_of_pixels():
    lag = run_arm("vsync")
    assert lag.max_lag_px > 150


def test_vsync_lag_scales_with_latency():
    lag = run_arm("vsync")
    # The paper photographs 2.4 cm at 45 ms; at our latency the lag in cm
    # stays in the centimetre range.
    assert 0.5 < lag.max_lag_cm() < 4.0


def test_dvsync_mean_lag_lower_than_vsync():
    vsync = run_arm("vsync")
    dvsync = run_arm("dvsync")
    assert statistics.fmean(dvsync.lags_px) < statistics.fmean(vsync.lags_px)


def test_lag_series_per_presented_frame():
    app = TouchBallApp(PIXEL_5)
    driver = app.build_driver(0)
    result = VSyncScheduler(driver, PIXEL_5, buffer_count=3).run()
    lag = app.lag_result(result, driver)
    assert len(lag.lags_px) == len(result.presented_frames)


def test_driver_seeding_varies_by_run():
    app = TouchBallApp(PIXEL_5)
    assert app.build_driver(0).name != app.build_driver(1).name
